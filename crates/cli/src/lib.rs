//! Command-line interface for KAMEL.
//!
//! Drives the full system from trajectory CSV files:
//!
//! ```text
//! kamel generate --city porto --scale small --train trips.csv --test truth.csv
//! kamel tune     --input trips.csv
//! kamel train    --input trips.csv --model model.json
//! kamel impute   --model model.json --input sparse.csv --output dense.csv
//! kamel pack     --model model.json --out city.kstore
//! kamel serve    --model model.json --addr 127.0.0.1:8080
//! kamel serve    --model model.json --learn --learn-dir capture/
//! kamel serve    --store city.kstore --model-memory-budget 64m
//! kamel learn    --model model.json --capture-dir capture/ --reload 127.0.0.1:8080
//! kamel route    --shard 127.0.0.1:8081,127.0.0.1:8082 --addr 127.0.0.1:8080
//! kamel stats    --model model.json
//! kamel evaluate --model model.json --truth truth.csv --sparse-m 1000 --delta-m 50
//! ```
//!
//! The CSV format is one fix per row: `traj_id,lat,lng,t` (header optional).
//! The library surface ([`run`]) takes the argument vector and an output
//! writer so every command is integration-tested without spawning
//! processes.

#![warn(missing_docs)]

pub mod commands;
pub mod csvio;
pub mod progress;

use std::io::Write;

/// Runs the CLI with the given arguments (excluding the program name),
/// writing human output to `out`. Returns the process exit code.
pub fn run(args: &[String], out: &mut dyn Write) -> i32 {
    let usage = "usage: kamel <generate|train|tune|impute|pack|serve|learn|route|chaos|c10k|stats|evaluate|export> [options]\n\
                 run `kamel <command> --help` for per-command options";
    let Some(command) = args.first() else {
        let _ = writeln!(out, "{usage}");
        return 2;
    };
    let rest = &args[1..];
    let result = match command.as_str() {
        "generate" => commands::generate(rest, out),
        "train" => commands::train(rest, out),
        "impute" => commands::impute(rest, out),
        "pack" => commands::pack(rest, out),
        "serve" => commands::serve(rest, out),
        "learn" => commands::learn(rest, out),
        "route" => commands::route(rest, out),
        "chaos" => commands::chaos(rest, out),
        "c10k" => commands::c10k(rest, out),
        "stats" => commands::stats(rest, out),
        "tune" => commands::tune(rest, out),
        "export" => commands::export(rest, out),
        "evaluate" => commands::evaluate(rest, out),
        "--help" | "-h" | "help" => {
            let _ = writeln!(out, "{usage}");
            return 0;
        }
        other => Err(format!("unknown command `{other}`\n{usage}")),
    };
    match result {
        Ok(()) => 0,
        Err(msg) => {
            let _ = writeln!(out, "error: {msg}");
            1
        }
    }
}

/// Minimal flag parser: `--key value` pairs plus boolean `--key` switches.
pub(crate) struct Flags<'a> {
    pairs: Vec<(&'a str, Option<&'a str>)>,
}

impl<'a> Flags<'a> {
    pub(crate) fn parse(args: &'a [String], switches: &[&str]) -> Result<Self, String> {
        let mut pairs = Vec::new();
        let mut i = 0;
        while i < args.len() {
            let key = args[i].as_str();
            if !key.starts_with("--") {
                return Err(format!("unexpected argument `{key}`"));
            }
            if switches.contains(&key) {
                pairs.push((key, None));
                i += 1;
            } else {
                let value = args
                    .get(i + 1)
                    .ok_or_else(|| format!("flag `{key}` needs a value"))?;
                pairs.push((key, Some(value.as_str())));
                i += 2;
            }
        }
        Ok(Self { pairs })
    }

    pub(crate) fn get(&self, key: &str) -> Option<&'a str> {
        self.pairs
            .iter()
            .find(|(k, _)| *k == key)
            .and_then(|(_, v)| *v)
    }

    pub(crate) fn has(&self, key: &str) -> bool {
        self.pairs.iter().any(|(k, _)| *k == key)
    }

    pub(crate) fn required(&self, key: &str) -> Result<&'a str, String> {
        self.get(key).ok_or_else(|| format!("missing required flag `{key}`"))
    }

    pub(crate) fn get_f64(&self, key: &str, default: f64) -> Result<f64, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("flag `{key}` expects a number, got `{v}`")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_capture(args: &[&str]) -> (i32, String) {
        let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        let mut buf = Vec::new();
        let code = run(&args, &mut buf);
        (code, String::from_utf8(buf).unwrap())
    }

    #[test]
    fn no_command_prints_usage() {
        let (code, out) = run_capture(&[]);
        assert_eq!(code, 2);
        assert!(out.contains("usage"));
    }

    #[test]
    fn unknown_command_fails() {
        let (code, out) = run_capture(&["frobnicate"]);
        assert_eq!(code, 1);
        assert!(out.contains("unknown command"));
    }

    #[test]
    fn help_succeeds() {
        let (code, out) = run_capture(&["--help"]);
        assert_eq!(code, 0);
        assert!(out.contains("generate"));
    }

    #[test]
    fn flags_parsing() {
        let args: Vec<String> = ["--a", "1", "--flag", "--b", "x"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let f = Flags::parse(&args, &["--flag"]).unwrap();
        assert_eq!(f.get("--a"), Some("1"));
        assert!(f.has("--flag"));
        assert_eq!(f.required("--b").unwrap(), "x");
        assert!(f.required("--missing").is_err());
        assert_eq!(f.get_f64("--a", 0.0).unwrap(), 1.0);
        assert_eq!(f.get_f64("--absent", 7.5).unwrap(), 7.5);
        assert!(f.get_f64("--b", 0.0).is_err());
    }

    #[test]
    fn flags_reject_positional() {
        let args: Vec<String> = vec!["oops".to_string()];
        assert!(Flags::parse(&args, &[]).is_err());
    }
}

//! An injectable clock so deadline logic is testable without wall-time.
//!
//! Every budget decision in the serving stack (admission shedding, queue
//! expiry, breaker open-windows) asks a [`Clock`] rather than
//! `Instant::now()` directly. Production wires [`SystemClock`]; tests wire
//! [`ManualClock`] and advance it explicitly, so "the budget ran out while
//! the request sat in the queue" is a deterministic assertion, not a
//! sleep-and-hope race.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A monotonic time source.
pub trait Clock: Send + Sync + 'static {
    /// The current instant.
    fn now(&self) -> Instant;
}

/// The real monotonic clock.
#[derive(Debug, Default, Clone, Copy)]
pub struct SystemClock;

impl Clock for SystemClock {
    fn now(&self) -> Instant {
        Instant::now()
    }
}

/// A test clock: starts at construction time and only moves when
/// [`ManualClock::advance`] is called.
///
/// Note the interaction with condvar waits: parked threads still wake on
/// real time, so tests built on this clock assert on *decisions* (was the
/// item shed? which stage counted?) with the clock pre-advanced past the
/// deadline — never on wall-clock races.
#[derive(Debug)]
pub struct ManualClock {
    base: Instant,
    offset_us: AtomicU64,
}

impl Default for ManualClock {
    fn default() -> Self {
        Self::new()
    }
}

impl ManualClock {
    /// A clock frozen at the current instant.
    pub fn new() -> Self {
        Self {
            base: Instant::now(),
            offset_us: AtomicU64::new(0),
        }
    }

    /// A shareable clock frozen at the current instant.
    pub fn shared() -> Arc<Self> {
        Arc::new(Self::new())
    }

    /// Moves the clock forward by `by`.
    pub fn advance(&self, by: Duration) {
        self.offset_us
            .fetch_add(by.as_micros().min(u64::MAX as u128) as u64, Ordering::SeqCst);
    }
}

impl Clock for ManualClock {
    fn now(&self) -> Instant {
        self.base + Duration::from_micros(self.offset_us.load(Ordering::SeqCst))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_only_moves_when_advanced() {
        let c = ManualClock::new();
        let t0 = c.now();
        std::thread::yield_now();
        assert_eq!(c.now(), t0, "frozen until advanced");
        c.advance(Duration::from_millis(5));
        assert_eq!(c.now(), t0 + Duration::from_millis(5));
        c.advance(Duration::from_millis(5));
        assert_eq!(c.now(), t0 + Duration::from_millis(10));
    }

    #[test]
    fn system_clock_is_monotonic() {
        let c = SystemClock;
        let a = c.now();
        let b = c.now();
        assert!(b >= a);
    }
}

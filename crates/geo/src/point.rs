//! Coordinate types: geodetic [`LatLng`], projected planar [`Xy`], and
//! timestamped [`GpsPoint`].

use serde::{Deserialize, Serialize};

/// A WGS-84 geodetic coordinate in decimal degrees.
///
/// Latitude is positive north, longitude positive east. Construction does not
/// validate ranges (trajectory data is noisy); use [`LatLng::is_valid`] when
/// validation matters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatLng {
    /// Latitude in degrees, nominally in `[-90, 90]`.
    pub lat: f64,
    /// Longitude in degrees, nominally in `[-180, 180]`.
    pub lng: f64,
}

impl LatLng {
    /// Creates a new coordinate from latitude and longitude in degrees.
    #[inline]
    pub const fn new(lat: f64, lng: f64) -> Self {
        Self { lat, lng }
    }

    /// Returns true when both components are finite and within geodetic range.
    #[inline]
    pub fn is_valid(&self) -> bool {
        self.lat.is_finite()
            && self.lng.is_finite()
            && (-90.0..=90.0).contains(&self.lat)
            && (-180.0..=180.0).contains(&self.lng)
    }

    /// Great-circle distance to `other` in meters (haversine).
    #[inline]
    pub fn haversine_m(&self, other: &LatLng) -> f64 {
        crate::dist::haversine_m(*self, *other)
    }

    /// Fast planar approximation of the distance to `other` in meters.
    ///
    /// Accurate to well under 0.1% for city-scale separations, which is the
    /// regime KAMEL operates in (gaps up to a few kilometers).
    #[inline]
    pub fn fast_dist_m(&self, other: &LatLng) -> f64 {
        crate::dist::equirectangular_m(*self, *other)
    }

    /// Linear interpolation between `self` (t=0) and `other` (t=1).
    ///
    /// Valid for the short city-scale spans KAMEL deals with, where the
    /// planar approximation holds.
    #[inline]
    pub fn lerp(&self, other: &LatLng, t: f64) -> LatLng {
        LatLng::new(
            self.lat + (other.lat - self.lat) * t,
            self.lng + (other.lng - self.lng) * t,
        )
    }
}

/// A point in a local planar projection, in meters.
///
/// Produced by [`crate::LocalProjection`]; x grows east, y grows north.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Xy {
    /// Meters east of the projection origin.
    pub x: f64,
    /// Meters north of the projection origin.
    pub y: f64,
}

impl Xy {
    /// Creates a planar point from east/north offsets in meters.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// Euclidean distance to `other` in meters.
    #[inline]
    pub fn dist(&self, other: &Xy) -> f64 {
        (self.x - other.x).hypot(self.y - other.y)
    }

    /// Squared Euclidean distance; avoids the sqrt when only comparing.
    #[inline]
    pub fn dist_sq(&self, other: &Xy) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Vector from `self` to `other`.
    #[inline]
    pub fn delta(&self, other: &Xy) -> (f64, f64) {
        (other.x - self.x, other.y - self.y)
    }

    /// Linear interpolation between `self` (t=0) and `other` (t=1).
    #[inline]
    pub fn lerp(&self, other: &Xy, t: f64) -> Xy {
        Xy::new(
            self.x + (other.x - self.x) * t,
            self.y + (other.y - self.y) * t,
        )
    }
}

/// A single GPS fix: a coordinate plus a timestamp in seconds.
///
/// Timestamps are relative seconds (trip-relative or epoch — KAMEL only ever
/// uses differences, per the speed constraint of §5.1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GpsPoint {
    /// The fix location.
    pub pos: LatLng,
    /// Timestamp in seconds; only differences are meaningful.
    pub t: f64,
}

impl GpsPoint {
    /// Creates a GPS fix at `pos` observed at time `t` seconds.
    #[inline]
    pub const fn new(pos: LatLng, t: f64) -> Self {
        Self { pos, t }
    }

    /// Convenience constructor from raw components.
    #[inline]
    pub const fn from_parts(lat: f64, lng: f64, t: f64) -> Self {
        Self {
            pos: LatLng::new(lat, lng),
            t,
        }
    }

    /// Ground speed in m/s implied by moving from `self` to `next`.
    ///
    /// Returns `None` when the time difference is non-positive (out-of-order
    /// or duplicated fixes), which callers must treat as unusable.
    pub fn speed_to(&self, next: &GpsPoint) -> Option<f64> {
        let dt = next.t - self.t;
        if dt <= 0.0 {
            return None;
        }
        Some(self.pos.fast_dist_m(&next.pos) / dt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latlng_validity() {
        assert!(LatLng::new(41.15, -8.61).is_valid());
        assert!(!LatLng::new(91.0, 0.0).is_valid());
        assert!(!LatLng::new(0.0, 181.0).is_valid());
        assert!(!LatLng::new(f64::NAN, 0.0).is_valid());
    }

    #[test]
    fn latlng_lerp_endpoints_and_midpoint() {
        let a = LatLng::new(10.0, 20.0);
        let b = LatLng::new(11.0, 22.0);
        assert_eq!(a.lerp(&b, 0.0), a);
        assert_eq!(a.lerp(&b, 1.0), b);
        let mid = a.lerp(&b, 0.5);
        assert!((mid.lat - 10.5).abs() < 1e-12);
        assert!((mid.lng - 21.0).abs() < 1e-12);
    }

    #[test]
    fn xy_distance() {
        let a = Xy::new(0.0, 0.0);
        let b = Xy::new(3.0, 4.0);
        assert!((a.dist(&b) - 5.0).abs() < 1e-12);
        assert!((a.dist_sq(&b) - 25.0).abs() < 1e-12);
    }

    #[test]
    fn speed_requires_forward_time() {
        let a = GpsPoint::from_parts(41.0, -8.0, 0.0);
        let b = GpsPoint::from_parts(41.0, -7.999, 10.0);
        let v = a.speed_to(&b).unwrap();
        assert!(v > 0.0 && v < 20.0, "implausible speed {v}");
        assert!(b.speed_to(&a).is_none());
        let dup = GpsPoint::from_parts(41.0, -8.0, 0.0);
        assert!(a.speed_to(&dup).is_none());
    }
}

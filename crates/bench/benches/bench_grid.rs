//! Criterion bench for the Figure 12-III path: hexagonal vs square
//! tokenization, both raw cell assignment and end-to-end imputation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kamel::{GridKind, KamelConfig, Tokenizer};
use kamel_baselines::TrajectoryImputer;
use kamel_bench::{default_kamel_config, City};
use kamel_eval::harness::train_kamel;
use kamel_geo::LatLng;
use kamel_roadsim::DatasetScale;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let dataset = City::Porto.dataset(DatasetScale::Small);
    let mut group = c.benchmark_group("fig12_grid_tokenize");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    for grid in [GridKind::Hex, GridKind::Square] {
        let cfg = KamelConfig::builder().grid(grid).build();
        let tokenizer = Tokenizer::new(LatLng::new(41.15, -8.61), &cfg);
        let trajs = &dataset.train[..dataset.train.len().min(20)];
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{grid:?}")),
            &tokenizer,
            |b, tok| {
                b.iter(|| {
                    for t in trajs {
                        std::hint::black_box(tok.tokenize(t));
                    }
                })
            },
        );
    }
    group.finish();

    let mut group = c.benchmark_group("fig12_grid_impute");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    let sparse: Vec<_> = dataset.test.iter().take(5).map(|t| t.sparsify(1_000.0)).collect();
    for grid in [GridKind::Hex, GridKind::Square] {
        let (kamel, _) = train_kamel(
            &dataset,
            default_kamel_config().pyramid_height(3).model_threshold_k(150).grid(grid).build(),
        );
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{grid:?}")),
            &kamel,
            |b, k| {
                b.iter(|| {
                    for s in &sparse {
                        std::hint::black_box(k.impute(s));
                    }
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Overhead and failover latency of the `kamel-router` gateway, driven
//! open-loop.
//!
//! Boots two `kamel-server` shards plus a router on loopback over one
//! trained small model and drives each scenario with the
//! coordinated-omission-free generator in `kamel_bench::loadgen` (fixed
//! arrival schedule, latency from intended send time):
//!
//! * **direct** — the schedule against one shard, no router (baseline);
//! * **routed** — the same schedule through the router (single-owner
//!   forwarding, so the delta over direct is the pure gateway overhead);
//! * **failover** — the primary shard killed mid-run: the first request
//!   pays the detection + ejection cost, the rest run on the replica;
//! * **connection_sweep** — a growing keep-alive wall against the
//!   router (capped by fd headroom), measuring the proxy reactor's
//!   connection-table scaling.
//!
//! Writes `BENCH_router.json` at the repo root. Run with
//! `cargo bench --bench bench_router`. Environment knobs:
//! `KAMEL_BENCH_RPS` (default 200), `KAMEL_BENCH_SECONDS` (default 10),
//! `KAMEL_BENCH_FD_HEADROOM` (default 8000).

use kamel::Kamel;
use kamel_bench::loadgen::{self, percentile_us, LoadPlan};
use kamel_bench::{default_kamel_config, City};
use kamel_geo::Trajectory;
use kamel_roadsim::DatasetScale;
use kamel_router::{HealthPolicy, Router, RouterConfig, ShardInfo, ShardMap};
use kamel_server::{Client, ImputeEngine, Server, ServerConfig};
use serde_json::json;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn boot_shard(kamel: &Arc<Kamel>) -> Server {
    let engine = Arc::new(ImputeEngine::new(Arc::clone(kamel)));
    let config = ServerConfig {
        workers: kamel_nn::thread_budget(),
        handlers: 16,
        cache_entries: 0,
        deadline: Duration::from_secs(60),
        ..ServerConfig::default()
    };
    Server::bind("127.0.0.1:0", engine, config).expect("bind shard")
}

fn fleet_map(addrs: &[SocketAddr]) -> ShardMap {
    // cell_deg 1.0: the whole city is one routing cell, so every request
    // is single-owner — the routed-vs-direct delta is pure gateway cost.
    let shards = addrs
        .iter()
        .enumerate()
        .map(|(i, addr)| ShardInfo {
            id: format!("shard-{i}"),
            addr: *addr,
        })
        .collect();
    ShardMap::new(shards, 1.0).expect("map")
}

fn bind_router(addrs: &[SocketAddr], max_connections: usize) -> Router {
    Router::bind(
        "127.0.0.1:0",
        fleet_map(addrs),
        RouterConfig {
            handlers: 16,
            timeout: Duration::from_secs(60),
            health: HealthPolicy {
                eject_after: 1,
                probe_interval: Duration::from_secs(600),
            },
            max_connections,
            ..RouterConfig::default()
        },
    )
    .expect("bind router")
}

fn main() {
    let host = kamel_nn::available_threads();
    let budget = kamel_nn::thread_budget();
    eprintln!("bench_router: host threads = {host}, budget = {budget}");
    let status = if host > 1 {
        "measured"
    } else {
        eprintln!(
            "WARNING: bench_router is running on a single hardware thread; \
             concurrency numbers are NOT representative and the output will \
             carry status \"measured-single-core\"."
        );
        "measured-single-core"
    };
    let rate = env_f64("KAMEL_BENCH_RPS", 200.0);
    let seconds = env_f64("KAMEL_BENCH_SECONDS", 10.0);
    let headroom = env_f64("KAMEL_BENCH_FD_HEADROOM", 8_000.0) as usize;
    let plan = LoadPlan::at_rate(64, rate, seconds);

    let dataset = City::Porto.dataset(DatasetScale::Small);
    let kamel = Kamel::new(default_kamel_config().build());
    kamel.train(&dataset.train);
    let kamel = Arc::new(kamel);
    let sparse: Vec<Trajectory> = dataset
        .test
        .iter()
        .take(40)
        .map(|t| t.sparsify(1_000.0))
        .collect();
    let bodies: Arc<Vec<Vec<u8>>> = Arc::new(
        sparse
            .iter()
            .map(|t| serde_json::to_vec(t).expect("serialize request"))
            .collect(),
    );
    eprintln!("model trained; {} distinct request bodies", bodies.len());

    // Baseline: one shard, no router.
    let direct_shard = boot_shard(&kamel);
    let outcome = loadgen::run(direct_shard.local_addr(), "/v1/impute", &plan, &bodies);
    let direct_p50 = percentile_us(&outcome.latency_us, 0.50);
    let direct = loadgen::summary_json(&plan, &outcome);
    direct_shard.shutdown();
    eprintln!("direct scenario done");

    // Routed: the same schedule through the gateway over two shards.
    let (shard_a, shard_b) = (boot_shard(&kamel), boot_shard(&kamel));
    let shard_addrs = [shard_a.local_addr(), shard_b.local_addr()];
    let owner = {
        let map = fleet_map(&shard_addrs);
        map.owner_order(map.cell_of(sparse[0].points[0].pos))[0]
    };
    let router = bind_router(&shard_addrs, 10_000);
    assert_eq!(router.core().available_shards(), 2, "fleet admitted");
    let outcome = loadgen::run(router.local_addr(), "/v1/impute", &plan, &bodies);
    let routed_p50 = percentile_us(&outcome.latency_us, 0.50);
    let routed = loadgen::summary_json(&plan, &outcome);
    eprintln!("routed scenario done");

    // Failover: kill the primary, then measure. The first request eats
    // detection (connect failure + ejection); the rest run on the replica.
    let mut shards = [Some(shard_a), Some(shard_b)];
    shards[owner].take().unwrap().shutdown();
    let first = {
        let mut c =
            Client::connect(router.local_addr(), Duration::from_secs(60)).expect("connect");
        let t0 = Instant::now();
        let resp = c.post_json("/v1/impute", &bodies[0]).expect("failover request");
        assert_eq!(resp.status, 200, "{}", resp.text());
        t0.elapsed().as_micros() as u64
    };
    let outcome = loadgen::run(router.local_addr(), "/v1/impute", &plan, &bodies);
    let after_failover = loadgen::summary_json(&plan, &outcome);
    let ejections = router
        .core()
        .metrics()
        .shard(owner)
        .ejections
        .load(std::sync::atomic::Ordering::Relaxed);
    eprintln!("failover scenario done ({ejections} ejection)");
    router.shutdown();
    shards[1 - owner].take().unwrap().shutdown();

    // Connection sweep against a fresh router + two fresh shards: the
    // keep-alive wall lives on the router's reactor while the driver
    // pool keeps the same offered rate.
    let mut sweep = Vec::new();
    for level in loadgen::connection_sweep(headroom) {
        let (sa, sb) = (boot_shard(&kamel), boot_shard(&kamel));
        let router = bind_router(&[sa.local_addr(), sb.local_addr()], level + 64);
        let level_plan = LoadPlan::at_rate(level, rate, seconds);
        eprintln!("sweep level: {level} connections");
        let outcome = loadgen::run(router.local_addr(), "/v1/impute", &level_plan, &bodies);
        sweep.push(loadgen::summary_json(&level_plan, &outcome));
        router.shutdown();
        sa.shutdown();
        sb.shutdown();
    }

    let doc = json!({
        "bench": "bench_router",
        "status": status,
        "methodology": "open-loop, coordinated-omission-free: fixed arrival schedule, \
                        latency measured from intended send time (service_us is the \
                        send-to-last-byte time a closed-loop driver would report)",
        "host_threads": host,
        "thread_budget": budget,
        "offered_rps": rate,
        "seconds_per_level": seconds,
        "fd_headroom": headroom,
        "direct": direct,
        "routed": routed,
        "router_overhead_us_p50": routed_p50 as i64 - direct_p50 as i64,
        "failover": {
            "first_request_us": first,
            "ejections": ejections,
            "after": after_failover,
        },
        "connection_sweep": sweep,
    });
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_router.json");
    std::fs::write(path, serde_json::to_string_pretty(&doc).expect("serialize"))
        .expect("write BENCH_router.json");
    println!("{}", serde_json::to_string_pretty(&doc).expect("serialize"));
    println!("wrote {path}");
}

//! Spatial shard-routing keys: mapping trajectories to coarse cells that
//! a scale-out router can assign to backend shards.
//!
//! The pyramid repository ([`crate::partition`]) scales *models* to fine
//! spatial regions; `kamel-router` (the `crates/router` gateway) scales
//! *machines* the same way. The bridge between them is the routing cell:
//! a coarse, fixed-resolution square grid over raw WGS-84 degrees that
//! both the router and every shard can compute **without a trained
//! tokenizer** — routing must work before any model is loaded, and every
//! party must agree on the key by construction (no projection state, no
//! auto-tuned cell size).
//!
//! A trajectory is routed per *gap*: each candidate gap is keyed by the
//! cell of its anchor fix (the gap's earlier endpoint — the point the
//! imputation walk starts from), so a trajectory whose gaps all sit in
//! one shard's territory is forwarded whole, while one that spans
//! territories is split at ownership changes and scatter-gathered.

use kamel_geo::{LatLng, Trajectory};
use kamel_hexgrid::CellId;

/// Default routing-cell edge in degrees (~1.1 km of latitude): coarse
/// enough that a city-scale deployment lands in a handful of cells, fine
/// enough that a multi-region fleet actually spreads load.
pub const DEFAULT_ROUTING_CELL_DEG: f64 = 0.01;

/// The routing cell containing `pos` on a square degree grid with edge
/// `cell_deg`. Pure integer floor on raw degrees — every process that
/// agrees on `cell_deg` agrees on the cell, trained or not.
pub fn routing_cell(pos: LatLng, cell_deg: f64) -> CellId {
    let axis = |v: f64| -> i32 {
        let idx = (v / cell_deg).floor();
        // Clamp instead of wrapping: a degenerate cell at the grid edge
        // still routes deterministically.
        idx.clamp(i32::MIN as f64, i32::MAX as f64) as i32
    };
    CellId::from_coords(axis(pos.lng), axis(pos.lat))
}

/// The routing cell of every gap anchor in `sparse`: entry `i` is the
/// cell of fix `i`, the earlier endpoint of the gap between fixes `i` and
/// `i + 1`. A trajectory with fewer than two fixes has no gaps and
/// returns an empty list (route it by [`routing_cell`] of its only fix,
/// or anywhere when empty — the answer is the echoed input either way).
pub fn gap_anchor_cells(sparse: &Trajectory, cell_deg: f64) -> Vec<CellId> {
    if sparse.points.len() < 2 {
        return Vec::new();
    }
    sparse.points[..sparse.points.len() - 1]
        .iter()
        .map(|p| routing_cell(p.pos, cell_deg))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use kamel_geo::GpsPoint;

    #[test]
    fn cells_floor_toward_negative_infinity() {
        let deg = 0.01;
        // Porto-ish longitudes are negative; floor must not round toward
        // zero or adjacent cells on either side of the meridian collide.
        assert_eq!(
            routing_cell(LatLng::new(41.15, -8.61), deg).coords(),
            (-861, 4115)
        );
        assert_eq!(
            routing_cell(LatLng::new(-0.001, 0.001), deg).coords(),
            (0, -1)
        );
    }

    #[test]
    fn boundary_points_belong_to_the_higher_cell() {
        let deg = 0.01;
        let on_edge = routing_cell(LatLng::new(41.15, -8.61), deg);
        let just_west = routing_cell(LatLng::new(41.15, -8.6100001), deg);
        let just_east = routing_cell(LatLng::new(41.15, -8.6099999), deg);
        assert_eq!(on_edge, just_east, "the edge belongs to the cell east of it");
        assert_ne!(on_edge, just_west);
    }

    #[test]
    fn cell_size_controls_spread() {
        let a = LatLng::new(41.15, -8.61);
        let b = LatLng::new(41.15, -8.58);
        assert_ne!(routing_cell(a, 0.01), routing_cell(b, 0.01));
        assert_eq!(routing_cell(a, 1.0), routing_cell(b, 1.0), "coarse grid unifies a city");
    }

    #[test]
    fn anchor_cells_key_every_gap_by_its_earlier_fix() {
        let traj = Trajectory::new(vec![
            GpsPoint::from_parts(41.15, -8.61, 0.0),
            GpsPoint::from_parts(41.15, -8.605, 10.0),
            GpsPoint::from_parts(41.15, -8.58, 200.0),
        ]);
        let cells = gap_anchor_cells(&traj, 0.01);
        assert_eq!(cells.len(), 2, "one key per gap");
        assert_eq!(cells[0], routing_cell(LatLng::new(41.15, -8.61), 0.01));
        assert_eq!(cells[1], routing_cell(LatLng::new(41.15, -8.605), 0.01));
    }

    #[test]
    fn short_trajectories_have_no_gap_keys() {
        assert!(gap_anchor_cells(&Trajectory::new(Vec::new()), 0.01).is_empty());
        let one = Trajectory::new(vec![GpsPoint::from_parts(41.0, -8.0, 0.0)]);
        assert!(gap_anchor_cells(&one, 0.01).is_empty());
    }
}

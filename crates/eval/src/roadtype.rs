//! Road-type classification for the §8.4 straight-vs-curved experiments.
//!
//! A test-trajectory gap segment is **straight** when the Euclidean
//! distance between its two endpoints matches their road-network distance
//! within a small threshold (the paper uses 5 m on clean data; with
//! simulated GPS noise a slightly larger tolerance keeps the same
//! separation), otherwise it is **curved**. The classifier is the only
//! evaluation component (besides map matching) allowed to see the hidden
//! network.

use crate::metrics::MetricsAccumulator;
use kamel_baselines::TrajectoryImputer;
use kamel_geo::{LocalProjection, Trajectory, Xy};
use kamel_roadsim::{Dataset, RoadNetwork};
use serde::{Deserialize, Serialize};

/// Segment class per §8.4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RoadClass {
    /// Network distance ≈ Euclidean distance.
    Straight,
    /// The road detours relative to the chord.
    Curved,
}

/// Classifies the gap between two planar points.
pub fn classify_gap(net: &RoadNetwork, a: Xy, b: Xy, tolerance_m: f64) -> Option<RoadClass> {
    let euclid = a.dist(&b);
    let network = net.network_distance(a, b)?;
    Some(if (network - euclid).abs() <= tolerance_m {
        RoadClass::Straight
    } else {
        RoadClass::Curved
    })
}

/// Classifies every sparse-gap segment of a trajectory.
pub fn classify_segments(
    net: &RoadNetwork,
    proj: &LocalProjection,
    sparse: &Trajectory,
    tolerance_m: f64,
) -> Vec<Option<RoadClass>> {
    sparse
        .points
        .windows(2)
        .map(|w| classify_gap(net, proj.to_xy(w[0].pos), proj.to_xy(w[1].pos), tolerance_m))
        .collect()
}

/// Per-class accumulators for one technique.
#[derive(Debug, Clone, Copy, Default)]
pub struct RoadTypeMetrics {
    /// Metrics over straight segments.
    pub straight: MetricsAccumulator,
    /// Metrics over curved segments.
    pub curved: MetricsAccumulator,
}

/// Evaluates a technique per road class: each test trajectory is
/// sparsified, each gap classified against the network, and the gap's
/// ground-truth sub-trajectory (by timestamp window) scored against the
/// imputed sub-trajectory.
pub fn evaluate_by_road_type(
    imputer: &dyn TrajectoryImputer,
    dataset: &Dataset,
    max_gap_m: f64,
    delta_m: f64,
    sparse_m: f64,
    tolerance_m: f64,
    limit: usize,
) -> RoadTypeMetrics {
    let proj = dataset.projection();
    let mut out = RoadTypeMetrics::default();
    for gt in dataset
        .test
        .iter()
        .filter(|t| t.len() >= 3)
        .take(if limit == 0 { usize::MAX } else { limit })
    {
        let sparse = gt.sparsify(sparse_m);
        let imputed = imputer.impute(&sparse);
        let classes = classify_segments(&dataset.network, &proj, &sparse, tolerance_m);
        for (w, class) in sparse.points.windows(2).zip(classes) {
            let Some(class) = class else { continue };
            let (t0, t1) = (w[0].t, w[1].t);
            let gt_seg = slice_by_time(gt, t0, t1);
            let imp_seg = slice_by_time(&imputed.trajectory, t0, t1);
            if gt_seg.len() < 2 || imp_seg.len() < 2 {
                continue;
            }
            let acc = match class {
                RoadClass::Straight => &mut out.straight,
                RoadClass::Curved => &mut out.curved,
            };
            acc.add_pair(&gt_seg, &imp_seg, &proj, max_gap_m, delta_m);
            acc.add_failures(1, usize::from(is_straight_line_output(&imp_seg, &proj)));
        }
    }
    out
}

/// Points of `traj` with timestamps in `[t0, t1]` (inclusive).
fn slice_by_time(traj: &Trajectory, t0: f64, t1: f64) -> Trajectory {
    Trajectory::new(
        traj.points
            .iter()
            .filter(|p| p.t >= t0 - 1e-9 && p.t <= t1 + 1e-9)
            .copied()
            .collect(),
    )
}

/// Heuristic failure detector for techniques that don't expose per-segment
/// flags at this granularity: an output segment whose every interior point
/// sits within a few meters of the endpoint chord is a straight-line
/// imputation.
fn is_straight_line_output(seg: &Trajectory, proj: &LocalProjection) -> bool {
    if seg.len() <= 2 {
        return true;
    }
    let a = proj.to_xy(seg.points[0].pos);
    let b = proj.to_xy(seg.points[seg.len() - 1].pos);
    seg.points[1..seg.len() - 1].iter().all(|p| {
        kamel_geo::polyline::point_to_segment_distance(proj.to_xy(p.pos), a, b) < 3.0
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use kamel_roadsim::{generate_city, CityConfig};

    fn grid_net() -> RoadNetwork {
        generate_city(&CityConfig {
            cols: 8,
            rows: 8,
            spacing_m: 150.0,
            jitter_m: 0.0,
            street_removal_prob: 0.0,
            diagonals: 0,
            roundabouts: 0,
            ring_road: false,
            overpass: false,
            seed: 3,
        })
    }

    #[test]
    fn straight_along_a_street() {
        let net = grid_net();
        let class = classify_gap(&net, Xy::new(0.0, 0.0), Xy::new(600.0, 0.0), 15.0);
        assert_eq!(class, Some(RoadClass::Straight));
    }

    #[test]
    fn curved_around_a_corner() {
        let net = grid_net();
        // Diagonal endpoints: network must go around the block (~2x chord).
        let class = classify_gap(&net, Xy::new(0.0, 0.0), Xy::new(600.0, 600.0), 15.0);
        assert_eq!(class, Some(RoadClass::Curved));
    }

    #[test]
    fn disconnected_points_unclassified() {
        let net = RoadNetwork::new();
        assert_eq!(classify_gap(&net, Xy::new(0.0, 0.0), Xy::new(1.0, 1.0), 5.0), None);
    }

    #[test]
    fn straight_line_detector() {
        use kamel_geo::{GpsPoint, LatLng};
        let proj = LocalProjection::new(LatLng::new(41.15, -8.61));
        let straight = Trajectory::new(
            (0..5)
                .map(|i| GpsPoint::new(proj.to_latlng(Xy::new(i as f64 * 100.0, 0.0)), i as f64))
                .collect(),
        );
        assert!(is_straight_line_output(&straight, &proj));
        let mut curved = straight.clone();
        curved.points[2] = GpsPoint::new(proj.to_latlng(Xy::new(200.0, 80.0)), 2.0);
        assert!(!is_straight_line_output(&curved, &proj));
    }
}

//! Transformer encoder blocks (post-LayerNorm, as in the original BERT).
//!
//! One block is: `h = LN1(x + Attn(x))`, `out = LN2(h + FFN(h))` with a
//! GELU feed-forward network.

use crate::attention::{AttnCache, MultiHeadAttention};
use crate::layers::{gelu_backward, gelu_forward, LayerNorm, Linear, LnCache, Param};
use crate::matrix::Matrix;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// One transformer encoder layer.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EncoderLayer {
    /// Self-attention sub-block.
    pub attn: MultiHeadAttention,
    /// First feed-forward projection `[hidden, ff]`.
    pub ff1: Linear,
    /// Second feed-forward projection `[ff, hidden]`.
    pub ff2: Linear,
    /// LayerNorm after the attention residual.
    pub ln1: LayerNorm,
    /// LayerNorm after the feed-forward residual.
    pub ln2: LayerNorm,
}

/// Forward-pass state for one encoder layer.
#[derive(Debug, Clone)]
pub struct EncoderCache {
    attn: AttnCache,
    ln1: LnCache,
    /// LN1 output (input of the FFN).
    h: Matrix,
    /// FF1 pre-activation.
    ff_pre: Matrix,
    /// GELU output (input of ff2).
    ff_act: Matrix,
    ln2: LnCache,
}

impl EncoderLayer {
    /// Creates a layer with the given hidden width, head count, and
    /// feed-forward width.
    pub fn new(hidden: usize, heads: usize, ff: usize, rng: &mut impl Rng) -> Self {
        Self {
            attn: MultiHeadAttention::new(hidden, heads, rng),
            ff1: Linear::new(hidden, ff, rng),
            ff2: Linear::new(ff, hidden, rng),
            ln1: LayerNorm::new(hidden),
            ln2: LayerNorm::new(hidden),
        }
    }

    /// Forward pass over `x: [n, hidden]` with an optional validity mask.
    pub fn forward(&self, x: &Matrix, valid: Option<&[bool]>) -> (Matrix, EncoderCache) {
        let (attn_out, attn_cache) = self.attn.forward(x, valid);
        let mut res1 = x.clone();
        res1.add_assign(&attn_out);
        let (h, ln1_cache) = self.ln1.forward(&res1);
        let ff_pre = self.ff1.forward(&h);
        let ff_act = gelu_forward(&ff_pre);
        let ff_out = self.ff2.forward(&ff_act);
        let mut res2 = h.clone();
        res2.add_assign(&ff_out);
        let (out, ln2_cache) = self.ln2.forward(&res2);
        (
            out,
            EncoderCache {
                attn: attn_cache,
                ln1: ln1_cache,
                h,
                ff_pre,
                ff_act,
                ln2: ln2_cache,
            },
        )
    }

    /// Backward pass; accumulates all gradients and returns dx.
    pub fn backward(&mut self, cache: &EncoderCache, dy: &Matrix) -> Matrix {
        // Through LN2 into the second residual sum (h + ff_out).
        let dres2 = self.ln2.backward(&cache.ln2, dy);
        // FFN branch.
        let dff_act = self.ff2.backward(&cache.ff_act, &dres2);
        let dff_pre = gelu_backward(&cache.ff_pre, &dff_act);
        let mut dh = self.ff1.backward(&cache.h, &dff_pre);
        // Residual branch adds straight through.
        dh.add_assign(&dres2);
        // Through LN1 into the first residual sum (x + attn_out).
        let dres1 = self.ln1.backward(&cache.ln1, &dh);
        // Attention branch.
        let mut dx = self.attn.backward(&cache.attn, &dres1);
        dx.add_assign(&dres1);
        dx
    }

    /// All trainable parameters of this layer.
    pub fn params(&mut self) -> Vec<&mut Param> {
        let mut out = self.attn.params();
        out.extend(self.ff1.params());
        out.extend(self.ff2.params());
        out.push(&mut self.ln1.gamma);
        out.push(&mut self.ln1.beta);
        out.push(&mut self.ln2.gamma);
        out.push(&mut self.ln2.beta);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn forward_shape_preserved() {
        let mut rng = ChaCha8Rng::seed_from_u64(10);
        let layer = EncoderLayer::new(8, 2, 16, &mut rng);
        let x = Matrix::randn(6, 8, 1.0, &mut rng);
        let (y, _) = layer.forward(&x, None);
        assert_eq!((y.rows(), y.cols()), (6, 8));
        assert!(y.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let mut layer = EncoderLayer::new(4, 2, 8, &mut rng);
        let x = Matrix::randn(3, 4, 0.5, &mut rng);
        let upstream = Matrix::from_fn(3, 4, |r, c| if (r + c) % 2 == 0 { 1.0 } else { -0.5 });
        let (_, cache) = layer.forward(&x, None);
        let dx = layer.backward(&cache, &upstream);
        let eval = layer.clone();
        let loss = |xm: &Matrix| {
            let (y, _) = eval.forward(xm, None);
            y.frobenius_dot(&upstream)
        };
        for (r, c) in [(0, 0), (1, 1), (2, 3)] {
            let eps = 1e-2;
            let mut x2 = x.clone();
            let orig = x2.get(r, c);
            x2.set(r, c, orig + eps);
            let up = loss(&x2);
            x2.set(r, c, orig - eps);
            let down = loss(&x2);
            let num = (up - down) / (2.0 * eps);
            let got = dx.get(r, c);
            // Tolerance is loose: two LayerNorms amplify fp32 noise through
            // the double residual path.
            assert!((num - got).abs() < 5e-2, "dx[{r},{c}] num {num} got {got}");
        }
    }

    #[test]
    fn param_count_is_complete() {
        let mut rng = ChaCha8Rng::seed_from_u64(12);
        let mut layer = EncoderLayer::new(8, 2, 16, &mut rng);
        // 4 attention linears (w+b) + 2 ffn linears (w+b) + 2 LN (γ+β)
        assert_eq!(layer.params().len(), 8 + 4 + 4);
    }
}

//! Trajectory CSV reading and writing.
//!
//! Format: one GPS fix per row, `traj_id,lat,lng,t`. Rows must be grouped
//! by trajectory id (all fixes of one trajectory contiguous), fixes in time
//! order — the natural shape of exported trip logs. A header row is
//! detected and skipped automatically.

use kamel_geo::{GpsPoint, Trajectory};
use std::io::{BufRead, Write};

/// Reads trajectories from CSV. Rows with the same contiguous `traj_id`
/// form one trajectory.
pub fn read_trajectories(reader: impl BufRead) -> Result<Vec<Trajectory>, String> {
    let mut out: Vec<Trajectory> = Vec::new();
    let mut current_id: Option<String> = None;
    let mut current: Vec<GpsPoint> = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| format!("line {}: {e}", lineno + 1))?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let fields: Vec<&str> = trimmed.split(',').map(str::trim).collect();
        if fields.len() != 4 {
            return Err(format!(
                "line {}: expected 4 fields `traj_id,lat,lng,t`, got {}",
                lineno + 1,
                fields.len()
            ));
        }
        // Header detection: non-numeric lat field on the first row.
        if lineno == 0 && fields[1].parse::<f64>().is_err() {
            continue;
        }
        let parse = |i: usize, name: &str| -> Result<f64, String> {
            fields[i]
                .parse::<f64>()
                .map_err(|_| format!("line {}: bad {name} `{}`", lineno + 1, fields[i]))
        };
        let (lat, lng, t) = (parse(1, "lat")?, parse(2, "lng")?, parse(3, "t")?);
        if current_id.as_deref() != Some(fields[0]) {
            if !current.is_empty() {
                out.push(Trajectory::new(std::mem::take(&mut current)));
            }
            current_id = Some(fields[0].to_string());
        }
        current.push(GpsPoint::from_parts(lat, lng, t));
    }
    if !current.is_empty() {
        out.push(Trajectory::new(current));
    }
    Ok(out)
}

/// Writes trajectories as CSV with a header, ids `0..n`.
pub fn write_trajectories(
    writer: &mut impl Write,
    trajectories: &[Trajectory],
) -> Result<(), String> {
    writeln!(writer, "traj_id,lat,lng,t").map_err(|e| e.to_string())?;
    for (id, traj) in trajectories.iter().enumerate() {
        for p in &traj.points {
            writeln!(writer, "{id},{:.7},{:.7},{:.3}", p.pos.lat, p.pos.lng, p.t)
                .map_err(|e| e.to_string())?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn roundtrip_preserves_structure() {
        let trajs = vec![
            Trajectory::new(vec![
                GpsPoint::from_parts(41.15, -8.61, 0.0),
                GpsPoint::from_parts(41.151, -8.609, 10.0),
            ]),
            Trajectory::new(vec![GpsPoint::from_parts(41.2, -8.5, 5.0)]),
        ];
        let mut buf = Vec::new();
        write_trajectories(&mut buf, &trajs).unwrap();
        let back = read_trajectories(BufReader::new(buf.as_slice())).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].len(), 2);
        assert_eq!(back[1].len(), 1);
        assert!((back[0].points[1].pos.lat - 41.151).abs() < 1e-6);
        assert!((back[0].points[1].t - 10.0).abs() < 1e-6);
    }

    #[test]
    fn header_is_skipped() {
        let csv = "traj_id,lat,lng,t\n7,41.0,-8.0,0\n7,41.1,-8.1,10\n";
        let trajs = read_trajectories(BufReader::new(csv.as_bytes())).unwrap();
        assert_eq!(trajs.len(), 1);
        assert_eq!(trajs[0].len(), 2);
    }

    #[test]
    fn headerless_input_is_accepted() {
        let csv = "a,41.0,-8.0,0\na,41.1,-8.1,10\nb,42.0,-8.0,0\n";
        let trajs = read_trajectories(BufReader::new(csv.as_bytes())).unwrap();
        assert_eq!(trajs.len(), 2);
    }

    #[test]
    fn malformed_rows_are_rejected_with_line_numbers() {
        let bad_fields = "a,41.0,-8.0\n";
        let err = read_trajectories(BufReader::new(bad_fields.as_bytes())).unwrap_err();
        assert!(err.contains("line 1"), "{err}");
        let bad_number = "traj_id,lat,lng,t\na,not_a_lat,-8.0,0\n";
        let err = read_trajectories(BufReader::new(bad_number.as_bytes())).unwrap_err();
        assert!(err.contains("line 2") && err.contains("lat"), "{err}");
    }

    #[test]
    fn blank_lines_are_ignored() {
        let csv = "a,41.0,-8.0,0\n\n\na,41.1,-8.1,10\n";
        let trajs = read_trajectories(BufReader::new(csv.as_bytes())).unwrap();
        assert_eq!(trajs.len(), 1);
        assert_eq!(trajs[0].len(), 2);
    }
}

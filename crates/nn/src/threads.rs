//! Process-wide thread budget for the parallel execution layer.
//!
//! KAMEL's compute tiers — matmul kernels, per-cell pyramid training, and
//! batch imputation — all draw worker threads from one process-wide budget
//! so that nested parallelism cannot oversubscribe the host. The budget
//! resolves in priority order:
//!
//! 1. an explicit [`set_thread_budget`] call (e.g. from `KamelConfig`'s
//!    `threads` knob or the CLI's `--threads` flag),
//! 2. the `KAMEL_THREADS` environment variable,
//! 3. [`std::thread::available_parallelism`].
//!
//! The budget only controls *how many* workers run; every parallel code
//! path in this workspace is bit-identical to its sequential counterpart,
//! so the budget never affects results (asserted by the property tests in
//! `crates/nn/tests/properties.rs` and `tests/parallel_determinism.rs`).

use std::sync::atomic::{AtomicUsize, Ordering};

/// Environment variable consulted when no explicit budget has been set.
pub const THREADS_ENV: &str = "KAMEL_THREADS";

/// 0 means "not resolved yet"; any positive value is the active budget.
static BUDGET: AtomicUsize = AtomicUsize::new(0);

/// The number of hardware threads the host reports (at least 1).
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// How a raw `KAMEL_THREADS` value resolved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EnvBudget {
    /// The variable is not set: use hardware parallelism.
    Unset,
    /// A valid positive thread count.
    Threads(usize),
    /// The variable is set but unusable (empty, `0`, non-numeric, or out
    /// of range). Carries the warning to surface; the budget falls back to
    /// hardware parallelism rather than silently misconfiguring the pool.
    Invalid(String),
}

/// Interprets a raw `KAMEL_THREADS` value (`None` = unset).
///
/// `0` is explicitly rejected rather than treated as "auto": an operator
/// writing `KAMEL_THREADS=0` most likely expected either an error or
/// single-threaded execution, and silently picking either guess hides the
/// misconfiguration. The warning states the fallback that applies.
pub fn parse_thread_env(raw: Option<&str>) -> EnvBudget {
    let Some(raw) = raw else {
        return EnvBudget::Unset;
    };
    let trimmed = raw.trim();
    if trimmed.is_empty() {
        return EnvBudget::Invalid(format!(
            "{THREADS_ENV} is set but empty; falling back to all hardware threads"
        ));
    }
    match trimmed.parse::<usize>() {
        Ok(0) => EnvBudget::Invalid(format!(
            "{THREADS_ENV}=0 is not a valid budget (need >= 1); \
             falling back to all hardware threads"
        )),
        Ok(n) => EnvBudget::Threads(n),
        Err(_) => EnvBudget::Invalid(format!(
            "{THREADS_ENV}=`{trimmed}` is not a number; \
             falling back to all hardware threads"
        )),
    }
}

/// The active thread budget, resolving and caching the default on first
/// use (see the module docs for the resolution order). Always at least 1.
/// An unusable `KAMEL_THREADS` value is reported on stderr once and then
/// ignored in favour of hardware parallelism.
pub fn thread_budget() -> usize {
    let cached = BUDGET.load(Ordering::Relaxed);
    if cached != 0 {
        return cached;
    }
    let env = std::env::var(THREADS_ENV).ok();
    let resolved = match parse_thread_env(env.as_deref()) {
        EnvBudget::Threads(n) => n,
        EnvBudget::Unset => available_threads(),
        EnvBudget::Invalid(warning) => {
            eprintln!("warning: {warning}");
            available_threads()
        }
    };
    BUDGET.store(resolved, Ordering::Relaxed);
    resolved
}

/// Overrides the process-wide thread budget. Values are clamped to at
/// least 1. Safe to call at any time; only execution parallelism changes,
/// never results.
pub fn set_thread_budget(threads: usize) {
    BUDGET.store(threads.max(1), Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_is_positive_and_settable() {
        assert!(thread_budget() >= 1);
        let before = thread_budget();
        set_thread_budget(3);
        assert_eq!(thread_budget(), 3);
        set_thread_budget(0); // clamped
        assert_eq!(thread_budget(), 1);
        set_thread_budget(before);
        assert_eq!(thread_budget(), before);
    }

    #[test]
    fn available_threads_is_positive() {
        assert!(available_threads() >= 1);
    }

    #[test]
    fn env_parsing_accepts_positive_counts() {
        assert_eq!(parse_thread_env(None), EnvBudget::Unset);
        assert_eq!(parse_thread_env(Some("4")), EnvBudget::Threads(4));
        assert_eq!(parse_thread_env(Some(" 8 \n")), EnvBudget::Threads(8));
        assert_eq!(parse_thread_env(Some("1")), EnvBudget::Threads(1));
    }

    #[test]
    fn env_parsing_rejects_zero() {
        let EnvBudget::Invalid(warning) = parse_thread_env(Some("0")) else {
            panic!("0 must be invalid");
        };
        assert!(warning.contains("KAMEL_THREADS=0"), "{warning}");
        assert!(warning.contains("falling back"), "{warning}");
    }

    #[test]
    fn env_parsing_rejects_empty_values() {
        for raw in ["", "   ", "\t\n"] {
            let EnvBudget::Invalid(warning) = parse_thread_env(Some(raw)) else {
                panic!("`{raw}` must be invalid");
            };
            assert!(warning.contains("empty"), "{warning}");
        }
    }

    #[test]
    fn env_parsing_rejects_non_numeric_values() {
        for raw in ["banana", "-2", "1.5", "4threads", "999999999999999999999999"] {
            let EnvBudget::Invalid(warning) = parse_thread_env(Some(raw)) else {
                panic!("`{raw}` must be invalid");
            };
            assert!(warning.contains("not a number"), "{warning}");
        }
    }
}

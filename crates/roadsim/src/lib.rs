//! Synthetic road network and GPS trajectory simulator.
//!
//! Substitutes for the paper's Porto and Jakarta datasets (DESIGN.md §2,
//! substitution 1). The simulator generates:
//!
//! * a hidden [`network::RoadNetwork`] — grid streets with jitter, diagonal
//!   avenues, roundabouts, curved ring roads, and an overpass motif (the
//!   road cases of the paper's Figure 5);
//! * realistic trips over it ([`trips`]) — shortest-path routes driven at a
//!   noisy speed, sampled at a configurable GPS period with position noise;
//! * packaged [`dataset::Dataset`]s with the paper's 80/20 train/test split
//!   and `porto_like` / `jakarta_like` presets matching the structural
//!   contrasts the evaluation leans on (many short vs. few long
//!   trajectories).
//!
//! The network is **never** exposed to KAMEL or TrImpute — only to the map
//! matching reference and the road-type classifier, mirroring the paper's
//! no-map evaluation setting.

#![warn(missing_docs)]

pub mod citygen;
pub mod dataset;
pub mod geojson;
pub mod network;
pub mod stats;
pub mod trips;

pub use citygen::{generate_city, CityConfig};
pub use dataset::{Dataset, DatasetScale};
pub use geojson::{network_to_geojson, trajectories_to_geojson};
pub use network::RoadNetwork;
pub use stats::{coverage, CoverageStats};
pub use trips::{generate_trips, TripConfig};

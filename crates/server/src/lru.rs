//! A fixed-capacity LRU map for the online imputation cache.
//!
//! Implemented as a slab of doubly-linked entries plus a `HashMap` from key
//! to slab slot, so `get`/`insert` are O(1) and nothing is allocated per
//! touch. The cache keeps its own hit/miss counters because the serving
//! metrics report a cache hit rate over the process lifetime, not just the
//! currently-resident entries.

use std::collections::HashMap;
use std::hash::Hash;

const NIL: usize = usize::MAX;

struct Entry<K, V> {
    key: K,
    value: V,
    prev: usize,
    next: usize,
}

/// A least-recently-used cache with `get`/`insert` in O(1).
pub struct LruCache<K, V> {
    capacity: usize,
    map: HashMap<K, usize>,
    slab: Vec<Entry<K, V>>,
    /// Most recently used slot.
    head: usize,
    /// Least recently used slot.
    tail: usize,
    /// Slots freed by eviction, reusable by the next insert.
    free: Vec<usize>,
    hits: u64,
    misses: u64,
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    /// Creates a cache holding at most `capacity` entries. A capacity of 0
    /// disables the cache: every lookup misses and inserts are dropped.
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            map: HashMap::with_capacity(capacity.min(4096)),
            slab: Vec::with_capacity(capacity.min(4096)),
            head: NIL,
            tail: NIL,
            free: Vec::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is resident.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Lifetime (hits, misses) counts over all lookups.
    pub fn counters(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Drops every resident entry (e.g. after a model reload invalidates
    /// all cached responses). Lifetime counters are preserved.
    pub fn clear(&mut self) {
        self.map.clear();
        self.slab.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
    }

    /// Looks up `key`, marking the entry most-recently-used on a hit.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        match self.map.get(key).copied() {
            Some(slot) => {
                self.hits += 1;
                self.detach(slot);
                self.attach_front(slot);
                Some(&self.slab[slot].value)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts `key → value`, evicting the least-recently-used entry when
    /// at capacity. Replacing an existing key refreshes its recency.
    pub fn insert(&mut self, key: K, value: V) {
        if self.capacity == 0 {
            return;
        }
        if let Some(slot) = self.map.get(&key).copied() {
            self.slab[slot].value = value;
            self.detach(slot);
            self.attach_front(slot);
            return;
        }
        if self.map.len() >= self.capacity {
            let lru = self.tail;
            debug_assert_ne!(lru, NIL, "non-empty cache has a tail");
            self.detach(lru);
            self.map.remove(&self.slab[lru].key.clone());
            self.free.push(lru);
        }
        let entry = Entry {
            key: key.clone(),
            value,
            prev: NIL,
            next: NIL,
        };
        let slot = match self.free.pop() {
            Some(slot) => {
                self.slab[slot] = entry;
                slot
            }
            None => {
                self.slab.push(entry);
                self.slab.len() - 1
            }
        };
        self.map.insert(key, slot);
        self.attach_front(slot);
    }

    /// Unlinks `slot` from the recency list.
    fn detach(&mut self, slot: usize) {
        let (prev, next) = (self.slab[slot].prev, self.slab[slot].next);
        match prev {
            NIL => self.head = next,
            p => self.slab[p].next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.slab[n].prev = prev,
        }
        self.slab[slot].prev = NIL;
        self.slab[slot].next = NIL;
    }

    /// Links `slot` in as the most-recently-used entry.
    fn attach_front(&mut self, slot: usize) {
        self.slab[slot].prev = NIL;
        self.slab[slot].next = self.head;
        match self.head {
            NIL => self.tail = slot,
            h => self.slab[h].prev = slot,
        }
        self.head = slot;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_miss_and_counters() {
        let mut c: LruCache<u32, &str> = LruCache::new(2);
        assert_eq!(c.get(&1), None);
        c.insert(1, "a");
        assert_eq!(c.get(&1), Some(&"a"));
        assert_eq!(c.counters(), (1, 1));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c: LruCache<u32, u32> = LruCache::new(2);
        c.insert(1, 10);
        c.insert(2, 20);
        // Touch 1 so 2 becomes the LRU entry.
        assert_eq!(c.get(&1), Some(&10));
        c.insert(3, 30);
        assert_eq!(c.get(&2), None, "2 was evicted");
        assert_eq!(c.get(&1), Some(&10));
        assert_eq!(c.get(&3), Some(&30));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn reinsert_refreshes_value_and_recency() {
        let mut c: LruCache<u32, u32> = LruCache::new(2);
        c.insert(1, 10);
        c.insert(2, 20);
        c.insert(1, 11); // refresh: 2 is now LRU
        c.insert(3, 30);
        assert_eq!(c.get(&1), Some(&11));
        assert_eq!(c.get(&2), None);
    }

    #[test]
    fn zero_capacity_disables_the_cache() {
        let mut c: LruCache<u32, u32> = LruCache::new(0);
        c.insert(1, 10);
        assert_eq!(c.get(&1), None);
        assert!(c.is_empty());
        assert_eq!(c.counters(), (0, 1));
    }

    #[test]
    fn capacity_one_churns_correctly() {
        let mut c: LruCache<u32, u32> = LruCache::new(1);
        for i in 0..100 {
            c.insert(i, i * 2);
            assert_eq!(c.get(&i), Some(&(i * 2)));
            if i > 0 {
                assert_eq!(c.get(&(i - 1)), None);
            }
        }
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn clear_drops_entries_but_keeps_counters() {
        let mut c: LruCache<u32, u32> = LruCache::new(4);
        c.insert(1, 10);
        c.insert(2, 20);
        assert_eq!(c.get(&1), Some(&10));
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.get(&1), None);
        assert_eq!(c.counters(), (1, 1), "lifetime counters survive clear");
        // The cache is fully usable after a clear.
        c.insert(3, 30);
        assert_eq!(c.get(&3), Some(&30));
    }

    #[test]
    fn eviction_reuses_slab_slots() {
        let mut c: LruCache<u32, u32> = LruCache::new(3);
        for i in 0..1000 {
            c.insert(i, i);
        }
        assert_eq!(c.len(), 3);
        assert!(c.slab.len() <= 4, "slab grew past capacity: {}", c.slab.len());
        for i in 997..1000 {
            assert_eq!(c.get(&i), Some(&i));
        }
    }
}

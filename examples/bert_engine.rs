//! The paper's engine end to end: KAMEL with the from-scratch BERT.
//!
//! ```text
//! cargo run --release --example bert_engine
//! ```
//!
//! Trains a tiny BERT (own tensors, attention, Adam — no ML dependency) on
//! a two-street mini-city, compares its masked-prediction quality against
//! the n-gram engine, then imputes the same gap with both engines.

use kamel::{Kamel, KamelConfig};
use kamel_geo::{GpsPoint, Trajectory};
use kamel_lm::{masked_quality, BertEngineConfig, EngineConfig, NgramConfig};

/// Trips over an L-shaped route: east along lat 41.15, then north.
fn l_route(n: usize) -> Vec<Trajectory> {
    (0..n)
        .map(|_| {
            let mut pts = Vec::with_capacity(30);
            for i in 0..15 {
                pts.push(GpsPoint::from_parts(
                    41.15,
                    -8.61 + i as f64 * 0.001,
                    i as f64 * 10.0,
                ));
            }
            for j in 1..15 {
                pts.push(GpsPoint::from_parts(
                    41.15 + j as f64 * 0.0008,
                    -8.596,
                    (14 + j) as f64 * 10.0,
                ));
            }
            Trajectory::new(pts)
        })
        .collect()
}

fn engine_demo(label: &str, engine: EngineConfig, corpus: &[Trajectory], sparse: &Trajectory) {
    let kamel = Kamel::new(
        KamelConfig::builder()
            .pyramid_height(1)
            .pyramid_maintained(1)
            .model_threshold_k(40)
            .engine(engine)
            .build(),
    );
    let start = std::time::Instant::now();
    kamel.train(corpus);
    let train_s = start.elapsed().as_secs_f64();
    let out = kamel.impute(sparse);
    println!(
        "{label:<8} train {train_s:>6.2}s | imputed {} points over {} gaps, \
         {} model calls, failure rate {}",
        out.imputed_points(),
        out.gaps.len(),
        out.model_calls(),
        out.failure_rate()
            .map_or("n/a".into(), |f| format!("{f:.2}")),
    );
}

fn main() {
    let corpus = l_route(40);
    println!(
        "corpus: {} trajectories x {} points over an L-shaped route",
        corpus.len(),
        corpus[0].len()
    );

    // Intrinsic engine quality on held-out sentences (token-level).
    let tokenizer = kamel::Tokenizer::hex(corpus[0].points[0].pos, 75.0);
    let sentences: Vec<Vec<u64>> = corpus
        .iter()
        .map(|t| tokenizer.sentence(t).iter().map(|c| c.0).collect())
        .collect();
    let (train_s, held) = sentences.split_at(sentences.len() - 5);
    let bert = EngineConfig::Bert(BertEngineConfig::for_tests()).train(train_s);
    let ngram = EngineConfig::Ngram(NgramConfig::default()).train(train_s);
    let qb = masked_quality(&bert, held, 5);
    let qn = masked_quality(&ngram, held, 5);
    println!(
        "masked-prediction quality (held-out): BERT top1 {:.2} ppl {:.1} | n-gram top1 {:.2} ppl {:.1}",
        qb.top1_accuracy, qb.perplexity, qn.top1_accuracy, qn.perplexity
    );

    // Full-system imputation with each engine on the same sparse input.
    let sparse = corpus[0].sparsify(900.0);
    println!(
        "\nimputing a sparsified route ({} -> {} points):",
        corpus[0].len(),
        sparse.len()
    );
    engine_demo(
        "BERT",
        EngineConfig::Bert(BertEngineConfig::for_tests()),
        &corpus,
        &sparse,
    );
    engine_demo(
        "n-gram",
        EngineConfig::Ngram(NgramConfig::default()),
        &corpus,
        &sparse,
    );
    println!(
        "\nBoth engines sit behind the same MaskedTokenModel trait; the paper's\n\
         TPU-scale deployment swaps BertScale::Paper in place of the tiny config."
    );
}

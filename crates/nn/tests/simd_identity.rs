//! Bit-identity proptests for the SIMD backends.
//!
//! The contract (see `kamel_nn::simd`): every backend performs the same
//! floating-point operations in the same order as the scalar reference,
//! so outputs are **bit-identical** — not merely close — across backends,
//! for every kernel, every tail length, and every thread budget. These
//! tests sweep each supported backend against scalar and compare raw
//! bits.
//!
//! Backend selection is process-global, so every test that switches it
//! holds one shared lock; the integer/float kernels themselves are pure.

use std::sync::Mutex;

use kamel_nn::layers::{gelu_forward_into, softmax_slice, LayerNorm};
use kamel_nn::simd::{self, Backend};
use kamel_nn::Matrix;
use proptest::prelude::*;

/// Serializes backend switching across concurrently running tests.
static BACKEND_LOCK: Mutex<()> = Mutex::new(());

/// Runs `f` once per supported backend (scalar always first) and returns
/// the labelled results, restoring the previously active backend.
fn across_backends<T>(mut f: impl FnMut() -> T) -> Vec<(Backend, T)> {
    let _guard = BACKEND_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let before = simd::backend();
    let out = simd::supported_backends()
        .into_iter()
        .map(|b| {
            simd::set_backend(b).unwrap();
            (b, f())
        })
        .collect();
    simd::set_backend(before).unwrap();
    out
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Lengths that cross the 8-lane (and the AVX2 int8 16-lane) strides,
/// plus ragged tails.
fn len_strategy() -> impl Strategy<Value = usize> {
    prop_oneof![Just(0usize), Just(1), Just(7), Just(8), Just(9), Just(15), Just(16), Just(17), 1usize..70]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Reductions: dot, sum, sum-of-squared-diffs, max.
    #[test]
    fn reductions_are_bit_identical(len in len_strategy(), seed in any::<u64>()) {
        let gen = |salt: u64| -> Vec<f32> {
            (0..len)
                .map(|i| {
                    let h = seed
                        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                        .wrapping_add(salt + i as u64);
                    ((h % 2000) as f32 - 1000.0) / 250.0
                })
                .collect()
        };
        let (a, b) = (gen(1), gen(2));
        let mean = if len == 0 { 0.0 } else { a.iter().sum::<f32>() / len as f32 };
        let results = across_backends(|| {
            (
                simd::dot(&a, &b).to_bits(),
                simd::sum(&a).to_bits(),
                simd::sum_sq_diff(&a, mean).to_bits(),
                simd::max(&a).to_bits(),
            )
        });
        let (_, reference) = results[0];
        for (backend, got) in &results {
            prop_assert_eq!(*got, reference, "{} diverged from scalar", backend.name());
        }
    }

    /// Element-wise kernels: axpy, add, add_assign, scale, GELU, the
    /// LayerNorm affine step.
    #[test]
    fn elementwise_kernels_are_bit_identical(
        len in len_strategy(),
        a in -3.0f32..3.0,
        data in proptest::collection::vec(-5.0f32..5.0, 0..70),
    ) {
        let x: Vec<f32> = if data.is_empty() {
            vec![0.25f32; len]
        } else {
            data.iter().cycle().cloned().take(len).collect()
        };
        let y: Vec<f32> = x.iter().map(|v| v * 0.5 - 1.0).collect();
        let results = across_backends(|| {
            let mut axpy_out = y.clone();
            simd::axpy(&mut axpy_out, a, &x);
            let mut addassign_out = y.clone();
            simd::add_assign(&mut addassign_out, &x);
            let mut add_out = vec![0.0f32; len];
            simd::add(&x, &y, &mut add_out);
            let mut scale_out = x.clone();
            simd::scale(&mut scale_out, a);
            let mut gelu_out = vec![0.0f32; len];
            simd::gelu_map(&x, &mut gelu_out);
            let gamma: Vec<f32> = (0..len).map(|i| 0.5 + i as f32 * 0.01).collect();
            let beta: Vec<f32> = (0..len).map(|i| -0.2 + i as f32 * 0.02).collect();
            let mut ln_out = vec![0.0f32; len];
            simd::ln_affine(&x, 0.1, 1.3, &gamma, &beta, &mut ln_out);
            (
                bits(&axpy_out),
                bits(&addassign_out),
                bits(&add_out),
                bits(&scale_out),
                bits(&gelu_out),
                bits(&ln_out),
            )
        });
        let reference = results[0].1.clone();
        for (backend, got) in &results {
            prop_assert_eq!(got, &reference, "{} diverged from scalar", backend.name());
        }
    }

    /// The softmax core (`exp_sum`): the SIMD-reproducible `exp` sequence
    /// plus the canonical 8-lane sum, across clamp-range inputs (deeply
    /// negative logits hit the `exp` underflow clamp).
    #[test]
    fn exp_sum_is_bit_identical(
        len in len_strategy(),
        data in proptest::collection::vec(-120.0f32..25.0, 0..70),
    ) {
        let base: Vec<f32> = (0..len)
            .map(|i| data.get(i % data.len().max(1)).copied().unwrap_or(0.5))
            .collect();
        let max = simd::max(&base);
        let max = if max.is_finite() { max } else { 0.0 };
        let results = across_backends(|| {
            let mut row = base.clone();
            let s = simd::exp_sum(&mut row, max);
            (s.to_bits(), bits(&row))
        });
        let reference = results[0].1.clone();
        for (backend, got) in &results {
            prop_assert_eq!(got, &reference, "{} diverged from scalar", backend.name());
        }
    }

    /// The fused 4-row int8 matvec step equals four plain int8 dots on
    /// every backend (exact integer arithmetic).
    #[test]
    fn dot_i8x4_matches_four_dots(
        k in len_strategy(),
        codes in proptest::collection::vec(-127i8..=127, 0..70),
    ) {
        let a: Vec<i8> = (0..k)
            .map(|i| codes.get(i % codes.len().max(1)).copied().unwrap_or(-127))
            .collect();
        let w: Vec<i8> = (0..4 * k)
            .map(|i| codes.get((i * 7 + 3) % codes.len().max(1)).copied().unwrap_or(127))
            .collect();
        let results = across_backends(|| simd::dot_i8x4(&a, &w));
        for (backend, got) in results {
            for t in 0..4 {
                let expect: i32 = a
                    .iter()
                    .zip(&w[t * k..(t + 1) * k])
                    .map(|(&x, &y)| x as i32 * y as i32)
                    .sum();
                prop_assert_eq!(got[t], expect, "{} row {} diverged", backend.name(), t);
            }
        }
    }

    /// Activation quantization (`abs_max_finite` + `quantize_i8`): scale
    /// and codes are bit-identical across backends, including values that
    /// land exactly on rounding ties.
    #[test]
    fn quantization_is_bit_identical(
        len in len_strategy(),
        data in proptest::collection::vec(-6.0f32..6.0, 0..70),
    ) {
        let row: Vec<f32> = (0..len)
            .map(|i| data.get(i % data.len().max(1)).copied().unwrap_or(0.75))
            .collect();
        let results = across_backends(|| {
            let (amax, finite) = simd::abs_max_finite(&row);
            let mut codes = vec![0i8; len];
            if amax > 0.0 {
                simd::quantize_i8(&row, 127.0 / amax, &mut codes);
            }
            (amax.to_bits(), finite, codes)
        });
        let reference = results[0].1.clone();
        for (backend, got) in &results {
            prop_assert_eq!(got, &reference, "{} diverged from scalar", backend.name());
        }
    }

    /// The fused int8 matvec + rescale (`quant_matvec`): bit-identical
    /// output rows across backends, for ragged widths in both dimensions.
    #[test]
    fn quant_matvec_is_bit_identical(
        k in len_strategy(),
        n in len_strategy(),
        codes in proptest::collection::vec(-127i8..=127, 0..70),
        x_scale in 1e-3f32..1.0,
    ) {
        let xq: Vec<i8> = (0..k)
            .map(|i| codes.get(i % codes.len().max(1)).copied().unwrap_or(63))
            .collect();
        let wq: Vec<i8> = (0..n * k)
            .map(|i| codes.get((i * 11 + 5) % codes.len().max(1)).copied().unwrap_or(-63))
            .collect();
        let scales: Vec<f32> = (0..n).map(|o| 1e-2 + o as f32 * 1e-3).collect();
        let bias: Vec<f32> = (0..n).map(|o| o as f32 * 0.1 - 0.7).collect();
        let results = across_backends(|| {
            let mut out = vec![0.0f32; n];
            simd::quant_matvec(&xq, x_scale, &wq, &scales, &bias, &mut out);
            bits(&out)
        });
        let reference = results[0].1.clone();
        for (backend, got) in &results {
            prop_assert_eq!(got, &reference, "{} diverged from scalar", backend.name());
        }
    }

    /// The int8 dot is exact integer arithmetic: identical on every
    /// backend, including saturation-magnitude inputs (±127).
    #[test]
    fn dot_i8_is_identical_across_backends(
        len in len_strategy(),
        codes in proptest::collection::vec(-127i8..=127, 0..70),
    ) {
        let a: Vec<i8> = (0..len)
            .map(|i| codes.get(i % codes.len().max(1)).copied().unwrap_or(127))
            .collect();
        let b: Vec<i8> = a.iter().rev().map(|&v| v.wrapping_neg().max(-127)).collect();
        let expect: i32 = a.iter().zip(&b).map(|(&x, &y)| x as i32 * y as i32).sum();
        let results = across_backends(|| simd::dot_i8(&a, &b));
        for (backend, got) in results {
            prop_assert_eq!(got, expect, "{} diverged", backend.name());
        }
    }

    /// All three matmul orientations (allocating, `_into`, `_row_into`,
    /// and the explicit thread budgets 1/2/4) are bit-identical across
    /// backends.
    #[test]
    fn matmuls_are_bit_identical(
        m in 1usize..7,
        k in 1usize..19,
        n in 1usize..19,
        a_data in proptest::collection::vec(-3.0f32..3.0, 6 * 18),
        b_data in proptest::collection::vec(-3.0f32..3.0, 18 * 18),
    ) {
        let a = Matrix::from_vec(m, k, a_data[..m * k].to_vec());
        let b = Matrix::from_vec(k, n, b_data[..k * n].to_vec());
        let b_t = Matrix::from_vec(n, k, b_data[..n * k].to_vec());
        let a_t = Matrix::from_vec(k, m, a_data[..k * m].to_vec());
        let results = across_backends(|| {
            let nn = a.matmul(&b);
            let tn = a_t.matmul_tn(&b);
            let nt = a.matmul_nt(&b_t);
            let mut nn_into = Matrix::zeros(0, 0);
            a.matmul_into(&b, &mut nn_into);
            let mut row0 = vec![0.0f32; n];
            a.matmul_row_into(0, &b, &mut row0);
            let mut swept = Vec::new();
            for threads in [1usize, 2, 4] {
                swept.extend(bits(a.matmul_par_with(&b, threads).data()));
                swept.extend(bits(a_t.matmul_tn_par_with(&b, threads).data()));
                swept.extend(bits(a.matmul_nt_par_with(&b_t, threads).data()));
            }
            (
                bits(nn.data()),
                bits(tn.data()),
                bits(nt.data()),
                bits(nn_into.data()),
                bits(&row0),
                swept,
            )
        });
        let reference = results[0].1.clone();
        for (backend, got) in &results {
            prop_assert_eq!(got, &reference, "{} diverged from scalar", backend.name());
        }
    }

    /// The layer-level ops the engine calls: softmax over a row slice,
    /// GELU into a buffer, LayerNorm (both entry points), and the bias
    /// broadcast.
    #[test]
    fn layer_ops_are_bit_identical(
        rows in 1usize..5,
        cols in 1usize..21,
        data in proptest::collection::vec(-4.0f32..4.0, 4 * 20),
    ) {
        let x = Matrix::from_vec(rows, cols, data[..rows * cols].to_vec());
        let bias: Vec<f32> = (0..cols).map(|c| c as f32 * 0.3 - 1.0).collect();
        let ln = LayerNorm::new(cols);
        let results = across_backends(|| {
            let mut soft = x.clone();
            for r in 0..rows {
                softmax_slice(soft.row_mut(r));
            }
            let mut gelu_out = Matrix::zeros(0, 0);
            gelu_forward_into(&x, &mut gelu_out);
            let (ln_fwd, _cache) = ln.forward(&x);
            let mut ln_into = Matrix::zeros(0, 0);
            ln.forward_into(&x, &mut ln_into);
            let mut broadcast = x.clone();
            broadcast.add_row_broadcast(&bias);
            (
                bits(soft.data()),
                bits(gelu_out.data()),
                bits(ln_fwd.data()),
                bits(ln_into.data()),
                bits(broadcast.data()),
            )
        });
        let reference = results[0].1.clone();
        for (backend, got) in &results {
            prop_assert_eq!(got, &reference, "{} diverged from scalar", backend.name());
            // The two LayerNorm entry points must also agree with each
            // other (training vs inference path).
            prop_assert_eq!(&got.2, &got.3, "forward vs forward_into diverged");
        }
    }
}

/// The engine-level guarantee: full BERT inference produces identical
/// bits on every backend.
#[test]
fn bert_inference_is_bit_identical_across_backends() {
    use kamel_nn::{BertConfig, BertMlmModel, InferScratch};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    let mut rng = ChaCha8Rng::seed_from_u64(0x51D);
    let model = BertMlmModel::new(BertConfig::tiny(13), &mut rng);
    let ids: Vec<u32> = vec![1, 5, 9, 2, 7, 11, 3];
    let results = across_backends(|| {
        let mut scratch = InferScratch::new();
        model.predict_with(&mut scratch, &ids, 3).to_vec()
    });
    let reference = bits(&results[0].1);
    for (backend, got) in &results {
        assert_eq!(bits(got), reference, "{} diverged from scalar", backend.name());
    }
}

//! Detokenization — tokens back to GPS points (§7).
//!
//! Offline, the training fixes inside every token cell are clustered with
//! DBSCAN on (position, travel heading); each cluster's centroid and mean
//! heading are stored as the token's metadata. Online, an imputed token is
//! replaced by:
//!
//! 1. the centroid of the cluster whose heading best matches the token's
//!    travel direction, when the token has ≥ 2 clusters (Figure 8a);
//! 2. the single cluster's centroid when there is exactly one (Figure 8b);
//! 3. the cell centroid when the token never had enough data (Figure 8c) —
//!    rare, since the model does not propose unseen tokens.

use crate::cluster::{cluster_count, dbscan, DirectedPoint};
use crate::config::DetokConfig;
use crate::tokenize::Tokenizer;
use kamel_geo::{angle_between_deg, bearing_deg, Xy};
use kamel_hexgrid::CellId;
use kamel_trajstore::TokenTrajectory;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One direction cluster inside a token cell.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClusterInfo {
    /// Cluster centroid in planar meters.
    pub centroid: Xy,
    /// Circular-mean travel heading of the cluster, degrees from north.
    pub heading_deg: f64,
    /// Number of member fixes.
    pub count: usize,
}

/// Per-token metadata computed offline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct TokenMeta {
    /// Direction clusters (may be empty when the cell had too little data).
    pub clusters: Vec<ClusterInfo>,
    /// Centroid of all fixes in the cell (the Figure 8b fallback).
    pub data_centroid: Option<Xy>,
    /// Total fixes observed in the cell.
    pub n_points: usize,
}

/// The Detokenization module.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Detokenizer {
    meta: HashMap<CellId, TokenMeta>,
}

/// Cap on fixes clustered per cell: DBSCAN here is O(n²) and a few hundred
/// samples pin down road geometry within a 75 m hexagon.
const MAX_POINTS_PER_CELL: usize = 400;

impl Detokenizer {
    /// Builds token metadata from tokenized training trajectories (the §7
    /// offline operation, triggered when training data is uploaded).
    pub fn build<'a>(
        trajectories: impl IntoIterator<Item = &'a TokenTrajectory>,
        cfg: &DetokConfig,
    ) -> Self {
        // Gather per-cell directed fixes.
        let mut per_cell: HashMap<CellId, Vec<DirectedPoint>> = HashMap::new();
        for traj in trajectories {
            let n = traj.len();
            for i in 0..n {
                let heading = heading_at(&traj.xy, i);
                let Some(heading_deg) = heading else { continue };
                per_cell.entry(traj.cells[i]).or_default().push(DirectedPoint {
                    pos: traj.xy[i],
                    heading_deg,
                });
            }
        }
        let mut meta = HashMap::with_capacity(per_cell.len());
        for (cell, mut points) in per_cell {
            let n_points = points.len();
            if points.len() > MAX_POINTS_PER_CELL {
                // Deterministic stride subsample.
                let stride = points.len() / MAX_POINTS_PER_CELL + 1;
                points = points.iter().step_by(stride).copied().collect();
            }
            let labels = dbscan(&points, cfg.eps_xy_m, cfg.eps_heading_deg, cfg.min_pts);
            let k = cluster_count(&labels);
            let mut clusters = Vec::with_capacity(k);
            for c in 0..k {
                let members: Vec<&DirectedPoint> = points
                    .iter()
                    .zip(&labels)
                    .filter(|(_, l)| **l == Some(c))
                    .map(|(p, _)| p)
                    .collect();
                if members.is_empty() {
                    continue;
                }
                clusters.push(ClusterInfo {
                    centroid: mean_pos(members.iter().map(|p| p.pos)),
                    heading_deg: circular_mean_deg(members.iter().map(|p| p.heading_deg)),
                    count: members.len(),
                });
            }
            meta.insert(
                cell,
                TokenMeta {
                    clusters,
                    data_centroid: if points.is_empty() {
                        None
                    } else {
                        Some(mean_pos(points.iter().map(|p| p.pos)))
                    },
                    n_points,
                },
            );
        }
        Self { meta }
    }

    /// Number of tokens with metadata.
    pub fn len(&self) -> usize {
        self.meta.len()
    }

    /// True when no metadata has been built.
    pub fn is_empty(&self) -> bool {
        self.meta.is_empty()
    }

    /// Metadata for a token, when available.
    pub fn meta(&self, cell: CellId) -> Option<&TokenMeta> {
        self.meta.get(&cell)
    }

    /// Online detokenization of a whole token sequence: each token becomes a
    /// planar point per the three-way rule above. The caller supplies the
    /// tokenizer for cell centroids and neighbor-based travel directions.
    pub fn detokenize(&self, tokens: &[CellId], tokenizer: &Tokenizer) -> Vec<Xy> {
        (0..tokens.len())
            .map(|i| self.point_for(tokens, i, tokenizer))
            .collect()
    }

    /// The output point for `tokens[i]`.
    pub fn point_for(&self, tokens: &[CellId], i: usize, tokenizer: &Tokenizer) -> Xy {
        let cell = tokens[i];
        let cell_centroid = tokenizer.centroid(cell);
        let Some(meta) = self.meta.get(&cell) else {
            return cell_centroid; // Figure 8c: no data at all
        };
        match meta.clusters.len() {
            0 => meta.data_centroid.unwrap_or(cell_centroid),
            1 => meta.clusters[0].centroid,
            _ => {
                // Token direction = average of incoming and outgoing angles
                // (via the neighbor token centroids).
                let here = cell_centroid;
                let incoming = i
                    .checked_sub(1)
                    .map(|j| tokenizer.centroid(tokens[j]))
                    .and_then(|p| bearing_deg(p, here));
                let outgoing = tokens
                    .get(i + 1)
                    .map(|&c| tokenizer.centroid(c))
                    .and_then(|p| bearing_deg(here, p));
                let direction = match (incoming, outgoing) {
                    (Some(a), Some(b)) => Some(circular_mean_deg([a, b].into_iter())),
                    (Some(a), None) => Some(a),
                    (None, Some(b)) => Some(b),
                    (None, None) => None,
                };
                match direction {
                    Some(dir) => {
                        meta.clusters
                            .iter()
                            .min_by(|a, b| {
                                angle_between_deg(a.heading_deg, dir)
                                    .partial_cmp(&angle_between_deg(b.heading_deg, dir))
                                    .expect("finite angles")
                            })
                            .expect("≥2 clusters")
                            .centroid
                    }
                    None => meta.data_centroid.unwrap_or(cell_centroid),
                }
            }
        }
    }
}

/// Travel heading at fix `i`: bearing from the previous to the next fix
/// (one-sided at the ends). `None` for single-point trajectories or
/// zero-length steps.
fn heading_at(xy: &[Xy], i: usize) -> Option<f64> {
    let n = xy.len();
    if n < 2 {
        return None;
    }
    let (a, b) = if i == 0 {
        (xy[0], xy[1])
    } else if i == n - 1 {
        (xy[n - 2], xy[n - 1])
    } else {
        (xy[i - 1], xy[i + 1])
    };
    bearing_deg(a, b)
}

fn mean_pos(points: impl Iterator<Item = Xy>) -> Xy {
    let mut n = 0usize;
    let (mut sx, mut sy) = (0.0, 0.0);
    for p in points {
        sx += p.x;
        sy += p.y;
        n += 1;
    }
    Xy::new(sx / n as f64, sy / n as f64)
}

/// Circular mean of headings in degrees.
fn circular_mean_deg(angles: impl Iterator<Item = f64>) -> f64 {
    let (mut s, mut c) = (0.0, 0.0);
    for a in angles {
        let r = a.to_radians();
        s += r.sin();
        c += r.cos();
    }
    kamel_geo::normalize_deg(s.atan2(c).to_degrees())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::KamelConfig;
    use kamel_geo::LatLng;

    fn tokenizer() -> Tokenizer {
        Tokenizer::new(LatLng::new(41.15, -8.61), &KamelConfig::default())
    }

    /// Builds one TokenTrajectory that walks a straight line at `offset_y`.
    fn line_traj(tok: &Tokenizer, offset_y: f64, n: usize, step: f64) -> TokenTrajectory {
        let xy: Vec<Xy> = (0..n).map(|i| Xy::new(i as f64 * step, offset_y)).collect();
        let cells = xy.iter().map(|p| tok.cell_of_xy(*p)).collect();
        let t = (0..n).map(|i| i as f64 * 5.0).collect();
        TokenTrajectory::new(cells, xy, t)
    }

    #[test]
    fn single_cluster_returns_cluster_centroid() {
        let tok = tokenizer();
        // Eastbound traffic slightly north of the hex centers.
        let trajs: Vec<TokenTrajectory> =
            (0..6).map(|_| line_traj(&tok, 20.0, 40, 20.0)).collect();
        let detok = Detokenizer::build(trajs.iter(), &DetokConfig::default());
        assert!(!detok.is_empty());
        let cell = tok.cell_of_xy(Xy::new(400.0, 20.0));
        let meta = detok.meta(cell).expect("cell has data");
        assert!(!meta.clusters.is_empty());
        let p = detok.point_for(&[cell], 0, &tok);
        // The returned point reflects the data (y ≈ 20), not the raw cell
        // centroid.
        assert!((p.y - 20.0).abs() < 15.0, "got {p:?}");
    }

    #[test]
    fn unseen_token_falls_back_to_cell_centroid() {
        let tok = tokenizer();
        let detok = Detokenizer::default();
        let cell = tok.cell_of_xy(Xy::new(777.0, 777.0));
        assert_eq!(detok.point_for(&[cell], 0, &tok), tok.centroid(cell));
    }

    #[test]
    fn two_direction_cell_picks_matching_cluster() {
        let tok = tokenizer();
        let cfg = KamelConfig::default();
        // Crossing roads through the origin cell: eastbound traffic along
        // y=+25, northbound along x=+25 (offset so the two clusters have
        // clearly different centroids).
        let mut trajs = Vec::new();
        for _ in 0..8 {
            trajs.push(line_traj(&tok, 25.0, 30, 20.0)); // eastbound
        }
        for _ in 0..8 {
            // northbound: swap axes
            let xy: Vec<Xy> = (0..30).map(|i| Xy::new(25.0, i as f64 * 20.0 - 300.0)).collect();
            let cells = xy.iter().map(|p| tok.cell_of_xy(*p)).collect();
            let t = (0..30).map(|i| i as f64 * 5.0).collect();
            trajs.push(TokenTrajectory::new(cells, xy, t));
        }
        let detok = Detokenizer::build(trajs.iter(), &cfg.detok);
        let cross_cell = tok.cell_of_xy(Xy::new(25.0, 25.0));
        let meta = detok.meta(cross_cell).expect("crossing cell has data");
        if meta.clusters.len() >= 2 {
            // Traveling east through the cell: pick the eastbound cluster.
            let west = tok.cell_of_xy(Xy::new(-180.0, 25.0));
            let east = tok.cell_of_xy(Xy::new(230.0, 25.0));
            let p_east = detok.point_for(&[west, cross_cell, east], 1, &tok);
            let east_cluster = meta
                .clusters
                .iter()
                .min_by(|a, b| {
                    angle_between_deg(a.heading_deg, 90.0)
                        .partial_cmp(&angle_between_deg(b.heading_deg, 90.0))
                        .unwrap()
                })
                .unwrap();
            assert_eq!(p_east, east_cluster.centroid);
        }
    }

    #[test]
    fn heading_at_handles_ends() {
        let xy = vec![Xy::new(0.0, 0.0), Xy::new(10.0, 0.0), Xy::new(20.0, 0.0)];
        assert_eq!(heading_at(&xy, 0), Some(90.0));
        assert_eq!(heading_at(&xy, 1), Some(90.0));
        assert_eq!(heading_at(&xy, 2), Some(90.0));
        assert_eq!(heading_at(&[Xy::new(0.0, 0.0)], 0), None);
    }

    #[test]
    fn circular_mean_wraps() {
        let m = circular_mean_deg([350.0, 10.0].into_iter());
        assert!(!(1.0..=359.0).contains(&m), "mean {m}");
        let m2 = circular_mean_deg([80.0, 100.0].into_iter());
        assert!((m2 - 90.0).abs() < 1e-9);
    }

    #[test]
    fn detokenize_maps_every_token() {
        let tok = tokenizer();
        let trajs: Vec<TokenTrajectory> =
            (0..5).map(|_| line_traj(&tok, 0.0, 30, 25.0)).collect();
        let detok = Detokenizer::build(trajs.iter(), &DetokConfig::default());
        let tokens: Vec<CellId> = {
            let mut cells = trajs[0].dedup_cells();
            cells.truncate(5);
            cells
        };
        let pts = detok.detokenize(&tokens, &tok);
        assert_eq!(pts.len(), tokens.len());
        // Points track the street (y ≈ 0 within cell size).
        for p in pts {
            assert!(p.y.abs() < 75.0);
        }
    }
}

//! Pointy-top hexagonal grid in axial coordinates.
//!
//! Standard axial/cube hex math (Amit Patel's formulation): a hexagon with
//! edge length `e` has its center at
//! `x = e * sqrt(3) * (q + r/2)`, `y = e * 3/2 * r`.
//! Pixel→hex uses the inverse transform followed by cube rounding. Lines are
//! drawn by sampling the cube-space lerp, exactly like H3's `gridPathCells`.

use crate::cell::CellId;
use crate::Tessellation;
use kamel_geo::Xy;
use serde::{Deserialize, Serialize};

const SQRT3: f64 = 1.732_050_807_568_877_2;

/// A flat hexagonal tessellation of the plane (pointy-top orientation).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HexGrid {
    edge_m: f64,
}

impl HexGrid {
    /// Creates a grid with hexagon edge length `edge_m` meters (the paper's
    /// `H`; default 75 m per §8).
    ///
    /// # Panics
    /// Panics when the edge length is not strictly positive and finite.
    pub fn new(edge_m: f64) -> Self {
        assert!(
            edge_m.is_finite() && edge_m > 0.0,
            "hex edge length must be positive, got {edge_m}"
        );
        Self { edge_m }
    }

    /// Axial coordinates of the cell containing `p`.
    fn axial_of(&self, p: Xy) -> (i32, i32) {
        let q = (SQRT3 / 3.0 * p.x - p.y / 3.0) / self.edge_m;
        let r = (2.0 / 3.0 * p.y) / self.edge_m;
        cube_round(q, r)
    }

    fn center_of_axial(&self, q: i32, r: i32) -> Xy {
        let qf = q as f64;
        let rf = r as f64;
        Xy::new(
            self.edge_m * SQRT3 * (qf + rf / 2.0),
            self.edge_m * 1.5 * rf,
        )
    }
}

/// Rounds fractional axial coordinates to the containing hexagon using cube
/// rounding (ensures `q + r + s == 0` is preserved).
fn cube_round(qf: f64, rf: f64) -> (i32, i32) {
    let sf = -qf - rf;
    let mut q = qf.round();
    let mut r = rf.round();
    let s = sf.round();
    let dq = (q - qf).abs();
    let dr = (r - rf).abs();
    let ds = (s - sf).abs();
    if dq > dr && dq > ds {
        q = -r - s;
    } else if dr > ds {
        r = -q - s;
    }
    (q as i32, r as i32)
}

/// Cube distance between two axial cells: the minimum number of edge steps.
fn hex_distance(a: (i32, i32), b: (i32, i32)) -> u32 {
    let dq = (a.0 - b.0) as i64;
    let dr = (a.1 - b.1) as i64;
    let ds = -dq - dr;
    ((dq.abs() + dr.abs() + ds.abs()) / 2) as u32
}

/// The six axial direction offsets.
const DIRS: [(i32, i32); 6] = [(1, 0), (1, -1), (0, -1), (-1, 0), (-1, 1), (0, 1)];

impl Tessellation for HexGrid {
    fn cell_of(&self, p: Xy) -> CellId {
        let (q, r) = self.axial_of(p);
        CellId::from_coords(q, r)
    }

    fn centroid(&self, cell: CellId) -> Xy {
        let (q, r) = cell.coords();
        self.center_of_axial(q, r)
    }

    fn neighbors(&self, cell: CellId) -> Vec<CellId> {
        let (q, r) = cell.coords();
        DIRS.iter()
            .map(|&(dq, dr)| CellId::from_coords(q + dq, r + dr))
            .collect()
    }

    fn grid_distance(&self, a: CellId, b: CellId) -> u32 {
        hex_distance(a.coords(), b.coords())
    }

    fn line(&self, a: CellId, b: CellId) -> Vec<CellId> {
        let n = self.grid_distance(a, b);
        if n == 0 {
            return vec![a];
        }
        let (aq, ar) = a.coords();
        let (bq, br) = b.coords();
        let mut out = Vec::with_capacity(n as usize + 1);
        let mut last = None;
        for i in 0..=n {
            let t = i as f64 / n as f64;
            // Nudge off exact edge midpoints for deterministic rounding.
            let qf = aq as f64 + (bq - aq) as f64 * t + 1e-6;
            let rf = ar as f64 + (br - ar) as f64 * t + 1e-6;
            let cell = {
                let (q, r) = cube_round(qf, rf);
                CellId::from_coords(q, r)
            };
            if last != Some(cell) {
                out.push(cell);
                last = Some(cell);
            }
        }
        // Guarantee exact endpoints despite the epsilon nudge.
        if out[0] != a {
            out[0] = a;
        }
        if *out.last().expect("non-empty") != b {
            out.push(b);
        }
        out
    }

    fn disk(&self, center: CellId, radius: u32) -> Vec<CellId> {
        let (cq, cr) = center.coords();
        let rad = radius as i32;
        let mut out = Vec::with_capacity((3 * radius * (radius + 1) + 1) as usize);
        for dq in -rad..=rad {
            let lo = (-rad).max(-dq - rad);
            let hi = rad.min(-dq + rad);
            for dr in lo..=hi {
                out.push(CellId::from_coords(cq + dq, cr + dr));
            }
        }
        out
    }

    fn ring(&self, center: CellId, radius: u32) -> Vec<CellId> {
        if radius == 0 {
            return vec![center];
        }
        // Standard hex-ring walk: start `radius` steps out in direction 4,
        // then walk `radius` cells along each of the six sides.
        let (cq, cr) = center.coords();
        let r = radius as i32;
        let (mut q, mut rr) = (cq + DIRS[4].0 * r, cr + DIRS[4].1 * r);
        let mut out = Vec::with_capacity(6 * radius as usize);
        for &(dq, dr) in &DIRS {
            for _ in 0..radius {
                out.push(CellId::from_coords(q, rr));
                q += dq;
                rr += dr;
            }
        }
        out
    }

    fn edge_len_m(&self) -> f64 {
        self.edge_m
    }

    fn neighbor_spacing_m(&self) -> f64 {
        self.edge_m * SQRT3
    }

    fn kind(&self) -> &'static str {
        "hex"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn origin_is_cell_zero() {
        let g = HexGrid::new(75.0);
        assert_eq!(g.cell_of(Xy::new(0.0, 0.0)), CellId::from_coords(0, 0));
        assert_eq!(g.centroid(CellId::from_coords(0, 0)), Xy::new(0.0, 0.0));
    }

    #[test]
    fn point_roundtrip_within_circumradius() {
        let g = HexGrid::new(75.0);
        for (x, y) in [
            (10.0, 10.0),
            (-433.0, 912.0),
            (12_345.6, -9_876.5),
            (0.1, -0.1),
        ] {
            let p = Xy::new(x, y);
            let c = g.cell_of(p);
            // Any point in a hexagon is within the circumradius (= edge) of
            // its centroid.
            assert!(
                g.centroid(c).dist(&p) <= g.edge_len_m() + 1e-9,
                "point ({x},{y})"
            );
        }
    }

    #[test]
    fn all_neighbors_equidistant_from_center() {
        // The paper's §3.1 rationale: every neighbor shares identical
        // geometry with the center cell.
        let g = HexGrid::new(75.0);
        let c = g.cell_of(Xy::new(500.0, 500.0));
        let center = g.centroid(c);
        let expected = g.neighbor_spacing_m();
        for n in g.neighbors(c) {
            let d = g.centroid(n).dist(&center);
            assert!((d - expected).abs() < 1e-6, "spacing {d} vs {expected}");
        }
    }

    #[test]
    fn six_distinct_neighbors() {
        let g = HexGrid::new(75.0);
        let c = CellId::from_coords(3, -2);
        let ns = g.neighbors(c);
        assert_eq!(ns.len(), 6);
        let mut unique = ns.clone();
        unique.sort();
        unique.dedup();
        assert_eq!(unique.len(), 6);
        assert!(!ns.contains(&c));
    }

    #[test]
    fn distance_matches_axial_math() {
        let g = HexGrid::new(50.0);
        let a = CellId::from_coords(0, 0);
        assert_eq!(g.grid_distance(a, a), 0);
        assert_eq!(g.grid_distance(a, CellId::from_coords(1, 0)), 1);
        assert_eq!(g.grid_distance(a, CellId::from_coords(2, -1)), 2);
        assert_eq!(g.grid_distance(a, CellId::from_coords(-3, 3)), 3);
        assert_eq!(g.grid_distance(a, CellId::from_coords(2, 2)), 4);
    }

    #[test]
    fn line_is_connected_and_endpoint_exact() {
        let g = HexGrid::new(75.0);
        let a = g.cell_of(Xy::new(0.0, 0.0));
        let b = g.cell_of(Xy::new(2000.0, 1300.0));
        let line = g.line(a, b);
        assert_eq!(line[0], a);
        assert_eq!(*line.last().unwrap(), b);
        for w in line.windows(2) {
            assert_eq!(
                g.grid_distance(w[0], w[1]),
                1,
                "line must step between adjacent cells"
            );
        }
    }

    #[test]
    fn line_degenerate() {
        let g = HexGrid::new(75.0);
        let a = CellId::from_coords(4, 4);
        assert_eq!(g.line(a, a), vec![a]);
    }

    #[test]
    fn disk_sizes_follow_hex_numbers() {
        let g = HexGrid::new(75.0);
        let c = CellId::from_coords(0, 0);
        // |disk(r)| = 3r(r+1) + 1
        assert_eq!(g.disk(c, 0).len(), 1);
        assert_eq!(g.disk(c, 1).len(), 7);
        assert_eq!(g.disk(c, 2).len(), 19);
        assert_eq!(g.disk(c, 3).len(), 37);
        // Every member is within the radius.
        for m in g.disk(c, 3) {
            assert!(g.grid_distance(c, m) <= 3);
        }
    }

    #[test]
    fn ring_walk_matches_disk_filter() {
        let g = HexGrid::new(75.0);
        let c = CellId::from_coords(3, -5);
        for radius in 1u32..=4 {
            let mut walked = g.ring(c, radius);
            walked.sort();
            walked.dedup();
            assert_eq!(walked.len(), 6 * radius as usize, "radius {radius}");
            for m in &walked {
                assert_eq!(g.grid_distance(c, *m), radius);
            }
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_nonpositive_edge() {
        let _ = HexGrid::new(0.0);
    }

    #[test]
    fn smaller_edge_means_more_cells() {
        // Cell-size optimization (§3.2) depends on this monotonicity.
        let coarse = HexGrid::new(200.0);
        let fine = HexGrid::new(25.0);
        let pts: Vec<Xy> = (0..100)
            .map(|i| Xy::new((i % 10) as f64 * 40.0, (i / 10) as f64 * 40.0))
            .collect();
        let count = |g: &HexGrid| {
            let mut cells: Vec<CellId> = pts.iter().map(|p| g.cell_of(*p)).collect();
            cells.sort();
            cells.dedup();
            cells.len()
        };
        assert!(count(&fine) > count(&coarse));
    }
}

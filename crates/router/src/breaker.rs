//! Per-shard circuit breakers: stop hammering a shard that keeps
//! failing *before* the health machine ejects it, and feel a recovered
//! shard out with a bounded number of trial requests.
//!
//! ## Why a breaker on top of [`crate::health`]
//!
//! The health machine is driven by *probes and completed forwards*: a
//! shard that answers its `/healthz` probe but times out every real
//! request stays `Active` long enough for each client request to burn a
//! full per-forward timeout discovering the same failure. The breaker
//! closes that gap: it watches real forward outcomes (including
//! latency), trips after a windowful of bad ones, and lets
//! [`crate::proxy::RouterCore`] skip the shard in O(1) — the replica
//! chain walk consults [`Breaker::would_allow`] exactly like
//! `is_available`, so a tripped owner costs one boolean, not one
//! timeout.
//!
//! ## State machine
//!
//! ```text
//!            window has ≥ min_samples outcomes and
//!            failures/samples ≥ failure_ratio
//!   Closed ────────────────────────────────────────► Open
//!      ▲                                               │
//!      │ close_after consecutive              open_for │ elapsed
//!      │ probe successes                               ▼
//!      └────────────────────────────────────────── HalfOpen
//!                       │ any probe failure → Open (timer re-armed)
//! ```
//!
//! * **Closed** — forwards flow; each records an outcome into a sliding
//!   ring-buffer window. An outcome is a failure when the forward
//!   errored, answered 5xx, **or took longer than `latency_threshold`**
//!   (a shard drowning in its own queue fails the fleet as surely as a
//!   dead one).
//! * **Open** — every forward is refused for `open_for`; the replica
//!   chain skips this shard without spending a connection.
//! * **HalfOpen** — after `open_for`, at most `half_open_probes`
//!   concurrent trial forwards are admitted. `close_after` consecutive
//!   successes close the breaker (window cleared — history from the bad
//!   era must not trip it again); any failure re-opens it.
//!
//! Transitions are reported exactly once via [`BreakerEvent`] so the
//! metrics counters stay deterministic under concurrent forwards. Time
//! comes from an injected [`Clock`], so every edge is unit-tested with a
//! [`kamel_server::ManualClock`] — no sleeps, no flakes.

use kamel_server::Clock;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Breaker tuning knobs.
#[derive(Debug, Clone)]
pub struct BreakerPolicy {
    /// Sliding window size, in forward outcomes.
    pub window: usize,
    /// Minimum outcomes in the window before the ratio can trip — a
    /// single failure on a cold shard must not open the breaker.
    /// Effectively clamped to `window`: a window can never hold more
    /// samples than its size, so a larger floor would disable the
    /// breaker outright.
    pub min_samples: usize,
    /// Trip when `failures / samples >= failure_ratio`.
    pub failure_ratio: f64,
    /// A successful forward slower than this still counts as a failure.
    pub latency_threshold: Duration,
    /// How long an open breaker refuses traffic before probing.
    pub open_for: Duration,
    /// Maximum concurrent trial forwards while half-open.
    pub half_open_probes: u32,
    /// Consecutive probe successes that close a half-open breaker.
    pub close_after: u32,
}

impl Default for BreakerPolicy {
    fn default() -> Self {
        Self {
            window: 16,
            min_samples: 8,
            failure_ratio: 0.5,
            latency_threshold: Duration::from_secs(2),
            open_for: Duration::from_secs(2),
            half_open_probes: 1,
            close_after: 2,
        }
    }
}

/// The breaker's position in the state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Traffic flows; outcomes fill the window.
    Closed,
    /// Traffic refused until the open timer elapses.
    Open,
    /// Bounded trial traffic; successes close, a failure re-opens.
    HalfOpen,
}

impl BreakerState {
    /// The `/metrics` gauge value (0 closed, 1 half-open, 2 open).
    pub fn gauge(self) -> u64 {
        match self {
            BreakerState::Closed => 0,
            BreakerState::HalfOpen => 1,
            BreakerState::Open => 2,
        }
    }
}

/// A state transition, reported exactly once to whoever caused it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerEvent {
    /// Closed/HalfOpen → Open.
    Opened,
    /// Open → HalfOpen (the open timer elapsed and a forward arrived).
    HalfOpened,
    /// HalfOpen → Closed (enough consecutive probe successes).
    Closed,
}

/// Proof of admission, returned by [`Breaker::admit`] and consumed by
/// [`Breaker::record`] (or [`Breaker::release`] if the forward never
/// happened). Half-open admissions are probes and hold one of the
/// bounded probe slots until handed back.
#[derive(Debug)]
#[must_use = "a permit must be passed back via record() or release()"]
pub struct Permit {
    probe: bool,
}

#[derive(Debug)]
struct Inner {
    state: BreakerState,
    /// Ring buffer of the last `window` outcomes (`true` = failure).
    outcomes: Vec<bool>,
    next: usize,
    filled: usize,
    open_until: Option<Instant>,
    probes_inflight: u32,
    probe_successes: u32,
}

/// One shard's circuit breaker.
pub struct Breaker {
    policy: BreakerPolicy,
    clock: Arc<dyn Clock>,
    inner: Mutex<Inner>,
}

impl Breaker {
    /// A closed breaker with an empty window.
    pub fn new(policy: BreakerPolicy, clock: Arc<dyn Clock>) -> Self {
        let window = policy.window.max(1);
        Self {
            policy,
            clock,
            inner: Mutex::new(Inner {
                state: BreakerState::Closed,
                outcomes: vec![false; window],
                next: 0,
                filled: 0,
                open_until: None,
                probes_inflight: 0,
                probe_successes: 0,
            }),
        }
    }

    /// The current state (an elapsed open timer still reads `Open`
    /// until a forward transitions it — state changes only on traffic).
    pub fn state(&self) -> BreakerState {
        self.inner.lock().expect("breaker poisoned").state
    }

    /// Non-mutating admission check: would [`Breaker::admit`] grant a
    /// permit right now? Used by the O(1) owner-chain skip, where
    /// looking must not transition the breaker or consume a probe slot.
    pub fn would_allow(&self) -> bool {
        let inner = self.inner.lock().expect("breaker poisoned");
        match inner.state {
            BreakerState::Closed => true,
            BreakerState::HalfOpen => inner.probes_inflight < self.policy.half_open_probes.max(1),
            BreakerState::Open => inner
                .open_until
                .is_none_or(|until| self.clock.now() >= until),
        }
    }

    /// Admission: `Closed` grants a normal permit; `Open` with an
    /// elapsed timer transitions to `HalfOpen` (reporting the event) and
    /// grants a probe permit; `HalfOpen` grants probe permits up to the
    /// concurrency bound. `None` means the forward must be skipped.
    pub fn admit(&self) -> (Option<Permit>, Option<BreakerEvent>) {
        let mut inner = self.inner.lock().expect("breaker poisoned");
        match inner.state {
            BreakerState::Closed => (Some(Permit { probe: false }), None),
            BreakerState::Open => {
                let elapsed = inner
                    .open_until
                    .is_none_or(|until| self.clock.now() >= until);
                if !elapsed {
                    return (None, None);
                }
                inner.state = BreakerState::HalfOpen;
                inner.probe_successes = 0;
                inner.probes_inflight = 1;
                (Some(Permit { probe: true }), Some(BreakerEvent::HalfOpened))
            }
            BreakerState::HalfOpen => {
                if inner.probes_inflight >= self.policy.half_open_probes.max(1) {
                    return (None, None);
                }
                inner.probes_inflight += 1;
                (Some(Permit { probe: true }), None)
            }
        }
    }

    /// Hands back a permit without an outcome (the forward was never
    /// attempted — e.g. the request's deadline budget ran out first).
    /// Frees the probe slot without counting success or failure.
    pub fn release(&self, permit: Permit) {
        if permit.probe {
            let mut inner = self.inner.lock().expect("breaker poisoned");
            inner.probes_inflight = inner.probes_inflight.saturating_sub(1);
        }
    }

    /// Records a forward outcome under `permit`. `ok` is "transport
    /// succeeded and status < 500"; an `ok` forward slower than the
    /// latency threshold is demoted to a failure.
    pub fn record(&self, permit: Permit, ok: bool, latency: Duration) -> Option<BreakerEvent> {
        let failure = !ok || latency > self.policy.latency_threshold;
        let mut inner = self.inner.lock().expect("breaker poisoned");
        if permit.probe {
            inner.probes_inflight = inner.probes_inflight.saturating_sub(1);
            // A probe outcome only matters while still half-open: a
            // concurrent probe may already have re-opened (or closed)
            // the breaker while this one was in flight.
            if inner.state != BreakerState::HalfOpen {
                return None;
            }
            if failure {
                return Some(self.open(&mut inner));
            }
            inner.probe_successes += 1;
            if inner.probe_successes >= self.policy.close_after.max(1) {
                inner.state = BreakerState::Closed;
                inner.outcomes.iter_mut().for_each(|o| *o = false);
                inner.next = 0;
                inner.filled = 0;
                inner.open_until = None;
                return Some(BreakerEvent::Closed);
            }
            return None;
        }
        // A normal permit's outcome counts only while closed; a late
        // result landing after a concurrent trip is history, not news.
        if inner.state != BreakerState::Closed {
            return None;
        }
        let slot = inner.next;
        inner.outcomes[slot] = failure;
        inner.next = (inner.next + 1) % inner.outcomes.len();
        inner.filled = (inner.filled + 1).min(inner.outcomes.len());
        let samples = inner.filled;
        // min_samples above the window size can never be met (filled is
        // capped at the window); clamp so a small --breaker-window does
        // not silently disable the breaker.
        let floor = self.policy.min_samples.clamp(1, inner.outcomes.len());
        if samples < floor {
            return None;
        }
        let failures = inner.outcomes[..samples.min(inner.outcomes.len())]
            .iter()
            .filter(|&&f| f)
            .count();
        if failures as f64 >= self.policy.failure_ratio * samples as f64 {
            return Some(self.open(&mut inner));
        }
        None
    }

    fn open(&self, inner: &mut Inner) -> BreakerEvent {
        inner.state = BreakerState::Open;
        inner.open_until = Some(self.clock.now() + self.policy.open_for);
        inner.probe_successes = 0;
        BreakerEvent::Opened
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kamel_server::ManualClock;

    fn breaker(tweak: impl Fn(&mut BreakerPolicy)) -> (Breaker, Arc<ManualClock>) {
        let clock = ManualClock::shared();
        let mut policy = BreakerPolicy {
            window: 8,
            min_samples: 4,
            failure_ratio: 0.5,
            latency_threshold: Duration::from_millis(500),
            open_for: Duration::from_secs(2),
            half_open_probes: 1,
            close_after: 2,
        };
        tweak(&mut policy);
        (Breaker::new(policy, clock.clone()), clock)
    }

    fn run(b: &Breaker, ok: bool, latency_ms: u64) -> Option<BreakerEvent> {
        let (permit, event) = b.admit();
        assert!(event.is_none(), "unexpected transition on admit: {event:?}");
        b.record(
            permit.expect("admitted"),
            ok,
            Duration::from_millis(latency_ms),
        )
    }

    #[test]
    fn the_breaker_trips_open_exactly_once_at_the_failure_ratio() {
        let (b, _clock) = breaker(|_| {});
        // Three failures: below min_samples, never trips.
        for _ in 0..3 {
            assert_eq!(run(&b, false, 1), None);
        }
        assert_eq!(b.state(), BreakerState::Closed);
        // Fourth failure: 4/4 ≥ 0.5 with min_samples met → Opened, once.
        assert_eq!(run(&b, false, 1), Some(BreakerEvent::Opened));
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.would_allow());
        let (permit, event) = b.admit();
        assert!(permit.is_none() && event.is_none(), "open refuses traffic");
    }

    #[test]
    fn a_mostly_healthy_window_never_trips() {
        let (b, _clock) = breaker(|_| {});
        for i in 0..32 {
            // One failure in four: 25% < 50% threshold.
            assert_eq!(run(&b, i % 4 != 0, 1), None, "iteration {i}");
        }
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn slow_successes_count_as_failures() {
        let (b, _clock) = breaker(|_| {});
        for _ in 0..3 {
            assert_eq!(run(&b, true, 600), None, "slower than the 500ms threshold");
        }
        assert_eq!(run(&b, true, 600), Some(BreakerEvent::Opened));
    }

    #[test]
    fn an_elapsed_open_timer_grants_one_probe() {
        let (b, clock) = breaker(|_| {});
        for _ in 0..4 {
            run(&b, false, 1);
        }
        assert!(!b.would_allow());
        clock.advance(Duration::from_secs(3));
        // Non-mutating peek: still Open, but admission would succeed.
        assert!(b.would_allow());
        assert_eq!(b.state(), BreakerState::Open);
        let (permit, event) = b.admit();
        assert_eq!(event, Some(BreakerEvent::HalfOpened));
        let probe = permit.expect("first probe admitted");
        // The probe bound holds while the first is in flight.
        let (second, event) = b.admit();
        assert!(second.is_none() && event.is_none());
        assert!(!b.would_allow());
        b.release(probe);
        assert!(b.would_allow(), "released slot frees the bound");
    }

    #[test]
    fn consecutive_probe_successes_close_and_clear_the_window() {
        let (b, clock) = breaker(|_| {});
        for _ in 0..4 {
            run(&b, false, 1);
        }
        clock.advance(Duration::from_secs(3));
        let (p1, _) = b.admit();
        assert_eq!(b.record(p1.unwrap(), true, Duration::from_millis(1)), None);
        let (p2, _) = b.admit();
        assert_eq!(
            b.record(p2.unwrap(), true, Duration::from_millis(1)),
            Some(BreakerEvent::Closed)
        );
        assert_eq!(b.state(), BreakerState::Closed);
        // The window was cleared: one new failure is not 4 old + 1 new.
        assert_eq!(run(&b, false, 1), None);
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn a_probe_failure_reopens_and_rearms_the_timer() {
        let (b, clock) = breaker(|_| {});
        for _ in 0..4 {
            run(&b, false, 1);
        }
        clock.advance(Duration::from_secs(3));
        let (p, event) = b.admit();
        assert_eq!(event, Some(BreakerEvent::HalfOpened));
        assert_eq!(
            b.record(p.unwrap(), false, Duration::from_millis(1)),
            Some(BreakerEvent::Opened)
        );
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.would_allow(), "timer re-armed from the probe failure");
        clock.advance(Duration::from_secs(3));
        assert!(b.would_allow());
    }

    #[test]
    fn outcomes_recorded_after_a_trip_are_ignored() {
        let (b, _clock) = breaker(|_| {});
        // Two in-flight permits; the window trips while one is out.
        let (early, _) = b.admit();
        let early = early.unwrap();
        for _ in 0..4 {
            run(&b, false, 1);
        }
        assert_eq!(b.state(), BreakerState::Open);
        // The straggler's success is history from the closed era — it
        // must not reset or confuse the open breaker.
        assert_eq!(b.record(early, true, Duration::from_millis(1)), None);
        assert_eq!(b.state(), BreakerState::Open);
    }

    #[test]
    fn the_window_slides_old_failures_out() {
        let (b, _clock) = breaker(|p| {
            p.window = 4;
            p.min_samples = 4;
        });
        // One failure inside a healthy stretch never trips (1/4 < 0.5)...
        run(&b, false, 1);
        for _ in 0..7 {
            assert_eq!(run(&b, true, 1), None);
        }
        // ...and by now it has slid out: the window is all successes, so
        // a fresh failure is again only 1/4.
        assert_eq!(run(&b, false, 1), None);
        assert_eq!(b.state(), BreakerState::Closed);
        // But the window only remembers 4 outcomes: a second fresh
        // failure makes 2/4 and trips, proving the old successes slid
        // out just like the old failure did.
        assert_eq!(run(&b, false, 1), Some(BreakerEvent::Opened));
        assert_eq!(b.state(), BreakerState::Open);
    }

    #[test]
    fn min_samples_above_the_window_is_clamped_not_disabling() {
        // `--breaker-window 2` with the default min_samples of 8 must
        // still be able to trip: the floor clamps to the window size.
        let (b, _clock) = breaker(|p| {
            p.window = 2;
            p.min_samples = 100;
        });
        assert_eq!(run(&b, false, 1), None, "one sample is below the clamped floor");
        assert_eq!(run(&b, false, 1), Some(BreakerEvent::Opened));
        assert_eq!(b.state(), BreakerState::Open);
    }

    #[test]
    fn gauge_values_are_stable() {
        assert_eq!(BreakerState::Closed.gauge(), 0);
        assert_eq!(BreakerState::HalfOpen.gauge(), 1);
        assert_eq!(BreakerState::Open.gauge(), 2);
    }
}

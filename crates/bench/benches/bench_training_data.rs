//! Criterion bench for the Figure 12-IV/V path: training cost as a
//! function of corpus size and sampling density.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kamel::Kamel;
use kamel_bench::{default_kamel_config, City};
use kamel_geo::Trajectory;
use kamel_roadsim::DatasetScale;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let dataset = City::Porto.dataset(DatasetScale::Small);
    let config = default_kamel_config().pyramid_height(3).model_threshold_k(150).build();

    let mut group = c.benchmark_group("fig12_training_size");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));
    for pct in [25usize, 50, 100] {
        let keep = (dataset.train.len() * pct / 100).max(1);
        let slice = &dataset.train[..keep];
        group.bench_with_input(BenchmarkId::from_parameter(pct), slice, |b, slice| {
            b.iter(|| {
                let k = Kamel::new(config.clone());
                k.train(slice);
                std::hint::black_box(k.stats())
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("fig12_training_density");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));
    for period_s in [15.0f64, 60.0] {
        let resampled: Vec<Trajectory> =
            dataset.train.iter().map(|t| t.resample(period_s)).collect();
        group.bench_with_input(
            BenchmarkId::from_parameter(period_s as u64),
            &resampled,
            |b, corpus| {
                b.iter(|| {
                    let k = Kamel::new(config.clone());
                    k.train(corpus);
                    std::hint::black_box(k.stats())
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

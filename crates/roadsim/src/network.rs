//! The road network graph: planar nodes, undirected weighted edges,
//! Dijkstra routing, nearest-node lookup.

use kamel_geo::{BBox, Xy};
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One directed half-edge in the adjacency list.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Edge {
    /// Target node index.
    pub to: usize,
    /// Edge length in meters.
    pub len: f64,
}

/// An undirected road network in the planar frame.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RoadNetwork {
    nodes: Vec<Xy>,
    adj: Vec<Vec<Edge>>,
}

impl RoadNetwork {
    /// An empty network.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a node, returning its index.
    pub fn add_node(&mut self, pos: Xy) -> usize {
        self.nodes.push(pos);
        self.adj.push(Vec::new());
        self.nodes.len() - 1
    }

    /// Adds an undirected edge between two nodes; length is their planar
    /// distance. Self-loops and duplicate edges are ignored.
    pub fn add_edge(&mut self, a: usize, b: usize) {
        if a == b || a >= self.nodes.len() || b >= self.nodes.len() {
            return;
        }
        if self.adj[a].iter().any(|e| e.to == b) {
            return;
        }
        let len = self.nodes[a].dist(&self.nodes[b]);
        self.adj[a].push(Edge { to: b, len });
        self.adj[b].push(Edge { to: a, len });
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.adj.iter().map(Vec::len).sum::<usize>() / 2
    }

    /// Position of node `i`.
    pub fn node(&self, i: usize) -> Xy {
        self.nodes[i]
    }

    /// Neighbors of node `i`.
    pub fn neighbors(&self, i: usize) -> &[Edge] {
        &self.adj[i]
    }

    /// Iterates over every undirected edge as `(a, b)` node-index pairs with
    /// `a < b`.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.adj
            .iter()
            .enumerate()
            .flat_map(|(a, es)| es.iter().map(move |e| (a, e.to)))
            .filter(|&(a, b)| a < b)
    }

    /// Total length of all edges in meters.
    pub fn total_length_m(&self) -> f64 {
        self.adj
            .iter()
            .flat_map(|es| es.iter().map(|e| e.len))
            .sum::<f64>()
            / 2.0
    }

    /// Bounding box of all nodes (`None` when empty).
    pub fn bbox(&self) -> Option<BBox> {
        BBox::of_points(self.nodes.iter().copied())
    }

    /// Index of the node closest to `p` (`None` when empty).
    pub fn nearest_node(&self, p: Xy) -> Option<usize> {
        self.nodes
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                a.dist_sq(&p)
                    .partial_cmp(&b.dist_sq(&p))
                    .expect("finite coordinates")
            })
            .map(|(i, _)| i)
    }

    /// Dijkstra shortest path from `src` to `dst` as a node-index sequence
    /// (inclusive). `None` when unreachable.
    pub fn shortest_path(&self, src: usize, dst: usize) -> Option<Vec<usize>> {
        if src >= self.nodes.len() || dst >= self.nodes.len() {
            return None;
        }
        if src == dst {
            return Some(vec![src]);
        }
        let n = self.nodes.len();
        let mut dist = vec![f64::INFINITY; n];
        let mut prev = vec![usize::MAX; n];
        let mut heap = BinaryHeap::new();
        dist[src] = 0.0;
        heap.push(HeapItem { cost: 0.0, node: src });
        while let Some(HeapItem { cost, node }) = heap.pop() {
            if node == dst {
                break;
            }
            if cost > dist[node] {
                continue;
            }
            for e in &self.adj[node] {
                let next = cost + e.len;
                if next < dist[e.to] {
                    dist[e.to] = next;
                    prev[e.to] = node;
                    heap.push(HeapItem {
                        cost: next,
                        node: e.to,
                    });
                }
            }
        }
        if dist[dst].is_infinite() {
            return None;
        }
        let mut path = vec![dst];
        let mut cur = dst;
        while cur != src {
            cur = prev[cur];
            path.push(cur);
        }
        path.reverse();
        Some(path)
    }

    /// Network (shortest-path) distance in meters between the nodes nearest
    /// to two planar points. `None` when disconnected or empty.
    ///
    /// Used by the road-type classifier (§8.4): a test segment is "straight"
    /// when its Euclidean and network distances agree within a threshold.
    pub fn network_distance(&self, a: Xy, b: Xy) -> Option<f64> {
        let na = self.nearest_node(a)?;
        let nb = self.nearest_node(b)?;
        let path = self.shortest_path(na, nb)?;
        Some(
            path.windows(2)
                .map(|w| self.nodes[w[0]].dist(&self.nodes[w[1]]))
                .sum(),
        )
    }
}

/// Min-heap item for Dijkstra.
#[derive(Debug, Clone, Copy, PartialEq)]
struct HeapItem {
    cost: f64,
    node: usize,
}

impl Eq for HeapItem {}

impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed for a min-heap; costs are always finite here.
        other
            .cost
            .partial_cmp(&self.cost)
            .expect("finite path costs")
    }
}

impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 3-node path graph: 0 —100m— 1 —100m— 2.
    fn path3() -> RoadNetwork {
        let mut net = RoadNetwork::new();
        let a = net.add_node(Xy::new(0.0, 0.0));
        let b = net.add_node(Xy::new(100.0, 0.0));
        let c = net.add_node(Xy::new(200.0, 0.0));
        net.add_edge(a, b);
        net.add_edge(b, c);
        net
    }

    #[test]
    fn shortest_path_on_a_line() {
        let net = path3();
        assert_eq!(net.shortest_path(0, 2), Some(vec![0, 1, 2]));
        assert_eq!(net.shortest_path(2, 0), Some(vec![2, 1, 0]));
        assert_eq!(net.shortest_path(1, 1), Some(vec![1]));
    }

    #[test]
    fn dijkstra_prefers_the_shorter_route() {
        // Square with a diagonal shortcut.
        let mut net = RoadNetwork::new();
        let n00 = net.add_node(Xy::new(0.0, 0.0));
        let n10 = net.add_node(Xy::new(100.0, 0.0));
        let n01 = net.add_node(Xy::new(0.0, 100.0));
        let n11 = net.add_node(Xy::new(100.0, 100.0));
        net.add_edge(n00, n10);
        net.add_edge(n10, n11);
        net.add_edge(n00, n01);
        net.add_edge(n01, n11);
        net.add_edge(n00, n11); // diagonal, ~141 m < 200 m around
        let path = net.shortest_path(n00, n11).unwrap();
        assert_eq!(path, vec![n00, n11]);
    }

    #[test]
    fn unreachable_returns_none() {
        let mut net = path3();
        let lonely = net.add_node(Xy::new(9999.0, 9999.0));
        assert_eq!(net.shortest_path(0, lonely), None);
        assert!(net.network_distance(Xy::new(0.0, 0.0), Xy::new(9999.0, 9999.0)).is_none());
    }

    #[test]
    fn nearest_node_and_network_distance() {
        let net = path3();
        assert_eq!(net.nearest_node(Xy::new(10.0, 5.0)), Some(0));
        assert_eq!(net.nearest_node(Xy::new(160.0, -5.0)), Some(2));
        let d = net
            .network_distance(Xy::new(0.0, 1.0), Xy::new(200.0, -1.0))
            .unwrap();
        assert!((d - 200.0).abs() < 1e-9);
    }

    #[test]
    fn duplicate_and_self_edges_ignored() {
        let mut net = path3();
        let edges_before = net.edge_count();
        net.add_edge(0, 1);
        net.add_edge(1, 1);
        assert_eq!(net.edge_count(), edges_before);
    }

    #[test]
    fn totals_and_bbox() {
        let net = path3();
        assert_eq!(net.node_count(), 3);
        assert_eq!(net.edge_count(), 2);
        assert!((net.total_length_m() - 200.0).abs() < 1e-9);
        let bb = net.bbox().unwrap();
        assert_eq!(bb.width(), 200.0);
        assert_eq!(bb.height(), 0.0);
    }
}

//! Property-based tests for the geographic primitives.

use kamel_geo::{
    angle_between_deg, bearing_deg, discretize, equirectangular_m, haversine_m, normalize_deg,
    point_to_polyline_distance, polyline_length, BBox, Ellipse, LatLng, LocalProjection, Xy,
};
use proptest::prelude::*;

fn city_latlng() -> impl Strategy<Value = LatLng> {
    (40.9..41.4f64, -8.9..-8.3f64).prop_map(|(lat, lng)| LatLng::new(lat, lng))
}

proptest! {
    /// Projection round-trip error is far below GPS noise.
    #[test]
    fn projection_roundtrip(p in city_latlng()) {
        let proj = LocalProjection::new(LatLng::new(41.15, -8.61));
        let back = proj.to_latlng(proj.to_xy(p));
        prop_assert!(p.fast_dist_m(&back) < 0.01, "roundtrip error too large");
    }

    /// Haversine and equirectangular agree at city scale.
    #[test]
    fn distances_agree(a in city_latlng(), b in city_latlng()) {
        let h = haversine_m(a, b);
        let e = equirectangular_m(a, b);
        prop_assert!((h - e).abs() <= h.max(1.0) * 5e-3);
    }

    /// Haversine is a metric: symmetric, zero iff equal, triangle holds.
    #[test]
    fn haversine_metric(a in city_latlng(), b in city_latlng(), c in city_latlng()) {
        prop_assert!((haversine_m(a, b) - haversine_m(b, a)).abs() < 1e-6);
        prop_assert!(haversine_m(a, c) <= haversine_m(a, b) + haversine_m(b, c) + 1e-6);
        prop_assert_eq!(haversine_m(a, a), 0.0);
    }

    /// Normalized angles land in [0, 360); differences in [0, 180].
    #[test]
    fn angles_in_range(a in -1e4..1e4f64, b in -1e4..1e4f64) {
        let na = normalize_deg(a);
        prop_assert!((0.0..360.0).contains(&na));
        let d = angle_between_deg(a, b);
        prop_assert!((0.0..=180.0).contains(&d));
        // Symmetric.
        prop_assert!((d - angle_between_deg(b, a)).abs() < 1e-9);
    }

    /// Bearing plus 180° flips direction.
    #[test]
    fn bearing_reverse(ax in -1e4..1e4f64, ay in -1e4..1e4f64, bx in -1e4..1e4f64, by in -1e4..1e4f64) {
        let a = Xy::new(ax, ay);
        let b = Xy::new(bx, by);
        prop_assume!(a != b);
        let fwd = bearing_deg(a, b).unwrap();
        let rev = bearing_deg(b, a).unwrap();
        prop_assert!((angle_between_deg(fwd, rev) - 180.0).abs() < 1e-6);
    }

    /// Discretized points lie on the polyline and are spaced ≤ interval.
    #[test]
    fn discretize_invariants(
        pts in proptest::collection::vec((-5e3..5e3f64, -5e3..5e3f64), 2..12),
        interval in 10.0..500.0f64,
    ) {
        let line: Vec<Xy> = pts.into_iter().map(|(x, y)| Xy::new(x, y)).collect();
        let samples = discretize(&line, interval);
        prop_assert_eq!(samples[0], line[0]);
        prop_assert_eq!(*samples.last().unwrap(), *line.last().unwrap());
        for s in &samples {
            prop_assert!(point_to_polyline_distance(*s, &line) < 1e-6);
        }
        // Count is consistent with the length.
        let expected = (polyline_length(&line) / interval).floor() as usize;
        prop_assert!(samples.len() >= expected.max(1));
    }

    /// A bbox built from points contains all of them; union is monotone.
    #[test]
    fn bbox_contains_sources(
        pts in proptest::collection::vec((-5e3..5e3f64, -5e3..5e3f64), 1..20),
    ) {
        let xs: Vec<Xy> = pts.into_iter().map(|(x, y)| Xy::new(x, y)).collect();
        let bb = BBox::of_points(xs.iter().copied()).unwrap();
        for p in &xs {
            prop_assert!(bb.contains(*p));
        }
        let grown = bb.union(&BBox::new(Xy::new(0.0, 0.0), Xy::new(1.0, 1.0)));
        prop_assert!(grown.contains_bbox(&bb));
    }

    /// The speed ellipse always contains the chord between its foci.
    #[test]
    fn ellipse_contains_chord(
        fx in -1e3..1e3f64, fy in -1e3..1e3f64,
        gx in -1e3..1e3f64, gy in -1e3..1e3f64,
        speed in 1.0..40.0f64, dt in 0.0..600.0f64, t in 0.0..1.0f64,
    ) {
        let f1 = Xy::new(fx, fy);
        let f2 = Xy::new(gx, gy);
        let e = Ellipse::speed_constraint(f1, f2, speed, dt);
        prop_assert!(e.contains(f1.lerp(&f2, t)));
    }
}

//! # kamel-router — spatial scale-out over a fleet of kamel-servers
//!
//! KAMEL's partitioning module scales *models* to fine spatial regions
//! (the pyramid repository, paper §4); this crate scales *machines* the
//! same way. It is a dependency-free HTTP/1.1 gateway over `std::net`
//! that owns a static [`shardmap::ShardMap`] — routing-cell ownership
//! assigned by rendezvous (highest-random-weight) hashing over each
//! shard's id — and routes `POST /v1/impute` to the shard owning each
//! gap's anchor cell:
//!
//! * **Single-owner forwarding** — a request whose gaps all belong to one
//!   shard is forwarded verbatim and answered with the shard's bytes,
//!   byte-identical to a monolithic server over the same model.
//! * **Scatter-gather** — a trajectory spanning territories is split at
//!   ownership changes into boundary-sharing sub-trajectories, imputed in
//!   parallel, and merged in order ([`proxy`]).
//! * **Health + failover** — per-shard consecutive-failure ejection with
//!   periodic probe re-admission ([`health`]), and deterministic replica
//!   failover down each cell's rendezvous chain. Admission is gated on
//!   the shard's `/v1/info` config digest matching the fleet, so a
//!   mixed-grid shard can never serve a request.
//! * **Overload resilience** — per-shard circuit breakers ([`breaker`])
//!   skip a failing/slow shard in O(1) ahead of the health machine;
//!   every request carries a deadline budget (`x-kamel-deadline-ms` or
//!   the configured default) that is re-stamped on each forward and
//!   turns into an honest 504 when spent; and with `--degraded-mode` a
//!   request no shard can serve is answered from the linear baseline,
//!   marked `"degraded": true` + `x-kamel-degraded` (DESIGN.md §14).
//!
//! Endpoints: `POST /v1/impute` (proxied), `GET /healthz`,
//! `GET /metrics` (per-shard request / failover / ejection counters and
//! in-flight gauges), `GET /v1/shards` (the live map + health). The CLI
//! front-end is `kamel route`; the protocol and failover state machine
//! are specified in `DESIGN.md` §11.

#![warn(missing_docs)]

pub mod breaker;
pub mod health;
pub mod metrics;
pub mod proxy;
pub mod router;
pub mod shardmap;

pub use breaker::{Breaker, BreakerEvent, BreakerPolicy, BreakerState};
pub use health::{HealthPolicy, HealthState, ShardState};
pub use metrics::{RouterMetrics, ShardCounters};
pub use proxy::{RouterConfig, RouterCore};
pub use router::Router;
pub use shardmap::{ShardInfo, ShardMap};

//! Chaos drills: a real fleet of `kamel-server` instances behind
//! fault-injecting [`kamel_chaos::ChaosProxy`] instances, all on
//! loopback, driven through a [`kamel_router::Router`].
//!
//! Every schedule here is scripted or seeded, so each drill replays
//! byte-for-byte. The contracts pinned:
//!
//! * faults on the owning shard (connect refusal, mid-body reset, torn
//!   responses) never corrupt an answer — every client request completes
//!   200 on the replica with bytes identical to the monolith;
//! * a repeatedly failing shard trips its circuit breaker open, is
//!   probed half-open after the hold, and closes again once the shard
//!   recovers — each transition visible exactly once per cycle in
//!   `/metrics`;
//! * a fleet that stalls past the request's deadline budget yields an
//!   honest 504, not a hang;
//! * with `--degraded-mode`, a fleet the router cannot reach at all
//!   still answers 200 from the linear baseline, marked degraded in
//!   both body and header;
//! * the same seed yields the same fault assignment, connection for
//!   connection.

use kamel::{Kamel, KamelConfig};
use kamel_chaos::{ChaosConfig, ChaosProxy, ChaosSchedule, Fault};
use kamel_geo::{GpsPoint, Trajectory};
use kamel_router::{BreakerPolicy, HealthPolicy, Router, RouterConfig, ShardInfo, ShardMap};
use kamel_server::{
    Client, ImputeEngine, RequestOpts, RetryPolicy, Server, ServerConfig, WireService,
};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn street_corpus(n: usize) -> Vec<Trajectory> {
    (0..n)
        .map(|_| {
            Trajectory::new(
                (0..30)
                    .map(|i| GpsPoint::from_parts(41.15, -8.61 + i as f64 * 0.001, i as f64 * 10.0))
                    .collect(),
            )
        })
        .collect()
}

fn trained() -> Arc<Kamel> {
    let kamel = Kamel::new(
        KamelConfig::builder()
            .model_threshold_k(50)
            .pyramid_height(3)
            .threads(Some(2))
            .build(),
    );
    kamel.train(&street_corpus(40));
    Arc::new(kamel)
}

fn sparse_request(i: usize) -> Trajectory {
    let jitter = i as f64 * 1e-5;
    Trajectory::new(vec![
        GpsPoint::from_parts(41.15, -8.610 + jitter, 0.0),
        GpsPoint::from_parts(41.15, -8.609 + jitter, 10.0),
        GpsPoint::from_parts(41.15, -8.589 + jitter, 210.0),
        GpsPoint::from_parts(41.15, -8.588 + jitter, 220.0),
    ])
}

fn boot_shard(kamel: &Arc<Kamel>) -> Server {
    let engine = Arc::new(ImputeEngine::new(Arc::clone(kamel)));
    let config = ServerConfig {
        workers: 2,
        handlers: 16,
        batch_max: 4,
        batch_wait: Duration::from_millis(2),
        queue_cap: 64,
        cache_entries: 0,
        deadline: Duration::from_secs(30),
        idle_poll: Duration::from_millis(50),
        degraded_mode: false,
        ..ServerConfig::default()
    };
    Server::bind("127.0.0.1:0", engine, config).expect("bind shard")
}

/// A router config tuned for drills: no client pooling (every forward is
/// a fresh connection, so scripted faults land in accept order), one
/// connect attempt per forward, probes effectively off after boot.
fn drill_config(breaker: BreakerPolicy) -> RouterConfig {
    RouterConfig {
        handlers: 8,
        timeout: Duration::from_secs(5),
        retry: RetryPolicy {
            base: Duration::from_millis(1),
            max_delay: Duration::from_millis(2),
            max_attempts: 1,
            deadline: Duration::from_secs(10),
            jitter_seed: 7,
        },
        health: HealthPolicy {
            // Breakers drive these drills; keep the health machine from
            // ejecting underneath them.
            eject_after: 1_000,
            probe_interval: Duration::from_secs(600),
        },
        breaker,
        idle_poll: Duration::from_millis(50),
        max_pool: 0,
        default_deadline: Duration::from_secs(10),
        degraded: false,
        degraded_max_gap_m: 100.0,
        ..RouterConfig::default()
    }
}

/// A breaker that never trips (for drills where failover is the point):
/// failures can never reach twice the sample count.
fn inert_breaker() -> BreakerPolicy {
    BreakerPolicy {
        failure_ratio: 2.0,
        ..BreakerPolicy::default()
    }
}

fn fleet_map(addrs: &[SocketAddr], cell_deg: f64) -> ShardMap {
    let shards = addrs
        .iter()
        .enumerate()
        .map(|(i, addr)| ShardInfo {
            id: format!("shard-{i}"),
            addr: *addr,
        })
        .collect();
    ShardMap::new(shards, cell_deg).unwrap()
}

/// Which shard index owns every drill request's cell. Rendezvous
/// ownership depends only on the shard ids and the cell, so this can be
/// computed from a throwaway map before any proxy exists.
fn owner_index() -> usize {
    let dummy: Vec<SocketAddr> = vec![
        "127.0.0.1:1".parse().unwrap(),
        "127.0.0.1:2".parse().unwrap(),
    ];
    let map = fleet_map(&dummy, 1.0);
    map.owner_order(map.cell_of(sparse_request(0).points[0].pos))[0]
}

fn direct_bytes(kamel: &Arc<Kamel>, sparse: &Trajectory) -> Vec<u8> {
    ImputeEngine::new(Arc::clone(kamel)).render(&kamel.impute(sparse))
}

fn proxy_for(upstream: SocketAddr, script: &str) -> ChaosProxy {
    let schedule = ChaosSchedule::parse_script(script).expect("drill script");
    let mut config = ChaosConfig::new(schedule);
    // Keep the slow faults fast enough for a test run.
    config.stall_ms = 3_000;
    config.trickle_ms = 1;
    ChaosProxy::bind(upstream, config).expect("bind chaos proxy")
}

/// Reads one labeled counter out of the Prometheus page.
fn metric(page: &str, series: &str) -> u64 {
    page.lines()
        .find_map(|l| l.strip_prefix(series).and_then(|rest| rest.trim().parse().ok()))
        .unwrap_or_else(|| panic!("series {series} missing from:\n{page}"))
}

fn wait_for<F: FnMut() -> bool>(what: &str, mut cond: F) {
    let deadline = Instant::now() + Duration::from_secs(15);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn owner_faults_never_corrupt_an_answer() {
    let kamel = trained();
    let owner = owner_index();
    let (shard_a, shard_b) = (boot_shard(&kamel), boot_shard(&kamel));
    let upstreams = [shard_a.local_addr(), shard_b.local_addr()];
    // Connection 0 on each proxy is the boot probe and must relay
    // faithfully; after that the owner's connections cycle through every
    // response-corrupting fault while the replica stays clean.
    let owner_script = "none,refuse,reset,torn,none,reset,refuse,torn";
    let mut proxies = [
        proxy_for(upstreams[0], if owner == 0 { owner_script } else { "none" }),
        proxy_for(upstreams[1], if owner == 1 { owner_script } else { "none" }),
    ];
    let map = fleet_map(&[proxies[0].addr(), proxies[1].addr()], 1.0);
    let router = Router::bind("127.0.0.1:0", map, drill_config(inert_breaker()))
        .expect("bind router");
    assert_eq!(router.core().available_shards(), 2, "boot probes admitted the fleet");
    let addr = router.local_addr();
    let replica_id = format!("shard-{}", 1 - owner);
    let mut served_by_replica = 0;
    for i in 0..8 {
        let sparse = sparse_request(i);
        let body = serde_json::to_vec(&sparse).unwrap();
        let mut c = Client::connect(addr, Duration::from_secs(30)).unwrap();
        let resp = c.post_json("/v1/impute", &body).unwrap();
        // A refused, reset, or torn owner is survived by failover; a
        // corrupted upstream response must never reach the client.
        assert_eq!(resp.status, 200, "request {i}: {}", resp.text());
        assert_eq!(
            resp.body,
            direct_bytes(&kamel, &sparse),
            "request {i} differs from the monolith"
        );
        if resp.header("x-kamel-shard") == Some(replica_id.as_str()) {
            served_by_replica += 1;
        }
    }
    assert!(served_by_replica >= 4, "faulted requests failed over ({served_by_replica})");
    let owner_errors = router
        .core()
        .metrics()
        .shard(owner)
        .errors
        .load(Ordering::Relaxed);
    assert!(owner_errors >= 4, "owner faults were recorded ({owner_errors})");
    // The fault assignment replayed exactly as scripted.
    let script: Vec<Fault> = [
        Fault::None,
        Fault::Refuse,
        Fault::ResetMidBody,
        Fault::Torn,
        Fault::None,
        Fault::ResetMidBody,
        Fault::Refuse,
        Fault::Torn,
    ]
    .into();
    let log = proxies[owner].log();
    let faults: Vec<Fault> = log.iter().map(|&(_, f)| f).collect();
    assert!(
        faults.starts_with(&script[..script.len().min(faults.len())]),
        "scripted schedule drifted: {faults:?}"
    );
    router.shutdown();
    for p in &mut proxies {
        p.shutdown();
    }
    shard_a.shutdown();
    shard_b.shutdown();
}

#[test]
fn breaker_opens_probes_half_open_and_closes_after_recovery() {
    let kamel = trained();
    let shard = boot_shard(&kamel);
    // Connection 0: boot probe. Then a burst of refusals (the outage),
    // then recovery forever.
    let mut proxy = proxy_for(shard.local_addr(), "none,refuse*6,none");
    let map = fleet_map(&[proxy.addr()], 1.0);
    let breaker = BreakerPolicy {
        window: 4,
        min_samples: 2,
        failure_ratio: 0.5,
        latency_threshold: Duration::from_secs(10),
        open_for: Duration::from_millis(120),
        half_open_probes: 1,
        close_after: 1,
    };
    let router = Router::bind("127.0.0.1:0", map, drill_config(breaker)).expect("bind router");
    assert_eq!(router.core().available_shards(), 1);
    let addr = router.local_addr();
    let core = Arc::clone(router.core());
    let body = serde_json::to_vec(&sparse_request(0)).unwrap();
    let mut statuses = Vec::new();
    // Drive requests until the full cycle is visible: the outage trips
    // the breaker, the hold expires into a half-open probe, and the
    // recovered shard closes it again.
    wait_for("breaker to trip, probe, and close", || {
        let mut c = Client::connect(addr, Duration::from_secs(10)).unwrap();
        statuses.push(c.post_json("/v1/impute", &body).unwrap().status);
        let page = core.metrics_page();
        metric(&page, "kamel_router_breaker_closes_total{shard=\"shard-0\"}") >= 1
    });
    let page = core.metrics_page();
    assert!(metric(&page, "kamel_router_breaker_opens_total{shard=\"shard-0\"}") >= 1);
    assert!(metric(&page, "kamel_router_breaker_half_opens_total{shard=\"shard-0\"}") >= 1);
    assert_eq!(
        metric(&page, "kamel_router_breaker_state{shard=\"shard-0\"}"),
        0,
        "breaker ends Closed"
    );
    // The drill saw the outage from the outside: some requests were
    // refused service while the breaker held the shard open.
    assert!(statuses.contains(&503), "open breaker shed load: {statuses:?}");
    // And the recovered world serves normally.
    let mut c = Client::connect(addr, Duration::from_secs(10)).unwrap();
    assert_eq!(c.post_json("/v1/impute", &body).unwrap().status, 200);
    router.shutdown();
    proxy.shutdown();
    shard.shutdown();
}

#[test]
fn stalled_fleet_yields_an_honest_504_within_the_budget() {
    let kamel = trained();
    let (shard_a, shard_b) = (boot_shard(&kamel), boot_shard(&kamel));
    // Both replicas admit at boot, then stall every later connection
    // past the request budget.
    let mut proxy_a = proxy_for(shard_a.local_addr(), "none,stall");
    let mut proxy_b = proxy_for(shard_b.local_addr(), "none,stall");
    let map = fleet_map(&[proxy_a.addr(), proxy_b.addr()], 1.0);
    let router = Router::bind("127.0.0.1:0", map, drill_config(inert_breaker()))
        .expect("bind router");
    assert_eq!(router.core().available_shards(), 2);
    let body = serde_json::to_vec(&sparse_request(0)).unwrap();
    let mut c = Client::connect(router.local_addr(), Duration::from_secs(30)).unwrap();
    let started = Instant::now();
    let resp = c
        .post_json_opts(
            "/v1/impute",
            &body,
            RequestOpts {
                headers: &[],
                budget: Some(Duration::from_millis(250)),
            },
        )
        .unwrap();
    let elapsed = started.elapsed();
    assert_eq!(resp.status, 504, "{}", resp.text());
    assert!(resp.text().contains("deadline exceeded"), "{}", resp.text());
    // The budget bounded the wait: well under the 3 s stall, not pinned
    // until the fleet deigns to answer.
    assert!(elapsed < Duration::from_secs(2), "took {elapsed:?}");
    assert_eq!(
        router.core().metrics().requests_deadline.load(Ordering::Relaxed),
        1
    );
    router.shutdown();
    proxy_a.shutdown();
    proxy_b.shutdown();
    shard_a.shutdown();
    shard_b.shutdown();
}

#[test]
fn dark_fleet_answers_degraded_when_enabled() {
    let kamel = trained();
    let shard = boot_shard(&kamel);
    // Every connection is refused: the boot probe fails, the shard stays
    // unverified, and no forward can ever succeed.
    let mut proxy = proxy_for(shard.local_addr(), "refuse");
    let map = fleet_map(&[proxy.addr()], 1.0);
    let config = RouterConfig {
        degraded: true,
        ..drill_config(inert_breaker())
    };
    let router = Router::bind("127.0.0.1:0", map, config).expect("bind router");
    assert_eq!(router.core().available_shards(), 0, "nothing admitted");
    let sparse = sparse_request(0);
    let body = serde_json::to_vec(&sparse).unwrap();
    let mut c = Client::connect(router.local_addr(), Duration::from_secs(10)).unwrap();
    let resp = c.post_json("/v1/impute", &body).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.text());
    assert_eq!(resp.header("x-kamel-degraded"), Some("no-shard-available"));
    assert_eq!(resp.header("x-kamel-shard"), Some("degraded"));
    let value: serde_json::Value = serde_json::from_slice(&resp.body).unwrap();
    assert_eq!(value["degraded"], serde_json::Value::Bool(true));
    let dense = value["trajectory"]["points"]
        .as_array()
        .expect("degraded answer carries a trajectory");
    assert!(
        dense.len() > sparse.points.len(),
        "linear baseline filled the gap ({} points)",
        dense.len()
    );
    assert_eq!(router.core().metrics().degraded.load(Ordering::Relaxed), 1);
    router.shutdown();
    proxy.shutdown();
    shard.shutdown();
}

#[test]
fn same_seed_assigns_the_same_faults_connection_for_connection() {
    let kamel = trained();
    let shard = boot_shard(&kamel);
    let schedule = |seed| {
        let mut config = ChaosConfig::new(ChaosSchedule::seeded(seed));
        config.stall_ms = 200; // bound shutdown when a stall is drawn
        config.trickle_ms = 1;
        config
    };
    let mut first = ChaosProxy::bind(shard.local_addr(), schedule(42)).expect("proxy");
    let mut second = ChaosProxy::bind(shard.local_addr(), schedule(42)).expect("proxy");
    for proxy in [&first, &second] {
        for _ in 0..6 {
            // Touch and drop: the accept (not the traffic) draws the fault.
            drop(TcpStream::connect_timeout(&proxy.addr(), Duration::from_secs(5)));
        }
        wait_for("all connections logged", || proxy.log().len() == 6);
    }
    assert_eq!(first.log(), second.log(), "same seed, same schedule");
    assert!(
        first.log().iter().map(|&(i, _)| i).eq(0..6),
        "log is in accept order"
    );
    first.shutdown();
    second.shutdown();
    shard.shutdown();
}

//! Map inference — the application that motivates KAMEL (§1).
//!
//! ```text
//! cargo run --release --example map_inference
//! ```
//!
//! KAMEL is designed as a pre-processing step for map inference: when the
//! road network is unknown, dense imputed trajectories reveal far more of
//! it than the sparse input. This example runs the density-threshold map
//! inference of `kamel_eval::mapinfer` on (a) the raw sparse fixes,
//! (b) linear-interpolated trajectories, and (c) KAMEL's imputed versions,
//! then scores each inferred map against the hidden ground-truth network.

use kamel::{Kamel, KamelConfig};
use kamel_baselines::{LinearImputer, TrajectoryImputer};
use kamel_eval::mapinfer::{compare_maps, infer_map, rasterize_network, MapInferConfig};
use kamel_geo::Trajectory;
use kamel_roadsim::{Dataset, DatasetScale};

fn main() {
    let dataset = Dataset::porto_like(DatasetScale::Small);
    let proj = dataset.projection();
    let cfg = MapInferConfig::default();
    let truth = rasterize_network(&dataset.network, &cfg);
    println!(
        "hidden network: {:.1} km of road over {} inference cells",
        dataset.network.total_length_m() / 1_000.0,
        truth.len()
    );

    let kamel = Kamel::new(
        KamelConfig::builder()
            .pyramid_height(3)
            .pyramid_maintained(3)
            .model_threshold_k(150)
            .build(),
    );
    kamel.train(&dataset.train);

    // The observed world: only sparse trajectories (1.5 km gaps).
    let sparse: Vec<Trajectory> = dataset.test.iter().map(|t| t.sparsify(1_500.0)).collect();

    // (a) raw sparse fixes — what the sensor gave us. Use single-point
    // trajectories so no interpolation sneaks in.
    let raw_fixes: Vec<Trajectory> = sparse
        .iter()
        .flat_map(|t| t.points.iter().map(|p| Trajectory::new(vec![*p])))
        .collect();
    // (b) the linear baseline.
    let linear = LinearImputer::default();
    let linear_dense: Vec<Trajectory> =
        sparse.iter().map(|t| linear.impute(t).trajectory).collect();
    // (c) KAMEL.
    let kamel_dense: Vec<Trajectory> = kamel
        .impute_batch(&sparse)
        .into_iter()
        .map(|r| r.trajectory)
        .collect();

    println!(
        "\n{:<22} {:>12} {:>15} {:>8}",
        "inference input", "road recall", "road precision", "F1"
    );
    for (label, trajs) in [
        ("sparse fixes only", &raw_fixes),
        ("linear interpolation", &linear_dense),
        ("KAMEL imputed", &kamel_dense),
    ] {
        let inferred = infer_map(trajs, &proj, &cfg);
        let q = compare_maps(&inferred, &truth, 1);
        println!(
            "{label:<22} {:>12.3} {:>15.3} {:>8.3}",
            q.road_recall, q.road_precision, q.f1
        );
    }
}

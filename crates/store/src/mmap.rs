//! Read-only file mapping without a libc dependency.
//!
//! On Linux the store file is `mmap`ed (`PROT_READ`, `MAP_PRIVATE`) so
//! int8 weight records serve straight out of the page cache: residency is
//! managed by the kernel per 4 KiB page, and a thousand-cell city store
//! costs address space, not heap. Everywhere else — and whenever the
//! mapping syscall fails — the file is read into a heap buffer with
//! identical semantics, so callers never branch on the backing.
//!
//! The raw syscalls are declared locally (two symbols, stable ABI since
//! forever) instead of pulling in a bindings crate.

use std::fs::File;
use std::io::Read;
use std::path::Path;

#[cfg(target_os = "linux")]
mod sys {
    pub const PROT_READ: i32 = 1;
    pub const MAP_PRIVATE: i32 = 2;
    extern "C" {
        pub fn mmap(
            addr: *mut u8,
            length: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut u8;
        pub fn munmap(addr: *mut u8, length: usize) -> i32;
    }
}

enum Backing {
    /// A live kernel mapping (Linux only). Unmapped on drop.
    #[cfg(target_os = "linux")]
    Mapped { ptr: *const u8, len: usize },
    /// Heap fallback: the whole file, read eagerly.
    Heap(Vec<u8>),
}

/// An immutable byte view of a file, mapped when the platform allows it.
pub struct MappedFile {
    backing: Backing,
}

// SAFETY: the mapping is PROT_READ + MAP_PRIVATE over a file descriptor we
// own for the duration of the mmap call; nothing can write through it and
// the pointer never moves, so shared references from any thread are fine.
unsafe impl Send for MappedFile {}
unsafe impl Sync for MappedFile {}

impl MappedFile {
    /// Opens `path`, mapping it when possible and falling back to a heap
    /// read. Note that (as with any mmap'ed file) truncating the file
    /// while mapped is undefined; stores are only replaced atomically via
    /// rename, which keeps existing mappings intact.
    pub fn open(path: &Path) -> std::io::Result<Self> {
        let mut file = File::open(path)?;
        let len = file.metadata()?.len();
        let len = usize::try_from(len).map_err(|_| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, "file exceeds address space")
        })?;
        #[cfg(target_os = "linux")]
        if len > 0 {
            use std::os::unix::io::AsRawFd;
            let ptr = unsafe {
                sys::mmap(
                    std::ptr::null_mut(),
                    len,
                    sys::PROT_READ,
                    sys::MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if !ptr.is_null() && ptr as isize != -1 {
                return Ok(MappedFile {
                    backing: Backing::Mapped { ptr, len },
                });
            }
        }
        let mut buf = Vec::with_capacity(len);
        file.read_to_end(&mut buf)?;
        Ok(MappedFile {
            backing: Backing::Heap(buf),
        })
    }

    /// Wraps an in-memory buffer (tests, and platforms without mmap).
    pub fn from_bytes(bytes: Vec<u8>) -> Self {
        MappedFile {
            backing: Backing::Heap(bytes),
        }
    }

    /// Whether this view is a live kernel mapping (vs. a heap copy).
    pub fn is_mapped(&self) -> bool {
        match &self.backing {
            #[cfg(target_os = "linux")]
            Backing::Mapped { .. } => true,
            Backing::Heap(_) => false,
        }
    }

    /// Length of the view in bytes.
    pub fn len(&self) -> usize {
        self.as_bytes().len()
    }

    /// Whether the file was empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn as_bytes(&self) -> &[u8] {
        match &self.backing {
            #[cfg(target_os = "linux")]
            // SAFETY: ptr..ptr+len is exactly the extent mmap returned and
            // stays valid until Drop unmaps it.
            Backing::Mapped { ptr, len } => unsafe { std::slice::from_raw_parts(*ptr, *len) },
            Backing::Heap(v) => v,
        }
    }
}

impl kamel_nn::ByteSource for MappedFile {
    fn bytes(&self) -> &[u8] {
        self.as_bytes()
    }
}

impl Drop for MappedFile {
    fn drop(&mut self) {
        #[cfg(target_os = "linux")]
        if let Backing::Mapped { ptr, len } = self.backing {
            // SAFETY: exactly the region mmap returned, unmapped once.
            unsafe { sys::munmap(ptr as *mut u8, len) };
        }
    }
}

impl std::fmt::Debug for MappedFile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MappedFile")
            .field("len", &self.len())
            .field("mapped", &self.is_mapped())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kamel_nn::ByteSource;

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "kamel_store_mmap_{tag}_{}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).expect("create temp dir");
        dir
    }

    #[test]
    fn maps_file_contents_exactly() {
        let dir = tmp_dir("exact");
        let path = dir.join("blob.bin");
        let payload: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        std::fs::write(&path, &payload).expect("write");
        let map = MappedFile::open(&path).expect("open");
        assert_eq!(map.bytes(), &payload[..]);
        assert_eq!(map.len(), payload.len());
        #[cfg(target_os = "linux")]
        assert!(map.is_mapped(), "linux should map, not copy");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_file_falls_back_to_heap() {
        let dir = tmp_dir("empty");
        let path = dir.join("empty.bin");
        std::fs::write(&path, b"").expect("write");
        let map = MappedFile::open(&path).expect("open");
        assert!(map.is_empty());
        assert!(!map.is_mapped());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn from_bytes_serves_heap_buffer() {
        let map = MappedFile::from_bytes(vec![1, 2, 3]);
        assert_eq!(map.bytes(), &[1, 2, 3]);
        assert!(!map.is_mapped());
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let err = MappedFile::open(Path::new("/nonexistent/kamel/store.kstore"))
            .expect_err("must fail");
        assert_eq!(err.kind(), std::io::ErrorKind::NotFound);
    }
}

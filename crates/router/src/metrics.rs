//! Router metrics: fleet-level and per-shard counters in the same
//! Prometheus text idiom as `kamel-server`'s `/metrics`, with a
//! `{shard="..."}` label per backend.

use std::sync::atomic::{AtomicU64, Ordering};

/// Counters for one backend shard.
#[derive(Debug, Default)]
pub struct ShardCounters {
    /// Requests (or sub-requests of a scatter) forwarded to this shard.
    pub forwarded: AtomicU64,
    /// Forward attempts that failed (transport error or 5xx).
    pub errors: AtomicU64,
    /// Requests that failed over *past* this shard (it was ejected,
    /// unverified, or just failed) to a replica further down the chain.
    pub failovers: AtomicU64,
    /// Times this shard was ejected by the health machine.
    pub ejections: AtomicU64,
    /// Times it was admitted at boot / re-admitted after an ejection.
    pub admissions: AtomicU64,
    /// Probe admissions refused because the shard's `/v1/info` config
    /// digest disagreed with the fleet.
    pub admission_refusals: AtomicU64,
    /// Forwards currently in flight (gauge).
    pub inflight: AtomicU64,
    /// Times this shard's circuit breaker tripped open.
    pub breaker_opens: AtomicU64,
    /// Times the breaker went half-open (open timer elapsed, probing).
    pub breaker_half_opens: AtomicU64,
    /// Times the breaker closed after successful half-open probes.
    pub breaker_closes: AtomicU64,
    /// Forwards skipped in O(1) because the breaker refused admission.
    pub breaker_skips: AtomicU64,
}

/// The router's metrics registry.
#[derive(Debug)]
pub struct RouterMetrics {
    shard_ids: Vec<String>,
    shards: Vec<ShardCounters>,
    /// Client requests answered 2xx (whether proxied or merged).
    pub requests_ok: AtomicU64,
    /// Client requests rejected as malformed (400).
    pub requests_bad: AtomicU64,
    /// Client requests the fleet could not serve (502/503 from the
    /// router itself).
    pub requests_failed: AtomicU64,
    /// Requests whose gaps spanned more than one shard (scatter-gather).
    pub scatter_requests: AtomicU64,
    /// Requests whose deadline budget ran out at the router (504).
    pub requests_deadline: AtomicU64,
    /// Requests answered from the degraded linear-interpolation path.
    pub degraded: AtomicU64,
}

impl RouterMetrics {
    /// A registry for the given fleet (ids label the per-shard series).
    pub fn new(shard_ids: Vec<String>) -> Self {
        let shards = shard_ids.iter().map(|_| ShardCounters::default()).collect();
        Self {
            shard_ids,
            shards,
            requests_ok: AtomicU64::new(0),
            requests_bad: AtomicU64::new(0),
            requests_failed: AtomicU64::new(0),
            scatter_requests: AtomicU64::new(0),
            requests_deadline: AtomicU64::new(0),
            degraded: AtomicU64::new(0),
        }
    }

    /// The counters for shard `i` (indexed like the shard map).
    pub fn shard(&self, i: usize) -> &ShardCounters {
        &self.shards[i]
    }

    /// The Prometheus text exposition for `GET /metrics`.
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(2048);
        let mut counter = |name: &str, help: &str, value: u64| {
            out.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} counter\n{name} {value}\n"
            ));
        };
        counter(
            "kamel_router_requests_ok_total",
            "Client requests answered successfully.",
            self.requests_ok.load(Ordering::Relaxed),
        );
        counter(
            "kamel_router_requests_bad_total",
            "Client requests rejected as malformed.",
            self.requests_bad.load(Ordering::Relaxed),
        );
        counter(
            "kamel_router_requests_failed_total",
            "Client requests the fleet could not serve.",
            self.requests_failed.load(Ordering::Relaxed),
        );
        counter(
            "kamel_router_scatter_requests_total",
            "Requests whose gaps spanned more than one shard.",
            self.scatter_requests.load(Ordering::Relaxed),
        );
        counter(
            "kamel_router_deadline_exceeded_total",
            "Requests whose deadline budget ran out at the router (504).",
            self.requests_deadline.load(Ordering::Relaxed),
        );
        counter(
            "kamel_router_degraded_total",
            "Requests answered from the degraded linear path.",
            self.degraded.load(Ordering::Relaxed),
        );
        let labeled = |out: &mut String, name: &str, help: &str, kind: &str, get: &dyn Fn(&ShardCounters) -> u64| {
            out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} {kind}\n"));
            for (id, counters) in self.shard_ids.iter().zip(&self.shards) {
                out.push_str(&format!("{name}{{shard=\"{id}\"}} {}\n", get(counters)));
            }
        };
        labeled(
            &mut out,
            "kamel_router_shard_requests_total",
            "Forwards sent to each shard.",
            "counter",
            &|c| c.forwarded.load(Ordering::Relaxed),
        );
        labeled(
            &mut out,
            "kamel_router_shard_errors_total",
            "Forward attempts that failed per shard.",
            "counter",
            &|c| c.errors.load(Ordering::Relaxed),
        );
        labeled(
            &mut out,
            "kamel_router_failovers_total",
            "Requests that failed over past each shard to a replica.",
            "counter",
            &|c| c.failovers.load(Ordering::Relaxed),
        );
        labeled(
            &mut out,
            "kamel_router_ejections_total",
            "Health-machine ejections per shard.",
            "counter",
            &|c| c.ejections.load(Ordering::Relaxed),
        );
        labeled(
            &mut out,
            "kamel_router_admissions_total",
            "Admissions and re-admissions per shard.",
            "counter",
            &|c| c.admissions.load(Ordering::Relaxed),
        );
        labeled(
            &mut out,
            "kamel_router_admission_refusals_total",
            "Admissions refused on a config-digest mismatch per shard.",
            "counter",
            &|c| c.admission_refusals.load(Ordering::Relaxed),
        );
        labeled(
            &mut out,
            "kamel_router_breaker_opens_total",
            "Circuit-breaker trips (Closed/HalfOpen to Open) per shard.",
            "counter",
            &|c| c.breaker_opens.load(Ordering::Relaxed),
        );
        labeled(
            &mut out,
            "kamel_router_breaker_half_opens_total",
            "Breaker transitions to HalfOpen (probing) per shard.",
            "counter",
            &|c| c.breaker_half_opens.load(Ordering::Relaxed),
        );
        labeled(
            &mut out,
            "kamel_router_breaker_closes_total",
            "Breaker closes after successful half-open probes per shard.",
            "counter",
            &|c| c.breaker_closes.load(Ordering::Relaxed),
        );
        labeled(
            &mut out,
            "kamel_router_breaker_skips_total",
            "Forwards skipped because the breaker refused admission.",
            "counter",
            &|c| c.breaker_skips.load(Ordering::Relaxed),
        );
        labeled(
            &mut out,
            "kamel_router_inflight",
            "Forwards currently in flight per shard.",
            "gauge",
            &|c| c.inflight.load(Ordering::Relaxed),
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_labels_every_shard() {
        let m = RouterMetrics::new(vec!["west".into(), "east".into()]);
        m.requests_ok.store(7, Ordering::Relaxed);
        m.shard(0).forwarded.store(4, Ordering::Relaxed);
        m.shard(1).ejections.store(1, Ordering::Relaxed);
        m.shard(1).inflight.store(2, Ordering::Relaxed);
        m.shard(0).breaker_opens.store(3, Ordering::Relaxed);
        m.requests_deadline.store(5, Ordering::Relaxed);
        m.degraded.store(6, Ordering::Relaxed);
        let page = m.render();
        assert!(page.contains("kamel_router_requests_ok_total 7"), "{page}");
        assert!(page.contains("kamel_router_deadline_exceeded_total 5"), "{page}");
        assert!(page.contains("kamel_router_degraded_total 6"), "{page}");
        assert!(page.contains("kamel_router_breaker_opens_total{shard=\"west\"} 3"), "{page}");
        assert!(page.contains("kamel_router_breaker_skips_total{shard=\"east\"} 0"), "{page}");
        assert!(page.contains("kamel_router_breaker_closes_total{shard=\"west\"} 0"), "{page}");
        assert!(page.contains("kamel_router_shard_requests_total{shard=\"west\"} 4"), "{page}");
        assert!(page.contains("kamel_router_shard_requests_total{shard=\"east\"} 0"), "{page}");
        assert!(page.contains("kamel_router_ejections_total{shard=\"east\"} 1"), "{page}");
        assert!(page.contains("kamel_router_inflight{shard=\"east\"} 2"), "{page}");
        assert!(page.contains("# TYPE kamel_router_inflight gauge"), "{page}");
    }
}

//! Throughput and latency of the `kamel-server` online serving layer,
//! driven open-loop.
//!
//! Boots a server on loopback over a freshly trained small model and
//! drives it with the coordinated-omission-free generator in
//! `kamel_bench::loadgen`: requests follow a fixed arrival schedule and
//! every latency sample is measured from the request's *intended* send
//! time, so server stalls surface as tail latency instead of silently
//! throttling the offered load. Three scenarios are written to
//! `BENCH_serve.json` at the repo root:
//!
//! * **cache_off / cache_on** — the imputation-cost and cache-hit story
//!   at a fixed 1k-connection level;
//! * **connection_sweep** — 1k → 50k keep-alive connections (capped by
//!   the host's fd headroom) at a constant offered rate: the reactor's
//!   connection-table scaling, measured per level.
//!
//! Run with `cargo bench --bench bench_serve`. Not a criterion bench:
//! the unit of work is a full HTTP round trip against a live server, so
//! the open-loop schedule over wall-clock is the honest measure.
//!
//! Environment knobs: `KAMEL_BENCH_RPS` (offered rate, default 200),
//! `KAMEL_BENCH_SECONDS` (per-level run length, default 10),
//! `KAMEL_BENCH_FD_HEADROOM` (connection-sweep cap, default 8000 —
//! raise `ulimit -n` and this together for the 25k/50k levels).

use kamel::Kamel;
use kamel_bench::loadgen::{self, LoadPlan};
use kamel_bench::{default_kamel_config, City};
use kamel_geo::Trajectory;
use kamel_roadsim::DatasetScale;
use kamel_server::{ImputeEngine, Server, ServerConfig};
use serde_json::json;
use std::sync::Arc;
use std::time::Duration;

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn boot(kamel: &Arc<Kamel>, cache_entries: usize, max_connections: usize) -> Server {
    let engine = Arc::new(ImputeEngine::new(Arc::clone(kamel)));
    let config = ServerConfig {
        workers: kamel_nn::thread_budget(),
        handlers: 16,
        cache_entries,
        deadline: Duration::from_secs(60),
        max_connections,
        ..ServerConfig::default()
    };
    Server::bind("127.0.0.1:0", engine, config).expect("bind")
}

fn run_level(
    kamel: &Arc<Kamel>,
    cache_entries: usize,
    plan: &LoadPlan,
    bodies: &Arc<Vec<Vec<u8>>>,
) -> serde_json::Value {
    let server = boot(kamel, cache_entries, plan.connections + 64);
    let outcome = loadgen::run(server.local_addr(), "/v1/impute", plan, bodies);
    let mut summary = loadgen::summary_json(plan, &outcome);
    if let serde_json::Value::Object(fields) = &mut summary {
        fields.insert(
            "cache_hit_rate".to_string(),
            json!(server.metrics().cache_hit_rate()),
        );
    }
    server.shutdown();
    summary
}

fn main() {
    let host = kamel_nn::available_threads();
    let budget = kamel_nn::thread_budget();
    eprintln!("bench_serve: host threads = {host}, budget = {budget}");
    let status = if host > 1 {
        "measured"
    } else {
        eprintln!(
            "WARNING: bench_serve is running on a single hardware thread; \
             concurrency numbers are NOT representative and the output will \
             carry status \"measured-single-core\"."
        );
        "measured-single-core"
    };
    let rate = env_f64("KAMEL_BENCH_RPS", 200.0);
    let seconds = env_f64("KAMEL_BENCH_SECONDS", 10.0);
    let headroom = env_f64("KAMEL_BENCH_FD_HEADROOM", 8_000.0) as usize;

    let dataset = City::Porto.dataset(DatasetScale::Small);
    let kamel = Kamel::new(default_kamel_config().build());
    kamel.train(&dataset.train);
    let kamel = Arc::new(kamel);
    let sparse: Vec<Trajectory> = dataset
        .test
        .iter()
        .take(40)
        .map(|t| t.sparsify(1_000.0))
        .collect();
    let bodies: Arc<Vec<Vec<u8>>> = Arc::new(
        sparse
            .iter()
            .map(|t| serde_json::to_vec(t).expect("serialize request"))
            .collect(),
    );
    eprintln!("model trained; {} distinct request bodies", bodies.len());

    // The cache story at a fixed 1k-connection level. Cache off: every
    // request pays full imputation. Cache on: the 40 distinct bodies
    // repeat across the schedule, so steady state is cache-dominated.
    let cache_plan = LoadPlan::at_rate(1_000, rate, seconds);
    let cold = run_level(&kamel, 0, &cache_plan, &bodies);
    eprintln!("cache-off level done");
    let cached = run_level(&kamel, 1_024, &cache_plan, &bodies);
    eprintln!("cache-on level done");

    // The connection sweep: constant offered rate, growing keep-alive
    // wall. What is being measured is the reactor's ability to hold the
    // connection table while the small driver pool keeps the schedule.
    let mut sweep = Vec::new();
    for level in loadgen::connection_sweep(headroom) {
        let plan = LoadPlan::at_rate(level, rate, seconds);
        eprintln!("sweep level: {level} connections");
        sweep.push(run_level(&kamel, 1_024, &plan, &bodies));
    }

    let doc = json!({
        "bench": "bench_serve",
        "status": status,
        "methodology": "open-loop, coordinated-omission-free: fixed arrival schedule, \
                        latency measured from intended send time (service_us is the \
                        send-to-last-byte time a closed-loop driver would report)",
        "host_threads": host,
        "thread_budget": budget,
        "offered_rps": rate,
        "seconds_per_level": seconds,
        "fd_headroom": headroom,
        "cache_off": cold,
        "cache_on": cached,
        "connection_sweep": sweep,
    });
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    std::fs::write(path, serde_json::to_string_pretty(&doc).expect("serialize"))
        .expect("write BENCH_serve.json");
    println!("{}", serde_json::to_string_pretty(&doc).expect("serialize"));
    println!("wrote {path}");
}

//! DBSCAN clustering for the Detokenization module (§7).
//!
//! The paper runs "the classical DBSCAN clustering algorithm \[21\] to
//! spatially cluster the contents of each token, based on each point's
//! direction". Points are (position, heading) samples; the neighborhood
//! metric combines planar distance and heading difference, each scaled by
//! its own ε, so two fixes are neighbors when they are both nearby and
//! heading the same way.

use kamel_geo::{angle_between_deg, Xy};

/// One clustering sample: a fix position and its travel heading.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DirectedPoint {
    /// Planar position in meters.
    pub pos: Xy,
    /// Travel heading in degrees clockwise from north.
    pub heading_deg: f64,
}

/// DBSCAN labels: `Some(cluster_index)` or `None` for noise.
pub type Labels = Vec<Option<usize>>;

/// Runs DBSCAN over directed points.
///
/// Two points are neighbors when their combined normalized distance
/// `sqrt((d_xy/eps_xy)² + (d_heading/eps_heading)²) <= 1`. A point is a core
/// point when its neighborhood (including itself) holds at least `min_pts`
/// points. Border points join the first core cluster that reaches them;
/// unreached points are noise.
pub fn dbscan(
    points: &[DirectedPoint],
    eps_xy_m: f64,
    eps_heading_deg: f64,
    min_pts: usize,
) -> Labels {
    assert!(eps_xy_m > 0.0 && eps_heading_deg > 0.0, "eps must be positive");
    assert!(min_pts >= 1, "min_pts must be at least 1");
    let n = points.len();
    let mut labels: Labels = vec![None; n];
    let mut visited = vec![false; n];
    let mut cluster = 0usize;
    // Token cells hold at most a few hundred fixes, so the O(n²)
    // neighborhood scan is cheaper than building an index per cell.
    let neighbors = |i: usize| -> Vec<usize> {
        let pi = &points[i];
        (0..n)
            .filter(|&j| {
                let pj = &points[j];
                let dx = pi.pos.dist(&pj.pos) / eps_xy_m;
                let dh = angle_between_deg(pi.heading_deg, pj.heading_deg) / eps_heading_deg;
                dx * dx + dh * dh <= 1.0
            })
            .collect()
    };
    for i in 0..n {
        if visited[i] {
            continue;
        }
        visited[i] = true;
        let seed = neighbors(i);
        if seed.len() < min_pts {
            continue; // noise (may be claimed by a later cluster as border)
        }
        labels[i] = Some(cluster);
        let mut queue: Vec<usize> = seed;
        let mut qi = 0;
        while qi < queue.len() {
            let j = queue[qi];
            qi += 1;
            if labels[j].is_none() {
                labels[j] = Some(cluster);
            }
            if !visited[j] {
                visited[j] = true;
                let nb = neighbors(j);
                if nb.len() >= min_pts {
                    queue.extend(nb);
                }
            }
        }
        cluster += 1;
    }
    labels
}

/// Number of clusters in a label vector.
pub fn cluster_count(labels: &Labels) -> usize {
    labels.iter().flatten().copied().max().map_or(0, |m| m + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(x: f64, y: f64, h: f64) -> DirectedPoint {
        DirectedPoint {
            pos: Xy::new(x, y),
            heading_deg: h,
        }
    }

    /// A right-turn hexagon (the paper's Figure 8a): horizontal traffic and
    /// vertical traffic form two clusters even when spatially interleaved.
    #[test]
    fn separates_two_directions() {
        let mut points = Vec::new();
        for i in 0..10 {
            points.push(pt(i as f64 * 5.0, 0.0, 90.0)); // eastbound
            points.push(pt(0.0, i as f64 * 5.0, 0.0)); // northbound
        }
        let labels = dbscan(&points, 20.0, 30.0, 3);
        assert_eq!(cluster_count(&labels), 2);
        // All eastbound fixes share a cluster distinct from northbound.
        let east = labels[0];
        let north = labels[1];
        assert_ne!(east, north);
        for (i, l) in labels.iter().enumerate() {
            if i % 2 == 0 {
                assert_eq!(*l, east);
            } else {
                assert_eq!(*l, north);
            }
        }
    }

    /// Sparse data collapses into one cluster (Figure 8b).
    #[test]
    fn same_direction_one_cluster() {
        let points: Vec<_> = (0..8).map(|i| pt(i as f64 * 4.0, 1.0, 88.0 + i as f64)).collect();
        let labels = dbscan(&points, 20.0, 30.0, 3);
        assert_eq!(cluster_count(&labels), 1);
        assert!(labels.iter().all(|l| l == &Some(0)));
    }

    /// Too few points: everything is noise (Figure 8c).
    #[test]
    fn tiny_input_is_noise() {
        let points = vec![pt(0.0, 0.0, 0.0), pt(100.0, 100.0, 180.0)];
        let labels = dbscan(&points, 10.0, 20.0, 4);
        assert_eq!(cluster_count(&labels), 0);
        assert!(labels.iter().all(Option::is_none));
    }

    #[test]
    fn outlier_is_noise_but_clusters_survive() {
        let mut points: Vec<_> = (0..6).map(|i| pt(i as f64 * 3.0, 0.0, 90.0)).collect();
        points.push(pt(500.0, 500.0, 45.0)); // far away
        let labels = dbscan(&points, 15.0, 25.0, 3);
        assert_eq!(cluster_count(&labels), 1);
        assert_eq!(labels[6], None);
    }

    #[test]
    fn heading_wraparound_is_respected() {
        // 355° and 5° are 10° apart, not 350°.
        let points: Vec<_> = (0..6)
            .map(|i| pt(i as f64 * 3.0, 0.0, if i % 2 == 0 { 355.0 } else { 5.0 }))
            .collect();
        let labels = dbscan(&points, 20.0, 30.0, 3);
        assert_eq!(cluster_count(&labels), 1);
    }

    #[test]
    fn empty_input() {
        let labels = dbscan(&[], 10.0, 10.0, 3);
        assert!(labels.is_empty());
        assert_eq!(cluster_count(&labels), 0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_bad_eps() {
        let _ = dbscan(&[pt(0.0, 0.0, 0.0)], 0.0, 10.0, 3);
    }
}

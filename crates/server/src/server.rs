//! The online imputation service: accept loop, connection handlers,
//! routing, response cache, and graceful shutdown.
//!
//! The HTTP machinery is generic over a [`WireService`] — parse, batch
//! execution, cache keying, and rendering live behind that trait — so
//! everything in this module runs (and is tested) against stub services
//! with no trained models involved. `crates/server/src/engine.rs` provides
//! the real implementation over an `Arc<Kamel>`.
//!
//! Threading model:
//!
//! * 1 accept thread — non-blocking accept + shutdown poll, hands sockets
//!   to a bounded channel;
//! * N connection handlers — read requests (keep-alive), route, and for
//!   `/v1/impute` park on a batcher [`crate::batcher::Ticket`];
//! * M batch workers (inside [`crate::batcher::Batcher`]) — coalesce
//!   queued trajectories and run the engine's `impute_batch`.
//!
//! Shutdown: trip the flag → the accept thread stops accepting and exits →
//! handlers finish the request in flight on each connection, then close it
//! → the batcher drains everything already admitted → all threads join.

use crate::batcher::{Batcher, BatcherConfig, SubmitError, WaitError};
use crate::clock::{Clock, SystemClock};
use crate::http::{
    parse_deadline_header, read_request, DeadlineHeader, ReadError, Request, Response,
    DEADLINE_HEADER, DEGRADED_HEADER,
};
use crate::lru::LruCache;
use crate::metrics::Metrics;
use crate::poller::Poller;
use crate::reactor::{run_reactor, ConnStats, ReactorConfig, RequestHandler, ResponseSink};
use crate::shutdown::ShutdownFlag;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// Cache key for one imputation request: the tokenized gap context (the
/// dedup-run cell-id sequence and the planar span of each inter-anchor
/// gap), plus a digest of the raw fix bytes. The context is the semantic
/// key — same cells, same gaps, same answer shape — while the digest
/// guarantees a hit is byte-identical to recomputing (original fixes are
/// echoed verbatim into the response, so token-equal but coordinate-
/// different requests must not share an entry).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Model generation that computed the entry. A hot-reload bumps the
    /// service's generation, so entries keyed under the old model can
    /// never answer post-reload lookups — even ones raced in by requests
    /// that were in flight while the cache was being cleared.
    pub generation: u64,
    /// Dedup-run cell ids along the trajectory.
    pub cells: Vec<u64>,
    /// Inter-anchor span of every candidate gap, as `f64` bit patterns.
    pub spans: Vec<u64>,
    /// FNV-1a digest of the raw request fixes.
    pub digest: u64,
}

/// FNV-1a over a word stream (for [`CacheKey::digest`]).
pub fn fnv1a(words: impl IntoIterator<Item = u64>) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for word in words {
        for byte in word.to_le_bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    hash
}

/// The imputation backend as the HTTP layer sees it.
pub trait WireService: Send + Sync + 'static {
    /// A parsed, validated request payload (one sparse trajectory).
    type Job: Send + 'static;
    /// The imputation result for one job.
    type Out: Send + 'static;

    /// Parses a request body. `Err` becomes a 400 with the message.
    fn parse(&self, body: &[u8]) -> Result<Self::Job, String>;
    /// The cache key for a job, or `None` when this job is uncacheable
    /// (e.g. the system is untrained, so no tokenizer exists yet).
    fn cache_key(&self, job: &Self::Job) -> Option<CacheKey>;
    /// Imputes a coalesced batch; one output per input, in input order.
    /// Every output in one call must come from a single model snapshot —
    /// a concurrent hot-reload must never mix models within a batch.
    fn run_batch(&self, jobs: Vec<Self::Job>) -> Vec<Self::Out>;
    /// Renders one output as a JSON body.
    fn render(&self, out: &Self::Out) -> Vec<u8>;
    /// The `GET /v1/info` body: a JSON identity card for this backend
    /// (model generation, vocabulary, config digest, thread budget). A
    /// shard router compares config digests across a fleet and refuses to
    /// admit a shard that disagrees — two backends with different grids
    /// or constraints would silently produce mixed-model fleets. The
    /// default service has no identity to report.
    fn info(&self) -> Vec<u8> {
        b"{}".to_vec()
    }
    /// Handles a hot-reload request (`POST /admin/reload` or SIGHUP):
    /// validate and load the new model, swap it in atomically, and return
    /// a human-readable outcome. On `Err` the previous model must remain
    /// serving. The default has nothing to reload.
    fn reload(&self) -> Result<String, String> {
        Err("this service has no reloadable model".into())
    }
    /// Extra Prometheus-format lines appended to `GET /metrics` after the
    /// server's own counters — the service's chance to export model-side
    /// gauges (e.g. model-store residency). Must be either empty or a
    /// newline-terminated block. The default exports nothing.
    fn extra_metrics(&self) -> String {
        String::new()
    }
    /// A cheap fallback answer for `job` when the full pipeline cannot be
    /// reached in time (queue full under `--degraded-mode`). Returns a
    /// rendered JSON body that must carry `"degraded": true` and the
    /// `reason`, or `None` when no fallback exists — the caller then sheds
    /// with 503 as before. The default service has no fallback.
    fn degraded(&self, _job: &Self::Job, _reason: &str) -> Option<Vec<u8>> {
        None
    }
    /// Handles `POST /v1/feedback` — a ground-truth correction for the
    /// continual learner. `None` means learning is not enabled on this
    /// service (the route answers 404); `Some(Err)` is a malformed body
    /// (400); `Some(Ok(body))` is the 200 acknowledgement JSON. Must not
    /// block: it runs on a connection handler thread.
    fn feedback(&self, _body: &[u8]) -> Option<Result<Vec<u8>, String>> {
        None
    }
}

/// How the server multiplexes connections.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ConnMode {
    /// One reactor thread drives every connection through non-blocking
    /// state machines ([`crate::reactor`]); `handlers` worker threads run
    /// the routing/batching logic. Concurrency is bounded by
    /// `max_connections`, not threads. Falls back to [`ConnMode::Threaded`]
    /// (with a warning) on platforms without epoll/kqueue.
    #[default]
    Reactor,
    /// The original blocking thread-per-connection path: `handlers`
    /// threads each own one connection at a time. Kept for equivalence
    /// testing and as the portable fallback.
    Threaded,
}

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Batch workers executing `run_batch` (the imputation compute pool;
    /// size it from the process thread budget).
    pub workers: usize,
    /// Connection-handler threads (each parks cheaply on a ticket while a
    /// batch runs, so this can comfortably exceed `workers`).
    pub handlers: usize,
    /// Largest coalesced batch.
    pub batch_max: usize,
    /// How long the batcher lingers for more requests after the first.
    pub batch_wait: Duration,
    /// Admission-queue capacity; beyond it requests are shed with 503.
    pub queue_cap: usize,
    /// Response-cache capacity in entries; 0 disables the cache.
    pub cache_entries: usize,
    /// Per-request deadline; a miss is answered 504. Clients can lower
    /// (or raise, up to the parse cap) their own budget per request via
    /// the `x-kamel-deadline-ms` header.
    pub deadline: Duration,
    /// Socket read timeout — the shutdown-poll period for idle keep-alive
    /// connections.
    pub idle_poll: Duration,
    /// When set, an overloaded admission queue answers from the service's
    /// cheap [`WireService::degraded`] fallback (marked degraded) instead
    /// of shedding with 503.
    pub degraded_mode: bool,
    /// Connection multiplexing strategy.
    pub mode: ConnMode,
    /// Hard cap on concurrently open connections; accepts beyond it are
    /// answered 503 and closed.
    pub max_connections: usize,
    /// Reactor mode only: a connection with no read/write progress for
    /// this long is closed (idle keep-alive and slow-loris alike).
    pub idle_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            handlers: 8,
            batch_max: 16,
            batch_wait: Duration::from_micros(500),
            queue_cap: 256,
            cache_entries: 1024,
            deadline: Duration::from_secs(10),
            idle_poll: Duration::from_millis(200),
            degraded_mode: false,
            mode: ConnMode::Reactor,
            max_connections: 10_000,
            idle_timeout: Duration::from_secs(30),
        }
    }
}

type ResponseCache = Mutex<LruCache<CacheKey, Arc<Vec<u8>>>>;

struct Shared<S: WireService> {
    service: Arc<S>,
    metrics: Arc<Metrics>,
    cache: ResponseCache,
    config: ServerConfig,
    clock: Arc<dyn Clock>,
    flag: ShutdownFlag,
    conn_stats: Arc<ConnStats>,
}

/// A running server. Dropping it without [`Server::shutdown`] aborts
/// without draining; call `shutdown` for the graceful path.
pub struct Server {
    addr: SocketAddr,
    flag: ShutdownFlag,
    metrics: Arc<Metrics>,
    conn_stats: Arc<ConnStats>,
    // Reactor mode: the reactor thread. Threaded mode: the accept thread.
    accept_thread: Option<std::thread::JoinHandle<()>>,
    handler_threads: Vec<std::thread::JoinHandle<()>>,
    shutdown_batcher: Option<Box<dyn FnOnce() + Send>>,
    // Type-erased so `Server` needs no `S` parameter; same code path as
    // `POST /admin/reload` (metrics + cache invalidation included).
    reload_fn: Box<dyn Fn() -> Result<String, String> + Send + Sync>,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts serving.
    pub fn bind<S: WireService>(
        addr: &str,
        service: Arc<S>,
        config: ServerConfig,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        Self::serve(listener, service, config)
    }

    /// Starts serving on an already-bound listener.
    pub fn serve<S: WireService>(
        listener: TcpListener,
        service: Arc<S>,
        config: ServerConfig,
    ) -> std::io::Result<Server> {
        Self::serve_with_clock(listener, service, config, Arc::new(SystemClock))
    }

    /// [`Server::serve`] with an injected [`Clock`]. Every deadline-budget
    /// decision (admission shedding, drain-time expiry, late-result
    /// suppression) asks this clock, so tests drive them deterministically
    /// with a [`crate::clock::ManualClock`].
    pub fn serve_with_clock<S: WireService>(
        listener: TcpListener,
        service: Arc<S>,
        config: ServerConfig,
        clock: Arc<dyn Clock>,
    ) -> std::io::Result<Server> {
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let metrics = Arc::new(Metrics::new());
        let flag = ShutdownFlag::new();
        let conn_stats = Arc::new(ConnStats::default());
        // Reactor mode needs an epoll/kqueue selector; fall back to the
        // blocking path (same wire behavior) where none exists.
        let mode = match config.mode {
            ConnMode::Reactor if Poller::new().is_err() => {
                eprintln!(
                    "kamel-serve: no epoll/kqueue on this platform; \
                     falling back to thread-per-connection"
                );
                ConnMode::Threaded
            }
            mode => mode,
        };
        let shared = Arc::new(Shared {
            service: Arc::clone(&service),
            metrics: Arc::clone(&metrics),
            cache: Mutex::new(LruCache::new(config.cache_entries)),
            config: config.clone(),
            clock: Arc::clone(&clock),
            flag: flag.clone(),
            conn_stats: Arc::clone(&conn_stats),
        });
        // The imputation pool: batch workers behind the admission queue.
        let batch_metrics = Arc::clone(&metrics);
        let batcher: Arc<Batcher<S::Job, S::Out>> = Arc::new(Batcher::start_with_clock(
            BatcherConfig {
                workers: config.workers.max(1),
                batch_max: config.batch_max.max(1),
                batch_wait: config.batch_wait,
                queue_cap: config.queue_cap.max(1),
            },
            Arc::new(BatchAdapter(Arc::clone(&service))),
            move |n| batch_metrics.batch_size.observe(n as u64),
            Arc::clone(&clock),
        ));
        let (handler_threads, accept_thread) = match mode {
            ConnMode::Reactor => {
                // Dispatch workers run the routing/batching logic for
                // requests the reactor parses; each parks cheaply on a
                // batcher ticket while a batch computes.
                let (req_tx, req_rx) =
                    mpsc::channel::<(Request, Instant, ResponseSink)>();
                let req_rx = Arc::new(Mutex::new(req_rx));
                let handler_threads: Vec<_> = (0..config.handlers.max(1))
                    .map(|i| {
                        let req_rx = Arc::clone(&req_rx);
                        let shared = Arc::clone(&shared);
                        let batcher = Arc::clone(&batcher);
                        std::thread::Builder::new()
                            .name(format!("kamel-http-{i}"))
                            .spawn(move || dispatch_loop(&req_rx, &shared, &batcher))
                            .expect("spawn dispatch worker")
                    })
                    .collect();
                // The reactor owns `req_tx` (inside its handler); when it
                // drains and exits, the channel disconnects the workers.
                let on_request: RequestHandler =
                    Box::new(move |request, received, sink| {
                        let _ = req_tx.send((request, received, sink));
                    });
                let reactor_config = ReactorConfig {
                    max_connections: config.max_connections.max(1),
                    idle_timeout: config.idle_timeout,
                    ..ReactorConfig::default()
                };
                let reactor_flag = flag.clone();
                let reactor_clock = Arc::clone(&clock);
                let reactor_stats = Arc::clone(&conn_stats);
                let reactor_thread = std::thread::Builder::new()
                    .name("kamel-reactor".into())
                    .spawn(move || {
                        if let Err(e) = run_reactor(
                            listener,
                            reactor_config,
                            reactor_clock,
                            reactor_flag,
                            reactor_stats,
                            on_request,
                        ) {
                            eprintln!("kamel-serve: reactor failed: {e}");
                        }
                    })
                    .expect("spawn reactor thread");
                (handler_threads, reactor_thread)
            }
            ConnMode::Threaded => {
                // Connection handlers drain a bounded socket channel.
                let (conn_tx, conn_rx) =
                    mpsc::sync_channel::<TcpStream>(config.handlers.max(1) * 2);
                let conn_rx = Arc::new(Mutex::new(conn_rx));
                let handler_threads: Vec<_> = (0..config.handlers.max(1))
                    .map(|i| {
                        let conn_rx = Arc::clone(&conn_rx);
                        let shared = Arc::clone(&shared);
                        let batcher = Arc::clone(&batcher);
                        std::thread::Builder::new()
                            .name(format!("kamel-http-{i}"))
                            .spawn(move || handler_loop(&conn_rx, &shared, &batcher))
                            .expect("spawn connection handler")
                    })
                    .collect();
                // The accept thread owns `conn_tx`; dropping it on shutdown
                // disconnects the handlers' channel.
                let accept_flag = flag.clone();
                let poll = config.idle_poll.min(Duration::from_millis(50));
                let accept_thread = std::thread::Builder::new()
                    .name("kamel-accept".into())
                    .spawn(move || {
                        accept_loop(&listener, &conn_tx, &accept_flag, poll);
                        drop(conn_tx);
                    })
                    .expect("spawn accept thread");
                (handler_threads, accept_thread)
            }
        };
        // Draining the batcher must wait until the handlers are done
        // (they hold tickets); keep it behind a closure for `shutdown`.
        let shutdown_batcher: Box<dyn FnOnce() + Send> = Box::new(move || {
            match Arc::try_unwrap(batcher) {
                Ok(batcher) => batcher.shutdown(),
                Err(_) => unreachable!("all handler threads joined before the batcher drain"),
            }
        });
        let reload_shared_handle = Arc::clone(&shared);
        let reload_fn: Box<dyn Fn() -> Result<String, String> + Send + Sync> =
            Box::new(move || reload_model(&reload_shared_handle));
        Ok(Server {
            addr,
            flag,
            metrics,
            conn_stats,
            accept_thread: Some(accept_thread),
            handler_threads,
            shutdown_batcher: Some(shutdown_batcher),
            reload_fn,
        })
    }

    /// The live connection-layer counters (shared with the reactor or,
    /// in threaded mode, the handlers).
    pub fn connections(&self) -> &Arc<ConnStats> {
        &self.conn_stats
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The live metrics (shared with the handlers).
    pub fn metrics(&self) -> &Arc<Metrics> {
        &self.metrics
    }

    /// Requests a graceful shutdown without waiting (e.g. from a signal
    /// watcher); follow up with [`Server::shutdown`] to drain and join.
    pub fn request_shutdown(&self) {
        self.flag.trip();
    }

    /// Hot-reloads the model — the same path as `POST /admin/reload`
    /// (cache invalidation and reload metrics included). Used by the
    /// CLI's SIGHUP watcher; on `Err` the old model keeps serving.
    pub fn reload(&self) -> Result<String, String> {
        (self.reload_fn)()
    }

    /// Graceful shutdown: stop accepting, finish every request in flight,
    /// drain the admitted queue, and join all threads.
    pub fn shutdown(mut self) {
        self.flag.trip();
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        for t in self.handler_threads.drain(..) {
            let _ = t.join();
        }
        if let Some(drain) = self.shutdown_batcher.take() {
            drain();
        }
    }
}

/// Adapts a [`WireService`] to the batcher's runner trait.
struct BatchAdapter<S>(Arc<S>);

impl<S: WireService> crate::batcher::BatchRunner<S::Job, S::Out> for BatchAdapter<S> {
    fn run_batch(&self, batch: Vec<S::Job>) -> Vec<S::Out> {
        self.0.run_batch(batch)
    }
}

fn accept_loop(
    listener: &TcpListener,
    conn_tx: &mpsc::SyncSender<TcpStream>,
    flag: &ShutdownFlag,
    poll: Duration,
) {
    while !flag.is_tripped() {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if conn_tx.send(stream).is_err() {
                    return; // handlers are gone; nothing to serve
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(poll);
            }
            Err(_) => std::thread::sleep(poll),
        }
    }
}

/// Reactor-mode worker: runs the routing/batching logic for parsed
/// requests and hands the response back to the reactor through the sink.
fn dispatch_loop<S: WireService>(
    req_rx: &Mutex<mpsc::Receiver<(Request, Instant, ResponseSink)>>,
    shared: &Shared<S>,
    batcher: &Batcher<S::Job, S::Out>,
) {
    loop {
        // Holding the receiver lock only while dequeueing.
        let item = req_rx.lock().unwrap().recv();
        match item {
            Ok((request, received, sink)) => {
                sink.send(route(&request, received, shared, batcher));
            }
            Err(_) => return, // reactor drained and dropped the sender
        }
    }
}

fn handler_loop<S: WireService>(
    conn_rx: &Mutex<mpsc::Receiver<TcpStream>>,
    shared: &Shared<S>,
    batcher: &Batcher<S::Job, S::Out>,
) {
    loop {
        // Holding the receiver lock only while dequeueing.
        let conn = conn_rx.lock().unwrap().recv();
        match conn {
            Ok(stream) => handle_connection(stream, shared, batcher),
            Err(_) => return, // accept thread exited and the queue is dry
        }
    }
}

fn handle_connection<S: WireService>(
    stream: TcpStream,
    shared: &Shared<S>,
    batcher: &Batcher<S::Job, S::Out>,
) {
    let stats = &shared.conn_stats;
    // Claim a slot atomically (CAS loop): a plain check-then-increment
    // across concurrent handler threads can overshoot the cap by up to
    // the pool size under a simultaneous accept burst; the reactor path
    // is single-threaded and exact, so match it.
    let cap = shared.config.max_connections.max(1) as u64;
    if stats
        .active
        .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| {
            (n < cap).then_some(n + 1)
        })
        .is_err()
    {
        stats.rejected_total.fetch_add(1, Ordering::Relaxed);
        let mut stream = stream;
        let _ = Response::text(503, "overloaded: connection limit reached\n")
            .with_header("retry-after", "1")
            .write_to(&mut stream, true);
        return;
    }
    // Release the claimed slot on every return path below.
    struct ActiveGuard<'a>(&'a ConnStats);
    impl Drop for ActiveGuard<'_> {
        fn drop(&mut self) {
            self.0.active.fetch_sub(1, Ordering::Relaxed);
        }
    }
    let _guard = ActiveGuard(stats);
    if stream.set_nonblocking(false).is_err()
        || stream
            .set_read_timeout(Some(shared.config.idle_poll))
            .is_err()
        || stream.set_nodelay(true).is_err()
    {
        return;
    }
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    stats.accepted_total.fetch_add(1, Ordering::Relaxed);
    let mut write_half = write_half;
    let mut reader = BufReader::new(stream);
    loop {
        if shared.flag.is_tripped() {
            return; // draining: no further requests on this connection
        }
        match read_request(&mut reader) {
            Ok(request) => {
                let close = request.wants_close();
                let received = shared.clock.now();
                let response = route(&request, received, shared, batcher);
                // A shed or draining response also closes the connection so
                // the client re-establishes after backing off.
                let close = close || response.status == 503;
                if response.write_to(&mut write_half, close).is_err() || close {
                    return;
                }
            }
            Err(ReadError::Idle) => continue, // poll the shutdown flag
            Err(ReadError::ConnectionClosed) => return,
            Err(ReadError::Bad(status, msg)) => {
                let _ = Response::text(status, msg).write_to(&mut write_half, true);
                return;
            }
            Err(ReadError::Io(_)) => return,
        }
    }
}

/// Splices a `"connections":N` field into a JSON object body (the
/// service's `/v1/info` identity card), keeping the service layer
/// unaware of the connection layer.
fn inject_connections(mut body: Vec<u8>, connections: u64) -> Vec<u8> {
    let Some(close_brace) = body.iter().rposition(|&b| b == b'}') else {
        return body; // not an object; leave it untouched
    };
    let empty = body[..close_brace]
        .iter()
        .rev()
        .find(|b| !b.is_ascii_whitespace())
        == Some(&b'{');
    let field = if empty {
        format!("\"connections\":{connections}")
    } else {
        format!(",\"connections\":{connections}")
    };
    body.splice(close_brace..close_brace, field.into_bytes());
    body
}

fn route<S: WireService>(
    request: &Request,
    received: Instant,
    shared: &Shared<S>,
    batcher: &Batcher<S::Job, S::Out>,
) -> Response {
    match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/v1/impute") => impute(request, received, shared, batcher),
        ("POST", "/admin/reload") => match reload_model(shared) {
            Ok(msg) => Response::text(200, format!("{msg}\n")),
            Err(msg) => Response::text(500, format!("reload failed: {msg}\n")),
        },
        ("GET", "/healthz") => {
            if shared.flag.is_tripped() {
                Response::text(503, "draining\n")
            } else {
                Response::text(200, "ok\n")
            }
        }
        ("GET", "/metrics") => {
            // The queue-depth gauge is sampled at scrape time.
            shared
                .metrics
                .queue_depth
                .store(batcher.queue_depth() as u64, Ordering::Relaxed);
            let mut body = shared.metrics.render();
            body.push_str(&shared.conn_stats.render());
            body.push_str(&shared.service.extra_metrics());
            Response::text(200, body)
        }
        ("GET", "/v1/info") => Response::json(inject_connections(
            shared.service.info(),
            shared.conn_stats.active.load(Ordering::Relaxed),
        )),
        ("POST", "/v1/feedback") => match shared.service.feedback(&request.body) {
            None => Response::text(404, "learning not enabled\n"),
            Some(Err(msg)) => Response::text(400, format!("{msg}\n")),
            Some(Ok(body)) => Response::json(body),
        },
        (_, "/v1/impute") | (_, "/admin/reload") | (_, "/healthz") | (_, "/metrics")
        | (_, "/v1/info") | (_, "/v1/feedback") => Response::text(405, "method not allowed\n"),
        _ => Response::text(404, "not found\n"),
    }
}

/// The hot-reload path shared by `POST /admin/reload` and the SIGHUP
/// handle: swap the model via [`WireService::reload`], then invalidate
/// the response cache (entries keyed under the old generation could
/// otherwise answer until evicted) and count the outcome. Runs on the
/// calling handler thread, so serving continues while the new checkpoint
/// loads; a failure leaves the cache and model untouched.
fn reload_model<S: WireService>(shared: &Shared<S>) -> Result<String, String> {
    match shared.service.reload() {
        Ok(msg) => {
            shared.cache.lock().unwrap().clear();
            shared.metrics.model_reloads.fetch_add(1, Ordering::Relaxed);
            Ok(msg)
        }
        Err(msg) => {
            shared
                .metrics
                .model_reload_failures
                .fetch_add(1, Ordering::Relaxed);
            Err(msg)
        }
    }
}

/// Logs the first malformed `x-kamel-deadline-ms` value seen (per
/// process); every later one silently falls back to the server default,
/// so a misbehaving client cannot flood the log.
fn warn_invalid_deadline_once(why: &str) {
    static WARNED: AtomicBool = AtomicBool::new(false);
    if !WARNED.swap(true, Ordering::Relaxed) {
        eprintln!("kamel-serve: ignoring invalid {DEADLINE_HEADER} header ({why}); using the server default deadline");
    }
}

/// Counts one deadline miss at `stage` and renders the 504.
fn deadline_exceeded(
    metrics: &Metrics,
    stage: &AtomicU64,
    stage_name: &str,
    start: Instant,
) -> Response {
    metrics.requests_deadline.fetch_add(1, Ordering::Relaxed);
    stage.fetch_add(1, Ordering::Relaxed);
    observe_latency(metrics, start);
    Response::text(504, format!("deadline exceeded (stage: {stage_name})\n"))
}

fn impute<S: WireService>(
    request: &Request,
    received: Instant,
    shared: &Shared<S>,
    batcher: &Batcher<S::Job, S::Out>,
) -> Response {
    // The latency/deadline base is the instant the request came off the
    // wire — in reactor mode that predates dispatch-queue time, so a
    // backlog burns request budget instead of hiding from it.
    let start = received;
    let metrics = &shared.metrics;
    // The request's budget: the client's `x-kamel-deadline-ms` header when
    // valid, the server default otherwise. Malformed values warn once and
    // fall back — never a panic or a 0ms insta-504.
    let header = parse_deadline_header(request.header(DEADLINE_HEADER));
    if let DeadlineHeader::Invalid(why) = header {
        warn_invalid_deadline_once(why);
    }
    let deadline = received + header.budget_or(shared.config.deadline);
    let job = match shared.service.parse(&request.body) {
        Ok(job) => job,
        Err(msg) => {
            metrics.requests_bad.fetch_add(1, Ordering::Relaxed);
            return Response::text(400, format!("bad request: {msg}\n"));
        }
    };
    // Cache lookup (only when enabled and the job is keyable). A hit is
    // answered even on a spent budget — it is cheaper than the 504.
    let key = if shared.config.cache_entries > 0 {
        shared.service.cache_key(&job)
    } else {
        None
    };
    if let Some(key) = &key {
        let hit = shared.cache.lock().unwrap().get(key).cloned();
        if let Some(bytes) = hit {
            metrics.cache_hits.fetch_add(1, Ordering::Relaxed);
            metrics.requests_ok.fetch_add(1, Ordering::Relaxed);
            observe_latency(metrics, start);
            return Response::json(bytes.as_ref().clone()).with_header("x-kamel-cache", "hit");
        }
        metrics.cache_misses.fetch_add(1, Ordering::Relaxed);
    }
    // Admission: a budget already spent on parsing/cache work is shed here
    // rather than queued for an answer nobody is waiting for.
    if shared.clock.now() >= deadline {
        return deadline_exceeded(metrics, &metrics.deadline_admission, "admission", start);
    }
    // Admission + micro-batching. The deadline rides along so a worker
    // that drains the item too late sheds it instead of running it.
    let ticket = match batcher.try_submit_with_deadline(job, Some(deadline)) {
        Ok(ticket) => ticket,
        Err((job, SubmitError::Overloaded)) => {
            if shared.config.degraded_mode {
                if let Some(bytes) = shared.service.degraded(&job, "overloaded") {
                    metrics.degraded.fetch_add(1, Ordering::Relaxed);
                    metrics.requests_ok.fetch_add(1, Ordering::Relaxed);
                    observe_latency(metrics, start);
                    return Response::json(bytes).with_header(DEGRADED_HEADER, "overloaded");
                }
            }
            metrics.requests_shed.fetch_add(1, Ordering::Relaxed);
            observe_latency(metrics, start);
            return Response::text(503, "overloaded: admission queue full\n")
                .with_header("retry-after", "1");
        }
        Err((_, SubmitError::Draining)) => {
            metrics.requests_shed.fetch_add(1, Ordering::Relaxed);
            observe_latency(metrics, start);
            return Response::text(503, "draining: server is shutting down\n")
                .with_header("retry-after", "1");
        }
    };
    match ticket.wait_deadline(deadline) {
        Ok(out) => {
            // Late-result suppression: if the injected clock says the
            // budget ran out while the batch computed, the answer must not
            // be served after its stage records an exceedance — but it is
            // still worth caching for the next asker.
            let late = shared.clock.now() > deadline;
            let bytes = shared.service.render(&out);
            if let Some(key) = key {
                shared
                    .cache
                    .lock()
                    .unwrap()
                    .insert(key, Arc::new(bytes.clone()));
            }
            if late {
                return deadline_exceeded(metrics, &metrics.deadline_compute, "compute", start);
            }
            metrics.requests_ok.fetch_add(1, Ordering::Relaxed);
            observe_latency(metrics, start);
            Response::json(bytes).with_header("x-kamel-cache", "miss")
        }
        Err(WaitError::Expired) => {
            // Shed at drain time: the work never ran.
            deadline_exceeded(metrics, &metrics.deadline_queue, "queue", start)
        }
        Err(WaitError::Deadline) => {
            deadline_exceeded(metrics, &metrics.deadline_compute, "compute", start)
        }
        Err(WaitError::Failed) => {
            metrics.requests_bad.fetch_add(1, Ordering::Relaxed);
            observe_latency(metrics, start);
            Response::text(500, "imputation failed\n")
        }
    }
}

fn observe_latency(metrics: &Metrics, start: Instant) {
    metrics
        .latency_us
        .observe(start.elapsed().as_micros().min(u64::MAX as u128) as u64);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{Client, RequestOpts};
    use crate::clock::ManualClock;
    use std::sync::atomic::AtomicUsize;

    /// A stub backend: jobs are UTF-8 strings, imputation is uppercasing.
    /// Bodies starting with `nokey:` are uncacheable; empty bodies fail to
    /// parse. A gate (when installed) blocks `run_batch` until released.
    /// Reload bumps the generation (or fails when `reload_ok` is false).
    /// When a `clock` is installed, `parse` and `run_batch` advance it by
    /// `parse_cost`/`batch_cost` — how the deadline tests burn budget at a
    /// precise pipeline stage. Jobs starting with `deg:` have a degraded
    /// fallback; everything else does not.
    struct StubService {
        batches: Mutex<Vec<usize>>,
        calls: AtomicUsize,
        gate: Option<(mpsc::SyncSender<()>, Mutex<mpsc::Receiver<()>>)>,
        generation: AtomicUsize,
        reload_ok: std::sync::atomic::AtomicBool,
        clock: Option<Arc<ManualClock>>,
        parse_cost: Duration,
        batch_cost: Duration,
    }

    impl StubService {
        fn new() -> Self {
            Self {
                batches: Mutex::new(Vec::new()),
                calls: AtomicUsize::new(0),
                gate: None,
                generation: AtomicUsize::new(0),
                reload_ok: std::sync::atomic::AtomicBool::new(true),
                clock: None,
                parse_cost: Duration::ZERO,
                batch_cost: Duration::ZERO,
            }
        }
    }

    impl WireService for StubService {
        type Job = String;
        type Out = String;

        fn parse(&self, body: &[u8]) -> Result<String, String> {
            let text = std::str::from_utf8(body).map_err(|e| e.to_string())?;
            if text.is_empty() {
                return Err("empty body".into());
            }
            if let Some(clock) = &self.clock {
                clock.advance(self.parse_cost);
            }
            Ok(text.to_string())
        }

        fn cache_key(&self, job: &String) -> Option<CacheKey> {
            if job.starts_with("nokey:") {
                return None;
            }
            Some(CacheKey {
                generation: self.generation.load(Ordering::SeqCst) as u64,
                cells: vec![job.len() as u64],
                spans: Vec::new(),
                digest: fnv1a(job.bytes().map(|b| b as u64)),
            })
        }

        fn run_batch(&self, jobs: Vec<String>) -> Vec<String> {
            self.calls.fetch_add(1, Ordering::SeqCst);
            self.batches.lock().unwrap().push(jobs.len());
            if let Some((entered, release)) = &self.gate {
                let _ = entered.send(());
                let _ = release.lock().unwrap().recv();
            }
            if let Some(clock) = &self.clock {
                clock.advance(self.batch_cost);
            }
            jobs.into_iter().map(|j| j.to_uppercase()).collect()
        }

        fn degraded(&self, job: &String, reason: &str) -> Option<Vec<u8>> {
            job.strip_prefix("deg:").map(|rest| {
                format!("{{\"degraded\":true,\"reason\":\"{reason}\",\"echo\":\"{rest}\"}}")
                    .into_bytes()
            })
        }

        fn render(&self, out: &String) -> Vec<u8> {
            out.clone().into_bytes()
        }

        fn info(&self) -> Vec<u8> {
            format!(
                "{{\"generation\":{}}}",
                self.generation.load(Ordering::SeqCst)
            )
            .into_bytes()
        }

        fn reload(&self) -> Result<String, String> {
            if self.reload_ok.load(Ordering::SeqCst) {
                let g = self.generation.fetch_add(1, Ordering::SeqCst) + 1;
                Ok(format!("stub reloaded to generation {g}"))
            } else {
                Err("stub model is corrupt".into())
            }
        }
    }

    fn test_config() -> ServerConfig {
        ServerConfig {
            workers: 2,
            handlers: 8,
            batch_max: 8,
            batch_wait: Duration::from_millis(2),
            queue_cap: 32,
            cache_entries: 64,
            deadline: Duration::from_secs(5),
            idle_poll: Duration::from_millis(50),
            degraded_mode: false,
            ..ServerConfig::default()
        }
    }

    fn start(service: Arc<StubService>, config: ServerConfig) -> Server {
        Server::bind("127.0.0.1:0", service, config).expect("bind")
    }

    fn client(server: &Server) -> Client {
        Client::connect(server.local_addr(), Duration::from_secs(5)).expect("connect")
    }

    fn start_with_clock(
        service: Arc<StubService>,
        config: ServerConfig,
        clock: Arc<dyn Clock>,
    ) -> Server {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        Server::serve_with_clock(listener, service, config, clock).expect("serve")
    }

    /// Polls `/metrics` until the admission queue reports `want` entries.
    fn wait_for_queue_depth(addr: SocketAddr, want: usize) {
        let give_up = Instant::now() + Duration::from_secs(5);
        loop {
            let depth = {
                let mut c = Client::connect(addr, Duration::from_secs(5)).unwrap();
                let page = c.get("/metrics").unwrap().text();
                page.lines()
                    .find(|l| l.starts_with("kamel_queue_depth "))
                    .and_then(|l| l.rsplit(' ').next()?.parse::<usize>().ok())
                    .unwrap_or(0)
            };
            if depth == want {
                return;
            }
            assert!(
                Instant::now() < give_up,
                "queue never reached depth {want} (at {depth})"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    /// A header-only request-opts shorthand for deadline tests.
    fn with_deadline<'a>(headers: &'a [(&'a str, &'a str)]) -> RequestOpts<'a> {
        RequestOpts {
            headers,
            budget: None,
        }
    }

    #[test]
    fn healthz_and_unknown_routes() {
        let server = start(Arc::new(StubService::new()), test_config());
        let mut c = client(&server);
        let health = c.get("/healthz").unwrap();
        assert_eq!(health.status, 200);
        assert_eq!(health.text(), "ok\n");
        assert_eq!(c.get("/nope").unwrap().status, 404);
        assert_eq!(c.post_json("/healthz", b"x").unwrap().status, 405);
        server.shutdown();
    }

    #[test]
    fn feedback_route_404s_without_learning() {
        let server = start(Arc::new(StubService::new()), test_config());
        let mut c = client(&server);
        // The default service has no learn sink: the route exists but
        // reports learning as not enabled, and non-POST methods are 405.
        assert_eq!(c.post_json("/v1/feedback", b"{}").unwrap().status, 404);
        assert_eq!(c.get("/v1/feedback").unwrap().status, 405);
        server.shutdown();
    }

    /// A minimal service whose `feedback` is wired: accepts bodies that
    /// start with `{`, rejects the rest.
    struct FeedbackStub;

    impl WireService for FeedbackStub {
        type Job = String;
        type Out = String;

        fn parse(&self, body: &[u8]) -> Result<String, String> {
            Ok(String::from_utf8_lossy(body).into_owned())
        }

        fn cache_key(&self, _job: &String) -> Option<CacheKey> {
            None
        }

        fn run_batch(&self, jobs: Vec<String>) -> Vec<String> {
            jobs
        }

        fn render(&self, out: &String) -> Vec<u8> {
            out.clone().into_bytes()
        }

        fn feedback(&self, body: &[u8]) -> Option<Result<Vec<u8>, String>> {
            Some(if body.first() == Some(&b'{') {
                Ok(b"{\"status\":\"accepted\",\"queue_records\":1}".to_vec())
            } else {
                Err("invalid feedback JSON".into())
            })
        }
    }

    #[test]
    fn feedback_route_acks_and_rejects_through_the_service() {
        let server = Server::bind("127.0.0.1:0", Arc::new(FeedbackStub), test_config())
            .expect("bind");
        let mut c = client(&server);
        let ok = c.post_json("/v1/feedback", b"{\"sparse\":1}").unwrap();
        assert_eq!(ok.status, 200);
        assert_eq!(ok.header("content-type"), Some("application/json"));
        assert!(ok.text().contains("accepted"));
        let bad = c.post_json("/v1/feedback", b"not json").unwrap();
        assert_eq!(bad.status, 400);
        assert!(bad.text().contains("invalid feedback"));
        server.shutdown();
    }

    #[test]
    fn info_reports_the_service_identity() {
        let service = Arc::new(StubService::new());
        let server = start(Arc::clone(&service), test_config());
        let mut c = client(&server);
        let info = c.get("/v1/info").unwrap();
        assert_eq!(info.status, 200);
        assert_eq!(info.header("content-type"), Some("application/json"));
        // The service identity plus the connection layer's own field —
        // this client holds the one open connection.
        assert_eq!(info.text(), "{\"generation\":0,\"connections\":1}");
        // The body is the service's live identity, not a boot snapshot.
        c.post_json("/admin/reload", b"").unwrap();
        assert_eq!(
            c.get("/v1/info").unwrap().text(),
            "{\"generation\":1,\"connections\":1}"
        );
        // Only GET is routed.
        assert_eq!(c.post_json("/v1/info", b"x").unwrap().status, 405);
        server.shutdown();
    }

    #[test]
    fn impute_roundtrip_and_keepalive() {
        let server = start(Arc::new(StubService::new()), test_config());
        let mut c = client(&server);
        for i in 0..5 {
            let body = format!("nokey:hello-{i}");
            let resp = c.post_json("/v1/impute", body.as_bytes()).unwrap();
            assert_eq!(resp.status, 200, "{}", resp.text());
            assert_eq!(resp.text(), body.to_uppercase());
            assert_eq!(resp.header("x-kamel-cache"), Some("miss"));
        }
        server.shutdown();
    }

    #[test]
    fn bad_bodies_get_400() {
        let server = start(Arc::new(StubService::new()), test_config());
        let mut c = client(&server);
        let resp = c.post_json("/v1/impute", b"").unwrap();
        assert_eq!(resp.status, 400);
        assert!(resp.text().contains("empty body"), "{}", resp.text());
        let ok = c.post_json("/v1/impute", b"nokey:still-works").unwrap();
        assert_eq!(ok.status, 200);
        server.shutdown();
    }

    #[test]
    fn second_identical_request_hits_the_cache() {
        let service = Arc::new(StubService::new());
        let server = start(Arc::clone(&service), test_config());
        let mut c = client(&server);
        let first = c.post_json("/v1/impute", b"cache-me").unwrap();
        assert_eq!(first.header("x-kamel-cache"), Some("miss"));
        let second = c.post_json("/v1/impute", b"cache-me").unwrap();
        assert_eq!(second.header("x-kamel-cache"), Some("hit"));
        assert_eq!(first.body, second.body, "hit must be byte-identical");
        assert_eq!(service.calls.load(Ordering::SeqCst), 1, "no recompute");
        // Metrics recorded the hit.
        assert_eq!(
            server.metrics().cache_hits.load(Ordering::Relaxed),
            1
        );
        server.shutdown();
    }

    #[test]
    fn cache_disabled_never_hits() {
        let service = Arc::new(StubService::new());
        let server = start(
            Arc::clone(&service),
            ServerConfig {
                cache_entries: 0,
                ..test_config()
            },
        );
        let mut c = client(&server);
        for _ in 0..2 {
            let resp = c.post_json("/v1/impute", b"cache-me").unwrap();
            assert_eq!(resp.status, 200);
            assert_eq!(resp.header("x-kamel-cache"), Some("miss"));
        }
        assert_eq!(service.calls.load(Ordering::SeqCst), 2);
        assert_eq!(server.metrics().cache_hits.load(Ordering::Relaxed), 0);
        server.shutdown();
    }

    #[test]
    fn concurrent_clients_all_get_their_own_answers() {
        let service = Arc::new(StubService::new());
        let server = start(Arc::clone(&service), test_config());
        let addr = server.local_addr();
        let threads: Vec<_> = (0..12)
            .map(|i| {
                std::thread::spawn(move || {
                    let mut c = Client::connect(addr, Duration::from_secs(5)).unwrap();
                    let body = format!("nokey:client-{i}");
                    let resp = c.post_json("/v1/impute", body.as_bytes()).unwrap();
                    assert_eq!(resp.status, 200);
                    assert_eq!(resp.text(), body.to_uppercase());
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        // Coalescing happened across at least one batch (not 12 singleton
        // calls is not guaranteed under scheduling variance, so only assert
        // the totals line up).
        let total: usize = service.batches.lock().unwrap().iter().sum();
        assert_eq!(total, 12);
        server.shutdown();
    }

    #[test]
    fn overload_sheds_exactly_the_overflow_with_503() {
        const CAP: usize = 4;
        const OVERFLOW: usize = 3;
        let (entered_tx, entered_rx) = mpsc::sync_channel(64);
        let (release_tx, release_rx) = mpsc::sync_channel::<()>(64);
        let mut service = StubService::new();
        service.gate = Some((entered_tx, Mutex::new(release_rx)));
        let server = start(
            Arc::new(service),
            ServerConfig {
                workers: 1,
                handlers: 2 + CAP + OVERFLOW,
                batch_max: 1,
                batch_wait: Duration::ZERO,
                queue_cap: CAP,
                cache_entries: 0,
                ..test_config()
            },
        );
        let addr = server.local_addr();
        let request_thread = |i: usize| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr, Duration::from_secs(10)).unwrap();
                let body = format!("nokey:req-{i}");
                c.post_json("/v1/impute", body.as_bytes()).unwrap().status
            })
        };
        // One request occupies the single gated batch worker…
        let occupant = request_thread(0);
        entered_rx.recv().unwrap();
        // …then CAP requests fill the admission queue exactly.
        let queued: Vec<_> = (1..=CAP).map(request_thread).collect();
        let depth_deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let depth = {
                let mut c = Client::connect(addr, Duration::from_secs(5)).unwrap();
                let page = c.get("/metrics").unwrap().text();
                page.lines()
                    .find(|l| l.starts_with("kamel_queue_depth "))
                    .and_then(|l| l.rsplit(' ').next()?.parse::<usize>().ok())
                    .unwrap_or(0)
            };
            if depth == CAP {
                break;
            }
            assert!(
                Instant::now() < depth_deadline,
                "queue never filled (depth {depth})"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
        // Every further request is shed: exactly OVERFLOW 503s.
        let shed: Vec<_> = (0..OVERFLOW)
            .map(|i| request_thread(100 + i))
            .map(|t| t.join().unwrap())
            .collect();
        assert_eq!(shed, vec![503; OVERFLOW]);
        // Release the gate: occupant + queued all complete with 200.
        for _ in 0..(1 + CAP) {
            release_tx.send(()).unwrap();
        }
        assert_eq!(occupant.join().unwrap(), 200);
        for t in queued {
            assert_eq!(t.join().unwrap(), 200);
        }
        assert_eq!(
            server.metrics().requests_shed.load(Ordering::Relaxed),
            OVERFLOW as u64
        );
        server.shutdown();
    }

    #[test]
    fn admin_reload_swaps_generation_and_clears_cache() {
        let service = Arc::new(StubService::new());
        let server = start(Arc::clone(&service), test_config());
        let mut c = client(&server);
        let first = c.post_json("/v1/impute", b"keyed").unwrap();
        assert_eq!(first.header("x-kamel-cache"), Some("miss"));
        let second = c.post_json("/v1/impute", b"keyed").unwrap();
        assert_eq!(second.header("x-kamel-cache"), Some("hit"));
        let resp = c.post_json("/admin/reload", b"").unwrap();
        assert_eq!(resp.status, 200, "{}", resp.text());
        assert!(resp.text().contains("generation 1"), "{}", resp.text());
        // The old model's cached answers are gone: same request misses
        // and is recomputed by the (new-generation) service.
        let third = c.post_json("/v1/impute", b"keyed").unwrap();
        assert_eq!(third.header("x-kamel-cache"), Some("miss"));
        assert_eq!(service.calls.load(Ordering::SeqCst), 2);
        assert_eq!(server.metrics().model_reloads.load(Ordering::Relaxed), 1);
        // The admin route only accepts POST.
        assert_eq!(c.get("/admin/reload").unwrap().status, 405);
        server.shutdown();
    }

    #[test]
    fn failed_reload_keeps_the_old_model_serving() {
        let service = Arc::new(StubService::new());
        service.reload_ok.store(false, Ordering::SeqCst);
        let server = start(Arc::clone(&service), test_config());
        let mut c = client(&server);
        let cached = c.post_json("/v1/impute", b"keyed").unwrap();
        assert_eq!(cached.status, 200);
        let resp = c.post_json("/admin/reload", b"").unwrap();
        assert_eq!(resp.status, 500, "{}", resp.text());
        assert!(resp.text().contains("stub model is corrupt"), "{}", resp.text());
        // Still serving, and even the old cache entries remain valid.
        let after = c.post_json("/v1/impute", b"keyed").unwrap();
        assert_eq!(after.status, 200);
        assert_eq!(after.header("x-kamel-cache"), Some("hit"));
        assert_eq!(after.text(), "KEYED");
        assert_eq!(server.metrics().model_reload_failures.load(Ordering::Relaxed), 1);
        assert_eq!(server.metrics().model_reloads.load(Ordering::Relaxed), 0);
        server.shutdown();
    }

    #[test]
    fn server_reload_handle_matches_the_admin_route() {
        let service = Arc::new(StubService::new());
        let server = start(Arc::clone(&service), test_config());
        let msg = server.reload().expect("stub reload succeeds");
        assert!(msg.contains("generation 1"), "{msg}");
        assert_eq!(server.metrics().model_reloads.load(Ordering::Relaxed), 1);
        server.shutdown();
    }

    #[test]
    fn metrics_page_reflects_traffic() {
        let server = start(Arc::new(StubService::new()), test_config());
        let mut c = client(&server);
        c.post_json("/v1/impute", b"nokey:x").unwrap();
        c.post_json("/v1/impute", b"keyed").unwrap();
        c.post_json("/v1/impute", b"keyed").unwrap();
        let page = c.get("/metrics").unwrap().text();
        assert!(page.contains("kamel_requests_ok_total 3"), "{page}");
        assert!(page.contains("kamel_cache_hits_total 1"), "{page}");
        assert!(page.contains("kamel_cache_misses_total 1"), "{page}");
        assert!(page.contains("kamel_request_latency_us_count 3"), "{page}");
        assert!(page.contains("kamel_batch_size"), "{page}");
        server.shutdown();
    }

    #[test]
    fn graceful_shutdown_drains_in_flight_requests() {
        let (entered_tx, entered_rx) = mpsc::sync_channel(64);
        let (release_tx, release_rx) = mpsc::sync_channel::<()>(64);
        let mut service = StubService::new();
        service.gate = Some((entered_tx, Mutex::new(release_rx)));
        let server = start(
            Arc::new(service),
            ServerConfig {
                workers: 1,
                batch_max: 1,
                batch_wait: Duration::ZERO,
                ..test_config()
            },
        );
        let addr = server.local_addr();
        // An in-flight request, parked inside the gated engine.
        let inflight = std::thread::spawn(move || {
            let mut c = Client::connect(addr, Duration::from_secs(10)).unwrap();
            c.post_json("/v1/impute", b"nokey:inflight")
                .unwrap()
                .status
        });
        entered_rx.recv().unwrap();
        // Begin shutdown from another thread while the request is in
        // flight, then release the engine so the drain can finish.
        server.request_shutdown();
        let drain = std::thread::spawn(move || server.shutdown());
        std::thread::sleep(Duration::from_millis(50));
        release_tx.send(()).unwrap();
        assert_eq!(inflight.join().unwrap(), 200, "in-flight request drained");
        drain.join().unwrap();
        // New connections are refused (accept loop is gone).
        assert!(Client::connect(addr, Duration::from_millis(300)).is_err());
    }

    #[test]
    fn a_budget_burned_before_admission_is_shed_at_the_admission_stage() {
        let clock = ManualClock::shared();
        let mut service = StubService::new();
        service.clock = Some(Arc::clone(&clock));
        service.parse_cost = Duration::from_millis(100);
        let server = start_with_clock(Arc::new(service), test_config(), clock);
        let mut c = client(&server);
        // 50ms of budget, 100ms of (simulated) parse work: shed before
        // the queue ever sees it.
        let resp = c
            .post_json_opts(
                "/v1/impute",
                b"nokey:late",
                with_deadline(&[(DEADLINE_HEADER, "50")]),
            )
            .unwrap();
        assert_eq!(resp.status, 504, "{}", resp.text());
        assert!(resp.text().contains("admission"), "{}", resp.text());
        assert_eq!(
            server.metrics().deadline_admission.load(Ordering::Relaxed),
            1
        );
        assert_eq!(
            server.metrics().requests_deadline.load(Ordering::Relaxed),
            1
        );
        // The same request with an adequate budget is served normally.
        let ok = c
            .post_json_opts(
                "/v1/impute",
                b"nokey:late",
                with_deadline(&[(DEADLINE_HEADER, "60000")]),
            )
            .unwrap();
        assert_eq!(ok.status, 200, "{}", ok.text());
        server.shutdown();
    }

    #[test]
    fn an_expired_queue_item_is_shed_at_the_queue_stage() {
        let clock = ManualClock::shared();
        let (entered_tx, entered_rx) = mpsc::sync_channel(64);
        let (release_tx, release_rx) = mpsc::sync_channel::<()>(64);
        let mut service = StubService::new();
        service.gate = Some((entered_tx, Mutex::new(release_rx)));
        let server = start_with_clock(
            Arc::new(service),
            ServerConfig {
                workers: 1,
                batch_max: 1,
                batch_wait: Duration::ZERO,
                cache_entries: 0,
                ..test_config()
            },
            Arc::clone(&clock) as Arc<dyn Clock>,
        );
        let addr = server.local_addr();
        // Occupy the single gated worker (with budget to spare)…
        let occupant = std::thread::spawn(move || {
            let mut c = Client::connect(addr, Duration::from_secs(10)).unwrap();
            c.post_json_opts(
                "/v1/impute",
                b"nokey:occupant",
                with_deadline(&[(DEADLINE_HEADER, "3600000")]),
            )
            .unwrap()
            .status
        });
        entered_rx.recv().unwrap();
        // …then park one request in the queue with a 60s budget.
        let doomed = std::thread::spawn(move || {
            let mut c = Client::connect(addr, Duration::from_secs(10)).unwrap();
            c.post_json_opts(
                "/v1/impute",
                b"nokey:doomed",
                with_deadline(&[(DEADLINE_HEADER, "60000")]),
            )
            .unwrap()
        });
        wait_for_queue_depth(addr, 1);
        // Burn the queued request's whole budget, then let the worker at
        // it: the item must be shed at drain time, never run.
        clock.advance(Duration::from_secs(120));
        release_tx.send(()).unwrap();
        assert_eq!(occupant.join().unwrap(), 200);
        let resp = doomed.join().unwrap();
        assert_eq!(resp.status, 504, "{}", resp.text());
        assert!(resp.text().contains("queue"), "{}", resp.text());
        assert_eq!(server.metrics().deadline_queue.load(Ordering::Relaxed), 1);
        assert_eq!(server.metrics().deadline_compute.load(Ordering::Relaxed), 0);
        server.shutdown();
    }

    #[test]
    fn a_slow_batch_times_out_at_the_compute_stage() {
        let (entered_tx, entered_rx) = mpsc::sync_channel(64);
        let (release_tx, release_rx) = mpsc::sync_channel::<()>(64);
        let mut service = StubService::new();
        service.gate = Some((entered_tx, Mutex::new(release_rx)));
        let server = start(
            Arc::new(service),
            ServerConfig {
                workers: 1,
                batch_max: 1,
                batch_wait: Duration::ZERO,
                cache_entries: 0,
                ..test_config()
            },
        );
        let mut c = client(&server);
        // The batch starts (gate entered) but never finishes inside the
        // 150ms budget: the waiter gives up at the compute stage.
        let resp = c
            .post_json_opts(
                "/v1/impute",
                b"nokey:slow",
                with_deadline(&[(DEADLINE_HEADER, "150")]),
            )
            .unwrap();
        entered_rx.recv().unwrap();
        assert_eq!(resp.status, 504, "{}", resp.text());
        assert!(resp.text().contains("compute"), "{}", resp.text());
        assert_eq!(server.metrics().deadline_compute.load(Ordering::Relaxed), 1);
        release_tx.send(()).unwrap();
        server.shutdown();
    }

    #[test]
    fn a_late_result_is_suppressed_but_still_cached() {
        let clock = ManualClock::shared();
        let mut service = StubService::new();
        service.clock = Some(Arc::clone(&clock));
        service.batch_cost = Duration::from_secs(7200); // 2h per batch
        let service = Arc::new(service);
        let server = start_with_clock(Arc::clone(&service), test_config(), clock);
        let mut c = client(&server);
        // The answer computes fine — but the injected clock says the
        // budget ran out mid-batch, so it must not be served.
        let resp = c.post_json("/v1/impute", b"slowpoke").unwrap();
        assert_eq!(resp.status, 504, "{}", resp.text());
        assert!(resp.text().contains("compute"), "{}", resp.text());
        assert_eq!(server.metrics().deadline_compute.load(Ordering::Relaxed), 1);
        // The computed answer was still cached for the next asker.
        let hit = c.post_json("/v1/impute", b"slowpoke").unwrap();
        assert_eq!(hit.status, 200);
        assert_eq!(hit.header("x-kamel-cache"), Some("hit"));
        assert_eq!(hit.text(), "SLOWPOKE");
        assert_eq!(service.calls.load(Ordering::SeqCst), 1, "no recompute");
        server.shutdown();
    }

    #[test]
    fn overload_answers_degraded_instead_of_shedding_when_enabled() {
        const CAP: usize = 2;
        let (entered_tx, entered_rx) = mpsc::sync_channel(64);
        let (release_tx, release_rx) = mpsc::sync_channel::<()>(64);
        let mut service = StubService::new();
        service.gate = Some((entered_tx, Mutex::new(release_rx)));
        let server = start(
            Arc::new(service),
            ServerConfig {
                workers: 1,
                handlers: 8 + CAP,
                batch_max: 1,
                batch_wait: Duration::ZERO,
                queue_cap: CAP,
                cache_entries: 0,
                degraded_mode: true,
                ..test_config()
            },
        );
        let addr = server.local_addr();
        let request_thread = |body: String| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr, Duration::from_secs(10)).unwrap();
                c.post_json("/v1/impute", body.as_bytes()).unwrap().status
            })
        };
        // Fill the worker and the whole admission queue.
        let occupant = request_thread("deg:occ".into());
        entered_rx.recv().unwrap();
        let queued: Vec<_> = (0..CAP)
            .map(|i| request_thread(format!("deg:q{i}")))
            .collect();
        wait_for_queue_depth(addr, CAP);
        // Overflow with a degradable job: 200, flagged, not shed.
        let mut c = client(&server);
        let resp = c.post_json("/v1/impute", b"deg:extra").unwrap();
        assert_eq!(resp.status, 200, "{}", resp.text());
        assert_eq!(resp.header(DEGRADED_HEADER), Some("overloaded"));
        assert!(resp.text().contains("\"degraded\":true"), "{}", resp.text());
        assert!(resp.text().contains("\"echo\":\"extra\""), "{}", resp.text());
        // Overflow with no fallback still sheds with 503.
        let mut c2 = client(&server);
        let shed = c2.post_json("/v1/impute", b"nokey:plain").unwrap();
        assert_eq!(shed.status, 503, "{}", shed.text());
        // Drain the gate; everything queued completes normally.
        for _ in 0..(1 + CAP) {
            release_tx.send(()).unwrap();
        }
        assert_eq!(occupant.join().unwrap(), 200);
        for t in queued {
            assert_eq!(t.join().unwrap(), 200);
        }
        assert_eq!(server.metrics().degraded.load(Ordering::Relaxed), 1);
        assert_eq!(server.metrics().requests_shed.load(Ordering::Relaxed), 1);
        server.shutdown();
    }

    #[test]
    fn an_invalid_deadline_header_serves_with_the_default_budget() {
        let server = start(Arc::new(StubService::new()), test_config());
        let mut c = client(&server);
        let resp = c
            .post_json_opts(
                "/v1/impute",
                b"nokey:messy",
                with_deadline(&[(DEADLINE_HEADER, "banana")]),
            )
            .unwrap();
        assert_eq!(resp.status, 200, "not an insta-504: {}", resp.text());
        assert_eq!(resp.text(), "NOKEY:MESSY");
        assert_eq!(server.metrics().requests_deadline.load(Ordering::Relaxed), 0);
        server.shutdown();
    }

    #[test]
    fn fnv1a_is_stable_and_sensitive() {
        assert_eq!(fnv1a([]), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a([1]), fnv1a([2]));
        assert_ne!(fnv1a([1, 2]), fnv1a([2, 1]));
        assert_eq!(fnv1a([7, 8, 9]), fnv1a([7, 8, 9]));
    }
}

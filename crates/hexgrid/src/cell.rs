//! Grid cell identifiers.
//!
//! A [`CellId`] packs a cell's two integer grid coordinates (axial `q, r` for
//! hexagons, column/row for squares) into one `u64`, mirroring how H3/S2
//! expose opaque 64-bit indexes. The id is what the Tokenization module
//! emits as the "token" for a GPS point (§3).

use serde::{Deserialize, Serialize};

/// An opaque 64-bit cell identifier within one tessellation.
///
/// Ids are only meaningful relative to the grid that produced them (same
/// grid kind and edge length), exactly like raw H3 indexes are only
/// meaningful at their resolution.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct CellId(pub u64);

impl CellId {
    /// Packs two signed 32-bit grid coordinates into an id.
    #[inline]
    pub fn from_coords(a: i32, b: i32) -> Self {
        CellId(((a as u32 as u64) << 32) | (b as u32 as u64))
    }

    /// Unpacks the two signed grid coordinates.
    #[inline]
    pub fn coords(self) -> (i32, i32) {
        (((self.0 >> 32) as u32) as i32, (self.0 as u32) as i32)
    }
}

impl std::fmt::Display for CellId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (a, b) = self.coords();
        write!(f, "cell({a},{b})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_positive_negative_and_extremes() {
        for (a, b) in [
            (0, 0),
            (1, -1),
            (-1, 1),
            (i32::MAX, i32::MIN),
            (i32::MIN, i32::MAX),
            (12345, -67890),
        ] {
            assert_eq!(CellId::from_coords(a, b).coords(), (a, b));
        }
    }

    #[test]
    fn distinct_coords_distinct_ids() {
        assert_ne!(CellId::from_coords(1, 2), CellId::from_coords(2, 1));
        assert_ne!(CellId::from_coords(0, 1), CellId::from_coords(1, 0));
    }

    #[test]
    fn display_is_readable() {
        assert_eq!(CellId::from_coords(3, -4).to_string(), "cell(3,-4)");
    }
}

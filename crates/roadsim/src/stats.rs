//! Dataset coverage statistics.
//!
//! The comparative behaviour of every imputation technique hinges on how
//! densely the training fleet covers the road network (the paper's Jakarta
//! analysis leans on this). This module quantifies it: per-edge traversal
//! counts, the fraction of network length ever observed, and points per
//! covered kilometer — numbers used to calibrate the synthetic datasets and
//! reported alongside experiments.

use crate::network::RoadNetwork;
use kamel_geo::{LocalProjection, Trajectory};
use serde::{Deserialize, Serialize};

/// Coverage summary of a trajectory set over a road network.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoverageStats {
    /// Fraction of network edges with at least one nearby fix.
    pub edge_coverage: f64,
    /// Mean fixes per covered edge.
    pub mean_fixes_per_covered_edge: f64,
    /// Median fixes per covered edge.
    pub median_fixes_per_covered_edge: f64,
    /// Total fixes observed.
    pub total_fixes: u64,
    /// Edges in the network.
    pub edges: usize,
}

/// Computes coverage of `trajectories` over `network`: every fix is
/// attributed to its nearest edge midpoint within `attach_radius_m`.
pub fn coverage(
    network: &RoadNetwork,
    proj: &LocalProjection,
    trajectories: &[Trajectory],
    attach_radius_m: f64,
) -> CoverageStats {
    let edges: Vec<(usize, usize)> = network.edges().collect();
    if edges.is_empty() {
        return CoverageStats {
            edge_coverage: 0.0,
            mean_fixes_per_covered_edge: 0.0,
            median_fixes_per_covered_edge: 0.0,
            total_fixes: 0,
            edges: 0,
        };
    }
    let midpoints: Vec<kamel_geo::Xy> = edges
        .iter()
        .map(|&(a, b)| network.node(a).lerp(&network.node(b), 0.5))
        .collect();
    let mut counts = vec![0u64; edges.len()];
    let mut total_fixes = 0u64;
    for traj in trajectories {
        for p in &traj.points {
            total_fixes += 1;
            let xy = proj.to_xy(p.pos);
            // Nearest edge midpoint (datasets are small enough for a scan;
            // a grid index would be the next step at larger scales).
            let (best, d) = midpoints
                .iter()
                .enumerate()
                .map(|(i, m)| (i, m.dist(&xy)))
                .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite distances"))
                .expect("non-empty edges");
            if d <= attach_radius_m {
                counts[best] += 1;
            }
        }
    }
    let covered: Vec<u64> = counts.iter().copied().filter(|&c| c > 0).collect();
    let edge_coverage = covered.len() as f64 / edges.len() as f64;
    let mean = if covered.is_empty() {
        0.0
    } else {
        covered.iter().sum::<u64>() as f64 / covered.len() as f64
    };
    let median = if covered.is_empty() {
        0.0
    } else {
        let mut sorted = covered.clone();
        sorted.sort_unstable();
        sorted[sorted.len() / 2] as f64
    };
    CoverageStats {
        edge_coverage,
        mean_fixes_per_covered_edge: mean,
        median_fixes_per_covered_edge: median,
        total_fixes,
        edges: edges.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::citygen::{generate_city, CityConfig};
    use crate::dataset::{Dataset, DatasetScale};
    use crate::trips::{generate_trips, TripConfig};
    use kamel_geo::LatLng;

    #[test]
    fn no_trajectories_means_zero_coverage() {
        let net = generate_city(&CityConfig {
            cols: 5,
            rows: 5,
            roundabouts: 0,
            ring_road: false,
            overpass: false,
            diagonals: 0,
            ..CityConfig::default()
        });
        let proj = LocalProjection::new(LatLng::new(41.15, -8.61));
        let stats = coverage(&net, &proj, &[], 120.0);
        assert_eq!(stats.edge_coverage, 0.0);
        assert_eq!(stats.total_fixes, 0);
        assert!(stats.edges > 0);
    }

    #[test]
    fn more_trips_cover_more_edges() {
        let net = generate_city(&CityConfig {
            cols: 8,
            rows: 8,
            ..CityConfig::default()
        });
        let proj = LocalProjection::new(LatLng::new(41.15, -8.61));
        let few = generate_trips(
            &net,
            &TripConfig {
                n_trips: 3,
                min_trip_dist_m: 500.0,
                ..TripConfig::default()
            },
            &proj,
        );
        let many = generate_trips(
            &net,
            &TripConfig {
                n_trips: 60,
                min_trip_dist_m: 500.0,
                ..TripConfig::default()
            },
            &proj,
        );
        let c_few = coverage(&net, &proj, &few, 120.0);
        let c_many = coverage(&net, &proj, &many, 120.0);
        assert!(c_many.edge_coverage > c_few.edge_coverage);
        assert!(c_few.edge_coverage > 0.0);
    }

    #[test]
    fn preset_datasets_have_calibrated_coverage() {
        // The evaluation's validity depends on these floors (EXPERIMENTS.md).
        let porto = Dataset::porto_like(DatasetScale::Small);
        let proj = porto.projection();
        let c = coverage(&porto.network, &proj, &porto.train, 120.0);
        assert!(c.edge_coverage > 0.4, "porto-like coverage {c:?}");
        let jakarta = Dataset::jakarta_like(DatasetScale::Small);
        let cj = coverage(&jakarta.network, &jakarta.projection(), &jakarta.train, 150.0);
        assert!(cj.edge_coverage > 0.3, "jakarta-like coverage {cj:?}");
        // Jakarta's 1 Hz sampling puts far more fixes on each covered edge.
        assert!(
            cj.mean_fixes_per_covered_edge > 3.0 * c.mean_fixes_per_covered_edge,
            "porto {c:?} vs jakarta {cj:?}"
        );
    }
}

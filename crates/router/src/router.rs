//! The gateway server: the connection layer, the background probe
//! thread, and routing to the [`RouterCore`].
//!
//! Same connection architecture as `kamel-server`: by default one
//! epoll/kqueue reactor thread owns every socket (accept, incremental
//! parse, write-out, idle timers) and hands parsed requests to a fixed
//! pool of dispatch workers, which run the proxy logic (forwarding may
//! block on shard sockets — never on the reactor thread). On platforms
//! without a supported selector the legacy thread-per-connection path
//! ([`kamel_server::ConnMode::Threaded`]) serves the same wire behavior.

use crate::proxy::{RouterConfig, RouterCore};
use crate::shardmap::ShardMap;
use kamel_server::http::{read_request, ReadError, Request, Response};
use kamel_server::reactor::{run_reactor, ResponseSink};
use kamel_server::{ConnMode, ConnStats, ReactorConfig, ShutdownFlag};
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// A running router. Dropping it without [`Router::shutdown`] aborts
/// without draining; call `shutdown` for the graceful path.
pub struct Router {
    addr: SocketAddr,
    flag: ShutdownFlag,
    core: Arc<RouterCore>,
    conn_stats: Arc<ConnStats>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    handler_threads: Vec<std::thread::JoinHandle<()>>,
    probe_thread: Option<std::thread::JoinHandle<()>>,
}

impl Router {
    /// Binds `addr` (port 0 for ephemeral), runs one synchronous
    /// admission sweep over the fleet, and starts serving. Shards that
    /// are not up yet stay unverified and are admitted by the periodic
    /// probe once they answer.
    pub fn bind(addr: &str, map: ShardMap, config: RouterConfig) -> std::io::Result<Router> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let flag = ShutdownFlag::new();
        let core = Arc::new(RouterCore::new(map, config.clone()));
        core.probe_all();
        let conn_stats = Arc::new(ConnStats::default());
        // Reactor mode needs an epoll/kqueue selector; fall back to the
        // blocking path (same wire behavior) where none exists.
        let mode = match config.mode {
            ConnMode::Reactor if kamel_server::poller::Poller::new().is_err() => {
                eprintln!(
                    "kamel-route: no epoll/kqueue on this platform; \
                     falling back to thread-per-connection"
                );
                ConnMode::Threaded
            }
            mode => mode,
        };
        let (handler_threads, accept_thread) = match mode {
            ConnMode::Reactor => {
                // Dispatch workers run the proxy (which blocks on shard
                // sockets) off the reactor thread.
                let (req_tx, req_rx) = mpsc::channel::<(Request, Instant, ResponseSink)>();
                let req_rx = Arc::new(Mutex::new(req_rx));
                let handler_threads: Vec<_> = (0..config.handlers.max(1))
                    .map(|i| {
                        let req_rx = Arc::clone(&req_rx);
                        let core = Arc::clone(&core);
                        let flag = flag.clone();
                        let conn_stats = Arc::clone(&conn_stats);
                        std::thread::Builder::new()
                            .name(format!("kamel-route-{i}"))
                            .spawn(move || dispatch_loop(&req_rx, &core, &flag, &conn_stats))
                            .expect("spawn router dispatch worker")
                    })
                    .collect();
                // The reactor owns `req_tx`; when it drains and exits,
                // the channel disconnects the workers.
                let on_request: kamel_server::reactor::RequestHandler =
                    Box::new(move |request, received, sink| {
                        let _ = req_tx.send((request, received, sink));
                    });
                let reactor_config = ReactorConfig {
                    max_connections: config.max_connections.max(1),
                    idle_timeout: config.idle_timeout,
                    ..ReactorConfig::default()
                };
                let reactor_clock = Arc::clone(core.clock());
                let reactor_flag = flag.clone();
                let reactor_stats = Arc::clone(&conn_stats);
                let reactor_thread = std::thread::Builder::new()
                    .name("kamel-route-reactor".into())
                    .spawn(move || {
                        if let Err(e) = run_reactor(
                            listener,
                            reactor_config,
                            reactor_clock,
                            reactor_flag,
                            reactor_stats,
                            on_request,
                        ) {
                            eprintln!("kamel-route: reactor failed: {e}");
                        }
                    })
                    .expect("spawn router reactor thread");
                (handler_threads, reactor_thread)
            }
            ConnMode::Threaded => {
                // Handlers drain a bounded socket channel fed by the
                // acceptor.
                let (conn_tx, conn_rx) =
                    mpsc::sync_channel::<TcpStream>(config.handlers.max(1) * 2);
                let conn_rx = Arc::new(Mutex::new(conn_rx));
                let handler_threads: Vec<_> = (0..config.handlers.max(1))
                    .map(|i| {
                        let conn_rx = Arc::clone(&conn_rx);
                        let core = Arc::clone(&core);
                        let flag = flag.clone();
                        let conn_stats = Arc::clone(&conn_stats);
                        std::thread::Builder::new()
                            .name(format!("kamel-route-{i}"))
                            .spawn(move || handler_loop(&conn_rx, &core, &flag, &conn_stats))
                            .expect("spawn router handler")
                    })
                    .collect();
                let accept_flag = flag.clone();
                let poll = config.idle_poll.min(Duration::from_millis(50));
                let accept_thread = std::thread::Builder::new()
                    .name("kamel-route-accept".into())
                    .spawn(move || {
                        accept_loop(&listener, &conn_tx, &accept_flag, poll);
                        drop(conn_tx);
                    })
                    .expect("spawn router accept thread");
                (handler_threads, accept_thread)
            }
        };
        let probe_core = Arc::clone(&core);
        let probe_flag = flag.clone();
        let probe_thread = std::thread::Builder::new()
            .name("kamel-route-probe".into())
            .spawn(move || probe_loop(&probe_core, &probe_flag))
            .expect("spawn router probe thread");
        Ok(Router {
            addr,
            flag,
            core,
            conn_stats,
            accept_thread: Some(accept_thread),
            handler_threads,
            probe_thread: Some(probe_thread),
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The routing core (map, health, metrics) — shared with handlers.
    pub fn core(&self) -> &Arc<RouterCore> {
        &self.core
    }

    /// The live connection-layer counters (shared with the reactor or,
    /// in threaded mode, the handlers).
    pub fn connections(&self) -> &Arc<ConnStats> {
        &self.conn_stats
    }

    /// Requests a graceful shutdown without waiting; follow with
    /// [`Router::shutdown`] to drain and join.
    pub fn request_shutdown(&self) {
        self.flag.trip();
    }

    /// Graceful shutdown: stop accepting, finish requests in flight on
    /// every connection, stop probing, join all threads.
    pub fn shutdown(mut self) {
        self.flag.trip();
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        for t in self.handler_threads.drain(..) {
            let _ = t.join();
        }
        if let Some(t) = self.probe_thread.take() {
            let _ = t.join();
        }
    }
}

fn accept_loop(
    listener: &TcpListener,
    conn_tx: &mpsc::SyncSender<TcpStream>,
    flag: &ShutdownFlag,
    poll: Duration,
) {
    while !flag.is_tripped() {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if conn_tx.send(stream).is_err() {
                    return;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => std::thread::sleep(poll),
            Err(_) => std::thread::sleep(poll),
        }
    }
}

/// Sweeps the fleet every `probe_interval`, polling the shutdown flag at
/// a finer grain so shutdown never waits out a full interval.
fn probe_loop(core: &RouterCore, flag: &ShutdownFlag) {
    let interval = core.health().policy().probe_interval;
    let tick = interval.min(Duration::from_millis(50)).max(Duration::from_millis(1));
    loop {
        let mut slept = Duration::ZERO;
        while slept < interval {
            if flag.is_tripped() {
                return;
            }
            std::thread::sleep(tick);
            slept += tick;
        }
        if flag.is_tripped() {
            return;
        }
        core.probe_all();
    }
}

/// Reactor-mode worker: requests arrive already parsed, with the instant
/// they finished parsing; the response goes back through the sink.
fn dispatch_loop(
    req_rx: &Mutex<mpsc::Receiver<(Request, Instant, ResponseSink)>>,
    core: &RouterCore,
    flag: &ShutdownFlag,
    conn_stats: &ConnStats,
) {
    loop {
        let next = req_rx.lock().unwrap().recv();
        match next {
            Ok((request, received, sink)) => {
                sink.send(route(&request, received, core, flag, conn_stats));
            }
            Err(_) => return,
        }
    }
}

fn handler_loop(
    conn_rx: &Mutex<mpsc::Receiver<TcpStream>>,
    core: &RouterCore,
    flag: &ShutdownFlag,
    conn_stats: &ConnStats,
) {
    loop {
        let conn = conn_rx.lock().unwrap().recv();
        match conn {
            Ok(stream) => handle_connection(stream, core, flag, conn_stats),
            Err(_) => return,
        }
    }
}

fn handle_connection(
    stream: TcpStream,
    core: &RouterCore,
    flag: &ShutdownFlag,
    conn_stats: &ConnStats,
) {
    if stream.set_nonblocking(false).is_err()
        || stream
            .set_read_timeout(Some(core.config().idle_poll))
            .is_err()
        || stream.set_nodelay(true).is_err()
    {
        return;
    }
    let Ok(mut write_half) = stream.try_clone() else {
        return;
    };
    // Same admission rule as the reactor: past the cap, refuse with a
    // best-effort 503 before reading anything. The slot is claimed with
    // a CAS loop so concurrent handler threads cannot overshoot the cap
    // under a simultaneous accept burst.
    let cap = core.config().max_connections.max(1) as u64;
    if conn_stats
        .active
        .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| {
            (n < cap).then_some(n + 1)
        })
        .is_err()
    {
        conn_stats.rejected_total.fetch_add(1, Ordering::Relaxed);
        let _ = Response::text(503, "overloaded: connection limit reached\n")
            .with_header("retry-after", "1")
            .write_to(&mut write_half, true);
        return;
    }
    conn_stats.accepted_total.fetch_add(1, Ordering::Relaxed);
    struct ActiveGuard<'a>(&'a ConnStats);
    impl Drop for ActiveGuard<'_> {
        fn drop(&mut self) {
            self.0.active.fetch_sub(1, Ordering::Relaxed);
        }
    }
    let _guard = ActiveGuard(conn_stats);
    let mut reader = BufReader::new(stream);
    loop {
        if flag.is_tripped() {
            return;
        }
        match read_request(&mut reader) {
            Ok(request) => {
                let received = core.clock().now();
                let close = request.wants_close();
                let response = route(&request, received, core, flag, conn_stats);
                let close = close || response.status == 503;
                if response.write_to(&mut write_half, close).is_err() || close {
                    return;
                }
            }
            Err(ReadError::Idle) => continue,
            Err(ReadError::ConnectionClosed) => return,
            Err(ReadError::Bad(status, msg)) => {
                let _ = Response::text(status, msg).write_to(&mut write_half, true);
                return;
            }
            Err(ReadError::Io(_)) => return,
        }
    }
}

fn route(
    request: &Request,
    received: Instant,
    core: &RouterCore,
    flag: &ShutdownFlag,
    conn_stats: &ConnStats,
) -> Response {
    match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/v1/impute") => core.handle_impute_at(request, received),
        ("GET", "/healthz") => {
            if flag.is_tripped() {
                Response::text(503, "draining\n")
            } else {
                Response::text(200, "ok\n")
            }
        }
        ("GET", "/metrics") => {
            Response::text(200, format!("{}{}", core.metrics_page(), conn_stats.render()))
        }
        ("GET", "/v1/shards") => match core.shards_page() {
            Ok(body) => Response::json(body),
            Err(e) => Response::text(500, format!("{e}\n")),
        },
        (_, "/v1/impute") | (_, "/healthz") | (_, "/metrics") | (_, "/v1/shards") => {
            Response::text(405, "method not allowed\n")
        }
        _ => Response::text(404, "not found\n"),
    }
}

//! The static shard map: which backend owns which routing cell.
//!
//! Ownership is assigned by rendezvous (highest-random-weight) hashing:
//! every `(cell, shard)` pair gets a pseudo-random weight from hashing the
//! shard's id with the cell bits, and the shards sorted by descending
//! weight form the cell's candidate list — the first is the primary, the
//! rest are replicas in deterministic failover order. Rendezvous hashing
//! needs no coordination, gives every router the same answer from the
//! same map, and moves only `1/n` of the cells when a shard is added or
//! removed from the map.
//!
//! The map is loaded from a JSON file (see [`ShardMap::from_json_str`])
//! or built from a `--shard host:port,...` flag list, where each shard's
//! id defaults to its address string (stable under list reordering).

use kamel::checkpoint::fnv1a64;
use kamel::routing::{routing_cell, DEFAULT_ROUTING_CELL_DEG};
use kamel_geo::LatLng;
use kamel_hexgrid::CellId;
use serde::Deserialize;
use std::net::SocketAddr;

/// One backend in the fleet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardInfo {
    /// Stable identifier — the rendezvous hash input. Renaming a shard
    /// reshuffles its cells; changing only its address does not.
    pub id: String,
    /// Where the shard listens.
    pub addr: SocketAddr,
}

/// The fleet map: shards, the routing-cell resolution, and (optionally)
/// the config digest every shard must report on `/v1/info` to be
/// admitted.
#[derive(Debug, Clone)]
pub struct ShardMap {
    shards: Vec<ShardInfo>,
    cell_deg: f64,
    expected_digest: Option<String>,
}

/// The JSON shard-map file.
#[derive(Deserialize)]
struct ShardMapFile {
    #[serde(default)]
    cell_deg: Option<f64>,
    #[serde(default)]
    config_digest: Option<String>,
    shards: Vec<ShardEntry>,
}

#[derive(Deserialize)]
struct ShardEntry {
    #[serde(default)]
    id: Option<String>,
    addr: String,
}

impl ShardMap {
    /// Builds and validates a map. Errors on an empty fleet, duplicate
    /// ids or addresses, or a non-positive cell size.
    pub fn new(shards: Vec<ShardInfo>, cell_deg: f64) -> Result<Self, String> {
        if shards.is_empty() {
            return Err("shard map has no shards".into());
        }
        if !(cell_deg.is_finite() && cell_deg > 0.0) {
            return Err(format!("routing cell size must be positive, got {cell_deg}"));
        }
        for (i, shard) in shards.iter().enumerate() {
            if shard.id.is_empty() {
                return Err(format!("shard {i} has an empty id"));
            }
            for other in &shards[..i] {
                if other.id == shard.id {
                    return Err(format!("duplicate shard id `{}`", shard.id));
                }
                if other.addr == shard.addr {
                    return Err(format!("duplicate shard address `{}`", shard.addr));
                }
            }
        }
        Ok(Self {
            shards,
            cell_deg,
            expected_digest: None,
        })
    }

    /// A map from a `--shard host:port,host:port,...` flag; each shard's
    /// id is its address string.
    pub fn from_flag_list(list: &str, cell_deg: f64) -> Result<Self, String> {
        let shards = list
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(|s| {
                Ok(ShardInfo {
                    id: s.to_string(),
                    addr: s.parse().map_err(|e| format!("bad shard address `{s}`: {e}"))?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        Self::new(shards, cell_deg)
    }

    /// A map from the JSON file format:
    ///
    /// ```json
    /// {
    ///   "cell_deg": 0.01,
    ///   "config_digest": "fnv1a64:0123456789abcdef",
    ///   "shards": [
    ///     { "id": "porto-west", "addr": "127.0.0.1:8788" },
    ///     { "addr": "127.0.0.1:8789" }
    ///   ]
    /// }
    /// ```
    ///
    /// `cell_deg` defaults to [`DEFAULT_ROUTING_CELL_DEG`], a shard's
    /// `id` to its address, and `config_digest` (when present) pins the
    /// `/v1/info` digest shards must report to be admitted.
    pub fn from_json_str(text: &str) -> Result<Self, String> {
        let file: ShardMapFile =
            serde_json::from_str(text).map_err(|e| format!("invalid shard map JSON: {e}"))?;
        let shards = file
            .shards
            .into_iter()
            .map(|e| {
                Ok(ShardInfo {
                    id: e.id.unwrap_or_else(|| e.addr.clone()),
                    addr: e
                        .addr
                        .parse()
                        .map_err(|err| format!("bad shard address `{}`: {err}", e.addr))?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        let mut map = Self::new(shards, file.cell_deg.unwrap_or(DEFAULT_ROUTING_CELL_DEG))?;
        map.expected_digest = file.config_digest;
        Ok(map)
    }

    /// Loads [`ShardMap::from_json_str`] from a file.
    pub fn from_json_file(path: &std::path::Path) -> Result<Self, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("read shard map {}: {e}", path.display()))?;
        Self::from_json_str(&text)
    }

    /// Pins the `/v1/info` config digest shards must report.
    pub fn with_expected_digest(mut self, digest: Option<String>) -> Self {
        self.expected_digest = digest;
        self
    }

    /// The fleet, in map order (health state is indexed the same way).
    pub fn shards(&self) -> &[ShardInfo] {
        &self.shards
    }

    /// Fleet size.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// True when the map holds no shards (never, post-validation).
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// The routing-cell edge in degrees.
    pub fn cell_deg(&self) -> f64 {
        self.cell_deg
    }

    /// The pinned admission digest, if the map carries one.
    pub fn expected_digest(&self) -> Option<&str> {
        self.expected_digest.as_deref()
    }

    /// The routing cell owning `pos` at this map's resolution.
    pub fn cell_of(&self, pos: LatLng) -> CellId {
        routing_cell(pos, self.cell_deg)
    }

    /// The cell's candidate shards by descending rendezvous weight:
    /// `order[0]` is the primary, the rest the deterministic failover
    /// chain. Ties (astronomically unlikely) break by id so the order
    /// never depends on map file ordering.
    pub fn owner_order(&self, cell: CellId) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.shards.len()).collect();
        order.sort_by(|&a, &b| {
            let (wa, wb) = (self.weight(a, cell), self.weight(b, cell));
            wb.cmp(&wa).then_with(|| self.shards[a].id.cmp(&self.shards[b].id))
        });
        order
    }

    /// The rendezvous weight of `(shard, cell)`.
    fn weight(&self, shard: usize, cell: CellId) -> u64 {
        splitmix64(fnv1a64(self.shards[shard].id.as_bytes()) ^ cell.0)
    }
}

/// SplitMix64 finalizer (public-domain constants): turns the shard-id
/// hash XOR cell bits into a well-distributed rendezvous weight.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map(ids: &[&str]) -> ShardMap {
        let shards = ids
            .iter()
            .enumerate()
            .map(|(i, id)| ShardInfo {
                id: id.to_string(),
                addr: format!("127.0.0.1:{}", 9000 + i).parse().unwrap(),
            })
            .collect();
        ShardMap::new(shards, 0.01).unwrap()
    }

    #[test]
    fn owner_order_is_deterministic_and_total() {
        let m = map(&["a", "b", "c"]);
        for q in -5..5 {
            for r in -5..5 {
                let cell = CellId::from_coords(q, r);
                let order = m.owner_order(cell);
                assert_eq!(order, m.owner_order(cell), "same map, same order");
                let mut sorted = order.clone();
                sorted.sort_unstable();
                assert_eq!(sorted, vec![0, 1, 2], "a permutation of the fleet");
            }
        }
    }

    #[test]
    fn ownership_ignores_map_file_ordering() {
        let fwd = map(&["a", "b", "c"]);
        let rev = map(&["c", "b", "a"]);
        for q in -10..10 {
            let cell = CellId::from_coords(q, 7 * q + 3);
            let by_id = |m: &ShardMap, cell| -> Vec<String> {
                m.owner_order(cell)
                    .into_iter()
                    .map(|i| m.shards()[i].id.clone())
                    .collect()
            };
            assert_eq!(by_id(&fwd, cell), by_id(&rev, cell));
        }
    }

    #[test]
    fn every_shard_owns_a_fair_share_of_cells() {
        let m = map(&["a", "b", "c", "d"]);
        let mut owned = [0usize; 4];
        for q in 0..40 {
            for r in 0..40 {
                owned[m.owner_order(CellId::from_coords(q, r))[0]] += 1;
            }
        }
        for (i, n) in owned.iter().enumerate() {
            // 1600 cells over 4 shards ≈ 400 each; allow a wide band.
            assert!(
                (200..=600).contains(n),
                "shard {i} owns {n} of 1600 cells — rendezvous is skewed: {owned:?}"
            );
        }
    }

    #[test]
    fn removing_a_shard_only_reassigns_its_own_cells() {
        let full = map(&["a", "b", "c"]);
        let reduced = map(&["a", "b"]);
        for q in 0..30 {
            for r in 0..30 {
                let cell = CellId::from_coords(q, r);
                let before = &full.shards()[full.owner_order(cell)[0]].id;
                let after = &reduced.shards()[reduced.owner_order(cell)[0]].id;
                if before != "c" {
                    assert_eq!(before, after, "cell {cell} moved needlessly");
                }
            }
        }
    }

    #[test]
    fn flag_list_parses_and_validates() {
        let m = ShardMap::from_flag_list("127.0.0.1:8788, 127.0.0.1:8789", 0.01).unwrap();
        assert_eq!(m.len(), 2);
        assert_eq!(m.shards()[0].id, "127.0.0.1:8788");
        assert!(ShardMap::from_flag_list("", 0.01).is_err(), "empty fleet");
        assert!(ShardMap::from_flag_list("nonsense", 0.01).is_err());
        assert!(
            ShardMap::from_flag_list("127.0.0.1:1,127.0.0.1:1", 0.01).is_err(),
            "duplicate address"
        );
        assert!(ShardMap::from_flag_list("127.0.0.1:1", 0.0).is_err(), "bad cell size");
    }

    #[test]
    fn json_map_roundtrips_with_defaults() {
        let m = ShardMap::from_json_str(
            r#"{
                "config_digest": "fnv1a64:00000000deadbeef",
                "shards": [
                    { "id": "west", "addr": "127.0.0.1:8788" },
                    { "addr": "127.0.0.1:8789" }
                ]
            }"#,
        )
        .unwrap();
        assert_eq!(m.cell_deg(), DEFAULT_ROUTING_CELL_DEG);
        assert_eq!(m.expected_digest(), Some("fnv1a64:00000000deadbeef"));
        assert_eq!(m.shards()[0].id, "west");
        assert_eq!(m.shards()[1].id, "127.0.0.1:8789", "id defaults to the address");
        assert!(ShardMap::from_json_str("{").is_err());
        assert!(ShardMap::from_json_str(r#"{"shards": []}"#).is_err());
    }
}

//! Criterion bench for the Figure 12-VI path: imputation cost of the
//! ablation variants (full / No Part. / No Const. / No Multi.).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kamel::MultipointStrategy;
use kamel_baselines::TrajectoryImputer;
use kamel_bench::{default_kamel_config, City};
use kamel_eval::harness::train_kamel;
use kamel_roadsim::DatasetScale;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let dataset = City::Porto.dataset(DatasetScale::Small);
    let sparse: Vec<_> = dataset.test.iter().take(4).map(|t| t.sparsify(1_500.0)).collect();
    let variants = [
        ("full", default_kamel_config().pyramid_height(3).model_threshold_k(150).build()),
        (
            "no_partitioning",
            default_kamel_config()
                .pyramid_height(3)
                .model_threshold_k(150)
                .disable_partitioning(true)
                .build(),
        ),
        (
            "no_constraints",
            default_kamel_config()
                .pyramid_height(3)
                .model_threshold_k(150)
                .disable_constraints(true)
                .build(),
        ),
        (
            "no_multipoint",
            default_kamel_config()
                .pyramid_height(3)
                .model_threshold_k(150)
                .multipoint(MultipointStrategy::Single)
                .build(),
        ),
    ];
    let mut group = c.benchmark_group("fig12_ablation");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    for (label, config) in variants {
        let (kamel, _) = train_kamel(&dataset, config);
        group.bench_with_input(BenchmarkId::from_parameter(label), &kamel, |b, k| {
            b.iter(|| {
                for s in &sparse {
                    std::hint::black_box(k.impute(s));
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Property-based tests spanning crates: system-level invariants that must
//! hold for arbitrary trajectories and parameters.

use kamel::{Kamel, KamelConfig};
use kamel_baselines::{LinearImputer, TrajectoryImputer};
use kamel_eval::MetricsAccumulator;
use kamel_geo::{GpsPoint, LatLng, LocalProjection, Trajectory};
use proptest::prelude::*;

/// Strategy: a plausible city-scale trajectory (random walk with bounded
/// steps and strictly increasing timestamps).
fn trajectory_strategy() -> impl Strategy<Value = Trajectory> {
    (
        3usize..40,
        proptest::collection::vec((-1.0..1.0f64, -1.0..1.0f64), 40),
        1.0..60.0f64,
    )
        .prop_map(|(n, steps, dt)| {
            let mut lat = 41.15;
            let mut lng = -8.61;
            let mut points = Vec::with_capacity(n);
            for (i, (dlat, dlng)) in steps.into_iter().take(n).enumerate() {
                lat += dlat * 0.002;
                lng += dlng * 0.002;
                points.push(GpsPoint::from_parts(lat, lng, i as f64 * dt));
            }
            Trajectory::new(points)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Sparsify keeps endpoints, never adds points, and enforces spacing.
    #[test]
    fn sparsify_invariants(traj in trajectory_strategy(), d in 100.0..3_000.0f64) {
        let s = traj.sparsify(d);
        prop_assert!(s.len() <= traj.len());
        prop_assert_eq!(s.points[0], traj.points[0]);
        prop_assert_eq!(*s.points.last().unwrap(), *traj.points.last().unwrap());
        // All interior kept pairs respect the spacing.
        if s.len() > 2 {
            for w in s.points[..s.len() - 1].windows(2) {
                prop_assert!(w[0].pos.fast_dist_m(&w[1].pos) >= d * 0.99);
            }
        }
    }

    /// An untrained system is total: output contains the input fixes, is
    /// time-ordered, and reports failures only.
    #[test]
    fn untrained_impute_is_total(traj in trajectory_strategy()) {
        let kamel = Kamel::new(KamelConfig::default());
        let out = kamel.impute(&traj);
        for p in &traj.points {
            prop_assert!(out.trajectory.points.contains(p));
        }
        for w in out.trajectory.points.windows(2) {
            prop_assert!(w[1].t >= w[0].t - 1e-9);
        }
        if let Some(f) = out.failure_rate() {
            prop_assert_eq!(f, 1.0);
        }
    }

    /// Metrics are bounded and self-comparison is perfect.
    #[test]
    fn metric_bounds(traj in trajectory_strategy(), delta in 5.0..100.0f64) {
        let proj = LocalProjection::new(LatLng::new(41.15, -8.61));
        let mut acc = MetricsAccumulator::default();
        acc.add_pair(&traj, &traj, &proj, 100.0, delta);
        prop_assert_eq!(acc.recall(), 1.0);
        prop_assert_eq!(acc.precision(), 1.0);
        // Against a fixed line the scores stay in [0, 1].
        let line = Trajectory::new(vec![
            GpsPoint::from_parts(41.15, -8.61, 0.0),
            GpsPoint::from_parts(41.16, -8.60, 600.0),
        ]);
        let mut acc2 = MetricsAccumulator::default();
        acc2.add_pair(&traj, &line, &proj, 100.0, delta);
        prop_assert!((0.0..=1.0).contains(&acc2.recall()));
        prop_assert!((0.0..=1.0).contains(&acc2.precision()));
    }

    /// The linear baseline's output spacing never exceeds max_gap (plus
    /// floating-point slack) and its failure accounting is exact.
    #[test]
    fn linear_spacing_invariant(traj in trajectory_strategy()) {
        let li = LinearImputer { max_gap_m: 150.0 };
        let out = li.impute(&traj);
        prop_assert_eq!(out.segments_failed, out.segments_total);
        for w in out.trajectory.points.windows(2) {
            prop_assert!(w[0].pos.fast_dist_m(&w[1].pos) <= 150.0 * 1.01 + 1.0);
        }
    }

    /// Trained imputation output: original fixes preserved, times monotone,
    /// and every inserted point stays inside the dilated trajectory bbox.
    #[test]
    fn trained_impute_respects_geometry(seed_lng in -8.62..-8.60f64) {
        let corpus: Vec<Trajectory> = (0..25)
            .map(|_| {
                Trajectory::new(
                    (0..25)
                        .map(|i| GpsPoint::from_parts(
                            41.15,
                            seed_lng + i as f64 * 0.001,
                            i as f64 * 10.0,
                        ))
                        .collect(),
                )
            })
            .collect();
        let kamel = Kamel::new(
            KamelConfig::builder()
                .pyramid_height(3)
                .model_threshold_k(50)
                .build(),
        );
        kamel.train(&corpus);
        let sparse = corpus[0].sparsify(900.0);
        let out = kamel.impute(&sparse);
        for p in &sparse.points {
            prop_assert!(out.trajectory.points.contains(p));
        }
        for w in out.trajectory.points.windows(2) {
            prop_assert!(w[1].t >= w[0].t - 1e-9);
        }
        // Imputed points stay near the street corridor.
        for p in &out.trajectory.points {
            prop_assert!((p.pos.lat - 41.15).abs() < 0.005, "stray point {:?}", p);
        }
    }
}

//! Online mode: imputing a stream of incoming trajectories while training
//! continues in the background.
//!
//! ```text
//! cargo run --release --example streaming
//! ```
//!
//! The paper's architecture (Figure 1) accepts sparse trajectories "in bulk
//! offline mode or as a stream", and model building is "scheduled as a
//! background process … without causing any downtime" (§4.2). KAMEL's state
//! sits behind a read-write lock, so an `Arc<Kamel>` serves both roles at
//! once: a trainer thread feeds new batches while the main thread drains an
//! imputation stream.

use kamel::{Kamel, KamelConfig};
use kamel_roadsim::{Dataset, DatasetScale};
use std::sync::Arc;

fn main() {
    let dataset = Dataset::porto_like(DatasetScale::Small);
    let kamel = Arc::new(Kamel::new(
        KamelConfig::builder()
            .pyramid_height(3)
            .pyramid_maintained(3)
            .model_threshold_k(150)
            .build(),
    ));

    // Bootstrap with the first half of the training data.
    let half = dataset.train.len() / 2;
    println!("bootstrapping with {half} trajectories...");
    kamel.train(&dataset.train[..half]);

    // Background trainer: feeds the remaining data in small batches, as if
    // new trajectory uploads kept arriving.
    let trainer = {
        let kamel = Arc::clone(&kamel);
        let batches: Vec<Vec<_>> = dataset.train[half..]
            .chunks(10)
            .map(|c| c.to_vec())
            .collect();
        std::thread::spawn(move || {
            for batch in batches {
                kamel.train(&batch);
            }
            kamel.stats().expect("trained")
        })
    };

    // Meanwhile, impute a live stream of sparse trajectories.
    let stream = dataset.test.iter().map(|t| t.sparsify(1_000.0));
    let mut imputed_points = 0usize;
    let mut gaps = 0usize;
    let mut failures = 0usize;
    for (i, result) in kamel.impute_stream(stream).enumerate() {
        imputed_points += result.imputed_points();
        gaps += result.gaps.len();
        failures += result.gaps.iter().filter(|g| g.outcome.failed).count();
        if i % 8 == 0 {
            let models = kamel.stats().map_or(0, |s| s.models);
            println!(
                "  streamed #{i:>3}: +{} points ({} models trained so far)",
                result.imputed_points(),
                models
            );
        }
    }
    let final_stats = trainer.join().expect("trainer thread");
    println!(
        "\nstream done: {} trajectories, {gaps} gaps, {imputed_points} imputed points, \
         {failures} straight-line fallbacks",
        dataset.test.len()
    );
    println!(
        "background training finished with {} models over {} trajectories",
        final_stats.models, final_stats.stored_trajectories
    );
}

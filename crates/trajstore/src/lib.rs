//! The raw trajectory store behind KAMEL's Partitioning module (§4).
//!
//! The paper keeps every tokenized training trajectory in a "simple
//! trajectory store" (it cites TrajStore \[18\]) so the pyramid maintenance can
//! (a) count tokens per spatial region to decide whether a cell earns a
//! model, and (b) retrieve all trajectories enclosed in a region to train or
//! enrich that cell's model. This crate provides exactly that: an in-memory
//! store of [`TokenTrajectory`] records with a uniform-grid spatial index for
//! bbox queries, plus serde persistence.

#![warn(missing_docs)]

use kamel_geo::{BBox, Xy};
use kamel_hexgrid::CellId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One tokenized trajectory: parallel per-fix arrays.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TokenTrajectory {
    /// Token (grid cell) of each fix.
    pub cells: Vec<CellId>,
    /// Planar position of each fix.
    pub xy: Vec<Xy>,
    /// Timestamp of each fix in seconds.
    pub t: Vec<f64>,
}

impl TokenTrajectory {
    /// Builds a record, validating that the arrays are parallel.
    pub fn new(cells: Vec<CellId>, xy: Vec<Xy>, t: Vec<f64>) -> Self {
        assert!(
            cells.len() == xy.len() && xy.len() == t.len(),
            "parallel arrays must have equal length"
        );
        Self { cells, xy, t }
    }

    /// Number of fixes.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True when there are no fixes.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// The token sequence with consecutive duplicates collapsed — the
    /// "sentence" the language model trains on (§3: consecutive fixes in the
    /// same cell are one word).
    pub fn dedup_cells(&self) -> Vec<CellId> {
        let mut out: Vec<CellId> = Vec::with_capacity(self.cells.len());
        for &c in &self.cells {
            if out.last() != Some(&c) {
                out.push(c);
            }
        }
        out
    }

    /// Minimum bounding rectangle of the fixes (`None` when empty).
    pub fn bbox(&self) -> Option<BBox> {
        BBox::of_points(self.xy.iter().copied())
    }
}

/// Identifier of a stored trajectory.
pub type TrajId = u64;

/// An in-memory trajectory store with a uniform-grid spatial index.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrajStore {
    grid_m: f64,
    trajs: HashMap<TrajId, TokenTrajectory>,
    bboxes: HashMap<TrajId, BBox>,
    /// Index: coarse grid cell → trajectory ids whose bbox intersects it.
    /// Serialized as a pair list because JSON map keys must be strings.
    #[serde(with = "index_serde")]
    index: HashMap<(i32, i32), Vec<TrajId>>,
    next_id: TrajId,
    total_tokens: u64,
}

impl Default for TrajStore {
    fn default() -> Self {
        Self::new(500.0)
    }
}

impl TrajStore {
    /// Creates a store whose index bucket size is `grid_m` meters.
    pub fn new(grid_m: f64) -> Self {
        assert!(grid_m > 0.0, "index grid size must be positive");
        Self {
            grid_m,
            trajs: HashMap::new(),
            bboxes: HashMap::new(),
            index: HashMap::new(),
            next_id: 0,
            total_tokens: 0,
        }
    }

    /// Inserts a trajectory, returning its id. Empty trajectories are
    /// rejected with `None`.
    pub fn insert(&mut self, traj: TokenTrajectory) -> Option<TrajId> {
        let bbox = traj.bbox()?;
        let id = self.next_id;
        self.next_id += 1;
        self.total_tokens += traj.len() as u64;
        for key in self.grid_cells(&bbox) {
            self.index.entry(key).or_default().push(id);
        }
        self.bboxes.insert(id, bbox);
        self.trajs.insert(id, traj);
        Some(id)
    }

    /// Number of stored trajectories.
    pub fn len(&self) -> usize {
        self.trajs.len()
    }

    /// True when the store holds nothing.
    pub fn is_empty(&self) -> bool {
        self.trajs.is_empty()
    }

    /// Total fixes across all trajectories.
    pub fn total_tokens(&self) -> u64 {
        self.total_tokens
    }

    /// A stored trajectory by id.
    pub fn get(&self, id: TrajId) -> Option<&TokenTrajectory> {
        self.trajs.get(&id)
    }

    /// Iterates over all stored trajectories.
    pub fn iter(&self) -> impl Iterator<Item = (&TrajId, &TokenTrajectory)> {
        self.trajs.iter()
    }

    /// Ids of trajectories **fully enclosed** in `region` (the §4.2
    /// enrichment query), in ascending id order for determinism.
    pub fn enclosed_ids(&self, region: &BBox) -> Vec<TrajId> {
        let mut out: Vec<TrajId> = self
            .candidates(region)
            .into_iter()
            .filter(|id| region.contains_bbox(&self.bboxes[id]))
            .collect();
        out.sort_unstable();
        out
    }

    /// Trajectories fully enclosed in `region`.
    pub fn enclosed(&self, region: &BBox) -> Vec<&TokenTrajectory> {
        self.enclosed_ids(region)
            .into_iter()
            .map(|id| &self.trajs[&id])
            .collect()
    }

    /// Maximal runs of consecutive fixes inside `region`, as cell
    /// sequences, for every stored trajectory that intersects it. Runs
    /// shorter than `min_len` fixes are dropped.
    ///
    /// This is the §4.2 training-corpus query: a model for a pyramid cell
    /// must learn from *all* traffic through the cell — trajectories fully
    /// enclosed in it *and* the in-region portions of trajectories passing
    /// through — otherwise cells smaller than a typical trip starve.
    pub fn clipped_cell_runs(&self, region: &BBox, min_len: usize) -> Vec<Vec<CellId>> {
        let mut out = Vec::new();
        for id in self.candidates(region) {
            let traj = &self.trajs[&id];
            let mut run: Vec<CellId> = Vec::new();
            for (cell, xy) in traj.cells.iter().zip(&traj.xy) {
                if region.contains(*xy) {
                    run.push(*cell);
                } else if !run.is_empty() {
                    if run.len() >= min_len {
                        out.push(std::mem::take(&mut run));
                    } else {
                        run.clear();
                    }
                }
            }
            if run.len() >= min_len {
                out.push(run);
            }
        }
        out
    }

    /// Number of fixes located inside `region` (the §4.1 model-threshold
    /// count). Counts individual fixes, not whole trajectories, so partial
    /// overlaps contribute.
    pub fn token_count_in(&self, region: &BBox) -> u64 {
        let mut count = 0u64;
        for id in self.candidates(region) {
            let traj = &self.trajs[&id];
            if region.contains_bbox(&self.bboxes[&id]) {
                count += traj.len() as u64;
            } else {
                count += traj.xy.iter().filter(|p| region.contains(**p)).count() as u64;
            }
        }
        count
    }

    /// Removes a trajectory by id, returning it. The spatial index entry is
    /// dropped lazily (queries always re-check the live bbox map), so
    /// removal is O(1); call [`TrajStore::compact`] after bulk deletions to
    /// reclaim index memory.
    pub fn remove(&mut self, id: TrajId) -> Option<TokenTrajectory> {
        let traj = self.trajs.remove(&id)?;
        self.bboxes.remove(&id);
        self.total_tokens -= traj.len() as u64;
        Some(traj)
    }

    /// Rebuilds the spatial index, dropping entries for removed
    /// trajectories and empty buckets.
    pub fn compact(&mut self) {
        for ids in self.index.values_mut() {
            ids.retain(|id| self.bboxes.contains_key(id));
        }
        self.index.retain(|_, ids| !ids.is_empty());
    }

    /// Serializes the store to a JSON file.
    pub fn save_to_file(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        let json = serde_json::to_string(self)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        std::fs::write(path, json)
    }

    /// Restores a store persisted with [`TrajStore::save_to_file`].
    pub fn load_from_file(path: impl AsRef<std::path::Path>) -> std::io::Result<Self> {
        let json = std::fs::read_to_string(path)?;
        serde_json::from_str(&json)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }

    /// Candidate ids whose bbox intersects the region (deduplicated).
    fn candidates(&self, region: &BBox) -> Vec<TrajId> {
        let mut out = Vec::new();
        for key in self.grid_cells(region) {
            if let Some(ids) = self.index.get(&key) {
                out.extend_from_slice(ids);
            }
        }
        out.sort_unstable();
        out.dedup();
        // Stale entries from lazy removal are filtered here.
        out.retain(|id| self.bboxes.get(id).is_some_and(|bb| region.intersects(bb)));
        out
    }

    /// The coarse grid cells a bbox touches.
    fn grid_cells(&self, bbox: &BBox) -> Vec<(i32, i32)> {
        let x0 = (bbox.min.x / self.grid_m).floor() as i32;
        let x1 = (bbox.max.x / self.grid_m).floor() as i32;
        let y0 = (bbox.min.y / self.grid_m).floor() as i32;
        let y1 = (bbox.max.y / self.grid_m).floor() as i32;
        let mut out = Vec::with_capacity(((x1 - x0 + 1) * (y1 - y0 + 1)) as usize);
        for x in x0..=x1 {
            for y in y0..=y1 {
                out.push((x, y));
            }
        }
        out
    }
}

/// Serializes the tuple-keyed index as a list of `(key, value)` pairs so it
/// survives formats (like JSON) that require string map keys.
mod index_serde {
    use super::TrajId;
    use serde::{Deserialize, Deserializer, Serialize, Serializer};
    use std::collections::HashMap;

    type Pair<'a> = (&'a (i32, i32), &'a Vec<TrajId>);
    type Index = HashMap<(i32, i32), Vec<TrajId>>;

    pub fn serialize<S: Serializer>(map: &Index, ser: S) -> Result<S::Ok, S::Error> {
        // Sort for stable output.
        let mut pairs: Vec<Pair> = map.iter().collect();
        pairs.sort_by_key(|(k, _)| **k);
        pairs.serialize(ser)
    }

    type OwnedPair = ((i32, i32), Vec<TrajId>);

    pub fn deserialize<'de, D: Deserializer<'de>>(de: D) -> Result<Index, D::Error> {
        let pairs: Vec<OwnedPair> = Vec::deserialize(de)?;
        Ok(pairs.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn traj(points: &[(f64, f64)]) -> TokenTrajectory {
        let xy: Vec<Xy> = points.iter().map(|&(x, y)| Xy::new(x, y)).collect();
        let cells: Vec<CellId> = xy
            .iter()
            .map(|p| CellId::from_coords((p.x / 75.0) as i32, (p.y / 75.0) as i32))
            .collect();
        let t: Vec<f64> = (0..xy.len()).map(|i| i as f64 * 10.0).collect();
        TokenTrajectory::new(cells, xy, t)
    }

    #[test]
    fn insert_and_lookup() {
        let mut store = TrajStore::new(100.0);
        let id = store.insert(traj(&[(0.0, 0.0), (50.0, 50.0)])).unwrap();
        assert_eq!(store.len(), 1);
        assert_eq!(store.total_tokens(), 2);
        assert_eq!(store.get(id).unwrap().len(), 2);
        assert!(store.get(id + 1).is_none());
    }

    #[test]
    fn empty_trajectory_rejected() {
        let mut store = TrajStore::default();
        assert!(store
            .insert(TokenTrajectory::new(vec![], vec![], vec![]))
            .is_none());
        assert!(store.is_empty());
    }

    #[test]
    fn enclosed_requires_full_containment() {
        let mut store = TrajStore::new(100.0);
        let inside = store.insert(traj(&[(10.0, 10.0), (90.0, 90.0)])).unwrap();
        let crossing = store
            .insert(traj(&[(50.0, 50.0), (500.0, 500.0)]))
            .unwrap();
        let outside = store
            .insert(traj(&[(900.0, 900.0), (950.0, 950.0)]))
            .unwrap();
        let region = BBox::new(Xy::new(0.0, 0.0), Xy::new(100.0, 100.0));
        let ids = store.enclosed_ids(&region);
        assert!(ids.contains(&inside));
        assert!(!ids.contains(&crossing));
        assert!(!ids.contains(&outside));
    }

    #[test]
    fn token_count_counts_partial_overlaps_per_fix() {
        let mut store = TrajStore::new(100.0);
        // 3 fixes inside the region, 2 outside.
        store.insert(traj(&[
            (10.0, 10.0),
            (20.0, 20.0),
            (30.0, 30.0),
            (500.0, 500.0),
            (600.0, 600.0),
        ]));
        let region = BBox::new(Xy::new(0.0, 0.0), Xy::new(100.0, 100.0));
        assert_eq!(store.token_count_in(&region), 3);
    }

    #[test]
    fn index_handles_negative_coordinates() {
        let mut store = TrajStore::new(100.0);
        let id = store
            .insert(traj(&[(-250.0, -250.0), (-150.0, -150.0)]))
            .unwrap();
        let region = BBox::new(Xy::new(-300.0, -300.0), Xy::new(-100.0, -100.0));
        assert_eq!(store.enclosed_ids(&region), vec![id]);
        assert_eq!(store.token_count_in(&region), 2);
    }

    #[test]
    fn dedup_cells_collapses_runs() {
        let t = TokenTrajectory::new(
            vec![
                CellId::from_coords(0, 0),
                CellId::from_coords(0, 0),
                CellId::from_coords(1, 0),
                CellId::from_coords(0, 0),
            ],
            vec![Xy::default(); 4],
            vec![0.0, 1.0, 2.0, 3.0],
        );
        let d = t.dedup_cells();
        assert_eq!(
            d,
            vec![
                CellId::from_coords(0, 0),
                CellId::from_coords(1, 0),
                CellId::from_coords(0, 0)
            ]
        );
    }

    #[test]
    fn remove_and_compact() {
        let mut store = TrajStore::new(100.0);
        let a = store.insert(traj(&[(10.0, 10.0), (20.0, 20.0)])).unwrap();
        let b = store.insert(traj(&[(30.0, 30.0), (40.0, 40.0)])).unwrap();
        assert_eq!(store.total_tokens(), 4);
        let removed = store.remove(a).expect("present");
        assert_eq!(removed.len(), 2);
        assert_eq!(store.len(), 1);
        assert_eq!(store.total_tokens(), 2);
        assert!(store.remove(a).is_none(), "double remove");
        // Queries skip the stale index entry.
        let region = BBox::new(Xy::new(0.0, 0.0), Xy::new(100.0, 100.0));
        assert_eq!(store.enclosed_ids(&region), vec![b]);
        assert_eq!(store.token_count_in(&region), 2);
        store.compact();
        assert_eq!(store.enclosed_ids(&region), vec![b]);
    }

    #[test]
    fn file_persistence_roundtrip() {
        let mut store = TrajStore::new(100.0);
        store.insert(traj(&[(10.0, 10.0), (90.0, 90.0)]));
        let path = std::env::temp_dir().join(format!("trajstore_{}.json", std::process::id()));
        store.save_to_file(&path).expect("save");
        let back = TrajStore::load_from_file(&path).expect("load");
        assert_eq!(back.len(), store.len());
        assert_eq!(back.total_tokens(), store.total_tokens());
        std::fs::remove_file(&path).ok();
        assert!(TrajStore::load_from_file(&path).is_err());
    }

    #[test]
    fn serde_roundtrip_preserves_queries() {
        let mut store = TrajStore::new(100.0);
        store.insert(traj(&[(10.0, 10.0), (90.0, 90.0)]));
        store.insert(traj(&[(500.0, 500.0), (550.0, 560.0)]));
        let json = serde_json::to_string(&store).unwrap();
        let back: TrajStore = serde_json::from_str(&json).unwrap();
        let region = BBox::new(Xy::new(0.0, 0.0), Xy::new(100.0, 100.0));
        assert_eq!(
            store.enclosed_ids(&region),
            back.enclosed_ids(&region)
        );
        assert_eq!(store.total_tokens(), back.total_tokens());
    }

    #[test]
    #[should_panic(expected = "parallel arrays")]
    fn mismatched_arrays_rejected() {
        let _ = TokenTrajectory::new(vec![CellId::from_coords(0, 0)], vec![], vec![0.0]);
    }

    #[test]
    fn empty_store_answers_every_query_empty() {
        let store = TrajStore::new(100.0);
        let region = BBox::new(Xy::new(0.0, 0.0), Xy::new(1000.0, 1000.0));
        assert!(store.is_empty());
        assert_eq!(store.len(), 0);
        assert_eq!(store.total_tokens(), 0);
        assert!(store.enclosed_ids(&region).is_empty());
        assert!(store.enclosed(&region).is_empty());
        assert_eq!(store.token_count_in(&region), 0);
        assert!(store.clipped_cell_runs(&region, 1).is_empty());
        assert!(store.get(0).is_none());
        assert_eq!(store.iter().count(), 0);
        let mut store = store;
        assert!(store.remove(0).is_none());
        store.compact(); // no-op on empty must not panic
    }

    #[test]
    fn enclosed_ids_are_ascending_and_deduplicated() {
        let mut store = TrajStore::new(100.0);
        // Each trajectory spans several index buckets, so its id is listed
        // in multiple buckets and the query must deduplicate.
        let ids: Vec<TrajId> = (0..5)
            .map(|i| {
                let off = i as f64 * 10.0;
                store
                    .insert(traj(&[(off, off), (350.0 + off, 350.0 + off)]))
                    .unwrap()
            })
            .collect();
        let region = BBox::new(Xy::new(-50.0, -50.0), Xy::new(450.0, 450.0));
        let got = store.enclosed_ids(&region);
        assert_eq!(got, ids, "ascending insertion order, no duplicates");
        assert!(got.windows(2).all(|w| w[0] < w[1]));
        // The same guarantee survives a serde roundtrip (HashMap iteration
        // order must never leak into query results).
        let back: TrajStore =
            serde_json::from_str(&serde_json::to_string(&store).unwrap()).unwrap();
        assert_eq!(back.enclosed_ids(&region), ids);
    }

    #[test]
    fn clipped_cell_runs_splits_at_region_exits() {
        let mut store = TrajStore::new(100.0);
        // In (2 fixes) → out (1 fix) → in (3 fixes): two runs.
        store.insert(traj(&[
            (10.0, 10.0),
            (20.0, 20.0),
            (500.0, 500.0),
            (30.0, 30.0),
            (40.0, 40.0),
            (50.0, 50.0),
        ]));
        let region = BBox::new(Xy::new(0.0, 0.0), Xy::new(100.0, 100.0));
        let runs = store.clipped_cell_runs(&region, 1);
        let mut lens: Vec<usize> = runs.iter().map(Vec::len).collect();
        lens.sort_unstable();
        assert_eq!(lens, vec![2, 3]);
        // min_len drops the shorter run but keeps the longer one.
        let runs = store.clipped_cell_runs(&region, 3);
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].len(), 3);
        // Runs preserve the original cell order.
        let expected: Vec<CellId> = [(30.0, 30.0), (40.0, 40.0), (50.0, 50.0)]
            .iter()
            .map(|&(x, y)| CellId::from_coords((x / 75.0) as i32, (y / 75.0) as i32))
            .collect();
        assert_eq!(runs[0], expected);
    }

    #[test]
    fn clipped_cell_runs_cover_enclosed_and_crossing_traffic() {
        let mut store = TrajStore::new(100.0);
        // Fully enclosed: one run with every fix.
        store.insert(traj(&[(10.0, 10.0), (20.0, 20.0), (30.0, 30.0)]));
        // Crossing: only the in-region prefix contributes.
        store.insert(traj(&[(60.0, 60.0), (80.0, 80.0), (900.0, 900.0)]));
        // Disjoint: contributes nothing.
        store.insert(traj(&[(800.0, 800.0), (850.0, 850.0)]));
        let region = BBox::new(Xy::new(0.0, 0.0), Xy::new(100.0, 100.0));
        let runs = store.clipped_cell_runs(&region, 1);
        let mut lens: Vec<usize> = runs.iter().map(Vec::len).collect();
        lens.sort_unstable();
        assert_eq!(lens, vec![2, 3], "enclosed run + clipped crossing run");
        // Total in-region fixes agree with the token count query.
        assert_eq!(
            store.token_count_in(&region),
            lens.iter().sum::<usize>() as u64
        );
    }

    #[test]
    fn insert_query_roundtrip_preserves_payload() {
        let mut store = TrajStore::new(100.0);
        let original = traj(&[(10.0, 10.0), (90.0, 40.0), (95.0, 95.0)]);
        let id = store.insert(original.clone()).unwrap();
        // Lookup by id and by region return the same untouched record.
        assert_eq!(store.get(id), Some(&original));
        let region = BBox::new(Xy::new(0.0, 0.0), Xy::new(100.0, 100.0));
        assert_eq!(store.enclosed(&region), vec![&original]);
        // Removal returns exactly what was inserted.
        assert_eq!(store.remove(id), Some(original));
        assert!(store.enclosed(&region).is_empty());
    }
}

//! Online mode: streaming equals bulk, and imputation stays available while
//! training runs concurrently (the paper's no-downtime property, §4.2).

use kamel::{Kamel, KamelConfig};
use kamel_geo::{GpsPoint, Trajectory};
use kamel_roadsim::{Dataset, DatasetScale};
use std::sync::Arc;

fn config() -> KamelConfig {
    KamelConfig::builder()
        .pyramid_height(3)
        .pyramid_maintained(3)
        .model_threshold_k(150)
        .build()
}

#[test]
fn streaming_equals_bulk() {
    let dataset = Dataset::porto_like(DatasetScale::Small);
    let kamel = Kamel::new(config());
    kamel.train(&dataset.train);
    let sparse: Vec<Trajectory> = dataset
        .test
        .iter()
        .take(10)
        .map(|t| t.sparsify(1_000.0))
        .collect();
    let bulk = kamel.impute_batch(&sparse);
    let streamed: Vec<_> = kamel.impute_stream(sparse.clone()).collect();
    assert_eq!(bulk, streamed);
}

#[test]
fn stream_is_lazy() {
    let kamel = Kamel::new(config());
    kamel.train(&[Trajectory::new(
        (0..20)
            .map(|i| GpsPoint::from_parts(41.15, -8.61 + i as f64 * 0.001, i as f64 * 10.0))
            .collect(),
    )]);
    // An infinite stream: taking 3 must terminate.
    let base = Trajectory::new(vec![
        GpsPoint::from_parts(41.15, -8.61, 0.0),
        GpsPoint::from_parts(41.15, -8.60, 100.0),
    ]);
    let infinite = std::iter::repeat(base);
    let got: Vec<_> = kamel.impute_stream(infinite).take(3).collect();
    assert_eq!(got.len(), 3);
}

#[test]
fn concurrent_training_and_imputation() {
    let dataset = Dataset::porto_like(DatasetScale::Small);
    let kamel = Arc::new(Kamel::new(config()));
    let half = dataset.train.len() / 2;
    kamel.train(&dataset.train[..half]);

    let trainer = {
        let kamel = Arc::clone(&kamel);
        let rest: Vec<Trajectory> = dataset.train[half..].to_vec();
        std::thread::spawn(move || {
            for chunk in rest.chunks(8) {
                kamel.train(chunk);
            }
        })
    };
    let imputers: Vec<_> = (0..3)
        .map(|shard| {
            let kamel = Arc::clone(&kamel);
            let work: Vec<Trajectory> = dataset
                .test
                .iter()
                .skip(shard)
                .step_by(3)
                .take(6)
                .map(|t| t.sparsify(1_000.0))
                .collect();
            std::thread::spawn(move || {
                let mut gaps = 0usize;
                for t in &work {
                    gaps += kamel.impute(t).gaps.len();
                }
                gaps
            })
        })
        .collect();
    trainer.join().expect("trainer");
    let total_gaps: usize = imputers.into_iter().map(|h| h.join().expect("imputer")).sum();
    assert!(total_gaps > 0, "no gaps were processed concurrently");
    // Post-conditions: the system absorbed all batches and stays usable.
    assert_eq!(
        kamel.stats().unwrap().stored_trajectories,
        dataset.train.len()
    );
    let check = kamel.impute(&dataset.test[0].sparsify(1_000.0));
    assert!(!check.trajectory.is_empty());
}

//! Integration test: the full CLI workflow over temp files —
//! generate → train → stats → impute → evaluate → append.

use std::path::PathBuf;

fn workdir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("kamel_cli_test_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn run(args: &[&str]) -> (i32, String) {
    let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
    let mut buf = Vec::new();
    let code = kamel_cli::run(&args, &mut buf);
    (code, String::from_utf8(buf).unwrap())
}

#[test]
fn full_workflow() {
    let dir = workdir();
    let train_csv = dir.join("train.csv");
    let truth_csv = dir.join("truth.csv");
    let model = dir.join("model.json");
    let dense_csv = dir.join("dense.csv");
    let (train_s, truth_s, model_s, dense_s) = (
        train_csv.to_str().unwrap(),
        truth_csv.to_str().unwrap(),
        model.to_str().unwrap(),
        dense_csv.to_str().unwrap(),
    );

    // generate
    let (code, out) = run(&[
        "generate", "--city", "porto", "--scale", "small", "--train", train_s, "--test", truth_s,
    ]);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("training trajectories"), "{out}");
    assert!(train_csv.exists() && truth_csv.exists());

    // train
    let (code, out) = run(&[
        "train", "--input", train_s, "--model", model_s, "--threshold-k", "150",
    ]);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("models"), "{out}");
    assert!(model.exists());

    // stats
    let (code, out) = run(&["stats", "--model", model_s]);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("engine: ngram"), "{out}");
    assert!(out.contains("tokens:"), "{out}");

    // impute the (sparsified by evaluate internally — here raw) truth file
    let (code, out) = run(&[
        "impute", "--model", model_s, "--input", truth_s, "--output", dense_s,
    ]);
    assert_eq!(code, 0, "{out}");
    assert!(dense_csv.exists());

    // evaluate against ground truth
    let (code, out) = run(&[
        "evaluate", "--model", model_s, "--truth", truth_s, "--sparse-m", "1000", "--limit", "8",
    ]);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("KAMEL"), "{out}");
    // A trained model must beat the 0.5 recall floor on its own city.
    let recall: f64 = out
        .lines()
        .find(|l| l.starts_with("KAMEL"))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
        .expect("recall column");
    assert!(recall > 0.5, "recall {recall}\n{out}");

    // append: incremental training on the same file keeps the model usable.
    let (code, out) = run(&["train", "--input", train_s, "--model", model_s, "--append"]);
    assert_eq!(code, 0, "{out}");
    let (code, out) = run(&["stats", "--model", model_s]);
    assert_eq!(code, 0, "{out}");
    // Store now holds both batches.
    assert!(out.contains("trajectories: 308") || out.contains("trajectories:"), "{out}");

    std::fs::remove_dir_all(&dir).ok();
}

/// Crash-safe training: checkpoint mid-run, resume to completion, survive
/// corruption of the final checkpoint via the `.bak` rotation, and refuse
/// to resume against a different input file.
#[test]
fn checkpoint_resume_workflow() {
    let dir = workdir().join("ckpt_resume");
    std::fs::create_dir_all(&dir).unwrap();
    let train_csv = dir.join("train.csv");
    let model = dir.join("model.ckpt");
    let progress = dir.join("model.ckpt.progress");
    let (train_s, model_s) = (train_csv.to_str().unwrap(), model.to_str().unwrap());

    let (code, out) = run(&["generate", "--city", "porto", "--scale", "small", "--train", train_s]);
    assert_eq!(code, 0, "{out}");
    let total: usize = out
        .split("wrote ")
        .nth(1)
        .and_then(|s| s.split_whitespace().next())
        .and_then(|v| v.parse().ok())
        .expect("trajectory count in generate output");
    assert!(total > 80, "corpus too small for this test: {total}");

    // An "interrupted" run: checkpoint every 40 trajectories, stop at 80.
    let (code, out) = run(&[
        "train", "--input", train_s, "--model", model_s, "--threshold-k", "150",
        "--checkpoint-every", "40", "--stop-after", "80",
    ]);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("checkpoint: 40/"), "{out}");
    assert!(out.contains("stopped after 80/"), "{out}");
    assert!(model.exists() && progress.exists());

    // The partial checkpoint is a valid, inspectable model.
    let (code, out) = run(&["stats", "--model", model_s]);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("trajectories: 80"), "{out}");

    // Resume finishes the rest and removes the progress record.
    let (code, out) = run(&["train", "--input", train_s, "--model", model_s, "--resume"]);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("resuming") && out.contains("at trajectory 80/"), "{out}");
    assert!(out.contains(&format!("trained on {total} trajectories")), "{out}");
    assert!(!progress.exists(), "progress record must be cleaned up");
    let (code, out) = run(&["stats", "--model", model_s]);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains(&format!("trajectories: {total}")), "{out}");

    // Resuming a completed run is a clean no-op.
    let (code, out) = run(&["train", "--input", train_s, "--model", model_s, "--resume"]);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("nothing to resume"), "{out}");

    // Corrupt the live checkpoint's tail: stats must fall back to the
    // rotated .bak and still exit 0.
    let bytes = std::fs::read(&model).unwrap();
    std::fs::write(&model, &bytes[..bytes.len() - 64]).unwrap();
    let (code, out) = run(&["stats", "--model", model_s]);
    assert_eq!(code, 0, "corrupt checkpoint must recover via .bak: {out}");
    assert!(out.contains("trajectories:"), "{out}");

    // A resume against a different input file is refused loudly.
    let model2 = dir.join("model2.ckpt");
    let model2_s = model2.to_str().unwrap();
    let (code, out) = run(&[
        "train", "--input", train_s, "--model", model2_s, "--threshold-k", "150",
        "--checkpoint-every", "40", "--stop-after", "40",
    ]);
    assert_eq!(code, 0, "{out}");
    let mut csv = std::fs::read(&train_csv).unwrap();
    csv.extend_from_slice(b"9999,41.15,-8.61,0\n9999,41.15,-8.60,60\n");
    std::fs::write(&train_csv, &csv).unwrap();
    let (code, out) = run(&["train", "--input", train_s, "--model", model2_s, "--resume"]);
    assert_eq!(code, 1, "{out}");
    assert!(out.contains("digest mismatch"), "{out}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn tune_picks_a_candidate() {
    let dir = workdir();
    let train_csv = dir.join("tune_train.csv");
    let train_s = train_csv.to_str().unwrap();
    let (code, out) = run(&[
        "generate", "--city", "porto", "--scale", "small", "--train", train_s,
    ]);
    assert_eq!(code, 0, "{out}");
    let (code, out) = run(&[
        "tune", "--input", train_s, "--candidates", "50,75,150", "--threshold-k", "150",
    ]);
    assert_eq!(code, 0, "{out}");
    assert!(
        out.contains("50") || out.contains("75") || out.contains("150"),
        "{out}"
    );
    assert!(out.contains("best hexagon edge"), "{out}");
    std::fs::remove_file(&train_csv).ok();
}

#[test]
fn export_writes_geojson() {
    let dir = workdir();
    let csv = dir.join("export.csv");
    let geojson = dir.join("export.geojson");
    std::fs::write(&csv, "traj_id,lat,lng,t\n0,41.15,-8.61,0\n0,41.16,-8.60,60\n").unwrap();
    let (code, out) = run(&[
        "export", "--input", csv.to_str().unwrap(), "--output", geojson.to_str().unwrap(),
    ]);
    assert_eq!(code, 0, "{out}");
    let doc: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&geojson).unwrap()).unwrap();
    assert_eq!(doc["type"], "FeatureCollection");
    assert_eq!(doc["features"][0]["geometry"]["type"], "LineString");
    std::fs::remove_file(&csv).ok();
    std::fs::remove_file(&geojson).ok();
}

#[test]
fn helpful_errors() {
    let (code, out) = run(&["train", "--model", "/nonexistent/model.json"]);
    assert_eq!(code, 1);
    assert!(out.contains("--input"), "{out}");

    let (code, out) = run(&["impute", "--model", "/nonexistent/model.json", "--input", "x", "--output", "y"]);
    assert_eq!(code, 1);
    assert!(out.contains("error"), "{out}");

    let (code, out) = run(&["generate", "--city", "atlantis", "--train", "/tmp/x.csv"]);
    assert_eq!(code, 1);
    assert!(out.contains("porto|jakarta"), "{out}");

    let (code, out) = run(&["route"]);
    assert_eq!(code, 1);
    assert!(out.contains("--shard"), "{out}");

    let (code, out) = run(&["route", "--shard", "127.0.0.1:1", "--shard-map", "/tmp/map.json"]);
    assert_eq!(code, 1);
    assert!(out.contains("not both"), "{out}");

    // Shard identity is validated before the model loads.
    let (code, out) = run(&["serve", "--model", "/nonexistent/model.json", "--shard-id", "0"]);
    assert_eq!(code, 1);
    assert!(out.contains("given together"), "{out}");

    let (code, out) = run(&[
        "serve", "--model", "/nonexistent/model.json", "--shard-id", "2", "--shard-of", "2",
    ]);
    assert_eq!(code, 1);
    assert!(out.contains("must be <"), "{out}");
}

#[test]
fn per_command_help() {
    for cmd in ["generate", "train", "tune", "impute", "serve", "route", "stats", "evaluate", "export"] {
        let (code, out) = run(&[cmd, "--help"]);
        assert_eq!(code, 0, "{cmd}");
        assert!(out.contains(cmd), "{cmd}: {out}");
    }
}

//! Criterion bench for the Figure 9 path: imputation across sparseness
//! levels for KAMEL and its competitors.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kamel_baselines::{LinearImputer, TrajectoryImputer, TrImputeConfig};
use kamel_bench::{default_kamel_config, City};
use kamel_eval::harness::{train_kamel, train_trimpute};
use kamel_geo::Trajectory;
use kamel_roadsim::DatasetScale;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let dataset = City::Porto.dataset(DatasetScale::Small);
    let (kamel, _) = train_kamel(&dataset, default_kamel_config().pyramid_height(3).model_threshold_k(150).build());
    let (trimpute, _) = train_trimpute(&dataset, TrImputeConfig::default());
    let linear = LinearImputer::default();
    let techniques: Vec<(&str, &dyn TrajectoryImputer)> = vec![
        ("KAMEL", &kamel),
        ("TrImpute", &trimpute),
        ("Linear", &linear),
    ];
    let mut group = c.benchmark_group("fig9_sparseness");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    for sparse_m in [1_000.0f64, 2_500.0] {
        let sparse: Vec<Trajectory> = dataset
            .test
            .iter()
            .take(5)
            .map(|t| t.sparsify(sparse_m))
            .collect();
        for (name, technique) in &techniques {
            group.bench_with_input(
                BenchmarkId::new(*name, sparse_m as u64),
                &sparse,
                |b, sparse| {
                    b.iter(|| {
                        for s in sparse {
                            std::hint::black_box(technique.impute(s));
                        }
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

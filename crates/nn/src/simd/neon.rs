//! NEON kernels (aarch64): two 4-lane registers emulate the canonical
//! 8-slot accumulator (lanes 0–3 and 4–7), so reductions reproduce the
//! scalar reference's accumulation order exactly. NEON is baseline on
//! aarch64, so these are safe wrappers around the intrinsics. Multiplies
//! and adds stay separate instructions (no `vmla`/FMLA fusion) to match
//! the scalar reference's two roundings per multiply-add.

use std::arch::aarch64::*;

/// Stores the two 4-lane accumulators as one 8-slot array (lanes 0–3
/// then 4–7) and folds it exactly like the scalar reference.
#[inline]
fn lanes8(acc0: float32x4_t, acc1: float32x4_t) -> [f32; 8] {
    let mut lanes = [0.0f32; 8];
    unsafe {
        vst1q_f32(lanes.as_mut_ptr(), acc0);
        vst1q_f32(lanes.as_mut_ptr().add(4), acc1);
    }
    lanes
}

/// Dot product; bit-identical to [`super::scalar::dot`].
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    let n8 = a.len() / 8 * 8;
    unsafe {
        let mut acc0 = vdupq_n_f32(0.0);
        let mut acc1 = vdupq_n_f32(0.0);
        let mut i = 0;
        while i < n8 {
            let a0 = vld1q_f32(a.as_ptr().add(i));
            let a1 = vld1q_f32(a.as_ptr().add(i + 4));
            let b0 = vld1q_f32(b.as_ptr().add(i));
            let b1 = vld1q_f32(b.as_ptr().add(i + 4));
            acc0 = vaddq_f32(acc0, vmulq_f32(a0, b0));
            acc1 = vaddq_f32(acc1, vmulq_f32(a1, b1));
            i += 8;
        }
        let mut s: f32 = lanes8(acc0, acc1).iter().sum();
        while i < a.len() {
            s += a[i] * b[i];
            i += 1;
        }
        s
    }
}

/// `out[i] += a * x[i]`.
pub fn axpy(out: &mut [f32], a: f32, x: &[f32]) {
    let n4 = out.len() / 4 * 4;
    unsafe {
        let va = vdupq_n_f32(a);
        let mut i = 0;
        while i < n4 {
            let vx = vld1q_f32(x.as_ptr().add(i));
            let vo = vld1q_f32(out.as_ptr().add(i));
            vst1q_f32(out.as_mut_ptr().add(i), vaddq_f32(vo, vmulq_f32(va, vx)));
            i += 4;
        }
        while i < out.len() {
            out[i] += a * x[i];
            i += 1;
        }
    }
}

/// `out[i] += x[i]`.
pub fn add_assign(out: &mut [f32], x: &[f32]) {
    let n4 = out.len() / 4 * 4;
    unsafe {
        let mut i = 0;
        while i < n4 {
            let vx = vld1q_f32(x.as_ptr().add(i));
            let vo = vld1q_f32(out.as_ptr().add(i));
            vst1q_f32(out.as_mut_ptr().add(i), vaddq_f32(vo, vx));
            i += 4;
        }
        while i < out.len() {
            out[i] += x[i];
            i += 1;
        }
    }
}

/// `out[i] = a[i] + b[i]`.
pub fn add(a: &[f32], b: &[f32], out: &mut [f32]) {
    let n4 = out.len() / 4 * 4;
    unsafe {
        let mut i = 0;
        while i < n4 {
            let va = vld1q_f32(a.as_ptr().add(i));
            let vb = vld1q_f32(b.as_ptr().add(i));
            vst1q_f32(out.as_mut_ptr().add(i), vaddq_f32(va, vb));
            i += 4;
        }
        while i < out.len() {
            out[i] = a[i] + b[i];
            i += 1;
        }
    }
}

/// `out[i] *= s`.
pub fn scale(out: &mut [f32], s: f32) {
    let n4 = out.len() / 4 * 4;
    unsafe {
        let vs = vdupq_n_f32(s);
        let mut i = 0;
        while i < n4 {
            let vo = vld1q_f32(out.as_ptr().add(i));
            vst1q_f32(out.as_mut_ptr().add(i), vmulq_f32(vo, vs));
            i += 4;
        }
        while i < out.len() {
            out[i] *= s;
            i += 1;
        }
    }
}

/// 8-lane maximum; bit-identical to [`super::scalar::max`] for non-NaN
/// input.
pub fn max(x: &[f32]) -> f32 {
    let n8 = x.len() / 8 * 8;
    unsafe {
        let mut acc0 = vdupq_n_f32(f32::NEG_INFINITY);
        let mut acc1 = vdupq_n_f32(f32::NEG_INFINITY);
        let mut i = 0;
        while i < n8 {
            acc0 = vmaxq_f32(acc0, vld1q_f32(x.as_ptr().add(i)));
            acc1 = vmaxq_f32(acc1, vld1q_f32(x.as_ptr().add(i + 4)));
            i += 8;
        }
        let lanes = lanes8(acc0, acc1);
        let mut m = lanes[0];
        for &lane in &lanes[1..] {
            m = m.max(lane);
        }
        while i < x.len() {
            m = m.max(x[i]);
            i += 1;
        }
        m
    }
}

/// 8-lane sum; bit-identical to [`super::scalar::sum`].
pub fn sum(x: &[f32]) -> f32 {
    let n8 = x.len() / 8 * 8;
    unsafe {
        let mut acc0 = vdupq_n_f32(0.0);
        let mut acc1 = vdupq_n_f32(0.0);
        let mut i = 0;
        while i < n8 {
            acc0 = vaddq_f32(acc0, vld1q_f32(x.as_ptr().add(i)));
            acc1 = vaddq_f32(acc1, vld1q_f32(x.as_ptr().add(i + 4)));
            i += 8;
        }
        let mut s: f32 = lanes8(acc0, acc1).iter().sum();
        while i < x.len() {
            s += x[i];
            i += 1;
        }
        s
    }
}

/// 8-lane `Σ (x[i] - mean)²`; bit-identical to
/// [`super::scalar::sum_sq_diff`].
pub fn sum_sq_diff(x: &[f32], mean: f32) -> f32 {
    let n8 = x.len() / 8 * 8;
    unsafe {
        let vm = vdupq_n_f32(mean);
        let mut acc0 = vdupq_n_f32(0.0);
        let mut acc1 = vdupq_n_f32(0.0);
        let mut i = 0;
        while i < n8 {
            let d0 = vsubq_f32(vld1q_f32(x.as_ptr().add(i)), vm);
            let d1 = vsubq_f32(vld1q_f32(x.as_ptr().add(i + 4)), vm);
            acc0 = vaddq_f32(acc0, vmulq_f32(d0, d0));
            acc1 = vaddq_f32(acc1, vmulq_f32(d1, d1));
            i += 8;
        }
        let mut s: f32 = lanes8(acc0, acc1).iter().sum();
        while i < x.len() {
            let d = x[i] - mean;
            s += d * d;
            i += 1;
        }
        s
    }
}

/// GELU: vectorized tanh-argument polynomial, per-lane `tanh` through the
/// same [`crate::math::tanh_f32`] sequence the scalar reference calls;
/// element-wise so bit-identical to [`super::scalar::gelu_map`].
pub fn gelu_map(x: &[f32], out: &mut [f32]) {
    const C: f32 = 0.797_884_6; // sqrt(2/pi), as in `layers::gelu`
    let n4 = x.len() / 4 * 4;
    unsafe {
        let vc = vdupq_n_f32(C);
        let vk = vdupq_n_f32(0.044_715);
        let half = vdupq_n_f32(0.5);
        let one = vdupq_n_f32(1.0);
        let mut i = 0;
        while i < n4 {
            let vx = vld1q_f32(x.as_ptr().add(i));
            // ((0.044715 * x) * x) * x — same association as scalar.
            let x3 = vmulq_f32(vmulq_f32(vmulq_f32(vk, vx), vx), vx);
            let inner = vmulq_f32(vc, vaddq_f32(vx, x3));
            let mut lanes = [0.0f32; 4];
            vst1q_f32(lanes.as_mut_ptr(), inner);
            for lane in &mut lanes {
                *lane = crate::math::tanh_f32(*lane);
            }
            let vt = vld1q_f32(lanes.as_ptr());
            let vy = vmulq_f32(vmulq_f32(half, vx), vaddq_f32(one, vt));
            vst1q_f32(out.as_mut_ptr().add(i), vy);
            i += 4;
        }
        while i < x.len() {
            out[i] = crate::layers::gelu(x[i]);
            i += 1;
        }
    }
}

/// LayerNorm affine step; element-wise, identical to the scalar loop.
pub fn ln_affine(x: &[f32], mean: f32, rstd: f32, gamma: &[f32], beta: &[f32], out: &mut [f32]) {
    let n4 = x.len() / 4 * 4;
    unsafe {
        let vm = vdupq_n_f32(mean);
        let vr = vdupq_n_f32(rstd);
        let mut i = 0;
        while i < n4 {
            let h = vmulq_f32(vsubq_f32(vld1q_f32(x.as_ptr().add(i)), vm), vr);
            let vg = vld1q_f32(gamma.as_ptr().add(i));
            let vb = vld1q_f32(beta.as_ptr().add(i));
            vst1q_f32(out.as_mut_ptr().add(i), vaddq_f32(vmulq_f32(h, vg), vb));
            i += 4;
        }
        while i < x.len() {
            let h = (x[i] - mean) * rstd;
            out[i] = h * gamma[i] + beta[i];
            i += 1;
        }
    }
}

/// Widening `i8 × i8 → i32` dot via `vmull_s8` + pairwise accumulate.
/// Exact integer arithmetic, equal to [`super::scalar::dot_i8`].
pub fn dot_i8(a: &[i8], b: &[i8]) -> i32 {
    let n8 = a.len() / 8 * 8;
    unsafe {
        let mut acc = vdupq_n_s32(0);
        let mut i = 0;
        while i < n8 {
            let va = vld1_s8(a.as_ptr().add(i));
            let vb = vld1_s8(b.as_ptr().add(i));
            acc = vpadalq_s16(acc, vmull_s8(va, vb));
            i += 8;
        }
        let mut s = vaddvq_s32(acc);
        while i < a.len() {
            s += a[i] as i32 * b[i] as i32;
            i += 1;
        }
        s
    }
}

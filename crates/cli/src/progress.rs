//! Crash-safe training progress records (`<model>.progress`).
//!
//! `kamel train --checkpoint-every N` saves a model checkpoint every `N`
//! trajectories and persists this tiny JSON record next to it, so an
//! interrupted run continues with `--resume` instead of restarting. The
//! record binds itself to the exact input bytes via an FNV-1a digest:
//! resuming against a different input file is an error, never a silent
//! divergence.
//!
//! The record is *not* the authority on how far training got — the model
//! checkpoint is. A crash can land between the checkpoint save and the
//! record save, so `--resume` recomputes the consumed count from the
//! model's own stored-trajectory counter (minus `base_stored`, the count
//! the run started from). That makes resume exactly-once: no chunk is
//! retrained or skipped regardless of where the crash landed.

use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};

/// Where the progress record for `model_path` lives (`<model>.progress`).
pub fn progress_path(model_path: &str) -> PathBuf {
    PathBuf::from(format!("{model_path}.progress"))
}

/// The resume record for an interrupted `kamel train` run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrainProgress {
    /// FNV-1a 64 digest of the raw input file bytes.
    pub input_digest: u64,
    /// Trajectories consumed when the record was written (informational;
    /// the model checkpoint is authoritative — see module docs).
    pub consumed: usize,
    /// Stored-trajectory count of the model when the run started (0 for a
    /// fresh model, the pre-existing count under `--append`).
    pub base_stored: usize,
    /// Checkpoint cadence of the interrupted run, reused on resume when
    /// `--checkpoint-every` is not given again.
    pub checkpoint_every: usize,
}

impl TrainProgress {
    /// Atomically persists the record — the same temp-file + rename
    /// discipline as model checkpoints; a torn record would poison resume.
    pub fn save(&self, path: &Path) -> Result<(), String> {
        let json = serde_json::to_vec(self).map_err(|e| e.to_string())?;
        kamel::checkpoint::write_file_atomic(path, &json)
            .map_err(|e| format!("write {}: {e}", path.display()))
    }

    /// Loads the record; `Ok(None)` when no record exists.
    pub fn load(path: &Path) -> Result<Option<Self>, String> {
        let bytes = match std::fs::read(path) {
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(format!("read {}: {e}", path.display())),
            Ok(b) => b,
        };
        serde_json::from_slice(&bytes).map(Some).map_err(|e| {
            format!(
                "{}: corrupt progress record ({e}); delete it to start over",
                path.display()
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("kamel_progress_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn roundtrip_and_missing() {
        let dir = tempdir("roundtrip");
        let path = dir.join("model.ckpt.progress");
        assert_eq!(TrainProgress::load(&path).unwrap(), None);
        let record = TrainProgress {
            input_digest: 0xDEAD_BEEF_CAFE_F00D,
            consumed: 80,
            base_stored: 0,
            checkpoint_every: 40,
        };
        record.save(&path).unwrap();
        assert_eq!(TrainProgress::load(&path).unwrap(), Some(record));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_record_is_a_clean_error() {
        let dir = tempdir("corrupt");
        let path = dir.join("model.ckpt.progress");
        std::fs::write(&path, b"{\"input_digest\": 12, \"consu").unwrap();
        let err = TrainProgress::load(&path).unwrap_err();
        assert!(err.contains("corrupt progress record"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn progress_path_is_model_path_suffixed() {
        assert_eq!(
            progress_path("/tmp/m.ckpt"),
            PathBuf::from("/tmp/m.ckpt.progress")
        );
    }
}

//! # kamel-chaos — a deterministic fault-injecting TCP proxy
//!
//! Resilience claims are cheap; this crate makes them testable. A
//! [`ChaosProxy`] sits between a `kamel-router` and one shard of a
//! `kamel-server` fleet and injects network faults on a **deterministic
//! schedule**: each accepted connection is numbered in accept order, and a
//! [`ChaosSchedule`] — either a seeded pure function of the connection
//! index or an explicit script like `refuse*20,none` — decides which
//! [`Fault`] that connection suffers. Same seed (or script) → same fault
//! sequence, every run, so the chaos integration suite replays exact
//! failure interleavings instead of hoping a flaky network shows up.
//!
//! The injected faults cover the failure modes a TCP client can actually
//! observe:
//!
//! * [`Fault::Refuse`] — accept then immediately close: the connection
//!   dies before a byte is exchanged, like a down backend.
//! * [`Fault::Stall`] — accept and go silent: never read, never write,
//!   hold the socket open. Exercises connect-vs-read timeout handling.
//! * [`Fault::SlowLoris`] — relay the response one byte at a time with a
//!   delay between bytes. Exercises overall-budget enforcement (a
//!   per-read timeout alone never fires).
//! * [`Fault::ResetMidBody`] — send response headers plus a torn JSON
//!   prefix, then close with the request body deliberately unread so the
//!   kernel answers with RST. Exercises mid-body connection-reset
//!   handling and mixed-bytes rejection.
//! * [`Fault::Torn`] — relay a short prefix of the real response, then a
//!   clean FIN. Exercises short-read detection (`Content-Length`
//!   mismatch must not parse as success).
//! * [`Fault::None`] — a faithful full-duplex relay, so healthy traffic
//!   through the proxy is byte-identical to a direct connection.
//!
//! Everything is `std`-only (the build environment has no crates
//! registry). The CLI front-end is `kamel chaos`; the protocol-level
//! consumers are `crates/router/tests/chaos_integration.rs` and the CI
//! `chaos-smoke` job. See `DESIGN.md` §14.4 for the schedule format.

#![warn(missing_docs)]

pub mod proxy;
pub mod schedule;

pub use proxy::{ChaosConfig, ChaosProxy};
pub use schedule::{ChaosSchedule, Fault};

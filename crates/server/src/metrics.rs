//! Serving metrics: lock-free counters and fixed-bucket histograms,
//! rendered as a Prometheus-style text page for `GET /metrics`.
//!
//! Everything is plain atomics so the hot path (one request) costs a
//! handful of relaxed increments; `render` reads whatever is current
//! without stopping the world.

use std::sync::atomic::{AtomicU64, Ordering};

/// Upper bounds (inclusive) of the request-latency buckets, in
/// microseconds. The final implicit bucket is +Inf.
pub const LATENCY_BUCKETS_US: [u64; 12] = [
    250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 500_000, 1_000_000,
];

/// Upper bounds (inclusive) of the imputation batch-size buckets. The
/// final implicit bucket is +Inf.
pub const BATCH_BUCKETS: [u64; 8] = [1, 2, 4, 8, 16, 32, 64, 128];

/// A fixed-bucket histogram of `u64` observations.
pub struct Histogram<const N: usize> {
    bounds: [u64; N],
    buckets: [AtomicU64; N],
    overflow: AtomicU64,
    count: AtomicU64,
    sum: AtomicU64,
}

impl<const N: usize> Histogram<N> {
    /// Creates a histogram with the given inclusive upper bounds.
    pub fn new(bounds: [u64; N]) -> Self {
        Self {
            bounds,
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            overflow: AtomicU64::new(0),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    pub fn observe(&self, value: u64) {
        match self.bounds.iter().position(|&b| value <= b) {
            Some(i) => self.buckets[i].fetch_add(1, Ordering::Relaxed),
            None => self.overflow.fetch_add(1, Ordering::Relaxed),
        };
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Renders cumulative `_bucket`/`_sum`/`_count` lines for `name`.
    fn render_into(&self, name: &str, out: &mut String) {
        use std::fmt::Write;
        let mut cumulative = 0u64;
        for (bound, bucket) in self.bounds.iter().zip(&self.buckets) {
            cumulative += bucket.load(Ordering::Relaxed);
            let _ = writeln!(out, "{name}_bucket{{le=\"{bound}\"}} {cumulative}");
        }
        cumulative += self.overflow.load(Ordering::Relaxed);
        let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {cumulative}");
        let _ = writeln!(out, "{name}_sum {}", self.sum());
        let _ = writeln!(out, "{name}_count {}", self.count());
    }
}

/// All serving metrics, shared via `Arc` between handlers and `/metrics`.
pub struct Metrics {
    /// Requests fully processed, by outcome.
    pub requests_ok: AtomicU64,
    /// Malformed requests (bad method/path/JSON) answered 4xx.
    pub requests_bad: AtomicU64,
    /// Requests shed by admission control (503).
    pub requests_shed: AtomicU64,
    /// Requests that missed their deadline (504), any stage.
    pub requests_deadline: AtomicU64,
    /// Deadline misses caught before admission: the budget was already
    /// spent when the request reached the queue.
    pub deadline_admission: AtomicU64,
    /// Deadline misses caught at drain time: the batcher shed the item
    /// without running it.
    pub deadline_queue: AtomicU64,
    /// Deadline misses during compute: the waiter timed out while the
    /// batch ran, or the result landed after the deadline.
    pub deadline_compute: AtomicU64,
    /// Requests answered from the degraded linear-interpolation path
    /// instead of being shed.
    pub degraded: AtomicU64,
    /// Imputation cache hits.
    pub cache_hits: AtomicU64,
    /// Imputation cache misses.
    pub cache_misses: AtomicU64,
    /// Successful model hot-reloads (`/admin/reload` or SIGHUP).
    pub model_reloads: AtomicU64,
    /// Failed model hot-reloads (old model kept serving).
    pub model_reload_failures: AtomicU64,
    /// Current admission-queue depth.
    pub queue_depth: AtomicU64,
    /// End-to-end `/v1/impute` handling latency in microseconds.
    pub latency_us: Histogram<12>,
    /// Trajectories per `impute_batch` call made by the micro-batcher.
    pub batch_size: Histogram<8>,
}

impl Default for Metrics {
    fn default() -> Self {
        Self::new()
    }
}

impl Metrics {
    /// Creates zeroed metrics.
    pub fn new() -> Self {
        Self {
            requests_ok: AtomicU64::new(0),
            requests_bad: AtomicU64::new(0),
            requests_shed: AtomicU64::new(0),
            requests_deadline: AtomicU64::new(0),
            deadline_admission: AtomicU64::new(0),
            deadline_queue: AtomicU64::new(0),
            deadline_compute: AtomicU64::new(0),
            degraded: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            model_reloads: AtomicU64::new(0),
            model_reload_failures: AtomicU64::new(0),
            queue_depth: AtomicU64::new(0),
            latency_us: Histogram::new(LATENCY_BUCKETS_US),
            batch_size: Histogram::new(BATCH_BUCKETS),
        }
    }

    /// Lifetime cache hit rate in [0, 1] (`None` before any lookup).
    pub fn cache_hit_rate(&self) -> Option<f64> {
        let hits = self.cache_hits.load(Ordering::Relaxed);
        let total = hits + self.cache_misses.load(Ordering::Relaxed);
        if total == 0 {
            None
        } else {
            Some(hits as f64 / total as f64)
        }
    }

    /// The `GET /metrics` page.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::with_capacity(2048);
        let counter = |out: &mut String, name: &str, help: &str, v: u64| {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {v}");
        };
        counter(
            &mut out,
            "kamel_requests_ok_total",
            "Imputation requests answered 200.",
            self.requests_ok.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "kamel_requests_bad_total",
            "Malformed requests answered 4xx.",
            self.requests_bad.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "kamel_requests_shed_total",
            "Requests shed by admission control (503).",
            self.requests_shed.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "kamel_requests_deadline_total",
            "Requests that missed their deadline (504).",
            self.requests_deadline.load(Ordering::Relaxed),
        );
        // Per-stage breakdown of the deadline counter above.
        let _ = writeln!(
            out,
            "# HELP kamel_deadline_exceeded_total Deadline misses by pipeline stage."
        );
        let _ = writeln!(out, "# TYPE kamel_deadline_exceeded_total counter");
        for (stage, v) in [
            ("admission", &self.deadline_admission),
            ("queue", &self.deadline_queue),
            ("compute", &self.deadline_compute),
        ] {
            let _ = writeln!(
                out,
                "kamel_deadline_exceeded_total{{stage=\"{stage}\"}} {}",
                v.load(Ordering::Relaxed)
            );
        }
        counter(
            &mut out,
            "kamel_degraded_total",
            "Requests answered from the degraded linear path.",
            self.degraded.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "kamel_cache_hits_total",
            "Imputation cache hits.",
            self.cache_hits.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "kamel_cache_misses_total",
            "Imputation cache misses.",
            self.cache_misses.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "kamel_model_reloads_total",
            "Successful model hot-reloads.",
            self.model_reloads.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "kamel_model_reload_failures_total",
            "Failed model hot-reloads (old model kept).",
            self.model_reload_failures.load(Ordering::Relaxed),
        );
        let _ = writeln!(out, "# HELP kamel_cache_hit_rate Lifetime cache hit rate.");
        let _ = writeln!(out, "# TYPE kamel_cache_hit_rate gauge");
        let _ = writeln!(
            out,
            "kamel_cache_hit_rate {:.6}",
            self.cache_hit_rate().unwrap_or(0.0)
        );
        let _ = writeln!(out, "# HELP kamel_queue_depth Current admission-queue depth.");
        let _ = writeln!(out, "# TYPE kamel_queue_depth gauge");
        let _ = writeln!(
            out,
            "kamel_queue_depth {}",
            self.queue_depth.load(Ordering::Relaxed)
        );
        let _ = writeln!(
            out,
            "# HELP kamel_request_latency_us /v1/impute handling latency (µs)."
        );
        let _ = writeln!(out, "# TYPE kamel_request_latency_us histogram");
        self.latency_us.render_into("kamel_request_latency_us", &mut out);
        let _ = writeln!(
            out,
            "# HELP kamel_batch_size Trajectories per micro-batched impute_batch call."
        );
        let _ = writeln!(out, "# TYPE kamel_batch_size histogram");
        self.batch_size.render_into("kamel_batch_size", &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_cumulative() {
        let h: Histogram<3> = Histogram::new([10, 100, 1000]);
        h.observe(5);
        h.observe(10); // inclusive upper bound
        h.observe(500);
        h.observe(5000); // overflow
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 5515);
        let mut s = String::new();
        h.render_into("x", &mut s);
        assert!(s.contains("x_bucket{le=\"10\"} 2"), "{s}");
        assert!(s.contains("x_bucket{le=\"100\"} 2"), "{s}");
        assert!(s.contains("x_bucket{le=\"1000\"} 3"), "{s}");
        assert!(s.contains("x_bucket{le=\"+Inf\"} 4"), "{s}");
        assert!(s.contains("x_count 4"), "{s}");
    }

    #[test]
    fn hit_rate_handles_empty_and_mixed() {
        let m = Metrics::new();
        assert_eq!(m.cache_hit_rate(), None);
        m.cache_hits.fetch_add(3, Ordering::Relaxed);
        m.cache_misses.fetch_add(1, Ordering::Relaxed);
        assert_eq!(m.cache_hit_rate(), Some(0.75));
    }

    #[test]
    fn render_mentions_every_series() {
        let m = Metrics::new();
        m.requests_ok.fetch_add(2, Ordering::Relaxed);
        m.latency_us.observe(1234);
        m.batch_size.observe(4);
        m.deadline_queue.fetch_add(3, Ordering::Relaxed);
        let page = m.render();
        for series in [
            "kamel_requests_ok_total 2",
            "kamel_deadline_exceeded_total{stage=\"admission\"} 0",
            "kamel_deadline_exceeded_total{stage=\"queue\"} 3",
            "kamel_deadline_exceeded_total{stage=\"compute\"} 0",
            "kamel_degraded_total 0",
            "kamel_requests_shed_total 0",
            "kamel_model_reloads_total 0",
            "kamel_model_reload_failures_total 0",
            "kamel_cache_hit_rate",
            "kamel_queue_depth 0",
            "kamel_request_latency_us_count 1",
            "kamel_batch_size_count 1",
        ] {
            assert!(page.contains(series), "missing {series} in:\n{page}");
        }
    }
}

//! Old (training-forward) vs new (grad-free) inference on the BERT hot
//! path, single and batched, plus per-call heap-allocation counts. Writes
//! `BENCH_infer.json` at the repo root so the perf trajectory is tracked
//! across PRs.
//!
//! Run with `cargo bench --bench bench_infer`. Not a criterion bench: the
//! two paths are compared best-of-N with `Instant`, bit-identity is
//! asserted along the way, and a counting global allocator (linked into
//! this benchmark binary only, never the library) verifies the
//! zero-steady-state-allocation claim of `kamel_nn::infer`.

use kamel_nn::{
    set_backend, set_thread_budget, supported_backends, BertConfig, BertMlmModel, InferScratch,
    QuantizedBertMlm,
};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde_json::json;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// System allocator with an allocation counter, for this binary only.
struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Allocation calls and bytes requested while running `f`.
fn count_allocs<T>(f: impl FnOnce() -> T) -> (u64, u64, T) {
    let calls0 = ALLOC_CALLS.load(Ordering::Relaxed);
    let bytes0 = ALLOC_BYTES.load(Ordering::Relaxed);
    let out = f();
    (
        ALLOC_CALLS.load(Ordering::Relaxed) - calls0,
        ALLOC_BYTES.load(Ordering::Relaxed) - bytes0,
        out,
    )
}

/// Best-of-`reps` wall time of `f` in seconds.
fn best_of<T>(reps: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        let out = f();
        best = best.min(t0.elapsed().as_secs_f64());
        last = Some(out);
    }
    (best, last.expect("reps >= 1"))
}

fn speedup(old_s: f64, new_s: f64) -> f64 {
    if new_s > 0.0 {
        old_s / new_s
    } else {
        f64::INFINITY
    }
}

/// One scale: single-call old vs new, fused batch vs serial-new, and the
/// steady-state allocation count of the new path.
///
/// Vocabulary sizes are deployment-shaped: a KAMEL pyramid cell's
/// vocabulary is the hex cells of a city region — thousands of tokens, not
/// the dozens the unit tests use. The old path's cost scales with
/// `seq_len × vocab` (it materializes full logits); the masked-row head
/// does not, which is exactly the effect this benchmark exists to track.
fn bench_scale(name: &str, config: BertConfig, seq_len: usize, reps: usize) -> serde_json::Value {
    let vocab = config.vocab_size;
    let seq_len = seq_len.min(config.max_seq_len);
    let mask_pos = seq_len / 2;
    let mut rng = ChaCha8Rng::seed_from_u64(0x1EAF);
    let model = BertMlmModel::new(config, &mut rng);
    let ids: Vec<u32> = (0..seq_len as u32).map(|i| i % vocab as u32).collect();

    // --- Single call: reference training forward vs grad-free path.
    let (old_s, reference) = best_of(reps, || model.predict(&ids, mask_pos));
    let mut scratch = InferScratch::new();
    let _ = model.predict_with(&mut scratch, &ids, mask_pos); // warm the arena
    let (new_s, fast) = best_of(reps, || {
        model.predict_with(&mut scratch, &ids, mask_pos).to_vec()
    });
    assert_eq!(reference, fast, "grad-free path diverged at scale {name}");

    // --- Steady state allocates nothing (warm scratch, thread budget 1 —
    // multi-thread dispatch spawns scoped workers, which allocate).
    let (alloc_calls, alloc_bytes, _) =
        count_allocs(|| model.predict_with(&mut scratch, &ids, mask_pos).len());
    assert_eq!(
        alloc_calls, 0,
        "steady-state inference allocated at scale {name} ({alloc_bytes} bytes)"
    );

    // --- Batched: one fused forward vs the same requests serially.
    const BATCH: usize = 8;
    let reqs: Vec<Vec<u32>> = (0..BATCH as u32)
        .map(|j| ids.iter().map(|&t| (t + j) % vocab as u32).collect())
        .collect();
    let views: Vec<(&[u32], usize)> = reqs.iter().map(|r| (r.as_slice(), mask_pos)).collect();
    let _ = model.predict_batch_with(&mut scratch, &views); // warm for batch shapes
    let (serial_s, serial_rows) = best_of(reps, || {
        views
            .iter()
            .map(|(r, p)| model.predict_with(&mut scratch, r, *p).to_vec())
            .collect::<Vec<_>>()
    });
    let (fused_s, fused) = best_of(reps, || {
        model.predict_batch_with(&mut scratch, &views).clone()
    });
    for (i, row) in serial_rows.iter().enumerate() {
        assert_eq!(
            row.as_slice(),
            fused.row(i),
            "fused batch diverged at scale {name}, request {i}"
        );
    }
    let (batch_alloc_calls, _, _) =
        count_allocs(|| model.predict_batch_with(&mut scratch, &views).rows());
    assert_eq!(
        batch_alloc_calls, 0,
        "steady-state batched inference allocated at scale {name}"
    );

    json!({
        "scale": name,
        "vocab": vocab,
        "seq_len": seq_len,
        "old_single_s": old_s,
        "new_single_s": new_s,
        "single_speedup": speedup(old_s, new_s),
        "batch": BATCH,
        "serial_new_s": serial_s,
        "fused_batch_s": fused_s,
        "batch_speedup": speedup(serial_s, fused_s),
        "steady_state_allocs": alloc_calls,
        "steady_state_alloc_bytes": alloc_bytes,
    })
}

/// Index of the highest logit (the serving path's top-1).
fn argmax(row: &[f32]) -> usize {
    let mut best = 0usize;
    for (i, &v) in row.iter().enumerate() {
        if v > row[best] {
            best = i;
        }
    }
    best
}

/// The SIMD/int8 sweep: single-call inference on every supported backend,
/// f32 and int8, against the scalar-f32 reference. Bit-identity of the f32
/// path across backends is asserted; the int8 path reports its top-1
/// agreement and probability delta against the serving gate
/// (`KamelConfig::quantize_min_agreement`, enforced in `kamel-core` /
/// `kamel-lm`).
///
/// The model is trained for a few steps first: an untrained model's
/// near-uniform logits make top-1 a coin flip between statistical ties,
/// which says nothing about the quantizer. The gate exists for trained,
/// servable models, so that is what the sweep measures.
fn bench_backends(config: BertConfig, seq_len: usize, reps: usize) -> serde_json::Value {
    let vocab = config.vocab_size;
    let seq_len = seq_len.min(config.max_seq_len);
    let mask_pos = seq_len / 2;
    let mut rng = ChaCha8Rng::seed_from_u64(0x51AD);
    let mut model = BertMlmModel::new(config, &mut rng);
    let corpus: Vec<Vec<u32>> = (0..16u32)
        .map(|j| {
            (0..seq_len as u32)
                .map(|i| (i * 37 + j * 101 + 1) % vocab as u32)
                .collect()
        })
        .collect();
    let trainer = kamel_nn::Trainer::new(
        kamel_nn::MlmBatcher::new(0, (1, vocab as u32)),
        kamel_nn::TrainOptions {
            epochs: 8,
            ..Default::default()
        },
    );
    let losses = trainer.train(&mut model, &corpus);
    eprintln!(
        "sweep model trained: loss {:.3} -> {:.3}",
        losses.first().expect("epochs > 0"),
        losses.last().expect("epochs > 0")
    );
    let quant = QuantizedBertMlm::from_model(&model);
    // In-distribution probes: training sequences with one position masked
    // — the serving scenario the agreement gate protects.
    let probes: Vec<(Vec<u32>, usize)> = corpus
        .iter()
        .flat_map(|seq| {
            [seq_len / 6, seq_len / 3, seq_len / 2, (5 * seq_len) / 6].map(|pos| {
                let pos = pos.min(seq_len - 1);
                let mut ids = seq.clone();
                ids[pos] = 0;
                (ids, pos)
            })
        })
        .collect();
    let ids = probes[0].0.clone();

    let backends = supported_backends();
    let mut rows = Vec::new();
    let mut scalar_f32_s = f64::NAN;
    let mut scalar_bits: Vec<u32> = Vec::new();
    for b in &backends {
        set_backend(*b).expect("backend listed as supported");
        let mut scratch = InferScratch::new();
        let _ = model.predict_with(&mut scratch, &ids, mask_pos); // warm
        let (f32_s, f32_out) = best_of(reps, || {
            model.predict_with(&mut scratch, &ids, mask_pos).to_vec()
        });
        let _ = model.predict_quant_with(&quant, &mut scratch, &ids, mask_pos);
        let (int8_s, _) = best_of(reps, || {
            model
                .predict_quant_with(&quant, &mut scratch, &ids, mask_pos)
                .to_vec()
        });
        // f32 bit-identity across backends, int8 top-1 agreement with f32.
        let bits: Vec<u32> = f32_out.iter().map(|v| v.to_bits()).collect();
        if scalar_bits.is_empty() {
            scalar_f32_s = f32_s;
            scalar_bits = bits;
        } else {
            assert_eq!(bits, scalar_bits, "{} f32 diverged from scalar", b.name());
        }
        let mut agree = 0usize;
        let mut l1 = 0.0f64;
        for (probe, pos) in &probes {
            let p_f32 = model.predict_with(&mut scratch, probe, *pos).to_vec();
            let p_int8 = model
                .predict_quant_with(&quant, &mut scratch, probe, *pos)
                .to_vec();
            agree += usize::from(argmax(&p_f32) == argmax(&p_int8));
            l1 += p_f32
                .iter()
                .zip(&p_int8)
                .map(|(a, b)| (a - b).abs() as f64)
                .sum::<f64>();
        }
        rows.push(json!({
            "backend": b.name(),
            "f32_single_s": f32_s,
            "int8_single_s": int8_s,
            "f32_speedup_vs_scalar": speedup(scalar_f32_s, f32_s),
            "int8_speedup_vs_f32": speedup(f32_s, int8_s),
            "int8_top1_agreement": agree as f64 / probes.len() as f64,
            "int8_mean_l1_prob_delta": l1 / probes.len() as f64,
        }));
    }
    // Leave the process on its auto-detected backend (the best supported
    // one — `supported_backends` lists scalar first).
    let detected = *backends.last().expect("scalar is always supported");
    set_backend(detected).expect("detected backend");
    // The quantizer emits bit-identical codes on every backend, so the
    // agreement is backend-independent; gate it against the serving
    // default from `kamel-core`.
    let gate = kamel::KamelConfig::default().quantize_min_agreement;
    let worst_agreement = rows
        .iter()
        .map(|r| r["int8_top1_agreement"].as_f64().expect("agreement"))
        .fold(f64::INFINITY, f64::min);
    json!({
        "simd_isa": kamel_nn::active_isa(),
        "int8_weight_bytes": quant.weight_bytes(),
        "quantize_min_agreement": gate,
        "int8_within_gate": worst_agreement >= gate,
        "backends": rows,
    })
}

fn main() {
    let host = kamel_nn::available_threads();
    // Thread budget 1 throughout: the old-vs-new comparison is a per-core
    // property (no caches, no logits matrix, masked-row head), and the
    // zero-allocation assertion requires the single-thread kernels (the
    // parallel dispatch allocates its scoped workers).
    set_thread_budget(1);
    let budget = kamel_nn::thread_budget();
    eprintln!("bench_infer: host threads = {host}, budget pinned to {budget}");
    let tiny = bench_scale("tiny", BertConfig::tiny(2048), 24, 30);
    eprintln!("tiny scale done");
    let small = bench_scale("small", BertConfig::small(8192), 48, 20);
    eprintln!("small scale done");
    let simd = bench_backends(BertConfig::small(8192), 48, 20);
    eprintln!("backend sweep done");
    let doc = json!({
        "bench": "bench_infer",
        "status": "measured",
        "host_threads": host,
        "thread_budget": budget,
        "scales": [tiny, small],
        "simd": simd,
    });
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_infer.json");
    std::fs::write(path, serde_json::to_string_pretty(&doc).expect("serialize"))
        .expect("write BENCH_infer.json");
    println!("{}", serde_json::to_string_pretty(&doc).expect("serialize"));
    println!("wrote {path}");
}

//! Synthetic city generator.
//!
//! Produces road networks with the motifs the paper's Figure 5 analyses:
//! right-angle turns (grid blocks), roundabouts, curved segments (a ring
//! road), and an overpass (a long edge crossing the grid without
//! intersecting it). Geometry is jittered so streets are not perfectly
//! axis-aligned, and a fraction of blocks is removed to create irregular
//! connectivity like a real city.

use crate::network::RoadNetwork;
use kamel_geo::Xy;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Parameters of the synthetic city.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CityConfig {
    /// Grid columns (east-west intersections).
    pub cols: usize,
    /// Grid rows (north-south intersections).
    pub rows: usize,
    /// Block edge length in meters.
    pub spacing_m: f64,
    /// Uniform positional jitter applied to every intersection, in meters.
    pub jitter_m: f64,
    /// Probability of removing each grid street segment (creates irregular
    /// blocks; kept low so the city stays connected).
    pub street_removal_prob: f64,
    /// Number of diagonal avenues cutting across the grid.
    pub diagonals: usize,
    /// Number of intersections replaced by 6-node roundabouts.
    pub roundabouts: usize,
    /// Whether to add a curved ring road around the center.
    pub ring_road: bool,
    /// Whether to add an overpass (a long chord crossing several blocks
    /// without intersecting them).
    pub overpass: bool,
    /// RNG seed; generation is fully deterministic.
    pub seed: u64,
}

impl Default for CityConfig {
    fn default() -> Self {
        Self {
            cols: 20,
            rows: 20,
            spacing_m: 150.0,
            jitter_m: 12.0,
            street_removal_prob: 0.06,
            diagonals: 2,
            roundabouts: 6,
            ring_road: true,
            overpass: true,
            seed: 0xC17,
        }
    }
}

/// What occupies one grid intersection slot.
enum Slot {
    /// An ordinary intersection node.
    Single(usize),
    /// A roundabout: a cycle of ring nodes.
    Ring(Vec<usize>),
}

impl Slot {
    /// The ring/standalone node nearest to `p`.
    fn attach_node(&self, net: &RoadNetwork, p: Xy) -> usize {
        match self {
            Slot::Single(i) => *i,
            Slot::Ring(nodes) => *nodes
                .iter()
                .min_by(|&&a, &&b| {
                    net.node(a)
                        .dist_sq(&p)
                        .partial_cmp(&net.node(b).dist_sq(&p))
                        .expect("finite coordinates")
                })
                .expect("rings are non-empty"),
        }
    }

    fn center(&self, net: &RoadNetwork) -> Xy {
        match self {
            Slot::Single(i) => net.node(*i),
            Slot::Ring(nodes) => {
                let n = nodes.len() as f64;
                let (sx, sy) = nodes.iter().fold((0.0, 0.0), |(sx, sy), &i| {
                    let p = net.node(i);
                    (sx + p.x, sy + p.y)
                });
                Xy::new(sx / n, sy / n)
            }
        }
    }
}

/// Generates a deterministic synthetic city.
pub fn generate_city(cfg: &CityConfig) -> RoadNetwork {
    assert!(cfg.cols >= 3 && cfg.rows >= 3, "city must be at least 3x3");
    assert!(cfg.spacing_m > 0.0, "spacing must be positive");
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    let mut net = RoadNetwork::new();

    // Choose roundabout slots away from the boundary.
    let mut roundabout_slots = std::collections::HashSet::new();
    let mut guard = 0;
    while roundabout_slots.len() < cfg.roundabouts && guard < cfg.roundabouts * 50 {
        let c = rng.gen_range(1..cfg.cols - 1);
        let r = rng.gen_range(1..cfg.rows - 1);
        roundabout_slots.insert((c, r));
        guard += 1;
    }

    // Lay down intersections (with jitter), as single nodes or roundabouts.
    let ring_radius = (cfg.spacing_m * 0.18).min(30.0);
    let mut slots: Vec<Vec<Slot>> = Vec::with_capacity(cfg.cols);
    for c in 0..cfg.cols {
        let mut col = Vec::with_capacity(cfg.rows);
        for r in 0..cfg.rows {
            let jx = rng.gen_range(-cfg.jitter_m..=cfg.jitter_m);
            let jy = rng.gen_range(-cfg.jitter_m..=cfg.jitter_m);
            let center = Xy::new(c as f64 * cfg.spacing_m + jx, r as f64 * cfg.spacing_m + jy);
            if roundabout_slots.contains(&(c, r)) {
                let mut ring = Vec::with_capacity(6);
                for k in 0..6 {
                    let a = k as f64 / 6.0 * std::f64::consts::TAU;
                    ring.push(net.add_node(Xy::new(
                        center.x + ring_radius * a.cos(),
                        center.y + ring_radius * a.sin(),
                    )));
                }
                for k in 0..6 {
                    net.add_edge(ring[k], ring[(k + 1) % 6]);
                }
                col.push(Slot::Ring(ring));
            } else {
                col.push(Slot::Single(net.add_node(center)));
            }
        }
        slots.push(col);
    }

    // Grid streets, with random removals. Boundary streets are never removed
    // so the city stays connected.
    for c in 0..cfg.cols {
        for r in 0..cfg.rows {
            if c + 1 < cfg.cols {
                let boundary = r == 0 || r == cfg.rows - 1;
                if boundary || rng.gen::<f64>() >= cfg.street_removal_prob {
                    connect_slots(&mut net, &slots[c][r], &slots[c + 1][r]);
                }
            }
            if r + 1 < cfg.rows {
                let boundary = c == 0 || c == cfg.cols - 1;
                if boundary || rng.gen::<f64>() >= cfg.street_removal_prob {
                    connect_slots(&mut net, &slots[c][r], &slots[c][r + 1]);
                }
            }
        }
    }

    // Diagonal avenues: walk the lattice diagonally from a random boundary
    // start, linking consecutive intersections.
    for d in 0..cfg.diagonals {
        let start_c = rng.gen_range(0..cfg.cols / 2);
        let start_r = if d % 2 == 0 { 0 } else { cfg.rows - 1 };
        let dr: isize = if d % 2 == 0 { 1 } else { -1 };
        let (mut c, mut r) = (start_c as isize, start_r as isize);
        while c + 1 < cfg.cols as isize && r + dr >= 0 && r + dr < cfg.rows as isize {
            let next = (c + 1, r + dr);
            connect_slots_idx(&mut net, &slots, (c, r), next);
            c = next.0;
            r = next.1;
        }
    }

    // Curved ring road around the center: an arc of dedicated nodes,
    // attached to the grid at a handful of anchor intersections.
    if cfg.ring_road {
        let cx = (cfg.cols - 1) as f64 * cfg.spacing_m / 2.0;
        let cy = (cfg.rows - 1) as f64 * cfg.spacing_m / 2.0;
        let radius = cx.min(cy) * 0.8;
        let n_arc = ((std::f64::consts::TAU * radius) / (cfg.spacing_m * 0.5)).ceil() as usize;
        let mut arc_nodes = Vec::with_capacity(n_arc);
        for k in 0..n_arc {
            let a = k as f64 / n_arc as f64 * std::f64::consts::TAU;
            arc_nodes.push(net.add_node(Xy::new(cx + radius * a.cos(), cy + radius * a.sin())));
        }
        for k in 0..n_arc {
            net.add_edge(arc_nodes[k], arc_nodes[(k + 1) % n_arc]);
        }
        // Anchor the ring to the grid every quarter turn.
        for k in (0..n_arc).step_by((n_arc / 8).max(1)) {
            let p = net.node(arc_nodes[k]);
            let (bc, br) = nearest_slot(&net, &slots, p);
            let attach = slots[bc][br].attach_node(&net, p);
            net.add_edge(arc_nodes[k], attach);
        }
    }

    // Overpass: a long chord between two distant intersections that crosses
    // blocks without touching them (no intermediate connections).
    if cfg.overpass {
        let a = slots[cfg.cols / 4][cfg.rows / 3].attach_node(
            &net,
            slots[cfg.cols / 4][cfg.rows / 3].center(&net),
        );
        let b = slots[3 * cfg.cols / 4][2 * cfg.rows / 3].attach_node(
            &net,
            slots[3 * cfg.cols / 4][2 * cfg.rows / 3].center(&net),
        );
        net.add_edge(a, b);
    }

    net
}

fn connect_slots(net: &mut RoadNetwork, a: &Slot, b: &Slot) {
    let bc = b.center(net);
    let ac = a.center(net);
    let an = a.attach_node(net, bc);
    let bn = b.attach_node(net, ac);
    net.add_edge(an, bn);
}

fn connect_slots_idx(
    net: &mut RoadNetwork,
    slots: &[Vec<Slot>],
    a: (isize, isize),
    b: (isize, isize),
) {
    let sa = &slots[a.0 as usize][a.1 as usize];
    let sb = &slots[b.0 as usize][b.1 as usize];
    connect_slots(net, sa, sb);
}

fn nearest_slot(net: &RoadNetwork, slots: &[Vec<Slot>], p: Xy) -> (usize, usize) {
    let mut best = (0usize, 0usize);
    let mut best_d = f64::INFINITY;
    for (c, col) in slots.iter().enumerate() {
        for (r, slot) in col.iter().enumerate() {
            let d = slot.center(net).dist_sq(&p);
            if d < best_d {
                best_d = d;
                best = (c, r);
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_city_is_generated_and_connected_enough() {
        let net = generate_city(&CityConfig::default());
        assert!(net.node_count() > 400, "nodes {}", net.node_count());
        assert!(net.edge_count() > net.node_count(), "too sparse");
        // Random far-apart locations must be routable (the boundary ring is
        // never removed, so the grid stays connected).
        let bb = net.bbox().unwrap();
        let a = net.nearest_node(bb.min).unwrap();
        let b = net.nearest_node(bb.max).unwrap();
        assert!(net.shortest_path(a, b).is_some());
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate_city(&CityConfig::default());
        let b = generate_city(&CityConfig::default());
        assert_eq!(a.node_count(), b.node_count());
        assert_eq!(a.edge_count(), b.edge_count());
        for i in 0..a.node_count() {
            assert_eq!(a.node(i), b.node(i));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate_city(&CityConfig::default());
        let b = generate_city(&CityConfig {
            seed: 999,
            ..CityConfig::default()
        });
        let same = (0..a.node_count().min(b.node_count()))
            .filter(|&i| a.node(i) == b.node(i))
            .count();
        assert!(same < a.node_count(), "jitter must depend on the seed");
    }

    #[test]
    fn roundabouts_add_ring_nodes() {
        let plain = generate_city(&CityConfig {
            roundabouts: 0,
            ring_road: false,
            overpass: false,
            diagonals: 0,
            street_removal_prob: 0.0,
            jitter_m: 0.0,
            ..CityConfig::default()
        });
        let with_r = generate_city(&CityConfig {
            roundabouts: 5,
            ring_road: false,
            overpass: false,
            diagonals: 0,
            street_removal_prob: 0.0,
            jitter_m: 0.0,
            ..CityConfig::default()
        });
        // Each roundabout replaces 1 node with 6.
        assert_eq!(with_r.node_count(), plain.node_count() + 5 * 5);
    }

    #[test]
    fn city_extent_matches_config() {
        let cfg = CityConfig {
            cols: 10,
            rows: 8,
            spacing_m: 100.0,
            jitter_m: 0.0,
            ring_road: false,
            overpass: false,
            roundabouts: 0,
            diagonals: 0,
            street_removal_prob: 0.0,
            seed: 1,
        };
        let net = generate_city(&cfg);
        let bb = net.bbox().unwrap();
        assert!((bb.width() - 900.0).abs() < 1e-9);
        assert!((bb.height() - 700.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "3x3")]
    fn rejects_tiny_grids() {
        let _ = generate_city(&CityConfig {
            cols: 2,
            rows: 2,
            ..CityConfig::default()
        });
    }
}

//! Regenerates every table and figure of the paper's evaluation (§8).
//!
//! Usage:
//! ```text
//! figures [--scale small|medium|large] [--out DIR] [EXPERIMENT...]
//! ```
//! With no experiment names, all experiments run. Available names:
//! `fig9 fig10 fig11 fig12-road fig12-grid fig12-size fig12-density
//! fig12-ablation fig3d beam-vs-iter speed-mode map-inference coverage-skew`.
//!
//! Each experiment prints paper-style tables to stdout and writes a
//! machine-readable JSON series to `--out` (default `results/`).

use kamel_bench::{
    beam_vs_iterative, fig10, fig11, fig12_ablation, fig12_density, fig12_grid, fig12_road,
    coverage_skew, fig12_size, fig3d, fig9, map_inference, speed_mode, City, Figure,
};
use kamel_roadsim::DatasetScale;
use std::path::{Path, PathBuf};
use std::time::Instant;

fn main() {
    let mut args = std::env::args().skip(1).peekable();
    let mut scale = DatasetScale::Medium;
    let mut out_dir = PathBuf::from("results");
    let mut svg = false;
    let mut wanted: Vec<String> = Vec::new();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                scale = match args.next().as_deref() {
                    Some("small") => DatasetScale::Small,
                    Some("medium") => DatasetScale::Medium,
                    Some("large") => DatasetScale::Large,
                    other => {
                        eprintln!("unknown scale {other:?}");
                        std::process::exit(2);
                    }
                }
            }
            "--out" => {
                out_dir = PathBuf::from(args.next().unwrap_or_else(|| {
                    eprintln!("--out needs a directory");
                    std::process::exit(2);
                }))
            }
            "--svg" => svg = true,
            "--help" | "-h" => {
                println!(
                    "figures [--scale small|medium|large] [--out DIR] [--svg] [EXPERIMENT...]\n\
                     experiments: fig9 fig10 fig11 fig12-road fig12-grid fig12-size \
                     fig12-density fig12-ablation fig3d beam-vs-iter speed-mode map-inference coverage-skew"
                );
                return;
            }
            name => wanted.push(name.to_string()),
        }
    }
    std::fs::create_dir_all(&out_dir).expect("create output directory");
    let all = wanted.is_empty();
    let run = |name: &str| all || wanted.iter().any(|w| w == name);

    if run("fig9") {
        for city in [City::Porto, City::Jakarta] {
            timed(&format!("fig9 {}", city.name()), || {
                emit_figure_opts(&fig9(city, scale), &out_dir, svg)
            });
        }
    }
    if run("fig10") {
        for city in [City::Porto, City::Jakarta] {
            timed(&format!("fig10 {}", city.name()), || {
                emit_figure_opts(&fig10(city, scale), &out_dir, svg)
            });
        }
    }
    if run("fig11") {
        timed("fig11 timing", || {
            let rows = fig11(scale);
            println!("== fig11 | training & imputation time");
            println!(
                "{:<14} {:<12} {:>12} {:>12}",
                "dataset", "technique", "train(s)", "impute(s)"
            );
            for r in &rows {
                println!(
                    "{:<14} {:<12} {:>12} {:>12.2}",
                    r.dataset,
                    r.technique,
                    r.train_time_s.map_or("-".into(), |t| format!("{t:.2}")),
                    r.impute_time_s
                );
            }
            write_json(&out_dir.join("fig11.json"), &rows);
        });
    }
    if run("fig12-road") {
        timed("fig12-road", || {
            let rows = fig12_road(scale);
            println!("== fig12-I/II | road type (jakarta-like)");
            println!(
                "{:<10} {:<12} {:>8} {:>8} {:>8} | {:>8} {:>8} {:>8}",
                "sparse_m", "technique", "s.rec", "s.prec", "s.fail", "c.rec", "c.prec", "c.fail"
            );
            for r in &rows {
                println!(
                    "{:<10} {:<12} {:>8.3} {:>8.3} {:>8} | {:>8.3} {:>8.3} {:>8}",
                    r.sparse_m,
                    r.technique,
                    r.straight.0,
                    r.straight.1,
                    fmt_opt(r.straight.2),
                    r.curved.0,
                    r.curved.1,
                    fmt_opt(r.curved.2),
                );
            }
            write_json(&out_dir.join("fig12-road.json"), &rows);
        });
    }
    if run("fig12-grid") {
        timed("fig12-grid", || emit_figure_opts(&fig12_grid(scale), &out_dir, svg));
    }
    if run("fig12-size") {
        timed("fig12-size", || emit_figure_opts(&fig12_size(scale), &out_dir, svg));
    }
    if run("fig12-density") {
        timed("fig12-density", || {
            emit_figure_opts(&fig12_density(scale), &out_dir, svg)
        });
    }
    if run("fig12-ablation") {
        timed("fig12-ablation", || {
            emit_figure_opts(&fig12_ablation(scale), &out_dir, svg)
        });
    }
    if run("fig3d") {
        timed("fig3d", || emit_figure_opts(&fig3d(scale), &out_dir, svg));
    }
    if run("beam-vs-iter") {
        timed("beam-vs-iter", || {
            emit_figure_opts(&beam_vs_iterative(scale), &out_dir, svg)
        });
    }
    if run("speed-mode") {
        timed("speed-mode", || emit_figure_opts(&speed_mode(scale), &out_dir, svg));
    }
    if run("coverage-skew") {
        timed("coverage-skew", || {
            emit_figure_opts(&coverage_skew(scale), &out_dir, svg)
        });
    }
    if run("map-inference") {
        timed("map-inference", || {
            let rows = map_inference(scale);
            println!("== map-inference | porto-like, 1.5 km sparsity");
            println!(
                "{:<14} {:>12} {:>15} {:>8}",
                "input", "road recall", "road precision", "F1"
            );
            for r in &rows {
                println!(
                    "{:<14} {:>12.3} {:>15.3} {:>8.3}",
                    r.input, r.road_recall, r.road_precision, r.f1
                );
            }
            write_json(&out_dir.join("map-inference.json"), &rows);
        });
    }
}

fn fmt_opt(v: Option<f64>) -> String {
    v.map_or("-".into(), |f| format!("{f:.3}"))
}

fn emit_figure_opts(fig: &Figure, out_dir: &Path, svg: bool) {
    print!("{}", fig.render());
    write_json(&out_dir.join(format!("{}.json", fig.id)), fig);
    if svg {
        for (panel, doc) in kamel_bench::svg::figure_to_svgs(fig) {
            let path = out_dir.join(format!("{}-{panel}.svg", fig.id));
            std::fs::write(&path, doc).unwrap_or_else(|e| panic!("write {path:?}: {e}"));
        }
    }
}

fn write_json<T: serde::Serialize>(path: &Path, value: &T) {
    let json = serde_json::to_string_pretty(value).expect("serialize results");
    std::fs::write(path, json).unwrap_or_else(|e| panic!("write {path:?}: {e}"));
}

fn timed(label: &str, f: impl FnOnce()) {
    let start = Instant::now();
    f();
    eprintln!("[{label}] done in {:.1}s", start.elapsed().as_secs_f64());
}

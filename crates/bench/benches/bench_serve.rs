//! Throughput and latency of the `kamel-server` online serving layer.
//!
//! Boots a server on loopback over a freshly trained small model, drives
//! it with concurrent keep-alive clients, and writes throughput plus
//! latency percentiles (and a cache-on rerun) to `BENCH_serve.json` at
//! the repo root.
//!
//! Run with `cargo bench --bench bench_serve`. Not a criterion bench:
//! the unit of work is a full HTTP round trip against a live server, so
//! wall-clock over a fixed request count is the honest measure.

use kamel::Kamel;
use kamel_bench::{default_kamel_config, City};
use kamel_geo::Trajectory;
use kamel_roadsim::DatasetScale;
use kamel_server::{Client, ImputeEngine, Server, ServerConfig};
use serde_json::json;
use std::sync::Arc;
use std::time::{Duration, Instant};

const CLIENTS: usize = 8;
const REQUESTS_PER_CLIENT: usize = 50;

fn percentile_us(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

/// Drives `CLIENTS` concurrent connections, each firing its share of
/// requests drawn round-robin from `bodies`. Returns (elapsed, latencies).
fn drive(addr: std::net::SocketAddr, bodies: &Arc<Vec<Vec<u8>>>) -> (f64, Vec<u64>) {
    let t0 = Instant::now();
    let handles: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let bodies = Arc::clone(bodies);
            std::thread::spawn(move || {
                let mut lat = Vec::with_capacity(REQUESTS_PER_CLIENT);
                let mut client =
                    Client::connect(addr, Duration::from_secs(60)).expect("connect");
                for i in 0..REQUESTS_PER_CLIENT {
                    let body = &bodies[(c * REQUESTS_PER_CLIENT + i) % bodies.len()];
                    let r0 = Instant::now();
                    let resp = client.post_json("/v1/impute", body).expect("request");
                    assert_eq!(resp.status, 200, "{}", resp.text());
                    lat.push(r0.elapsed().as_micros() as u64);
                }
                lat
            })
        })
        .collect();
    let mut latencies = Vec::new();
    for h in handles {
        latencies.extend(h.join().expect("client thread"));
    }
    let elapsed = t0.elapsed().as_secs_f64();
    latencies.sort_unstable();
    (elapsed, latencies)
}

fn summarize(elapsed_s: f64, latencies: &[u64], metrics: &kamel_server::Metrics) -> serde_json::Value {
    let total = latencies.len();
    json!({
        "requests": total,
        "elapsed_s": elapsed_s,
        "throughput_rps": total as f64 / elapsed_s,
        "latency_us": {
            "p50": percentile_us(latencies, 0.50),
            "p95": percentile_us(latencies, 0.95),
            "p99": percentile_us(latencies, 0.99),
            "max": latencies.last().copied().unwrap_or(0),
        },
        "cache_hit_rate": metrics.cache_hit_rate(),
    })
}

fn run_scenario(kamel: &Arc<Kamel>, cache_entries: usize, bodies: &Arc<Vec<Vec<u8>>>) -> serde_json::Value {
    let engine = Arc::new(ImputeEngine::new(Arc::clone(kamel)));
    let config = ServerConfig {
        workers: kamel_nn::thread_budget(),
        handlers: CLIENTS * 2,
        cache_entries,
        deadline: Duration::from_secs(60),
        ..ServerConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", engine, config).expect("bind");
    let (elapsed, latencies) = drive(server.local_addr(), bodies);
    let summary = summarize(elapsed, &latencies, server.metrics());
    server.shutdown();
    summary
}

fn main() {
    let host = kamel_nn::available_threads();
    let budget = kamel_nn::thread_budget();
    eprintln!("bench_serve: host threads = {host}, budget = {budget}");
    let status = if host > 1 {
        "measured"
    } else {
        eprintln!(
            "WARNING: bench_serve is running on a single hardware thread; \
             concurrency numbers are NOT representative and the output will \
             carry status \"measured-single-core\"."
        );
        "measured-single-core"
    };
    let dataset = City::Porto.dataset(DatasetScale::Small);
    let kamel = Kamel::new(default_kamel_config().build());
    kamel.train(&dataset.train);
    let kamel = Arc::new(kamel);
    let sparse: Vec<Trajectory> = dataset
        .test
        .iter()
        .take(40)
        .map(|t| t.sparsify(1_000.0))
        .collect();
    let bodies: Arc<Vec<Vec<u8>>> = Arc::new(
        sparse
            .iter()
            .map(|t| serde_json::to_vec(t).expect("serialize request"))
            .collect(),
    );
    eprintln!("model trained; {} distinct request bodies", bodies.len());
    // Cache off: every request pays full imputation.
    let cold = run_scenario(&kamel, 0, &bodies);
    eprintln!("cache-off scenario done");
    // Cache on: the 40 distinct bodies repeat across 400 requests, so the
    // steady state is cache-dominated.
    let cached = run_scenario(&kamel, 1024, &bodies);
    eprintln!("cache-on scenario done");
    let doc = json!({
        "bench": "bench_serve",
        "status": status,
        "host_threads": host,
        "thread_budget": budget,
        "clients": CLIENTS,
        "requests_per_client": REQUESTS_PER_CLIENT,
        "cache_off": cold,
        "cache_on": cached,
    });
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    std::fs::write(path, serde_json::to_string_pretty(&doc).expect("serialize"))
        .expect("write BENCH_serve.json");
    println!("{}", serde_json::to_string_pretty(&doc).expect("serialize"));
    println!("wrote {path}");
}

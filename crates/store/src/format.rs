//! The `.kstore` on-disk format.
//!
//! A store is one file holding every model of a trained pyramid as an
//! independently checksummed record, laid out for serving straight out of
//! a read-only mapping:
//!
//! ```text
//! offset 0   header  (48 bytes)
//!   magic            [u8; 8]  b"KAMELSTO"
//!   version          u32      format version (1)
//!   flags            u32      bit 0: at least one record packs int8 weights
//!   config_digest    u64      FNV-1a64 of the packed system's config JSON
//!   record_count     u32
//!   index_crc        u32      CRC32C over the whole index block
//!   total_len        u64      file length (truncation check)
//!   reserved         u64
//! offset 48  index   (record_count × 40 bytes, covered by index_crc)
//!   kind u8 | level u8 | reserved u16 | x u32 | y u32 | reserved u32
//!   | offset u64 | len u64 | crc u32 | reserved u32
//! then       payloads, each 8-byte aligned, each covered by its index crc:
//!   json_len u32 | aux_len u32 | json | pad to 4 | aux
//! ```
//!
//! The envelope conventions mirror the `KAMELCKP` checkpoint format
//! (magic + version up front, CRC32C integrity, explicit lengths so a
//! truncated file is detected before any payload is trusted); the record
//! granularity is what's new — a serving process materializes one cell
//! without touching the pages of any other.
//!
//! Record `kind` maps the pyramid slots: 0 is the store's meta record
//! (serving skeleton + model summaries, always record 0), 1/2/3 are
//! single / pair-east / pair-south cell models at `(level, x, y)`, 4 is
//! the global model. `aux` is record-specific: packed int8 weights for
//! model records (read zero-copy via [`kamel_nn::QuantizedBertMlm::read_packed`]),
//! the summaries JSON for the meta record.

use crate::mmap::MappedFile;
use crate::StoreError;
use kamel::checkpoint::crc32c;
use kamel::partition::{ModelSelection, PyramidKey};
use kamel_nn::ByteSource;
use std::path::Path;
use std::sync::Arc;

/// First eight bytes of every store file.
pub const STORE_MAGIC: [u8; 8] = *b"KAMELSTO";
/// Current format version.
pub const STORE_VERSION: u32 = 1;
/// Header flag: at least one record carries packed int8 weights.
pub const FLAG_QUANT: u32 = 1;
/// Fixed header length.
pub const HEADER_LEN: usize = 48;
/// Fixed index entry length.
pub const INDEX_ENTRY_LEN: usize = 40;

/// Record kind: store meta (serving skeleton + summaries).
pub const KIND_META: u8 = 0;
/// Record kind: single-cell model.
pub const KIND_SINGLE: u8 = 1;
/// Record kind: east neighbor-pair model.
pub const KIND_PAIR_EAST: u8 = 2;
/// Record kind: south neighbor-pair model.
pub const KIND_PAIR_SOUTH: u8 = 3;
/// Record kind: global model.
pub const KIND_GLOBAL: u8 = 4;

/// Identity of one record: which pyramid slot (or the meta slot) it holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RecordKey {
    /// One of the `KIND_*` constants.
    pub kind: u8,
    /// Pyramid level (0 for meta/global records).
    pub level: u8,
    /// Cell column at that level.
    pub x: u32,
    /// Cell row at that level.
    pub y: u32,
}

impl RecordKey {
    /// The meta record's key.
    pub const META: RecordKey = RecordKey {
        kind: KIND_META,
        level: 0,
        x: 0,
        y: 0,
    };

    /// The key a model at `sel` is filed under.
    pub fn from_selection(sel: ModelSelection) -> Self {
        match sel {
            ModelSelection::Global => RecordKey {
                kind: KIND_GLOBAL,
                level: 0,
                x: 0,
                y: 0,
            },
            ModelSelection::Single(k) => RecordKey {
                kind: KIND_SINGLE,
                level: k.level,
                x: k.x,
                y: k.y,
            },
            ModelSelection::Pair(k, east) => RecordKey {
                kind: if east { KIND_PAIR_EAST } else { KIND_PAIR_SOUTH },
                level: k.level,
                x: k.x,
                y: k.y,
            },
        }
    }

    /// The pyramid slot this key names (`None` for the meta record).
    pub fn to_selection(self) -> Option<ModelSelection> {
        let key = PyramidKey {
            level: self.level,
            x: self.x,
            y: self.y,
        };
        match self.kind {
            KIND_GLOBAL => Some(ModelSelection::Global),
            KIND_SINGLE => Some(ModelSelection::Single(key)),
            KIND_PAIR_EAST => Some(ModelSelection::Pair(key, true)),
            KIND_PAIR_SOUTH => Some(ModelSelection::Pair(key, false)),
            _ => None,
        }
    }
}

/// One parsed index entry.
#[derive(Debug, Clone, Copy)]
pub struct IndexEntry {
    /// Which slot the record holds.
    pub key: RecordKey,
    /// Payload offset from the start of the file.
    pub offset: u64,
    /// Payload length in bytes.
    pub len: u64,
    /// CRC32C over the whole payload.
    pub crc: u32,
}

/// A decoded, checksum-verified view of one record's payload.
#[derive(Debug)]
pub struct RecordView<'a> {
    /// The record's slot.
    pub key: RecordKey,
    /// The JSON section (a serialized `ModelEntry`, or the serving
    /// skeleton for the meta record).
    pub json: &'a [u8],
    /// Absolute file offset of the aux section (packed int8 weights for
    /// model records; summaries JSON for the meta record).
    pub aux_offset: usize,
    /// Aux section length (0 when absent).
    pub aux_len: usize,
    /// Total payload length — the record's residency cost proxy.
    pub payload_len: usize,
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn get_u32(b: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(b[at..at + 4].try_into().expect("bounds checked by caller"))
}

fn get_u64(b: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(b[at..at + 8].try_into().expect("bounds checked by caller"))
}

/// Assembles a store file in memory. Records keep insertion order; the
/// meta record must be pushed first (readers require it at index 0).
#[derive(Debug)]
pub struct StoreBuilder {
    config_digest: u64,
    flags: u32,
    records: Vec<(RecordKey, Vec<u8>)>,
}

impl StoreBuilder {
    /// Starts a store for a system whose config digests to `config_digest`.
    pub fn new(config_digest: u64) -> Self {
        StoreBuilder {
            config_digest,
            flags: 0,
            records: Vec::new(),
        }
    }

    /// Appends one record, framing `json` and `aux` into a payload.
    pub fn push_record(&mut self, key: RecordKey, json: &[u8], aux: &[u8]) {
        let json_pad = (4 - json.len() % 4) % 4;
        let mut payload = Vec::with_capacity(8 + json.len() + json_pad + aux.len());
        put_u32(&mut payload, json.len() as u32);
        put_u32(&mut payload, aux.len() as u32);
        payload.extend_from_slice(json);
        payload.extend_from_slice(&[0u8; 3][..json_pad]);
        payload.extend_from_slice(aux);
        if key.kind != KIND_META && !aux.is_empty() {
            self.flags |= FLAG_QUANT;
        }
        self.records.push((key, payload));
    }

    /// Renders the complete store file.
    pub fn finish(self) -> Vec<u8> {
        let index_end = HEADER_LEN + self.records.len() * INDEX_ENTRY_LEN;
        // Place payloads, each 8-byte aligned.
        let mut offsets = Vec::with_capacity(self.records.len());
        let mut cursor = (index_end + 7) & !7;
        for (_, payload) in &self.records {
            offsets.push(cursor);
            cursor += payload.len();
            cursor = (cursor + 7) & !7;
        }
        let total_len = offsets
            .last()
            .map(|&o| o + self.records.last().expect("non-empty").1.len())
            .unwrap_or(index_end) as u64;

        let mut index = Vec::with_capacity(self.records.len() * INDEX_ENTRY_LEN);
        for ((key, payload), &offset) in self.records.iter().zip(&offsets) {
            index.push(key.kind);
            index.push(key.level);
            index.extend_from_slice(&[0u8; 2]); // reserved
            put_u32(&mut index, key.x);
            put_u32(&mut index, key.y);
            put_u32(&mut index, 0); // reserved
            put_u64(&mut index, offset as u64);
            put_u64(&mut index, payload.len() as u64);
            put_u32(&mut index, crc32c(payload));
            put_u32(&mut index, 0); // reserved
        }

        let mut out = Vec::with_capacity(total_len as usize);
        out.extend_from_slice(&STORE_MAGIC);
        put_u32(&mut out, STORE_VERSION);
        put_u32(&mut out, self.flags);
        put_u64(&mut out, self.config_digest);
        put_u32(&mut out, self.records.len() as u32);
        put_u32(&mut out, crc32c(&index));
        put_u64(&mut out, total_len);
        put_u64(&mut out, 0); // reserved
        debug_assert_eq!(out.len(), HEADER_LEN);
        out.extend_from_slice(&index);
        for ((_, payload), &offset) in self.records.iter().zip(&offsets) {
            out.resize(offset, 0);
            out.extend_from_slice(payload);
        }
        out.resize(total_len as usize, 0);
        out
    }
}

/// An open store: validated header + index over a (usually mapped) file.
///
/// Opening validates the envelope — magic, version, length, and the index
/// checksum — so every record's location is trustworthy. Record *payloads*
/// are checksummed lazily, on first materialization, which is what keeps
/// opening a multi-gigabyte store O(index) instead of O(file).
#[derive(Debug)]
pub struct Store {
    source: Arc<MappedFile>,
    flags: u32,
    config_digest: u64,
    index: Vec<IndexEntry>,
}

impl Store {
    /// Opens and validates the store at `path`.
    pub fn open(path: &Path) -> Result<Self, StoreError> {
        Self::from_source(Arc::new(MappedFile::open(path).map_err(StoreError::Io)?))
    }

    /// Opens a store over an in-memory buffer (tests).
    pub fn from_bytes(bytes: Vec<u8>) -> Result<Self, StoreError> {
        Self::from_source(Arc::new(MappedFile::from_bytes(bytes)))
    }

    fn from_source(source: Arc<MappedFile>) -> Result<Self, StoreError> {
        let b = source.bytes();
        if b.len() < HEADER_LEN {
            return Err(StoreError::Corrupt(format!(
                "file is {} bytes, shorter than the {HEADER_LEN}-byte store header",
                b.len()
            )));
        }
        if b[..8] != STORE_MAGIC {
            return Err(StoreError::Corrupt(
                "not a KAMEL model store (bad magic)".to_string(),
            ));
        }
        let version = get_u32(b, 8);
        if version != STORE_VERSION {
            return Err(StoreError::Incompatible(format!(
                "store format v{version}; this build reads v{STORE_VERSION}"
            )));
        }
        let flags = get_u32(b, 12);
        let config_digest = get_u64(b, 16);
        let record_count = get_u32(b, 24) as usize;
        let index_crc = get_u32(b, 28);
        let total_len = get_u64(b, 32);
        if total_len != b.len() as u64 {
            return Err(StoreError::Corrupt(format!(
                "header claims {total_len} bytes but the file holds {} (truncated?)",
                b.len()
            )));
        }
        let index_end = HEADER_LEN
            .checked_add(record_count.checked_mul(INDEX_ENTRY_LEN).ok_or_else(|| {
                StoreError::Corrupt(format!("implausible record count {record_count}"))
            })?)
            .filter(|&end| end <= b.len())
            .ok_or_else(|| {
                StoreError::Corrupt(format!(
                    "index of {record_count} records does not fit in the file"
                ))
            })?;
        let index_bytes = &b[HEADER_LEN..index_end];
        if crc32c(index_bytes) != index_crc {
            return Err(StoreError::Corrupt(
                "index checksum mismatch (the record table is damaged)".to_string(),
            ));
        }
        let mut index = Vec::with_capacity(record_count);
        for i in 0..record_count {
            let e = &index_bytes[i * INDEX_ENTRY_LEN..(i + 1) * INDEX_ENTRY_LEN];
            let entry = IndexEntry {
                key: RecordKey {
                    kind: e[0],
                    level: e[1],
                    x: get_u32(e, 4),
                    y: get_u32(e, 8),
                },
                offset: get_u64(e, 16),
                len: get_u64(e, 24),
                crc: get_u32(e, 32),
            };
            let end = entry.offset.checked_add(entry.len);
            if entry.offset < index_end as u64 || end.is_none() || end.unwrap() > total_len {
                return Err(StoreError::Corrupt(format!(
                    "record {i} spans {}..{:?}, outside the file payload area",
                    entry.offset, end
                )));
            }
            if entry.len < 8 {
                return Err(StoreError::Corrupt(format!(
                    "record {i} is {} bytes, shorter than its framing",
                    entry.len
                )));
            }
            index.push(entry);
        }
        Ok(Store {
            source,
            flags,
            config_digest,
            index,
        })
    }

    /// Header flags.
    pub fn flags(&self) -> u32 {
        self.flags
    }

    /// The packed system's config digest (FNV-1a64 of its config JSON).
    pub fn config_digest(&self) -> u64 {
        self.config_digest
    }

    /// The validated index, in file order.
    pub fn index(&self) -> &[IndexEntry] {
        &self.index
    }

    /// Number of records (including the meta record).
    pub fn record_count(&self) -> usize {
        self.index.len()
    }

    /// Total file size in bytes.
    pub fn file_len(&self) -> u64 {
        self.source.len() as u64
    }

    /// The backing byte source (for zero-copy weight views).
    pub fn byte_source(&self) -> Arc<MappedFile> {
        self.source.clone()
    }

    /// Checks record `i`'s payload checksum and decodes its framing.
    pub fn record(&self, i: usize) -> Result<RecordView<'_>, StoreError> {
        let entry = self.index.get(i).ok_or_else(|| {
            StoreError::Corrupt(format!(
                "record {i} out of range ({} records)",
                self.index.len()
            ))
        })?;
        let b = self.source.bytes();
        let payload = &b[entry.offset as usize..(entry.offset + entry.len) as usize];
        if crc32c(payload) != entry.crc {
            return Err(StoreError::Corrupt(format!(
                "record {i} ({:?}) checksum mismatch — the store file is damaged",
                entry.key
            )));
        }
        let json_len = get_u32(payload, 0) as usize;
        let aux_len = get_u32(payload, 4) as usize;
        let json_pad = (4 - json_len % 4) % 4;
        let expect = 8 + json_len + json_pad + aux_len;
        if expect != payload.len() {
            return Err(StoreError::Corrupt(format!(
                "record {i} framing claims {expect} bytes but the payload holds {}",
                payload.len()
            )));
        }
        Ok(RecordView {
            key: entry.key,
            json: &payload[8..8 + json_len],
            aux_offset: entry.offset as usize + 8 + json_len + json_pad,
            aux_len,
            payload_len: payload.len(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_store() -> Vec<u8> {
        let mut b = StoreBuilder::new(0xDEAD_BEEF_F00D_CAFE);
        b.push_record(RecordKey::META, br#"{"config":{}}"#, br#"[]"#);
        b.push_record(
            RecordKey {
                kind: KIND_SINGLE,
                level: 3,
                x: 5,
                y: 7,
            },
            br#"{"model":"a"}"#,
            &[1, 2, 3, 4, 5],
        );
        b.push_record(
            RecordKey {
                kind: KIND_GLOBAL,
                level: 0,
                x: 0,
                y: 0,
            },
            br#"{"model":"g"}"#,
            &[],
        );
        b.finish()
    }

    #[test]
    fn round_trips_records_through_the_binary_layout() {
        let bytes = sample_store();
        let store = Store::from_bytes(bytes).expect("open");
        assert_eq!(store.record_count(), 3);
        assert_eq!(store.config_digest(), 0xDEAD_BEEF_F00D_CAFE);
        assert_eq!(store.flags() & FLAG_QUANT, FLAG_QUANT, "record 1 has aux");

        let meta = store.record(0).expect("meta");
        assert_eq!(meta.key, RecordKey::META);
        assert_eq!(meta.json, br#"{"config":{}}"#);
        assert_eq!(meta.aux_len, 2);

        let single = store.record(1).expect("single");
        assert_eq!(single.key.kind, KIND_SINGLE);
        assert_eq!((single.key.level, single.key.x, single.key.y), (3, 5, 7));
        assert_eq!(single.json, br#"{"model":"a"}"#);
        let b = store.byte_source();
        let aux = &kamel_nn::ByteSource::bytes(&*b)
            [single.aux_offset..single.aux_offset + single.aux_len];
        assert_eq!(aux, &[1, 2, 3, 4, 5]);

        let global = store.record(2).expect("global");
        assert_eq!(global.key.to_selection(), Some(ModelSelection::Global));
        assert_eq!(global.aux_len, 0);
    }

    #[test]
    fn payloads_are_eight_byte_aligned() {
        let bytes = sample_store();
        let store = Store::from_bytes(bytes).expect("open");
        for (i, entry) in store.index().iter().enumerate() {
            assert_eq!(entry.offset % 8, 0, "record {i} payload misaligned");
        }
    }

    #[test]
    fn selection_key_mapping_is_a_bijection_over_model_kinds() {
        let key = PyramidKey {
            level: 4,
            x: 11,
            y: 13,
        };
        for sel in [
            ModelSelection::Global,
            ModelSelection::Single(key),
            ModelSelection::Pair(key, true),
            ModelSelection::Pair(key, false),
        ] {
            assert_eq!(
                RecordKey::from_selection(sel).to_selection(),
                Some(sel),
                "selection {sel:?} did not round-trip"
            );
        }
        assert_eq!(RecordKey::META.to_selection(), None);
    }

    #[test]
    fn truncated_file_fails_loudly() {
        let bytes = sample_store();
        for cut in [0, HEADER_LEN - 1, HEADER_LEN + 10, bytes.len() - 1] {
            let err = Store::from_bytes(bytes[..cut].to_vec()).expect_err("must fail");
            assert!(
                matches!(err, StoreError::Corrupt(_)),
                "cut at {cut} gave {err:?}"
            );
        }
    }

    #[test]
    fn flipped_index_byte_fails_at_open() {
        let mut bytes = sample_store();
        bytes[HEADER_LEN + 4] ^= 0x40; // inside the first index entry
        let err = Store::from_bytes(bytes).expect_err("must fail");
        assert!(matches!(err, StoreError::Corrupt(ref m) if m.contains("index checksum")));
    }

    #[test]
    fn flipped_payload_byte_fails_at_record_access() {
        let clean = sample_store();
        let store = Store::from_bytes(clean.clone()).expect("open");
        let offset = store.index()[1].offset as usize + 9; // inside record 1's json
        drop(store);
        let mut bytes = clean;
        bytes[offset] ^= 0x01;
        let store = Store::from_bytes(bytes).expect("open still succeeds (lazy payloads)");
        let err = store.record(1).expect_err("record must fail");
        assert!(matches!(err, StoreError::Corrupt(ref m) if m.contains("checksum mismatch")));
        // Other records stay readable — damage is contained per record.
        store.record(0).expect("meta unaffected");
        store.record(2).expect("global unaffected");
    }

    #[test]
    fn version_skew_fails_as_incompatible() {
        let mut bytes = sample_store();
        bytes[8..12].copy_from_slice(&(STORE_VERSION + 1).to_le_bytes());
        let err = Store::from_bytes(bytes).expect_err("must fail");
        assert!(matches!(err, StoreError::Incompatible(ref m) if m.contains("store format")));
    }

    #[test]
    fn bad_magic_fails_loudly() {
        let mut bytes = sample_store();
        bytes[0] = b'X';
        let err = Store::from_bytes(bytes).expect_err("must fail");
        assert!(matches!(err, StoreError::Corrupt(ref m) if m.contains("bad magic")));
    }

    #[test]
    fn header_length_matches_the_documented_layout() {
        let b = StoreBuilder::new(1);
        let bytes = b.finish();
        assert_eq!(bytes.len(), HEADER_LEN);
        let store = Store::from_bytes(bytes).expect("empty store opens");
        assert_eq!(store.record_count(), 0);
    }
}

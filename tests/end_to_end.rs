//! End-to-end integration: synthetic city → train → impute → score with the
//! paper's metrics, on both dataset analogues.

use kamel::{Kamel, KamelConfig};
use kamel_eval::MetricsAccumulator;
use kamel_roadsim::{Dataset, DatasetScale};

fn small_config() -> KamelConfig {
    KamelConfig::builder()
        .pyramid_height(3)
        .pyramid_maintained(3)
        .model_threshold_k(150)
        .build()
}

fn run(dataset: &Dataset, sparse_m: f64, delta_m: f64, n: usize) -> (f64, f64, f64) {
    let kamel = Kamel::new(small_config());
    kamel.train(&dataset.train);
    let proj = dataset.projection();
    let mut acc = MetricsAccumulator::default();
    for gt in dataset.test.iter().filter(|t| t.len() >= 3).take(n) {
        let sparse = gt.sparsify(sparse_m);
        let out = kamel.impute(&sparse);
        acc.add_pair(gt, &out.trajectory, &proj, 100.0, delta_m);
        let failed = out.gaps.iter().filter(|g| g.outcome.failed).count();
        acc.add_failures(out.gaps.len(), failed);
    }
    (acc.recall(), acc.precision(), acc.failure_rate().unwrap_or(0.0))
}

#[test]
fn porto_like_medium_gaps_are_recovered() {
    let dataset = Dataset::porto_like(DatasetScale::Small);
    let (recall, precision, failure) = run(&dataset, 1_000.0, 50.0, 15);
    assert!(recall > 0.6, "recall {recall}");
    assert!(precision > 0.6, "precision {precision}");
    assert!(failure < 0.35, "failure rate {failure}");
}

#[test]
fn jakarta_like_long_trajectories_are_recovered() {
    let dataset = Dataset::jakarta_like(DatasetScale::Small);
    let (recall, precision, failure) = run(&dataset, 1_000.0, 50.0, 6);
    assert!(recall > 0.55, "recall {recall}");
    // Small-scale Jakarta has thin corridor coverage (tens of trips over a
    // 170 km network), which makes precision the noisiest metric; the
    // Medium-scale figures run is the calibrated benchmark.
    assert!(precision > 0.45, "precision {precision}");
    assert!(failure < 0.5, "failure rate {failure}");
}

#[test]
fn recall_degrades_gracefully_with_sparseness() {
    // Fig. 9 shape: monotone-ish decay, still useful at large gaps.
    let dataset = Dataset::porto_like(DatasetScale::Small);
    let (r_small, _, _) = run(&dataset, 500.0, 50.0, 12);
    let (r_large, _, _) = run(&dataset, 3_000.0, 50.0, 12);
    assert!(r_small > r_large, "small-gap recall {r_small} <= large-gap {r_large}");
    assert!(r_large > 0.2, "large-gap recall collapsed: {r_large}");
}

#[test]
fn tighter_delta_lowers_scores() {
    // Fig. 10 shape: recall/precision are monotone in δ.
    let dataset = Dataset::porto_like(DatasetScale::Small);
    let (r_tight, p_tight, _) = run(&dataset, 1_000.0, 10.0, 10);
    let (r_loose, p_loose, _) = run(&dataset, 1_000.0, 100.0, 10);
    assert!(r_loose > r_tight, "recall not monotone in delta");
    assert!(p_loose > p_tight, "precision not monotone in delta");
}

#[test]
fn output_preserves_every_original_fix() {
    let dataset = Dataset::porto_like(DatasetScale::Small);
    let kamel = Kamel::new(small_config());
    kamel.train(&dataset.train);
    for gt in dataset.test.iter().take(8) {
        let sparse = gt.sparsify(1_000.0);
        let out = kamel.impute(&sparse);
        for p in &sparse.points {
            assert!(
                out.trajectory.points.contains(p),
                "original fix dropped from the output"
            );
        }
        // Timestamps stay monotone through imputed insertions.
        for w in out.trajectory.points.windows(2) {
            assert!(w[1].t >= w[0].t - 1e-9, "non-monotone output timestamps");
        }
    }
}

#[test]
fn persistence_roundtrip_is_exact_end_to_end() {
    let dataset = Dataset::porto_like(DatasetScale::Small);
    let kamel = Kamel::new(small_config());
    kamel.train(&dataset.train);
    let json = kamel.to_json().expect("serialize");
    let restored = Kamel::from_json(&json).expect("restore");
    for gt in dataset.test.iter().take(4) {
        let sparse = gt.sparsify(1_200.0);
        assert_eq!(kamel.impute(&sparse), restored.impute(&sparse));
    }
}

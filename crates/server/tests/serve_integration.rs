//! End-to-end serving tests against a real trained [`kamel::Kamel`].
//!
//! The deterministic policy tests (exact-overflow shedding, drain order,
//! panic containment) live next to the generic server core with gated stub
//! services; these tests pin down the property only the real engine can
//! show: HTTP responses are byte-identical to direct library calls, with
//! the cache off and on.

use kamel::{Kamel, KamelConfig};
use kamel_geo::{GpsPoint, Trajectory};
use kamel_server::{
    config_digest, Client, ImputeEngine, ImputeResponse, InfoResponse, Server, ServerConfig,
    WireService,
};
use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("kamel_serve_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A corpus of trips along one straight street (same shape the core
/// pipeline tests train on), fixes every ~84 m.
fn street_corpus(n: usize) -> Vec<Trajectory> {
    (0..n)
        .map(|_| {
            Trajectory::new(
                (0..30)
                    .map(|i| GpsPoint::from_parts(41.15, -8.61 + i as f64 * 0.001, i as f64 * 10.0))
                    .collect(),
            )
        })
        .collect()
}

fn trained() -> Arc<Kamel> {
    let kamel = Kamel::new(
        KamelConfig::builder()
            .model_threshold_k(50)
            .pyramid_height(3)
            .threads(Some(2))
            .build(),
    );
    kamel.train(&street_corpus(40));
    Arc::new(kamel)
}

/// A sparse trajectory along the street with one large gap, perturbed per
/// `i` so concurrent requests are all distinct.
fn sparse_request(i: usize) -> Trajectory {
    let jitter = i as f64 * 1e-5;
    Trajectory::new(vec![
        GpsPoint::from_parts(41.15, -8.610 + jitter, 0.0),
        GpsPoint::from_parts(41.15, -8.609 + jitter, 10.0),
        GpsPoint::from_parts(41.15, -8.589 + jitter, 210.0),
        GpsPoint::from_parts(41.15, -8.588 + jitter, 220.0),
    ])
}

fn config(cache_entries: usize) -> ServerConfig {
    ServerConfig {
        workers: 2,
        handlers: 16,
        batch_max: 4,
        batch_wait: Duration::from_millis(2),
        queue_cap: 64,
        cache_entries,
        deadline: Duration::from_secs(30),
        idle_poll: Duration::from_millis(50),
        degraded_mode: false,
        ..ServerConfig::default()
    }
}

/// What a direct library call renders for this request — the reference
/// bytes every server response must equal.
fn direct_bytes(kamel: &Arc<Kamel>, sparse: &Trajectory) -> Vec<u8> {
    ImputeEngine::new(Arc::clone(kamel)).render(&kamel.impute(sparse))
}

fn assert_concurrent_responses_match_direct(cache_entries: usize) {
    const N: usize = 12; // > batch_max = 4, so coalescing must happen
    let kamel = trained();
    let engine = Arc::new(ImputeEngine::new(Arc::clone(&kamel)));
    let server = Server::bind("127.0.0.1:0", engine, config(cache_entries)).expect("bind");
    let addr = server.local_addr();
    let threads: Vec<_> = (0..N)
        .map(|i| {
            let kamel = Arc::clone(&kamel);
            std::thread::spawn(move || {
                let sparse = sparse_request(i);
                let body = serde_json::to_vec(&sparse).unwrap();
                let mut c = Client::connect(addr, Duration::from_secs(30)).unwrap();
                let resp = c.post_json("/v1/impute", &body).unwrap();
                assert_eq!(resp.status, 200, "{}", resp.text());
                assert_eq!(
                    resp.body,
                    direct_bytes(&kamel, &sparse),
                    "response {i} differs from a direct impute call"
                );
                // The body is well-formed wire JSON, not just equal bytes.
                let parsed: ImputeResponse = serde_json::from_slice(&resp.body).unwrap();
                assert!(parsed.trajectory.len() >= sparse.len());
                assert_eq!(parsed.gap_count, 1);
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    server.shutdown();
}

/// The engine's batched path (micro-batcher → `impute_batch` → round-batched
/// beam model calls) must render byte-identical responses to one-at-a-time
/// `impute` calls.
#[test]
fn batched_engine_bytes_match_single_impute_bytes() {
    let kamel = trained();
    let engine = ImputeEngine::new(Arc::clone(&kamel));
    let jobs: Vec<Trajectory> = (0..6).map(sparse_request).collect();
    let outs = engine.run_batch(jobs.clone());
    assert_eq!(outs.len(), jobs.len());
    for (i, (job, out)) in jobs.iter().zip(&outs).enumerate() {
        assert_eq!(
            engine.render(out),
            direct_bytes(&kamel, job),
            "batched response {i} differs from a direct impute call"
        );
    }
}

#[test]
fn concurrent_clients_match_direct_calls_cache_disabled() {
    assert_concurrent_responses_match_direct(0);
}

#[test]
fn concurrent_clients_match_direct_calls_cache_enabled() {
    assert_concurrent_responses_match_direct(256);
}

#[test]
fn repeated_request_is_a_recorded_cache_hit_with_identical_bytes() {
    let kamel = trained();
    let engine = Arc::new(ImputeEngine::new(Arc::clone(&kamel)));
    let server = Server::bind("127.0.0.1:0", engine, config(256)).expect("bind");
    let mut c = Client::connect(server.local_addr(), Duration::from_secs(30)).unwrap();
    let body = serde_json::to_vec(&sparse_request(0)).unwrap();
    let first = c.post_json("/v1/impute", &body).unwrap();
    assert_eq!(first.status, 200);
    assert_eq!(first.header("x-kamel-cache"), Some("miss"));
    let second = c.post_json("/v1/impute", &body).unwrap();
    assert_eq!(second.status, 200);
    assert_eq!(second.header("x-kamel-cache"), Some("hit"));
    assert_eq!(first.body, second.body, "cache hit must be byte-identical");
    assert_eq!(second.body, direct_bytes(&kamel, &sparse_request(0)));
    assert_eq!(server.metrics().cache_hits.load(Ordering::Relaxed), 1);
    assert_eq!(server.metrics().cache_misses.load(Ordering::Relaxed), 1);
    server.shutdown();
}

#[test]
fn perturbed_request_misses_the_cache() {
    // Same cells, same gap structure, but different raw fixes: the digest
    // part of the cache key must keep these apart.
    let kamel = trained();
    let engine = Arc::new(ImputeEngine::new(Arc::clone(&kamel)));
    let server = Server::bind("127.0.0.1:0", engine, config(256)).expect("bind");
    let mut c = Client::connect(server.local_addr(), Duration::from_secs(30)).unwrap();
    for i in 0..2 {
        let body = serde_json::to_vec(&sparse_request(i)).unwrap();
        let resp = c.post_json("/v1/impute", &body).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.header("x-kamel-cache"), Some("miss"), "request {i}");
    }
    server.shutdown();
}

#[test]
fn overloaded_real_engine_sheds_cleanly() {
    // Non-deterministic overload (the real engine cannot be gated): with a
    // tiny queue and one worker, a burst must produce only clean 200s and
    // 503s — never hangs, resets, or malformed responses. The exact-count
    // shedding guarantee is pinned deterministically in the server core's
    // gated stub test.
    let kamel = trained();
    let engine = Arc::new(ImputeEngine::new(Arc::clone(&kamel)));
    let server = Server::bind(
        "127.0.0.1:0",
        engine,
        ServerConfig {
            workers: 1,
            batch_max: 1,
            batch_wait: Duration::ZERO,
            queue_cap: 2,
            cache_entries: 0,
            ..config(0)
        },
    )
    .expect("bind");
    let addr = server.local_addr();
    let statuses: Vec<u16> = (0..24)
        .map(|i| {
            std::thread::spawn(move || {
                let body = serde_json::to_vec(&sparse_request(i)).unwrap();
                let mut c = Client::connect(addr, Duration::from_secs(30)).unwrap();
                let resp = c.post_json("/v1/impute", &body).unwrap();
                if resp.status == 503 {
                    assert_eq!(resp.header("retry-after"), Some("1"));
                }
                resp.status
            })
        })
        .collect::<Vec<_>>()
        .into_iter()
        .map(|t| t.join().unwrap())
        .collect();
    assert!(statuses.iter().all(|s| *s == 200 || *s == 503), "{statuses:?}");
    assert!(statuses.contains(&200), "{statuses:?}");
    let metrics = server.metrics();
    let shed = metrics.requests_shed.load(Ordering::Relaxed);
    let ok = metrics.requests_ok.load(Ordering::Relaxed);
    assert_eq!(ok + shed, 24, "every request was answered exactly once");
    server.shutdown();
}

/// A bad request body answers 400 with a useful message and the
/// connection stays usable for the next (valid) request.
#[test]
fn garbage_json_gets_400_and_connection_stays_usable() {
    let kamel = trained();
    let engine = Arc::new(ImputeEngine::new(Arc::clone(&kamel)));
    let server = Server::bind("127.0.0.1:0", engine, config(256)).expect("bind");
    let mut c = Client::connect(server.local_addr(), Duration::from_secs(30)).unwrap();
    let resp = c.post_json("/v1/impute", b"{not json!!").unwrap();
    assert_eq!(resp.status, 400);
    assert!(resp.text().contains("invalid trajectory JSON"), "{}", resp.text());
    let body = serde_json::to_vec(&sparse_request(0)).unwrap();
    let ok = c.post_json("/v1/impute", &body).unwrap();
    assert_eq!(ok.status, 200, "connection must survive a 400");
    assert_eq!(ok.body, direct_bytes(&kamel, &sparse_request(0)));
    server.shutdown();
}

/// Hot-reload under concurrent imputation load: every response is fully
/// old-model or fully new-model — never a mix — and once the reload has
/// returned, fresh requests are answered by the new model.
#[test]
fn hot_reload_under_load_never_mixes_models() {
    const CLIENTS: usize = 8;
    const ROUNDS: usize = 6;
    let dir = tempdir("reload_mix");
    let path = dir.join("model.ckpt");
    // Old model: trained on the street. New model: untrained (its linear
    // fallback renders observably different bytes for the same request).
    let old = trained();
    old.save_to_file(&path).unwrap();
    let new = Kamel::new(KamelConfig::default());
    let served = Arc::new(Kamel::load_from_file(&path).unwrap());
    let engine = Arc::new(ImputeEngine::with_model_path(Arc::clone(&served), path.clone()));
    let server = Server::bind("127.0.0.1:0", engine, config(256)).expect("bind");
    let addr = server.local_addr();
    let workers: Vec<_> = (0..CLIENTS)
        .map(|i| {
            let old_bytes = direct_bytes(&served, &sparse_request(i));
            let new_bytes = {
                let new = Arc::new(Kamel::new(KamelConfig::default()));
                direct_bytes(&new, &sparse_request(i))
            };
            assert_ne!(old_bytes, new_bytes, "models must be distinguishable");
            std::thread::spawn(move || {
                let body = serde_json::to_vec(&sparse_request(i)).unwrap();
                for round in 0..ROUNDS {
                    let mut c = Client::connect(addr, Duration::from_secs(30)).unwrap();
                    let resp = c.post_json("/v1/impute", &body).unwrap();
                    assert_eq!(resp.status, 200, "{}", resp.text());
                    assert!(
                        resp.body == old_bytes || resp.body == new_bytes,
                        "client {i} round {round}: response is neither \
                         old-model nor new-model bytes"
                    );
                }
            })
        })
        .collect();
    // Swap the checkpoint on disk and hot-reload while the clients hammer.
    new.save_to_file(&path).unwrap();
    let mut admin = Client::connect(addr, Duration::from_secs(30)).unwrap();
    let resp = admin.post_json("/admin/reload", b"").unwrap();
    assert_eq!(resp.status, 200, "{}", resp.text());
    assert!(resp.text().contains("generation 1"), "{}", resp.text());
    for t in workers {
        t.join().unwrap();
    }
    // Post-reload, a fresh request is answered by the new model (the old
    // model's cached responses were invalidated).
    let sparse = sparse_request(99);
    let body = serde_json::to_vec(&sparse).unwrap();
    let resp = admin.post_json("/v1/impute", &body).unwrap();
    assert_eq!(resp.status, 200);
    let new_ref = Arc::new(Kamel::new(KamelConfig::default()));
    assert_eq!(resp.body, direct_bytes(&new_ref, &sparse));
    assert_eq!(server.metrics().model_reloads.load(Ordering::Relaxed), 1);
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// A reload pointed at a corrupt checkpoint fails loudly, increments the
/// failure counter, and leaves the old model serving byte-identically.
#[test]
fn corrupt_reload_keeps_the_old_model() {
    let dir = tempdir("reload_corrupt");
    let path = dir.join("model.ckpt");
    let old = trained();
    old.save_to_file(&path).unwrap();
    let served = Arc::new(Kamel::load_from_file(&path).unwrap());
    let engine = Arc::new(ImputeEngine::with_model_path(Arc::clone(&served), path.clone()));
    let server = Server::bind("127.0.0.1:0", engine, config(256)).expect("bind");
    let mut c = Client::connect(server.local_addr(), Duration::from_secs(30)).unwrap();
    let body = serde_json::to_vec(&sparse_request(0)).unwrap();
    let before = c.post_json("/v1/impute", &body).unwrap();
    assert_eq!(before.status, 200);
    // Clobber the checkpoint with garbage (no .bak exists to fall back to:
    // the model was saved to this path exactly once).
    std::fs::write(&path, b"this is not a checkpoint and not json").unwrap();
    let resp = c.post_json("/admin/reload", b"").unwrap();
    assert_eq!(resp.status, 500, "{}", resp.text());
    let metrics = server.metrics();
    assert_eq!(metrics.model_reload_failures.load(Ordering::Relaxed), 1);
    assert_eq!(metrics.model_reloads.load(Ordering::Relaxed), 0);
    // Still serving the old model, byte-identically.
    let after = c.post_json("/v1/impute", &body).unwrap();
    assert_eq!(after.status, 200);
    assert_eq!(after.body, before.body);
    // Repairing the file makes the next reload succeed.
    old.save_to_file(&path).unwrap();
    let repaired = c.post_json("/admin/reload", b"").unwrap();
    assert_eq!(repaired.status, 200, "{}", repaired.text());
    assert_eq!(metrics.model_reloads.load(Ordering::Relaxed), 1);
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// `GET /v1/info` reports the serving identity a router needs for
/// admission: generation, trained vocab, config digest, thread budget,
/// and (when configured) the shard identity.
#[test]
fn info_reports_model_identity_over_http() {
    let kamel = trained();
    let engine = Arc::new(
        ImputeEngine::new(Arc::clone(&kamel)).with_shard_identity(1, 4),
    );
    let server = Server::bind("127.0.0.1:0", engine, config(0)).expect("bind");
    let mut c = Client::connect(server.local_addr(), Duration::from_secs(30)).unwrap();
    let resp = c.get("/v1/info").unwrap();
    assert_eq!(resp.status, 200);
    let info: InfoResponse = serde_json::from_slice(&resp.body).unwrap();
    assert_eq!(info.generation, 0);
    assert!(info.trained, "a trained fleet member advertises it");
    assert!(info.vocab > 0, "trained model has a vocabulary");
    assert_eq!(info.config_digest, config_digest(kamel.config()));
    assert!(info.config_digest.starts_with("fnv1a64:"), "{}", info.config_digest);
    assert!(info.threads > 0);
    assert_eq!(info.shard_id, Some(1));
    assert_eq!(info.shard_of, Some(4));
    // A differently configured system reports a different digest — the
    // property router admission depends on.
    let other = Kamel::new(KamelConfig::default());
    assert_ne!(config_digest(other.config()), info.config_digest);
    server.shutdown();
}

#[test]
fn untrained_system_still_serves_linear_fallback() {
    let kamel = Arc::new(Kamel::new(KamelConfig::default()));
    let engine = Arc::new(ImputeEngine::new(Arc::clone(&kamel)));
    let server = Server::bind("127.0.0.1:0", engine, config(256)).expect("bind");
    let mut c = Client::connect(server.local_addr(), Duration::from_secs(30)).unwrap();
    let body = serde_json::to_vec(&sparse_request(0)).unwrap();
    for _ in 0..2 {
        let resp = c.post_json("/v1/impute", &body).unwrap();
        assert_eq!(resp.status, 200);
        // No tokenizer → no cache key → always a miss, but still correct.
        assert_eq!(resp.header("x-kamel-cache"), Some("miss"));
        let parsed: ImputeResponse = serde_json::from_slice(&resp.body).unwrap();
        assert_eq!(parsed.failed_gaps, parsed.gap_count);
    }
    server.shutdown();
}

//! The experiment harness: sparsify → impute → score, per technique.

use crate::metrics::MetricsAccumulator;
use kamel::{Kamel, KamelConfig};
use kamel_baselines::{ImputationOutput, TrajectoryImputer, TrImpute, TrImputeConfig};
use kamel_geo::{LocalProjection, Trajectory};
use kamel_roadsim::Dataset;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Shared evaluation parameters (§8 defaults).
#[derive(Debug, Clone, Copy)]
pub struct EvalContext {
    /// Discretization spacing (`max_gap`), meters.
    pub max_gap_m: f64,
    /// Accuracy threshold δ, meters.
    pub delta_m: f64,
    /// Imposed sparsification distance, meters.
    pub sparse_m: f64,
}

impl Default for EvalContext {
    fn default() -> Self {
        Self {
            max_gap_m: 100.0,
            delta_m: 50.0,
            sparse_m: 1_000.0,
        }
    }
}

/// One technique's scores on one configuration — a row of a paper figure.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TechniqueResult {
    /// Technique name.
    pub technique: String,
    /// Recall per §8.
    pub recall: f64,
    /// Precision per §8.
    pub precision: f64,
    /// Failure rate (`None` when no gaps needed imputation).
    pub failure_rate: Option<f64>,
    /// Mean deviation of the output from the ground truth, meters.
    pub mean_deviation_m: f64,
    /// Worst single excursion from the ground truth, meters.
    pub worst_deviation_m: f64,
    /// Total imputation wall time in seconds.
    pub impute_time_s: f64,
    /// Trajectories evaluated.
    pub trajectories: usize,
}

/// Adapts [`Kamel`] to the evaluation interface.
pub struct KamelImputer {
    /// The trained system.
    pub kamel: Kamel,
    /// Display name (lets ablation variants label themselves).
    pub label: String,
}

impl TrajectoryImputer for KamelImputer {
    fn name(&self) -> &str {
        &self.label
    }

    fn impute(&self, sparse: &Trajectory) -> ImputationOutput {
        let out = self.kamel.impute(sparse);
        let segments_total = out.gaps.len();
        let segments_failed = out.gaps.iter().filter(|g| g.outcome.failed).count();
        ImputationOutput {
            trajectory: out.trajectory,
            segments_total,
            segments_failed,
        }
    }
}

/// Trains a KAMEL instance on a dataset's training split, returning the
/// system and the wall training time in seconds.
pub fn train_kamel(dataset: &Dataset, config: KamelConfig) -> (KamelImputer, f64) {
    let kamel = Kamel::new(config);
    let start = Instant::now();
    kamel.train(&dataset.train);
    let secs = start.elapsed().as_secs_f64();
    (
        KamelImputer {
            kamel,
            label: "KAMEL".to_string(),
        },
        secs,
    )
}

/// Trains the TrImpute comparator, returning it and its training time.
pub fn train_trimpute(dataset: &Dataset, config: TrImputeConfig) -> (TrImpute, f64) {
    let start = Instant::now();
    let tr = TrImpute::train(config, &dataset.train);
    (tr, start.elapsed().as_secs_f64())
}

/// Evaluates one technique over a dataset's test split: each ground-truth
/// trajectory is sparsified at `ctx.sparse_m`, imputed, and scored with the
/// §8 metrics. Set `limit` to bound the number of test trajectories (0 = no
/// limit).
pub fn evaluate_technique(
    imputer: &dyn TrajectoryImputer,
    dataset: &Dataset,
    ctx: &EvalContext,
    limit: usize,
) -> TechniqueResult {
    let proj = dataset.projection();
    let tests: Vec<&Trajectory> = dataset
        .test
        .iter()
        .filter(|t| t.len() >= 3)
        .take(if limit == 0 { usize::MAX } else { limit })
        .collect();
    let threads = std::thread::available_parallelism()
        .map(|n| n.get().min(8))
        .unwrap_or(1)
        .min(tests.len().max(1));
    let chunk = tests.len().div_ceil(threads.max(1)).max(1);
    let start = Instant::now();
    let mut acc = MetricsAccumulator::default();
    crossbeam::scope(|scope| {
        let mut handles = Vec::new();
        for shard in tests.chunks(chunk) {
            let proj: LocalProjection = proj;
            handles.push(scope.spawn(move |_| {
                let mut local = MetricsAccumulator::default();
                for gt in shard {
                    let sparse = gt.sparsify(ctx.sparse_m);
                    let out = imputer.impute(&sparse);
                    local.add_pair(gt, &out.trajectory, &proj, ctx.max_gap_m, ctx.delta_m);
                    local.add_failures(out.segments_total, out.segments_failed);
                }
                local
            }));
        }
        for h in handles {
            acc.merge(&h.join().expect("evaluation shard panicked"));
        }
    })
    .expect("evaluation scope panicked");
    TechniqueResult {
        technique: imputer.name().to_string(),
        recall: acc.recall(),
        precision: acc.precision(),
        failure_rate: acc.failure_rate(),
        mean_deviation_m: acc.mean_deviation_m(),
        worst_deviation_m: acc.worst_deviation_m,
        impute_time_s: start.elapsed().as_secs_f64(),
        trajectories: tests.len(),
    }
}

/// Dataset-level f32-vs-int8 accuracy comparison of one trained system —
/// the §8-metric counterpart of the serving gate's top-1 agreement check.
/// Deltas are int8 minus f32, so a negative delta means quantization lost
/// accuracy.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QuantizationDelta {
    /// Recall on the f32 path.
    pub f32_recall: f64,
    /// Recall on the int8 path.
    pub int8_recall: f64,
    /// Precision on the f32 path.
    pub f32_precision: f64,
    /// Precision on the int8 path.
    pub int8_precision: f64,
    /// `int8_recall - f32_recall`.
    pub recall_delta: f64,
    /// `int8_precision - f32_precision`.
    pub precision_delta: f64,
}

impl QuantizationDelta {
    /// Whether the int8 path lost no more than `bound` of either recall or
    /// precision (gains always pass).
    pub fn within(&self, bound: f64) -> bool {
        self.recall_delta >= -bound && self.precision_delta >= -bound
    }
}

/// Evaluates one trained KAMEL system on both serving paths and reports
/// the accuracy delta: the f32 pass runs with quantization off, then the
/// int8 pass runs behind the usual top-1 agreement gate — a gate refusal
/// propagates as [`kamel::KamelError::QuantizationRejected`] and the
/// system is left un-quantized. On success the system's original path
/// (f32 or int8) is restored.
pub fn quantization_delta(
    imputer: &KamelImputer,
    dataset: &Dataset,
    ctx: &EvalContext,
    limit: usize,
) -> Result<QuantizationDelta, kamel::KamelError> {
    let was_quantized = imputer.kamel.is_quantized();
    imputer.kamel.disable_quantization();
    let f32_result = evaluate_technique(imputer, dataset, ctx, limit);
    imputer.kamel.enable_quantization()?;
    let int8_result = evaluate_technique(imputer, dataset, ctx, limit);
    if !was_quantized {
        imputer.kamel.disable_quantization();
    }
    Ok(QuantizationDelta {
        f32_recall: f32_result.recall,
        int8_recall: int8_result.recall,
        f32_precision: f32_result.precision,
        int8_precision: int8_result.precision,
        recall_delta: int8_result.recall - f32_result.recall,
        precision_delta: int8_result.precision - f32_result.precision,
    })
}

/// Formats results as a fixed-width table (one line per technique).
pub fn format_table(title: &str, results: &[TechniqueResult]) -> String {
    let mut out = format!("== {title}\n");
    out.push_str(&format!(
        "{:<12} {:>8} {:>10} {:>9} {:>10} {:>7}\n",
        "technique", "recall", "precision", "failure", "time(s)", "trajs"
    ));
    for r in results {
        out.push_str(&format!(
            "{:<12} {:>8.3} {:>10.3} {:>9} {:>10.2} {:>7}\n",
            r.technique,
            r.recall,
            r.precision,
            r.failure_rate
                .map_or("-".to_string(), |f| format!("{f:.3}")),
            r.impute_time_s,
            r.trajectories
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use kamel_baselines::LinearImputer;
    use kamel_roadsim::DatasetScale;

    fn tiny_dataset() -> Dataset {
        Dataset::porto_like(DatasetScale::Small)
    }

    #[test]
    fn linear_baseline_scores_and_fails_everything() {
        let dataset = tiny_dataset();
        let ctx = EvalContext::default();
        let result = evaluate_technique(&LinearImputer::default(), &dataset, &ctx, 10);
        assert_eq!(result.technique, "Linear");
        assert_eq!(result.failure_rate, Some(1.0));
        assert!(result.recall > 0.0 && result.recall < 1.0, "recall {}", result.recall);
        assert!(result.precision > 0.0);
        assert_eq!(result.trajectories, 10);
    }

    #[test]
    fn trained_kamel_beats_linear_on_the_small_city() {
        let dataset = tiny_dataset();
        let ctx = EvalContext {
            sparse_m: 1_000.0,
            ..EvalContext::default()
        };
        let config = KamelConfig::builder()
            .model_threshold_k(150)
            .pyramid_height(3)
            .build();
        let (kamel, train_s) = train_kamel(&dataset, config);
        assert!(train_s > 0.0);
        let k = evaluate_technique(&kamel, &dataset, &ctx, 12);
        let l = evaluate_technique(&LinearImputer::default(), &dataset, &ctx, 12);
        assert!(
            k.recall > l.recall,
            "KAMEL recall {} <= linear {}",
            k.recall,
            l.recall
        );
        assert!(k.failure_rate.unwrap_or(1.0) < 1.0, "KAMEL always failed");
    }

    #[test]
    fn kamel_imputer_maps_gap_accounting() {
        use kamel_baselines::TrajectoryImputer;
        let dataset = tiny_dataset();
        let config = KamelConfig::builder()
            .model_threshold_k(150)
            .pyramid_height(3)
            .build();
        let (imputer, _) = train_kamel(&dataset, config);
        let sparse = dataset.test[0].sparsify(1_000.0);
        let direct = imputer.kamel.impute(&sparse);
        let adapted = imputer.impute(&sparse);
        assert_eq!(adapted.trajectory, direct.trajectory);
        assert_eq!(adapted.segments_total, direct.gaps.len());
        assert_eq!(
            adapted.segments_failed,
            direct.gaps.iter().filter(|g| g.outcome.failed).count()
        );
        assert_eq!(imputer.name(), "KAMEL");
    }

    #[test]
    fn quantization_delta_is_zero_for_ngram_engines() {
        // N-gram models have no weights to quantize, so both passes run
        // the identical model — the delta is exactly zero and the gate
        // trivially passes. This pins the plumbing (path switching, state
        // restoration) without the cost of BERT training.
        let dataset = tiny_dataset();
        let config = KamelConfig::builder()
            .model_threshold_k(150)
            .pyramid_height(3)
            .build();
        let (imputer, _) = train_kamel(&dataset, config);
        let ctx = EvalContext::default();
        let delta = quantization_delta(&imputer, &dataset, &ctx, 6).expect("gate passes");
        assert_eq!(delta.recall_delta, 0.0, "{delta:?}");
        assert_eq!(delta.precision_delta, 0.0, "{delta:?}");
        assert!(delta.within(0.0));
        assert!(!imputer.kamel.is_quantized(), "original f32 path restored");
    }

    #[test]
    fn quantization_delta_gates_bert_models() {
        use kamel_lm::{BertEngineConfig, EngineConfig};
        let dataset = tiny_dataset();
        let config = KamelConfig::builder()
            .model_threshold_k(150)
            .pyramid_height(3)
            .disable_partitioning(true)
            .engine(EngineConfig::Bert(BertEngineConfig::for_tests()))
            // Tiny test models under-train; keep the serving gate
            // permissive so this test exercises the measurement itself.
            .quantize_min_agreement(0.0)
            .build();
        let (imputer, _) = train_kamel(&dataset, config);
        let ctx = EvalContext::default();
        let delta = quantization_delta(&imputer, &dataset, &ctx, 3).expect("gate passes");
        for v in [
            delta.f32_recall,
            delta.int8_recall,
            delta.f32_precision,
            delta.int8_precision,
        ] {
            assert!((0.0..=1.0).contains(&v), "metric out of range: {delta:?}");
        }
        // A delta can never fail an infinite bound, and `within` is
        // monotone in the bound.
        assert!(delta.within(f64::INFINITY));
        assert!(!imputer.kamel.is_quantized(), "original f32 path restored");
    }

    #[test]
    fn table_formatting_is_stable() {
        let rows = vec![TechniqueResult {
            technique: "KAMEL".into(),
            recall: 0.891,
            precision: 0.87,
            failure_rate: Some(0.01),
            mean_deviation_m: 18.0,
            worst_deviation_m: 120.0,
            impute_time_s: 1.5,
            trajectories: 20,
        }];
        let s = format_table("demo", &rows);
        assert!(s.contains("KAMEL"));
        assert!(s.contains("0.891"));
        assert!(s.contains("0.010"));
    }
}

//! Comparator techniques for the KAMEL evaluation (§8 "Baselines").
//!
//! * [`LinearImputer`] — straight-line interpolation, the paper's baseline
//!   (100% failure rate by definition).
//! * [`TrImpute`] — a reimplementation of the state-of-the-art no-map
//!   comparator: crowd-wisdom guided walking over historical GPS point
//!   density (see DESIGN.md §2, substitution 4).
//! * [`MapMatcher`] — HMM map matching over the *true* road network; the
//!   paper reports it as a reference upper bound, not a competitor, since
//!   it sees the map KAMEL must live without.
//!
//! All techniques implement [`TrajectoryImputer`], the uniform interface
//! the evaluation harness sweeps over.

#![warn(missing_docs)]

pub mod linear;
pub mod mapmatch;
pub mod trimpute;

pub use linear::LinearImputer;
pub use mapmatch::MapMatcher;
pub use trimpute::{TrImpute, TrImputeConfig};

use kamel_geo::Trajectory;

/// The output of any imputation technique, carrying the failure accounting
/// the §8 metrics need.
#[derive(Debug, Clone, PartialEq)]
pub struct ImputationOutput {
    /// The dense output trajectory.
    pub trajectory: Trajectory,
    /// Gaps that required imputation.
    pub segments_total: usize,
    /// Gaps that fell back to a straight line.
    pub segments_failed: usize,
}

impl ImputationOutput {
    /// Failure rate in `[0, 1]`; `None` when the input had no gaps.
    pub fn failure_rate(&self) -> Option<f64> {
        if self.segments_total == 0 {
            None
        } else {
            Some(self.segments_failed as f64 / self.segments_total as f64)
        }
    }
}

/// A trajectory imputation technique under evaluation.
pub trait TrajectoryImputer: Send + Sync {
    /// Technique name as printed in figures ("KAMEL", "TrImpute", …).
    fn name(&self) -> &str;

    /// Imputes one sparse trajectory.
    fn impute(&self, sparse: &Trajectory) -> ImputationOutput;
}

//! # KAMEL — a scalable BERT-based trajectory imputation system
//!
//! Pure-Rust reproduction of *KAMEL* (Musleh & Mokbel, PVLDB 17(3), 2023;
//! demonstrated at SIGMOD 2023). KAMEL inserts realistic points into sparse
//! GPS trajectories **without any road network knowledge** by mapping
//! trajectory imputation to NLP's missing-word problem: trajectories are
//! sentences, hexagonal grid cells are words, and a masked-language model
//! trained on trajectories predicts the cells missing from a gap.
//!
//! The system is the paper's five-module architecture (Figure 1):
//!
//! | Module | Paper § | Here |
//! |---|---|---|
//! | Tokenization (hex grid + cell-size auto-tuning) | §3 | [`tokenize`] |
//! | Partitioning (pyramid model repository)         | §4 | [`partition`] |
//! | Spatial Constraints (speed / direction / cycles)| §5 | [`constraints`] |
//! | Multipoint Imputation (iterative + beam search) | §6 | [`impute`] |
//! | Detokenization (DBSCAN direction clusters)      | §7 | [`detokenize`] |
//!
//! [`pipeline::Kamel`] wires them together behind the two entry points the
//! paper's architecture diagram shows: feeding training trajectories, and
//! imputing sparse trajectories (bulk or streaming).
//!
//! ## Quick example
//!
//! ```
//! use kamel::{Kamel, KamelConfig};
//! use kamel_geo::{GpsPoint, Trajectory};
//!
//! // A toy corpus: vehicles repeatedly drive the same straight street.
//! let street: Vec<Trajectory> = (0..30)
//!     .map(|_| Trajectory::new(
//!         (0..20)
//!             .map(|i| GpsPoint::from_parts(41.15, -8.61 + i as f64 * 0.001, i as f64 * 10.0))
//!             .collect(),
//!     ))
//!     .collect();
//!
//! let mut kamel = Kamel::new(KamelConfig::builder().cell_edge_m(75.0).build());
//! kamel.train(&street);
//!
//! // A sparse trajectory with a large gap in the middle of that street.
//! let sparse = Trajectory::new(vec![
//!     GpsPoint::from_parts(41.15, -8.61, 0.0),
//!     GpsPoint::from_parts(41.15, -8.591, 190.0),
//! ]);
//! let result = kamel.impute(&sparse);
//! assert!(result.trajectory.len() >= sparse.len());
//! ```

#![warn(missing_docs)]

pub mod checkpoint;
pub mod cluster;
pub mod config;
pub mod constraints;
pub mod detokenize;
pub mod error;
pub mod impute;
pub mod partition;
pub mod pipeline;
pub mod routing;
pub mod source;
pub mod tokenize;

pub use config::{GridKind, KamelConfig, KamelConfigBuilder, MultipointStrategy, SpeedMode};
pub use error::KamelError;
pub use impute::SegmentOutcome;
pub use kamel_nn::{active_isa, available_threads, set_thread_budget, thread_budget};
pub use pipeline::{replay_recall, ExportedModel, ImputedTrajectory, Kamel, KamelStats};
pub use source::{ModelHandle, ModelSource, ResidencyStats};
pub use tokenize::Tokenizer;

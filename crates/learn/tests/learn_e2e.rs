//! End-to-end continual learning: serving engine + capture sink +
//! background learner + hot-reload rollout, exercised under concurrent
//! load.
//!
//! These tests drive the [`ImputeEngine`] at the [`WireService`] level
//! with in-memory trajectories and an in-memory model slot standing in
//! for the checkpoint file (the full HTTP + checkpoint path is covered
//! by the CI `learn-smoke` job, which runs `kamel serve --learn` for
//! real). The properties verified here are the subsystem's load-bearing
//! claims:
//!
//! * **zero downtime** — while the trainer retrains and rolls a new
//!   generation, every concurrent response equals either the old
//!   generation's answer or the new generation's answer, never an error
//!   and never a mix;
//! * **rollback** — a failing regression gate leaves the old generation
//!   serving, untouched;
//! * **backpressure** — the serving path never blocks on capture, even
//!   with nothing draining the queue;
//! * **durability under concurrency** — records pushed from many
//!   producer threads survive segment rotation and a learner restart.

use kamel::{Kamel, KamelConfig};
use kamel_geo::{GpsPoint, Trajectory};
use kamel_learn::{
    CaptureConfig, CaptureLog, CaptureSink, Learner, LearnerConfig, ModelOps, TrainerConfig,
};
use kamel_server::{ImputeEngine, LearnSink, WireService};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// An L-shaped street (east, then a 90° turn north), fixes every
/// ~84–111 m; the turn keeps straight-line fallback from being perfect.
fn street(base_lat: f64) -> Trajectory {
    Trajectory::new(
        (0..30)
            .map(|i| {
                let (lat, lng) = if i < 15 {
                    (base_lat, -8.61 + i as f64 * 0.001)
                } else {
                    (base_lat + (i - 14) as f64 * 0.001, -8.61 + 14.0 * 0.001)
                };
                GpsPoint::from_parts(lat, lng, i as f64 * 10.0)
            })
            .collect(),
    )
}

fn trained_model() -> Kamel {
    let kamel = Kamel::new(
        KamelConfig::builder()
            .model_threshold_k(50)
            .pyramid_height(3)
            .build(),
    );
    kamel.train(&(0..30).map(|_| street(41.15)).collect::<Vec<_>>());
    kamel
}

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "kamel_learn_e2e_{tag}_{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create tempdir");
    dir
}

/// The in-memory stand-in for `model.ckpt` + `/admin/reload`: the slot
/// holds the "persisted" model; rollout hot-reloads the engine, whose
/// loader deep-clones the slot.
struct Rig {
    engine: Arc<ImputeEngine>,
    sink: Arc<CaptureSink>,
    learner: Learner,
    slot: Arc<Mutex<Arc<Kamel>>>,
}

fn rig(tag: &str, trainer: TrainerConfig) -> Rig {
    let initial = Arc::new(trained_model());
    let slot = Arc::new(Mutex::new(Arc::clone(&initial)));
    let (sink, rx) = CaptureSink::channel(4096);
    let loader_slot = Arc::clone(&slot);
    let engine = Arc::new(
        ImputeEngine::with_loader(
            initial,
            "slot".into(),
            Box::new(move || Ok(loader_slot.lock().unwrap().deep_clone())),
        )
        .with_learn_sink(Arc::clone(&sink) as Arc<dyn LearnSink>),
    );
    let load_slot = Arc::clone(&slot);
    let save_slot = Arc::clone(&slot);
    let rollout_engine = Arc::clone(&engine);
    let ops = ModelOps {
        load: Box::new(move || Ok(load_slot.lock().unwrap().deep_clone())),
        save: Box::new(move |k| {
            *save_slot.lock().unwrap() = Arc::new(k.deep_clone());
            Ok(())
        }),
        rollout: Box::new(move || {
            rollout_engine.reload()?;
            Ok(rollout_engine.generation())
        }),
    };
    let learner = Learner::spawn(
        LearnerConfig {
            capture: CaptureConfig::new(tempdir(tag)),
            trainer,
        },
        rx,
        sink.stats(),
        ops,
    )
    .expect("spawn learner");
    Rig {
        engine,
        sink,
        learner,
        slot,
    }
}

fn wait_until(deadline: Duration, mut done: impl FnMut() -> bool) -> bool {
    let start = Instant::now();
    while start.elapsed() < deadline {
        if done() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    done()
}

#[test]
fn zero_downtime_rollout_under_concurrent_load() {
    // min_confidence 2.0: pseudo-labels can never qualify, so exactly
    // one feedback burst means at most one retrain — the generation
    // count below is deterministic.
    let r = rig(
        "zero_downtime",
        TrainerConfig {
            interval: Duration::from_millis(0),
            batch_min: 8,
            min_confidence: 2.0,
            ..TrainerConfig::default()
        },
    );
    let truth = street(41.153);
    let sparse = truth.sparsify(1000.0);
    let old_expected = r.engine.kamel().impute(&sparse);

    // Continuous concurrent load on the serving path.
    let stop = Arc::new(AtomicBool::new(false));
    let workers: Vec<_> = (0..3)
        .map(|_| {
            let engine = Arc::clone(&r.engine);
            let stop = Arc::clone(&stop);
            let job = sparse.clone();
            std::thread::spawn(move || {
                let mut answers = Vec::new();
                while !stop.load(Ordering::Relaxed) {
                    let mut out = engine.run_batch(vec![job.clone()]);
                    assert_eq!(out.len(), 1, "a request must always get an answer");
                    answers.push(out.pop().unwrap());
                }
                answers
            })
        })
        .collect();

    // Ground-truth corrections for a street the model serves poorly.
    for _ in 0..10 {
        r.sink.on_feedback(&sparse, &truth);
    }
    assert!(
        wait_until(Duration::from_secs(60), || {
            r.sink.learning().retrains_total >= 1
        }),
        "trainer never rolled out: {:?}",
        r.sink.learning()
    );
    // Let the workers observe the new generation before stopping them.
    std::thread::sleep(Duration::from_millis(300));
    stop.store(true, Ordering::Relaxed);
    let answers: Vec<_> = workers
        .into_iter()
        .flat_map(|w| w.join().expect("worker must not panic"))
        .collect();
    r.learner.stop();

    assert_eq!(r.engine.generation(), 1, "exactly one rollout");
    let info = r.sink.learning();
    assert_eq!(info.retrains_total, 1);
    assert_eq!(info.rollbacks_total, 0);
    assert_eq!(info.last_generation, 1);
    assert!(info.cells_retrained_total >= 1);

    // Zero downtime: every answer is byte-identical to one generation's
    // answer — no errors, no mixed-generation output.
    let new_expected = r.engine.kamel().impute(&sparse);
    assert_ne!(
        old_expected, new_expected,
        "the retrain must have changed this street's answer"
    );
    let (mut old_seen, mut new_seen) = (0usize, 0usize);
    for a in &answers {
        if *a == old_expected {
            old_seen += 1;
        } else if *a == new_expected {
            new_seen += 1;
        } else {
            panic!("answer matches neither generation: {} points", a.trajectory.len());
        }
    }
    assert!(old_seen > 0, "load must have overlapped the old generation");
    assert!(new_seen > 0, "load must have overlapped the new generation");

    // The retrained generation actually learned the fed-back street.
    assert!(
        kamel::replay_recall(&truth, &new_expected.trajectory, 50.0)
            > kamel::replay_recall(&truth, &old_expected.trajectory, 50.0),
        "rolled-out generation must serve the corrected street better"
    );
}

#[test]
fn failing_gate_rolls_back_and_keeps_serving_old_generation() {
    // A gate no retrain can pass: demand the new model beat the old by
    // more than the metric's full range.
    let r = rig(
        "rollback",
        TrainerConfig {
            interval: Duration::from_millis(0),
            batch_min: 8,
            min_confidence: 2.0,
            gate_epsilon: -2.0,
            ..TrainerConfig::default()
        },
    );
    let truth = street(41.153);
    let sparse = truth.sparsify(1000.0);
    let before = r.engine.kamel();
    let old_expected = before.impute(&sparse);

    for _ in 0..10 {
        r.sink.on_feedback(&sparse, &truth);
    }
    assert!(
        wait_until(Duration::from_secs(60), || {
            r.sink.learning().rollbacks_total >= 1
        }),
        "gate never rejected: {:?}",
        r.sink.learning()
    );
    r.learner.stop();

    let info = r.sink.learning();
    assert_eq!(info.rollbacks_total, 1);
    assert_eq!(info.retrains_total, 0);
    assert_eq!(info.last_generation, 0);
    assert_eq!(r.engine.generation(), 0, "no rollout happened");
    assert!(
        Arc::ptr_eq(&before, &r.engine.kamel()),
        "the serving model instance must be untouched"
    );
    assert!(
        Arc::ptr_eq(&before, &r.slot.lock().unwrap()),
        "nothing may be saved on a rolled-back pass"
    );
    assert_eq!(r.engine.run_batch(vec![sparse]), vec![old_expected]);
}

#[test]
fn capture_backpressure_never_blocks_the_serving_path() {
    // A tiny queue and NO learner draining it: the pathological worst
    // case. Serving must stay full speed; excess records are dropped.
    let initial = Arc::new(trained_model());
    let (sink, _rx) = CaptureSink::channel(4);
    let engine = ImputeEngine::new(Arc::clone(&initial))
        .with_learn_sink(Arc::clone(&sink) as Arc<dyn LearnSink>);
    let sparse = street(41.15).sparsify(1000.0);

    // Baseline: the same work without any sink attached.
    let bare = ImputeEngine::new(initial);
    let start = Instant::now();
    for _ in 0..40 {
        bare.run_batch(vec![sparse.clone()]);
    }
    let bare_elapsed = start.elapsed();

    let start = Instant::now();
    for _ in 0..40 {
        let out = engine.run_batch(vec![sparse.clone()]);
        assert_eq!(out.len(), 1);
    }
    let sink_elapsed = start.elapsed();

    let info = sink.learning();
    assert_eq!(info.captured_total, 4, "queue admits exactly its capacity");
    assert_eq!(info.dropped_total, 36, "the rest must be dropped, not waited on");
    // Generous bound: capture adds encode + one failed try_send. If it
    // ever blocked on the full queue this would hang forever, so the
    // real assertion is that we got here; the timing check just catches
    // gross regressions (lock contention, retries).
    assert!(
        sink_elapsed < bare_elapsed * 3 + Duration::from_millis(500),
        "capture slowed serving: {bare_elapsed:?} -> {sink_elapsed:?}"
    );
}

#[test]
fn concurrent_producers_survive_rotation_and_restart() {
    let dir = tempdir("rotate");
    let (sink, rx) = CaptureSink::channel(4096);
    // Tiny segments force rotation every handful of records; huge
    // batch_min keeps the trainer out of the way.
    let ops = ModelOps {
        load: Box::new(|| Err("trainer must not run".into())),
        save: Box::new(|_| Err("trainer must not run".into())),
        rollout: Box::new(|| Err("trainer must not run".into())),
    };
    let learner = Learner::spawn(
        LearnerConfig {
            capture: CaptureConfig {
                segment_bytes: 4096,
                ..CaptureConfig::new(&dir)
            },
            trainer: TrainerConfig {
                batch_min: usize::MAX,
                ..TrainerConfig::default()
            },
        },
        rx,
        sink.stats(),
        ops,
    )
    .expect("spawn learner");

    let producers: Vec<_> = (0..4)
        .map(|p| {
            let sink = Arc::clone(&sink);
            std::thread::spawn(move || {
                let truth = street(41.15 + p as f64 * 0.001);
                let sparse = truth.sparsify(1000.0);
                for _ in 0..100 {
                    sink.on_feedback(&sparse, &truth);
                }
            })
        })
        .collect();
    for p in producers {
        p.join().expect("producer must not panic");
    }
    let info = sink.learning();
    assert_eq!(info.captured_total, 400, "queue was big enough for all");
    assert_eq!(info.dropped_total, 0);
    // Stop drains the channel into the log and seals the active file.
    learner.stop();

    // Rotation really happened: multiple sealed segments on disk.
    let segments = std::fs::read_dir(&dir)
        .expect("read capture dir")
        .filter_map(|e| e.ok())
        .filter(|e| e.path().extension().is_some_and(|x| x == "seg"))
        .count();
    assert!(segments >= 2, "expected rotation, found {segments} segments");

    // A restarted learner (fresh process, same dir) sees every record.
    let mut log = CaptureLog::open(CaptureConfig::new(&dir)).expect("reopen");
    assert_eq!(log.records(), 400, "no record may be lost across restart");
    let drained = log.drain().expect("drain");
    assert_eq!(drained.len(), 400);
    assert!(drained.iter().all(|r| r.answer.len() == 30));
}

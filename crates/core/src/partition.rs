//! Partitioning — the pyramid model repository (§4).
//!
//! KAMEL keeps one language model per spatial region instead of one global
//! model, like BERT keeps one model per language. Regions form a pyramid of
//! `H` levels: level 0 is one root cell over the whole space, level `l`
//! splits it into `4^l` equal cells. Only the lowest `L` levels are
//! maintained (§4.1): larger cells would need more data than is ever
//! available. A cell at level `l` earns a **single-cell model** once it
//! holds `k × 4^(leaf − l)` tokens; an edge-adjacent pair earns a
//! **neighbor-cell model** at twice that threshold, stored in the north/west
//! cell of the pair with the other cell holding a pointer (here: looked up
//! from either side).
//!
//! Retrieval walks from the leaf level upward and returns the smallest cell
//! or pair that fully encloses a query rectangle and has a model (§4.1).
//! Maintenance (§4.2) re-trains every maintained cell that intersects a new
//! training batch from the trajectory store — functionally the paper's
//! four-step incremental procedure, run as one batch pass. Cells are
//! independent training jobs, so maintenance fans them out over a worker
//! pool (see [`Repository::maintain_with_threads`]); results are applied in
//! sorted key order, keeping repository state identical for every thread
//! count.

use crate::config::KamelConfig;
use kamel_geo::{BBox, Xy};
use kamel_lm::{EngineConfig, TrainedModel};
use kamel_trajstore::TrajStore;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Address of one pyramid cell: level plus grid coordinates within it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PyramidKey {
    /// Pyramid level; 0 is the root.
    pub level: u8,
    /// Column within the level (0..2^level).
    pub x: u32,
    /// Row within the level (0..2^level).
    pub y: u32,
}

/// Bookkeeping stored with every trained model (§4.1 "metadata, which
/// include model statistics and last update date").
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModelMeta {
    /// Tokens in the training corpus when the model was (re)built.
    pub trained_tokens: u64,
    /// Trajectories in the corpus.
    pub corpus_trajectories: usize,
    /// How many times this model has been rebuilt.
    pub updates: u32,
}

/// A trained model plus its metadata.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModelEntry {
    /// The language model.
    pub model: TrainedModel,
    /// Statistics about its training corpus.
    pub meta: ModelMeta,
}

/// Contents of one materialized pyramid cell.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
struct PyramidCell {
    /// Model over this cell alone.
    single: Option<ModelEntry>,
    /// Neighbor-cell model over this cell ∪ its east neighbor (this cell is
    /// the west member, so the model is stored here per §4.1).
    pair_east: Option<ModelEntry>,
    /// Neighbor-cell model over this cell ∪ its south neighbor (this cell
    /// is the north member).
    pair_south: Option<ModelEntry>,
}

/// Which repository model a retrieval returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelSelection {
    /// Single-cell model at the key.
    Single(PyramidKey),
    /// Neighbor-cell model stored at the key (west/north member), spanning
    /// the key's cell and its east (`true`) or south (`false`) neighbor.
    Pair(PyramidKey, bool),
    /// The global model (partitioning disabled, §8.7 "No Part.").
    Global,
}

/// Human-readable description of one stored model, for inspection tools.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelSummary {
    /// "global", "single", or "pair".
    pub kind: String,
    /// Pyramid level (`None` for the global model).
    pub level: Option<u8>,
    /// Cell coordinates at that level (`None` for the global model).
    pub cell: Option<(u32, u32)>,
    /// Distinct tokens in the model's vocabulary.
    pub vocab: usize,
    /// Tokens in the training corpus at the last (re)build.
    pub trained_tokens: u64,
    /// Training sentences (trajectory runs).
    pub corpus_trajectories: usize,
    /// Rebuild count.
    pub updates: u32,
}

/// The model repository.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Repository {
    root: BBox,
    height: usize,
    maintained: usize,
    k: u64,
    #[serde(with = "cells_serde")]
    cells: HashMap<PyramidKey, PyramidCell>,
    global: Option<ModelEntry>,
}

impl Repository {
    /// Creates an empty repository over `root` with the configured pyramid
    /// shape.
    pub fn new(root: BBox, config: &KamelConfig) -> Self {
        Self {
            root,
            height: config.pyramid_height,
            maintained: config.pyramid_maintained,
            k: config.model_threshold_k,
            cells: HashMap::new(),
            global: None,
        }
    }

    /// The space the pyramid covers.
    pub fn root_bbox(&self) -> BBox {
        self.root
    }

    /// Deepest (leaf) level index.
    pub fn leaf_level(&self) -> u8 {
        (self.height - 1) as u8
    }

    /// The maintained levels, deepest first (§4.1: only the lowest `L`
    /// levels hold models).
    pub fn maintained_levels(&self) -> impl Iterator<Item = u8> {
        let leaf = self.leaf_level();
        let top = (self.height - self.maintained) as u8;
        (top..=leaf).rev()
    }

    /// Token threshold for a single-cell model at `level`:
    /// `k × 4^(leaf − level)` (§4.1).
    pub fn threshold(&self, level: u8) -> u64 {
        self.k * 4u64.pow((self.leaf_level() - level) as u32)
    }

    /// Planar rectangle of a pyramid cell.
    pub fn cell_bbox(&self, key: PyramidKey) -> BBox {
        let n = 1u32 << key.level;
        let w = self.root.width() / n as f64;
        let h = self.root.height() / n as f64;
        let min = Xy::new(
            self.root.min.x + key.x as f64 * w,
            self.root.min.y + key.y as f64 * h,
        );
        BBox::new(min, Xy::new(min.x + w, min.y + h))
    }

    /// The cell containing a point at `level`, or `None` when outside the
    /// root.
    pub fn key_of(&self, level: u8, p: Xy) -> Option<PyramidKey> {
        if !self.root.contains(p) {
            return None;
        }
        let n = 1u32 << level;
        let fx = (p.x - self.root.min.x) / self.root.width().max(f64::MIN_POSITIVE);
        let fy = (p.y - self.root.min.y) / self.root.height().max(f64::MIN_POSITIVE);
        let x = ((fx * n as f64) as u32).min(n - 1);
        let y = ((fy * n as f64) as u32).min(n - 1);
        Some(PyramidKey { level, x, y })
    }

    /// Number of models currently stored (single + pair + global).
    pub fn model_count(&self) -> usize {
        let mut n = usize::from(self.global.is_some());
        for cell in self.cells.values() {
            n += usize::from(cell.single.is_some());
            n += usize::from(cell.pair_east.is_some());
            n += usize::from(cell.pair_south.is_some());
        }
        n
    }

    /// Iterates over `(key, is_pair)` entries of all stored models.
    pub fn model_keys(&self) -> Vec<ModelSelection> {
        let mut out = Vec::new();
        if self.global.is_some() {
            out.push(ModelSelection::Global);
        }
        let mut keys: Vec<&PyramidKey> = self.cells.keys().collect();
        keys.sort();
        for key in keys {
            let cell = &self.cells[key];
            if cell.single.is_some() {
                out.push(ModelSelection::Single(*key));
            }
            if cell.pair_east.is_some() {
                out.push(ModelSelection::Pair(*key, true));
            }
            if cell.pair_south.is_some() {
                out.push(ModelSelection::Pair(*key, false));
            }
        }
        out
    }

    /// Summaries of every stored model, deepest level first — what the
    /// `kamel stats` CLI and operational dashboards display.
    pub fn summaries(&self) -> Vec<ModelSummary> {
        use kamel_lm::MaskedTokenModel;
        let mut out = Vec::new();
        for sel in self.model_keys() {
            let Some(entry) = self.entry(sel) else { continue };
            let (kind, level, cell) = match sel {
                ModelSelection::Global => ("global".to_string(), None, None),
                ModelSelection::Single(k) => ("single".to_string(), Some(k.level), Some((k.x, k.y))),
                ModelSelection::Pair(k, east) => (
                    format!("pair-{}", if east { "east" } else { "south" }),
                    Some(k.level),
                    Some((k.x, k.y)),
                ),
            };
            out.push(ModelSummary {
                kind,
                level,
                cell,
                vocab: entry.model.vocab_len(),
                trained_tokens: entry.meta.trained_tokens,
                corpus_trajectories: entry.meta.corpus_trajectories,
                updates: entry.meta.updates,
            });
        }
        out.sort_by(|a, b| b.level.cmp(&a.level).then(a.cell.cmp(&b.cell)));
        out
    }

    /// Resolves a selection to its model entry.
    pub fn entry(&self, sel: ModelSelection) -> Option<&ModelEntry> {
        match sel {
            ModelSelection::Global => self.global.as_ref(),
            ModelSelection::Single(key) => self.cells.get(&key)?.single.as_ref(),
            ModelSelection::Pair(key, east) => {
                let cell = self.cells.get(&key)?;
                if east {
                    cell.pair_east.as_ref()
                } else {
                    cell.pair_south.as_ref()
                }
            }
        }
    }

    /// §4.1 retrieval: the smallest cell or neighbor-cell pair that fully
    /// encloses `query` and has a model. Falls back to the global model when
    /// partitioning is disabled.
    pub fn find_model(&self, query: &BBox) -> Option<(ModelSelection, &TrainedModel)> {
        let sel = self.find_selection(query, |s| self.entry(s).is_some())?;
        Some((sel, &self.entry(sel)?.model))
    }

    /// The §4.1 retrieval walk with membership abstracted out: returns the
    /// smallest enclosing selection for which `has` reports a model. Only
    /// the pyramid *shape* (root, levels) is consulted — an external model
    /// source (the mmap store) runs this on a [`Repository::skeleton`]
    /// against its own record membership, so both sources pick the same
    /// model for every query by construction.
    pub fn find_selection(
        &self,
        query: &BBox,
        has: impl Fn(ModelSelection) -> bool,
    ) -> Option<ModelSelection> {
        if has(ModelSelection::Global) {
            return Some(ModelSelection::Global);
        }
        for level in self.maintained_levels() {
            let kmin = self.key_of(level, query.min);
            let kmax = self.key_of(level, query.max);
            let (Some(kmin), Some(kmax)) = (kmin, kmax) else {
                continue;
            };
            if kmin == kmax {
                let sel = ModelSelection::Single(kmin);
                if has(sel) {
                    return Some(sel);
                }
                continue;
            }
            let dx = kmax.x as i64 - kmin.x as i64;
            let dy = kmax.y as i64 - kmin.y as i64;
            // East pair: stored at the west cell (kmin when dx == 1).
            if dx == 1 && dy == 0 {
                let sel = ModelSelection::Pair(kmin, true);
                if has(sel) {
                    return Some(sel);
                }
            }
            // South pair: stored at the north cell. With y growing north,
            // the north member is the one with the larger y (kmax here when
            // dy == 1).
            if dx == 0 && dy == 1 {
                let sel = ModelSelection::Pair(kmax, false);
                if has(sel) {
                    return Some(sel);
                }
            }
        }
        None
    }

    /// A copy of the pyramid shape with every model dropped: the retrieval
    /// geometry (root, height, maintained levels, threshold base) without
    /// the weights. This is what `kamel pack` persists as the store's
    /// meta record — a few hundred bytes standing in for gigabytes of
    /// models — and what the store's resident set drives
    /// [`Repository::find_selection`] on at serve time.
    pub fn skeleton(&self) -> Repository {
        Repository {
            root: self.root,
            height: self.height,
            maintained: self.maintained,
            k: self.k,
            cells: HashMap::new(),
            global: None,
        }
    }

    /// §4.2 maintenance: re-trains every maintained cell (and neighbor pair)
    /// whose region intersects `dirty` and meets its token threshold, using
    /// the trajectory store as the corpus source (the store already holds
    /// old + new trajectories, which is the paper's "enrich" step).
    ///
    /// Cell jobs run on the process-wide thread budget; see
    /// [`Repository::maintain_with_threads`].
    ///
    /// Returns the number of models built or refreshed.
    pub fn maintain(&mut self, store: &TrajStore, dirty: &BBox, engine: &EngineConfig) -> usize {
        self.maintain_with_threads(store, dirty, engine, kamel_nn::thread_budget())
    }

    /// [`Repository::maintain`] with an explicit worker-thread count.
    ///
    /// Every affected cell is an independent training job (its own corpus,
    /// its own seeded RNG), so jobs fan out over a crossbeam work queue.
    /// Results are applied in sorted key order and each job is internally
    /// deterministic, so the repository state is identical for every
    /// `threads` value.
    pub fn maintain_with_threads(
        &mut self,
        store: &TrajStore,
        dirty: &BBox,
        engine: &EngineConfig,
        threads: usize,
    ) -> usize {
        let jobs = self.plan_jobs(dirty);
        let threads = threads.clamp(1, jobs.len().max(1));
        let mut builds: Vec<(PyramidKey, CellBuild)> = if threads <= 1 {
            jobs.iter()
                .map(|job| (job.key, build_cell(job, store, engine)))
                .collect()
        } else {
            let (job_tx, job_rx) = crossbeam::channel::unbounded::<&CellJob>();
            for job in &jobs {
                let _ = job_tx.send(job);
            }
            drop(job_tx);
            let (res_tx, res_rx) = crossbeam::channel::unbounded();
            crossbeam::scope(|s| {
                for _ in 0..threads {
                    let job_rx = job_rx.clone();
                    let res_tx = res_tx.clone();
                    s.spawn(move |_| {
                        while let Ok(job) = job_rx.recv() {
                            if res_tx.send((job.key, build_cell(job, store, engine))).is_err() {
                                return;
                            }
                        }
                    });
                }
            })
            .expect("maintenance worker panicked");
            drop(res_tx);
            res_rx.into_iter().collect()
        };
        // Apply in sorted key order so repository state never depends on
        // worker scheduling.
        builds.sort_by_key(|(key, _)| *key);
        let mut built = 0usize;
        for (key, build) in builds {
            if let Some(entry) = build.single {
                let cell = self.cells.entry(key).or_default();
                let updates = cell.single.as_ref().map_or(0, |e| e.meta.updates) + 1;
                cell.single = Some(with_updates(entry, updates));
                built += 1;
            }
            if let Some(entry) = build.pair_east {
                let cell = self.cells.entry(key).or_default();
                let updates = cell.pair_east.as_ref().map_or(0, |e| e.meta.updates) + 1;
                cell.pair_east = Some(with_updates(entry, updates));
                built += 1;
            }
            if let Some(entry) = build.pair_south {
                let cell = self.cells.entry(key).or_default();
                let updates = cell.pair_south.as_ref().map_or(0, |e| e.meta.updates) + 1;
                cell.pair_south = Some(with_updates(entry, updates));
                built += 1;
            }
        }
        built
    }

    /// Enumerates the training jobs for one maintenance pass: every
    /// maintained-level cell intersecting `dirty`, with its region, token
    /// threshold, and (where the grid has room) the east/south pair-region
    /// unions precomputed so workers never touch `self`.
    fn plan_jobs(&self, dirty: &BBox) -> Vec<CellJob> {
        let mut jobs = Vec::new();
        for level in self.maintained_levels() {
            let n = 1u32 << level;
            // Cells at this level intersecting the dirty region.
            let Some(kmin) = self.key_of(level, clamp_to(self.root, dirty.min)) else {
                continue;
            };
            let Some(kmax) = self.key_of(level, clamp_to(self.root, dirty.max)) else {
                continue;
            };
            for x in kmin.x..=kmax.x.min(n - 1) {
                for y in kmin.y..=kmax.y.min(n - 1) {
                    let key = PyramidKey { level, x, y };
                    let bbox = self.cell_bbox(key);
                    // East neighbor pair (stored here, the west member).
                    let east_union = (key.x + 1 < n)
                        .then(|| bbox.union(&self.cell_bbox(PyramidKey { x: key.x + 1, ..key })));
                    // South neighbor pair (stored here, the north member).
                    let south_union = (key.y > 0)
                        .then(|| bbox.union(&self.cell_bbox(PyramidKey { y: key.y - 1, ..key })));
                    jobs.push(CellJob {
                        key,
                        bbox,
                        threshold: self.threshold(level),
                        east_union,
                        south_union,
                    });
                }
            }
        }
        jobs
    }

    /// Trains the single global model (the §8.7 "No Part." ablation).
    pub fn train_global(&mut self, store: &TrajStore, engine: &EngineConfig) {
        let corpus: Vec<Vec<u64>> = store
            .iter()
            .map(|(_, t)| t.dedup_cells().iter().map(|c| c.0).collect())
            .collect();
        let trained_tokens: u64 = corpus.iter().map(|s| s.len() as u64).sum();
        let updates = self.global.as_ref().map_or(0, |e| e.meta.updates) + 1;
        self.global = Some(ModelEntry {
            model: engine.train(&corpus),
            meta: ModelMeta {
                trained_tokens,
                corpus_trajectories: corpus.len(),
                updates,
            },
        });
    }

    /// Iterates over every stored model entry (cells plus global).
    fn models(&self) -> impl Iterator<Item = &ModelEntry> {
        self.cells
            .values()
            .flat_map(|c| {
                [c.single.as_ref(), c.pair_east.as_ref(), c.pair_south.as_ref()].into_iter()
            })
            .chain(std::iter::once(self.global.as_ref()))
            .flatten()
    }

    /// Mutable variant of [`Repository::models`].
    fn models_mut(&mut self) -> impl Iterator<Item = &mut ModelEntry> {
        self.cells
            .values_mut()
            .flat_map(|c| {
                [c.single.as_mut(), c.pair_east.as_mut(), c.pair_south.as_mut()].into_iter()
            })
            .chain(std::iter::once(self.global.as_mut()))
            .flatten()
    }

    /// Switches every BERT model to the int8 serving path — but only after
    /// gating: each quantizable model's top-1 agreement with its f32 twin is
    /// measured over `probes` seeded probes, and if the worst agreement falls
    /// below `min_agreement` **no model is quantized** and
    /// [`crate::KamelError::QuantizationRejected`] is returned (ISSUE 6's
    /// "server refuses" semantics). On success returns the worst agreement
    /// observed (`1.0` when there is nothing to quantize, e.g. n-gram
    /// repositories).
    pub fn enable_quantization(
        &mut self,
        min_agreement: f64,
        probes: usize,
        seed: u64,
    ) -> Result<f64, crate::KamelError> {
        let mut worst = 1.0f64;
        for entry in self.models() {
            if let Some(agreement) = entry.model.quantization_agreement(probes, seed) {
                worst = worst.min(agreement);
            }
        }
        if worst < min_agreement {
            return Err(crate::KamelError::QuantizationRejected {
                agreement: worst,
                min: min_agreement,
            });
        }
        for entry in self.models_mut() {
            entry.model.enable_quantization();
        }
        Ok(worst)
    }

    /// Reverts every model to the f32 serving path.
    pub fn disable_quantization(&mut self) {
        for entry in self.models_mut() {
            entry.model.disable_quantization();
        }
    }

    /// Number of stored models currently serving through the int8 path.
    pub fn quantized_models(&self) -> usize {
        self.models().filter(|e| e.model.is_quantized()).count()
    }
}

/// One cell's maintenance work order, fully resolved from read-only
/// repository state so it can be executed on any worker thread.
struct CellJob {
    key: PyramidKey,
    bbox: BBox,
    threshold: u64,
    /// Region of this cell ∪ its east neighbor, when one exists.
    east_union: Option<BBox>,
    /// Region of this cell ∪ its south neighbor, when one exists.
    south_union: Option<BBox>,
}

/// Freshly trained models for one cell (update counters not yet applied).
#[derive(Default)]
struct CellBuild {
    single: Option<ModelEntry>,
    pair_east: Option<ModelEntry>,
    pair_south: Option<ModelEntry>,
}

/// Trains one cell's single model and its east/south pair models when
/// their token thresholds are met. Pure function of the job, store, and
/// engine — safe to run concurrently across cells.
fn build_cell(job: &CellJob, store: &TrajStore, engine: &EngineConfig) -> CellBuild {
    let mut build = CellBuild::default();
    if store.token_count_in(&job.bbox) >= job.threshold {
        build.single = train_on_region(store, &job.bbox, engine);
    }
    if let Some(union) = &job.east_union {
        if store.token_count_in(union) >= 2 * job.threshold {
            build.pair_east = train_on_region(store, union, engine);
        }
    }
    if let Some(union) = &job.south_union {
        if store.token_count_in(union) >= 2 * job.threshold {
            build.pair_south = train_on_region(store, union, engine);
        }
    }
    build
}

fn clamp_to(bbox: BBox, p: Xy) -> Xy {
    Xy::new(
        p.x.clamp(bbox.min.x, bbox.max.x),
        p.y.clamp(bbox.min.y, bbox.max.y),
    )
}

fn with_updates(mut entry: ModelEntry, updates: u32) -> ModelEntry {
    entry.meta.updates = updates;
    entry
}

/// Trains a model on all traffic through `region`: the in-region runs of
/// every stored trajectory that intersects it (fully enclosed trajectories
/// contribute their whole token sentence; crossing trajectories contribute
/// their clipped portions — see `TrajStore::clipped_cell_runs`).
fn train_on_region(store: &TrajStore, region: &BBox, engine: &EngineConfig) -> Option<ModelEntry> {
    let runs = store.clipped_cell_runs(region, 2);
    if runs.is_empty() {
        return None;
    }
    let corpus: Vec<Vec<u64>> = runs
        .iter()
        .map(|run| {
            let mut sentence: Vec<u64> = Vec::with_capacity(run.len());
            for cell in run {
                if sentence.last() != Some(&cell.0) {
                    sentence.push(cell.0);
                }
            }
            sentence
        })
        .collect();
    let trained_tokens: u64 = corpus.iter().map(|s| s.len() as u64).sum();
    Some(ModelEntry {
        model: engine.train(&corpus),
        meta: ModelMeta {
            trained_tokens,
            corpus_trajectories: corpus.len(),
            updates: 0,
        },
    })
}

/// Serializes the `PyramidKey`-keyed map as a pair list for JSON safety.
mod cells_serde {
    use super::{PyramidCell, PyramidKey};
    use serde::{Deserialize, Deserializer, Serialize, Serializer};
    use std::collections::HashMap;

    pub fn serialize<S: Serializer>(
        map: &HashMap<PyramidKey, PyramidCell>,
        ser: S,
    ) -> Result<S::Ok, S::Error> {
        let mut pairs: Vec<(&PyramidKey, &PyramidCell)> = map.iter().collect();
        pairs.sort_by_key(|(k, _)| **k);
        pairs.serialize(ser)
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(
        de: D,
    ) -> Result<HashMap<PyramidKey, PyramidCell>, D::Error> {
        let pairs: Vec<(PyramidKey, PyramidCell)> = Vec::deserialize(de)?;
        Ok(pairs.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kamel_hexgrid::CellId;
    use kamel_trajstore::TokenTrajectory;

    fn config() -> KamelConfig {
        KamelConfig::builder()
            .pyramid_height(3)
            .pyramid_maintained(3)
            .model_threshold_k(10)
            .build()
    }

    fn root() -> BBox {
        BBox::new(Xy::new(0.0, 0.0), Xy::new(1600.0, 1600.0))
    }

    /// Inserts `n` short trajectories confined to `region` into the store.
    fn fill_region(store: &mut TrajStore, region: BBox, n: usize) {
        let w = region.width();
        let h = region.height();
        for i in 0..n {
            let base_x = region.min.x + w * 0.2 + (i as f64 * 13.0) % (w * 0.6);
            let base_y = region.min.y + h * 0.2 + (i as f64 * 7.0) % (h * 0.6);
            let xy: Vec<Xy> = (0..5)
                .map(|j| Xy::new(base_x + j as f64 * 5.0, base_y))
                .collect();
            let cells: Vec<CellId> = xy
                .iter()
                .map(|p| CellId::from_coords((p.x / 75.0) as i32, (p.y / 75.0) as i32))
                .collect();
            let t: Vec<f64> = (0..5).map(|j| j as f64).collect();
            store.insert(TokenTrajectory::new(cells, xy, t));
        }
    }

    #[test]
    fn thresholds_scale_by_level() {
        let repo = Repository::new(root(), &config());
        // height 3: leaf level 2.
        assert_eq!(repo.leaf_level(), 2);
        assert_eq!(repo.threshold(2), 10);
        assert_eq!(repo.threshold(1), 40);
        assert_eq!(repo.threshold(0), 160);
        let levels: Vec<u8> = repo.maintained_levels().collect();
        assert_eq!(levels, vec![2, 1, 0]);
    }

    #[test]
    fn cell_bbox_partitions_the_root() {
        let repo = Repository::new(root(), &config());
        let k = PyramidKey { level: 1, x: 1, y: 0 };
        let bb = repo.cell_bbox(k);
        assert_eq!(bb.min, Xy::new(800.0, 0.0));
        assert_eq!(bb.max, Xy::new(1600.0, 800.0));
        // key_of inverts cell_bbox centers.
        assert_eq!(repo.key_of(1, bb.center()), Some(k));
        // Outside the root → None.
        assert_eq!(repo.key_of(1, Xy::new(-1.0, 0.0)), None);
    }

    #[test]
    fn maintenance_builds_models_where_data_is() {
        let cfg = config();
        let mut repo = Repository::new(root(), &cfg);
        let mut store = TrajStore::new(200.0);
        // Fill one leaf cell (level 2, cell (0,0): [0,400)²) heavily.
        let region = BBox::new(Xy::new(0.0, 0.0), Xy::new(400.0, 400.0));
        fill_region(&mut store, region, 30); // 150 tokens ≥ threshold 10
        let built = repo.maintain(&store, &region, &EngineConfig::default());
        assert!(built >= 1, "no models built");
        // Retrieval for a query inside that leaf returns the leaf model.
        let query = BBox::new(Xy::new(50.0, 50.0), Xy::new(300.0, 300.0));
        let (sel, _) = repo.find_model(&query).expect("model expected");
        assert_eq!(
            sel,
            ModelSelection::Single(PyramidKey { level: 2, x: 0, y: 0 })
        );
    }

    #[test]
    fn quantization_gate_is_all_or_nothing() {
        let cfg = config();
        let mut repo = Repository::new(root(), &cfg);
        let mut store = TrajStore::new(200.0);
        let region = BBox::new(Xy::new(0.0, 0.0), Xy::new(400.0, 400.0));
        fill_region(&mut store, region, 30);
        let engine = EngineConfig::Bert(kamel_lm::BertEngineConfig::for_tests());
        let built = repo.maintain(&store, &region, &engine);
        assert!(built >= 1, "no models built");
        // An unreachable bound (top-1 agreement cannot exceed 1.0) refuses
        // and leaves every model on the f32 path — gating is all-or-nothing.
        let err = repo.enable_quantization(1.5, 8, 7).unwrap_err();
        assert!(
            matches!(err, crate::KamelError::QuantizationRejected { .. }),
            "unexpected error: {err:?}"
        );
        assert_eq!(repo.quantized_models(), 0);
        // A permissive bound quantizes every BERT model.
        let worst = repo.enable_quantization(0.0, 8, 7).expect("gate passes");
        assert!((0.0..=1.0).contains(&worst), "agreement out of range: {worst}");
        assert_eq!(repo.quantized_models(), repo.model_count());
        repo.disable_quantization();
        assert_eq!(repo.quantized_models(), 0);
    }

    #[test]
    fn ngram_repositories_have_nothing_to_quantize() {
        let cfg = config();
        let mut repo = Repository::new(root(), &cfg);
        let mut store = TrajStore::new(200.0);
        let region = BBox::new(Xy::new(0.0, 0.0), Xy::new(400.0, 400.0));
        fill_region(&mut store, region, 30);
        repo.maintain(&store, &region, &EngineConfig::default());
        // No quantizable models: the gate trivially passes at the tightest
        // legal bound and nothing switches paths.
        assert_eq!(repo.enable_quantization(1.0, 8, 7), Ok(1.0));
        assert_eq!(repo.quantized_models(), 0);
    }

    #[test]
    fn retrieval_returns_smallest_enclosing_model() {
        let cfg = config();
        let mut repo = Repository::new(root(), &cfg);
        let mut store = TrajStore::new(200.0);
        // Data everywhere: every maintained level passes its threshold.
        fill_region(&mut store, root(), 700);
        repo.maintain(&store, &root(), &EngineConfig::default());
        // A tiny query must resolve at the deepest level with a model.
        let query = BBox::new(Xy::new(10.0, 10.0), Xy::new(60.0, 60.0));
        let (sel, _) = repo.find_model(&query).expect("model");
        match sel {
            ModelSelection::Single(k) => assert_eq!(k.level, 2, "expected leaf, got {k:?}"),
            other => panic!("expected single-cell model, got {other:?}"),
        }
        // A root-spanning query resolves at the root (level 0) if its
        // threshold was met.
        let wide = BBox::new(Xy::new(100.0, 100.0), Xy::new(1500.0, 1500.0));
        if let Some((sel, _)) = repo.find_model(&wide) {
            match sel {
                ModelSelection::Single(k) => assert_eq!(k.level, 0),
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn neighbor_pair_models_cover_boundaries() {
        let cfg = config();
        let mut repo = Repository::new(root(), &cfg);
        let mut store = TrajStore::new(200.0);
        // Data straddling the vertical boundary between leaf cells (0,0)
        // and (1,0) at x = 400.
        fill_region(&mut store, BBox::new(Xy::new(250.0, 50.0), Xy::new(390.0, 350.0)), 30);
        fill_region(&mut store, BBox::new(Xy::new(410.0, 50.0), Xy::new(550.0, 350.0)), 30);
        repo.maintain(&store, &root(), &EngineConfig::default());
        // A query spanning the boundary cannot fit one leaf cell; the east
        // pair stored at (0,0) must pick it up.
        let query = BBox::new(Xy::new(300.0, 100.0), Xy::new(500.0, 300.0));
        let (sel, _) = repo.find_model(&query).expect("pair model expected");
        match sel {
            ModelSelection::Pair(k, east) => {
                assert!(east);
                assert_eq!(k, PyramidKey { level: 2, x: 0, y: 0 });
            }
            // A coarser single cell also legitimately covers the query if
            // its threshold was met — but level-1 cell (0,0) needs 40 tokens
            // and has 300, so the pair at the deeper level must win because
            // retrieval is deepest-first.
            other => panic!("expected east pair, got {other:?}"),
        }
    }

    #[test]
    fn no_model_for_uncovered_regions() {
        let cfg = config();
        let mut repo = Repository::new(root(), &cfg);
        let mut store = TrajStore::new(200.0);
        fill_region(&mut store, BBox::new(Xy::new(0.0, 0.0), Xy::new(350.0, 350.0)), 30);
        repo.maintain(&store, &root(), &EngineConfig::default());
        // Query in the empty far corner.
        let query = BBox::new(Xy::new(1200.0, 1200.0), Xy::new(1500.0, 1500.0));
        assert!(repo.find_model(&query).is_none());
    }

    #[test]
    fn global_model_short_circuits_retrieval() {
        let cfg = config();
        let mut repo = Repository::new(root(), &cfg);
        let mut store = TrajStore::new(200.0);
        fill_region(&mut store, root(), 20);
        repo.train_global(&store, &EngineConfig::default());
        let (sel, _) = repo
            .find_model(&BBox::new(Xy::new(0.0, 0.0), Xy::new(10.0, 10.0)))
            .expect("global");
        assert_eq!(sel, ModelSelection::Global);
        assert_eq!(repo.model_count(), 1);
    }

    #[test]
    fn summaries_describe_every_model() {
        let cfg = config();
        let mut repo = Repository::new(root(), &cfg);
        let mut store = TrajStore::new(200.0);
        fill_region(&mut store, root(), 700);
        repo.maintain(&store, &root(), &EngineConfig::default());
        let summaries = repo.summaries();
        assert_eq!(summaries.len(), repo.model_count());
        assert!(summaries.iter().all(|s| s.vocab > 0 && s.trained_tokens > 0));
        // Deepest first.
        let levels: Vec<_> = summaries.iter().map(|s| s.level).collect();
        let mut sorted = levels.clone();
        sorted.sort_by(|a, b| b.cmp(a));
        assert_eq!(levels, sorted);
        // Kinds are the expected vocabulary.
        for s in &summaries {
            assert!(
                s.kind == "single" || s.kind.starts_with("pair-") || s.kind == "global",
                "{s:?}"
            );
        }
    }

    #[test]
    fn maintenance_is_thread_count_invariant() {
        let cfg = config();
        let mut store = TrajStore::new(200.0);
        fill_region(&mut store, root(), 700);
        let mut seq = Repository::new(root(), &cfg);
        seq.maintain_with_threads(&store, &root(), &EngineConfig::default(), 1);
        let mut par = Repository::new(root(), &cfg);
        par.maintain_with_threads(&store, &root(), &EngineConfig::default(), 4);
        assert!(seq.model_count() > 1, "want a multi-model pyramid");
        assert_eq!(
            serde_json::to_string(&seq).unwrap(),
            serde_json::to_string(&par).unwrap(),
            "repository state must not depend on the worker count"
        );
    }

    /// A degenerate query exactly on the boundary between two leaf cells
    /// belongs to exactly one of them (the east/north side, by the grid's
    /// half-open convention) — never to both, never to neither.
    #[test]
    fn boundary_query_resolves_to_exactly_one_leaf() {
        let cfg = config();
        let mut repo = Repository::new(root(), &cfg);
        let mut store = TrajStore::new(200.0);
        // Models on both sides of the x = 400 leaf boundary.
        fill_region(&mut store, BBox::new(Xy::new(0.0, 0.0), Xy::new(400.0, 400.0)), 30);
        fill_region(&mut store, BBox::new(Xy::new(400.0, 0.0), Xy::new(800.0, 400.0)), 30);
        repo.maintain(&store, &root(), &EngineConfig::default());
        assert!(repo
            .entry(ModelSelection::Single(PyramidKey { level: 2, x: 0, y: 0 }))
            .is_some());
        assert!(repo
            .entry(ModelSelection::Single(PyramidKey { level: 2, x: 1, y: 0 }))
            .is_some());
        // x = 400.0 is the first coordinate of the east cell.
        let on_boundary = BBox::new(Xy::new(400.0, 100.0), Xy::new(400.0, 100.0));
        let (sel, _) = repo.find_model(&on_boundary).expect("model");
        assert_eq!(
            sel,
            ModelSelection::Single(PyramidKey { level: 2, x: 1, y: 0 })
        );
        // Just inside the west cell resolves west.
        let west = BBox::new(Xy::new(399.9, 100.0), Xy::new(399.9, 100.0));
        let (sel, _) = repo.find_model(&west).expect("model");
        assert_eq!(
            sel,
            ModelSelection::Single(PyramidKey { level: 2, x: 0, y: 0 })
        );
    }

    /// A query spanning leaf cells *diagonally* can never be covered by a
    /// neighbor pair (pairs are edge-adjacent only) — retrieval must fall
    /// back to the enclosing coarser-level single-cell model.
    #[test]
    fn diagonal_span_falls_back_to_the_coarser_level() {
        let cfg = config();
        let mut repo = Repository::new(root(), &cfg);
        let mut store = TrajStore::new(200.0);
        // Data across the level-1 cell (0,0) = [0,800)²: its 40-token
        // threshold is met, as are the leaf thresholds inside it.
        fill_region(&mut store, BBox::new(Xy::new(0.0, 0.0), Xy::new(800.0, 800.0)), 60);
        repo.maintain(&store, &root(), &EngineConfig::default());
        // Spans leaf cells (0,0), (1,0), (0,1), (1,1) around (400, 400).
        let query = BBox::new(Xy::new(350.0, 350.0), Xy::new(450.0, 450.0));
        let (sel, _) = repo.find_model(&query).expect("coarser model expected");
        assert_eq!(
            sel,
            ModelSelection::Single(PyramidKey { level: 1, x: 0, y: 0 }),
            "diagonal spans skip the (impossible) pair and climb a level"
        );
    }

    /// Retrieval is a pure function of the repository: the model chosen
    /// for a query does not depend on what was queried before it.
    #[test]
    fn retrieval_does_not_depend_on_query_order() {
        let cfg = config();
        let mut repo = Repository::new(root(), &cfg);
        let mut store = TrajStore::new(200.0);
        fill_region(&mut store, root(), 700);
        repo.maintain(&store, &root(), &EngineConfig::default());
        let queries = [
            BBox::new(Xy::new(10.0, 10.0), Xy::new(60.0, 60.0)),
            BBox::new(Xy::new(300.0, 100.0), Xy::new(500.0, 300.0)),
            BBox::new(Xy::new(350.0, 350.0), Xy::new(450.0, 450.0)),
            BBox::new(Xy::new(100.0, 100.0), Xy::new(1500.0, 1500.0)),
            BBox::new(Xy::new(400.0, 100.0), Xy::new(400.0, 100.0)),
        ];
        let forward: Vec<_> = queries
            .iter()
            .map(|q| repo.find_model(q).map(|(sel, _)| sel))
            .collect();
        let mut backward: Vec<_> = queries
            .iter()
            .rev()
            .map(|q| repo.find_model(q).map(|(sel, _)| sel))
            .collect();
        backward.reverse();
        assert_eq!(forward, backward, "answers must not depend on query order");
        // And re-asking is idempotent.
        let again: Vec<_> = queries
            .iter()
            .map(|q| repo.find_model(q).map(|(sel, _)| sel))
            .collect();
        assert_eq!(forward, again);
    }

    /// The store serves retrieval from a skeleton + membership oracle; it
    /// must pick exactly the model the heap walk picks, for every query.
    #[test]
    fn skeleton_selection_matches_heap_retrieval() {
        let cfg = config();
        let mut repo = Repository::new(root(), &cfg);
        let mut store = TrajStore::new(200.0);
        fill_region(&mut store, root(), 700);
        repo.maintain(&store, &root(), &EngineConfig::default());
        assert!(repo.model_count() > 1, "want a multi-model pyramid");
        let skeleton = repo.skeleton();
        assert_eq!(skeleton.model_count(), 0, "skeleton must drop all models");
        assert_eq!(skeleton.root_bbox(), repo.root_bbox());
        // Membership oracle over the real repository's stored selections,
        // as the store keeps it (a set of record keys).
        let members: std::collections::HashSet<ModelSelection> =
            repo.model_keys().into_iter().collect();
        let queries = [
            BBox::new(Xy::new(10.0, 10.0), Xy::new(60.0, 60.0)),
            BBox::new(Xy::new(300.0, 100.0), Xy::new(500.0, 300.0)),
            BBox::new(Xy::new(350.0, 350.0), Xy::new(450.0, 450.0)),
            BBox::new(Xy::new(100.0, 100.0), Xy::new(1500.0, 1500.0)),
            BBox::new(Xy::new(400.0, 100.0), Xy::new(400.0, 100.0)),
            BBox::new(Xy::new(1200.0, 1200.0), Xy::new(1500.0, 1500.0)),
            BBox::new(Xy::new(-50.0, -50.0), Xy::new(-10.0, -10.0)),
        ];
        for q in &queries {
            let heap = repo.find_model(q).map(|(sel, _)| sel);
            let skel = skeleton.find_selection(q, |s| members.contains(&s));
            assert_eq!(heap, skel, "query {q:?} diverged");
        }
    }

    #[test]
    fn model_meta_tracks_updates() {
        let cfg = config();
        let mut repo = Repository::new(root(), &cfg);
        let mut store = TrajStore::new(200.0);
        let region = BBox::new(Xy::new(0.0, 0.0), Xy::new(400.0, 400.0));
        fill_region(&mut store, region, 30);
        repo.maintain(&store, &region, &EngineConfig::default());
        fill_region(&mut store, region, 10);
        repo.maintain(&store, &region, &EngineConfig::default());
        let key = PyramidKey { level: 2, x: 0, y: 0 };
        let entry = repo.entry(ModelSelection::Single(key)).expect("entry");
        assert_eq!(entry.meta.updates, 2);
        assert!(entry.meta.trained_tokens > 0);
        assert!(entry.meta.corpus_trajectories >= 30);
    }
}

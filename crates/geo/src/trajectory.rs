//! The trajectory type shared by every KAMEL crate.

use crate::point::{GpsPoint, LatLng};
use crate::proj::LocalProjection;
use crate::{BBox, Xy};
use serde::{Deserialize, Serialize};

/// An ordered sequence of GPS fixes for one moving object.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Trajectory {
    /// The fixes, in non-decreasing time order.
    pub points: Vec<GpsPoint>,
}

impl Trajectory {
    /// Wraps a point list as a trajectory.
    pub fn new(points: Vec<GpsPoint>) -> Self {
        Self { points }
    }

    /// Number of fixes.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when the trajectory holds no fixes.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Total elapsed time in seconds (0 for fewer than two fixes).
    pub fn duration_s(&self) -> f64 {
        match (self.points.first(), self.points.last()) {
            (Some(a), Some(b)) => (b.t - a.t).max(0.0),
            _ => 0.0,
        }
    }

    /// Total travelled length in meters, using the fast planar distance.
    pub fn length_m(&self) -> f64 {
        self.points
            .windows(2)
            .map(|w| w[0].pos.fast_dist_m(&w[1].pos))
            .sum()
    }

    /// Projects all fixes to the planar frame.
    pub fn to_xy(&self, proj: &LocalProjection) -> Vec<Xy> {
        self.points.iter().map(|p| proj.to_xy(p.pos)).collect()
    }

    /// Minimum bounding rectangle in the planar frame (`None` when empty).
    pub fn bbox(&self, proj: &LocalProjection) -> Option<BBox> {
        BBox::of_points(self.points.iter().map(|p| proj.to_xy(p.pos)))
    }

    /// Mean ground speed in m/s over the whole trajectory (`None` when the
    /// duration is zero).
    pub fn mean_speed_mps(&self) -> Option<f64> {
        let d = self.duration_s();
        if d <= 0.0 {
            return None;
        }
        Some(self.length_m() / d)
    }

    /// Sparsifies per the paper's protocol (§8 "Datasets"): keep the first
    /// fix, drop every following fix within `sparse_distance_m`, keep the
    /// next, and so on. The last fix is always kept so the trajectory keeps
    /// its full extent.
    pub fn sparsify(&self, sparse_distance_m: f64) -> Trajectory {
        assert!(sparse_distance_m > 0.0, "sparse distance must be positive");
        if self.points.len() <= 2 {
            return self.clone();
        }
        let mut kept = vec![self.points[0]];
        let mut anchor = self.points[0].pos;
        for p in &self.points[1..self.points.len() - 1] {
            if anchor.fast_dist_m(&p.pos) >= sparse_distance_m {
                kept.push(*p);
                anchor = p.pos;
            }
        }
        kept.push(self.points[self.points.len() - 1]);
        Trajectory::new(kept)
    }

    /// Splits the trajectory wherever consecutive fixes are more than
    /// `max_gap_s` seconds apart. Real trip logs often concatenate multiple
    /// trips per vehicle id; imputing across a parked-overnight gap is
    /// meaningless, so ingest paths split first. Pieces with fewer than two
    /// fixes are dropped.
    pub fn split_by_time_gap(&self, max_gap_s: f64) -> Vec<Trajectory> {
        assert!(max_gap_s > 0.0, "time-gap threshold must be positive");
        let mut out = Vec::new();
        let mut current: Vec<GpsPoint> = Vec::new();
        for p in &self.points {
            if let Some(last) = current.last() {
                if p.t - last.t > max_gap_s {
                    if current.len() >= 2 {
                        out.push(Trajectory::new(std::mem::take(&mut current)));
                    } else {
                        current.clear();
                    }
                }
            }
            current.push(*p);
        }
        if current.len() >= 2 {
            out.push(Trajectory::new(current));
        }
        out
    }

    /// Resamples the trajectory at a fixed period (linear interpolation in
    /// time). Used by the training-density experiment (Fig. 12-V).
    pub fn resample(&self, period_s: f64) -> Trajectory {
        if self.points.len() < 2 {
            return self.clone();
        }
        let timed: Vec<(Xy, f64)> = self
            .points
            .iter()
            .map(|p| (Xy::new(p.pos.lng, p.pos.lat), p.t))
            .collect();
        let sampled = crate::polyline::resample_by_time(&timed, period_s);
        Trajectory::new(
            sampled
                .into_iter()
                .map(|(xy, t)| GpsPoint::new(LatLng::new(xy.y, xy.x), t))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn east_line(n: usize, spacing_deg: f64, dt: f64) -> Trajectory {
        Trajectory::new(
            (0..n)
                .map(|i| GpsPoint::from_parts(41.0, -8.0 + i as f64 * spacing_deg, i as f64 * dt))
                .collect(),
        )
    }

    #[test]
    fn duration_and_length() {
        let t = east_line(5, 0.001, 10.0);
        assert_eq!(t.duration_s(), 40.0);
        // 0.001 deg lng at lat 41 ≈ 84 m; 4 segments ≈ 336 m.
        let len = t.length_m();
        assert!((300.0..380.0).contains(&len), "len {len}");
        assert!(t.mean_speed_mps().unwrap() > 0.0);
    }

    #[test]
    fn sparsify_keeps_endpoints_and_enforces_distance() {
        // ~84 m point spacing; 250 m sparsity keeps every 3rd point.
        let t = east_line(20, 0.001, 15.0);
        let s = t.sparsify(250.0);
        assert_eq!(s.points[0], t.points[0]);
        assert_eq!(*s.points.last().unwrap(), *t.points.last().unwrap());
        assert!(s.len() < t.len());
        // Every consecutive kept pair (except possibly the tail) is at least
        // the sparse distance apart.
        for w in s.points[..s.len() - 1].windows(2) {
            assert!(w[0].pos.fast_dist_m(&w[1].pos) >= 249.0);
        }
    }

    #[test]
    fn sparsify_degenerate_inputs() {
        let empty = Trajectory::default();
        assert!(empty.sparsify(100.0).is_empty());
        let two = east_line(2, 0.001, 10.0);
        assert_eq!(two.sparsify(1.0).len(), 2);
    }

    #[test]
    fn resample_reduces_density() {
        let t = east_line(61, 0.0001, 1.0); // 1 Hz, 60 s
        let r = t.resample(15.0);
        assert_eq!(r.len(), 5); // 0, 15, 30, 45, 60
        assert_eq!(r.points[0], t.points[0]);
        assert_eq!(*r.points.last().unwrap(), *t.points.last().unwrap());
    }

    #[test]
    fn split_by_time_gap_cuts_concatenated_trips() {
        let mut points = Vec::new();
        for i in 0..5 {
            points.push(GpsPoint::from_parts(41.0, -8.0 + i as f64 * 0.001, i as f64 * 10.0));
        }
        // 2 hours parked, then a second trip.
        for i in 0..4 {
            points.push(GpsPoint::from_parts(
                41.1,
                -8.0 + i as f64 * 0.001,
                7_200.0 + i as f64 * 10.0,
            ));
        }
        let traj = Trajectory::new(points);
        let pieces = traj.split_by_time_gap(600.0);
        assert_eq!(pieces.len(), 2);
        assert_eq!(pieces[0].len(), 5);
        assert_eq!(pieces[1].len(), 4);
        // No split when the threshold is generous.
        assert_eq!(traj.split_by_time_gap(10_000.0).len(), 1);
        // Singleton pieces are dropped.
        let lonely = Trajectory::new(vec![
            GpsPoint::from_parts(41.0, -8.0, 0.0),
            GpsPoint::from_parts(41.0, -8.0, 10_000.0),
        ]);
        assert!(lonely.split_by_time_gap(600.0).is_empty());
    }

    #[test]
    fn bbox_covers_all_points() {
        let t = east_line(10, 0.001, 10.0);
        let proj = LocalProjection::new(LatLng::new(41.0, -8.0));
        let bb = t.bbox(&proj).unwrap();
        for p in &t.points {
            assert!(bb.contains(proj.to_xy(p.pos)));
        }
    }
}

//! Square (S2-style) grid used for the grid-type comparison (§8.5).
//!
//! The paper sets the square edge to 120 m so the cell area matches a 75 m
//! hexagon; [`SquareGrid::area_matched_to_hex`] reproduces that sizing for
//! any hex edge.

use crate::cell::CellId;
use crate::Tessellation;
use kamel_geo::Xy;
use serde::{Deserialize, Serialize};

/// A square tessellation of the plane with a fixed edge length.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SquareGrid {
    edge_m: f64,
}

impl SquareGrid {
    /// Creates a grid of squares with side `edge_m` meters.
    ///
    /// # Panics
    /// Panics when the edge length is not strictly positive and finite.
    pub fn new(edge_m: f64) -> Self {
        assert!(
            edge_m.is_finite() && edge_m > 0.0,
            "square edge length must be positive, got {edge_m}"
        );
        Self { edge_m }
    }

    /// Edge length giving the same cell area as a hexagon with edge
    /// `hex_edge_m`: `sqrt(3*sqrt(3)/2) * e ≈ 1.612 e` (75 m → ~120.9 m,
    /// matching the paper's 120 m configuration).
    pub fn area_matched_to_hex(hex_edge_m: f64) -> Self {
        let hex_area = 1.5 * 3.0_f64.sqrt() * hex_edge_m * hex_edge_m;
        Self::new(hex_area.sqrt())
    }

    fn col_row(&self, p: Xy) -> (i32, i32) {
        (
            (p.x / self.edge_m).floor() as i32,
            (p.y / self.edge_m).floor() as i32,
        )
    }
}

impl Tessellation for SquareGrid {
    fn cell_of(&self, p: Xy) -> CellId {
        let (c, r) = self.col_row(p);
        CellId::from_coords(c, r)
    }

    fn centroid(&self, cell: CellId) -> Xy {
        let (c, r) = cell.coords();
        Xy::new(
            (c as f64 + 0.5) * self.edge_m,
            (r as f64 + 0.5) * self.edge_m,
        )
    }

    fn neighbors(&self, cell: CellId) -> Vec<CellId> {
        let (c, r) = cell.coords();
        vec![
            CellId::from_coords(c + 1, r),
            CellId::from_coords(c - 1, r),
            CellId::from_coords(c, r + 1),
            CellId::from_coords(c, r - 1),
        ]
    }

    fn grid_distance(&self, a: CellId, b: CellId) -> u32 {
        // Edge-adjacency metric for a 4-connected grid: Manhattan distance.
        let (ac, ar) = a.coords();
        let (bc, br) = b.coords();
        ((ac as i64 - bc as i64).abs() + (ar as i64 - br as i64).abs()) as u32
    }

    fn line(&self, a: CellId, b: CellId) -> Vec<CellId> {
        // 4-connected digital line: walk the segment between centers,
        // stepping one axis at a time toward the target (supercover-lite).
        if a == b {
            return vec![a];
        }
        let (mut c, mut r) = a.coords();
        let (bc, br) = b.coords();
        let mut out = vec![a];
        let start = self.centroid(a);
        let end = self.centroid(b);
        while (c, r) != (bc, br) {
            // Choose the axis step whose resulting center lies closest to
            // the ideal segment.
            let candidates = [
                (c + (bc - c).signum(), r, bc != c),
                (c, r + (br - r).signum(), br != r),
            ];
            let (nc, nr) = candidates
                .iter()
                .filter(|&&(_, _, valid)| valid)
                .map(|&(cc, rr, _)| (cc, rr))
                .min_by(|&p1, &p2| {
                    let d1 = seg_dist(self.centroid(CellId::from_coords(p1.0, p1.1)), start, end);
                    let d2 = seg_dist(self.centroid(CellId::from_coords(p2.0, p2.1)), start, end);
                    d1.partial_cmp(&d2).expect("finite distances")
                })
                .expect("at least one axis differs");
            c = nc;
            r = nr;
            out.push(CellId::from_coords(c, r));
        }
        out
    }

    fn disk(&self, center: CellId, radius: u32) -> Vec<CellId> {
        let (cc, cr) = center.coords();
        let rad = radius as i32;
        let mut out = Vec::with_capacity((2 * radius * (radius + 1) + 1) as usize);
        for dc in -rad..=rad {
            let rem = rad - dc.abs();
            for dr in -rem..=rem {
                out.push(CellId::from_coords(cc + dc, cr + dr));
            }
        }
        out
    }

    fn edge_len_m(&self) -> f64 {
        self.edge_m
    }

    fn neighbor_spacing_m(&self) -> f64 {
        // Corner of a square is sqrt(2)/2 * edge from the center; use the
        // circumradius so the centroid-proximity contract holds everywhere.
        self.edge_m * std::f64::consts::SQRT_2
    }

    fn kind(&self) -> &'static str {
        "square"
    }
}

fn seg_dist(p: Xy, a: Xy, b: Xy) -> f64 {
    kamel_geo::polyline::point_to_segment_distance(p, a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_of_floors_toward_negative() {
        let g = SquareGrid::new(100.0);
        assert_eq!(g.cell_of(Xy::new(50.0, 50.0)), CellId::from_coords(0, 0));
        assert_eq!(g.cell_of(Xy::new(-1.0, -1.0)), CellId::from_coords(-1, -1));
        assert_eq!(g.cell_of(Xy::new(250.0, -150.0)), CellId::from_coords(2, -2));
    }

    #[test]
    fn centroid_is_cell_center() {
        let g = SquareGrid::new(100.0);
        assert_eq!(
            g.centroid(CellId::from_coords(0, 0)),
            Xy::new(50.0, 50.0)
        );
        assert_eq!(
            g.centroid(CellId::from_coords(-1, 2)),
            Xy::new(-50.0, 250.0)
        );
    }

    #[test]
    fn four_neighbors_manhattan_distance() {
        let g = SquareGrid::new(100.0);
        let c = CellId::from_coords(5, 5);
        assert_eq!(g.neighbors(c).len(), 4);
        assert_eq!(g.grid_distance(c, CellId::from_coords(7, 2)), 5);
    }

    #[test]
    fn line_is_4_connected_and_hits_endpoints() {
        let g = SquareGrid::new(100.0);
        let a = CellId::from_coords(0, 0);
        let b = CellId::from_coords(5, 3);
        let line = g.line(a, b);
        assert_eq!(line[0], a);
        assert_eq!(*line.last().unwrap(), b);
        assert_eq!(line.len(), 9); // Manhattan distance + 1
        for w in line.windows(2) {
            assert_eq!(g.grid_distance(w[0], w[1]), 1);
        }
    }

    #[test]
    fn disk_is_manhattan_ball() {
        let g = SquareGrid::new(100.0);
        let c = CellId::from_coords(0, 0);
        assert_eq!(g.disk(c, 1).len(), 5);
        assert_eq!(g.disk(c, 2).len(), 13);
        for m in g.disk(c, 2) {
            assert!(g.grid_distance(c, m) <= 2);
        }
    }

    #[test]
    fn area_matching_reproduces_papers_120m() {
        let g = SquareGrid::area_matched_to_hex(75.0);
        assert!(
            (g.edge_len_m() - 120.9).abs() < 1.0,
            "got {}",
            g.edge_len_m()
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_nan_edge() {
        let _ = SquareGrid::new(f64::NAN);
    }
}

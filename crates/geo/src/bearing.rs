//! Bearings and angle arithmetic for the direction constraints (§5.1).

use crate::point::Xy;

/// Normalizes an angle in degrees to `[0, 360)`.
#[inline]
pub fn normalize_deg(deg: f64) -> f64 {
    let d = deg % 360.0;
    if d < 0.0 {
        d + 360.0
    } else {
        d
    }
}

/// Planar bearing from `a` to `b` in degrees, measured clockwise from north.
///
/// Returns `None` when the points coincide (bearing undefined).
pub fn bearing_deg(a: Xy, b: Xy) -> Option<f64> {
    let (dx, dy) = a.delta(&b);
    if dx == 0.0 && dy == 0.0 {
        return None;
    }
    // atan2(east, north) gives the compass bearing.
    Some(normalize_deg(dx.atan2(dy).to_degrees()))
}

/// Smallest absolute difference between two bearings, in `[0, 180]` degrees.
#[inline]
pub fn angle_between_deg(a: f64, b: f64) -> f64 {
    let d = (normalize_deg(a) - normalize_deg(b)).abs();
    if d > 180.0 {
        360.0 - d
    } else {
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cardinal_bearings() {
        let o = Xy::new(0.0, 0.0);
        assert_eq!(bearing_deg(o, Xy::new(0.0, 1.0)).unwrap(), 0.0); // north
        assert_eq!(bearing_deg(o, Xy::new(1.0, 0.0)).unwrap(), 90.0); // east
        assert_eq!(bearing_deg(o, Xy::new(0.0, -1.0)).unwrap(), 180.0); // south
        assert_eq!(bearing_deg(o, Xy::new(-1.0, 0.0)).unwrap(), 270.0); // west
    }

    #[test]
    fn coincident_points_have_no_bearing() {
        let p = Xy::new(5.0, 5.0);
        assert!(bearing_deg(p, p).is_none());
    }

    #[test]
    fn normalize_wraps_both_directions() {
        assert_eq!(normalize_deg(370.0), 10.0);
        assert_eq!(normalize_deg(-10.0), 350.0);
        assert_eq!(normalize_deg(720.0), 0.0);
        assert_eq!(normalize_deg(0.0), 0.0);
    }

    #[test]
    fn angle_between_is_symmetric_and_wraps() {
        assert_eq!(angle_between_deg(10.0, 350.0), 20.0);
        assert_eq!(angle_between_deg(350.0, 10.0), 20.0);
        assert_eq!(angle_between_deg(0.0, 180.0), 180.0);
        assert_eq!(angle_between_deg(45.0, 45.0), 0.0);
    }

    #[test]
    fn diagonal_bearing() {
        let b = bearing_deg(Xy::new(0.0, 0.0), Xy::new(1.0, 1.0)).unwrap();
        assert!((b - 45.0).abs() < 1e-12);
    }
}

//! Property-based tests for the neural substrate: numerical invariants
//! that must hold for arbitrary shapes and values.

use kamel_nn::layers::{
    dropout_backward, dropout_forward, gelu, gelu_grad, softmax_rows, softmax_rows_backward,
    LayerNorm, Linear,
};
use kamel_nn::Matrix;
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn matrix_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-5.0f32..5.0, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Softmax rows are probability distributions for any finite input.
    #[test]
    fn softmax_rows_are_distributions(m in matrix_strategy(4, 7)) {
        let mut s = m.clone();
        softmax_rows(&mut s);
        for r in 0..4 {
            let sum: f32 = s.row(r).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4, "row {r} sums to {sum}");
            prop_assert!(s.row(r).iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
        // Shift invariance: adding a constant per row leaves softmax fixed.
        let mut shifted = m.clone();
        for r in 0..4 {
            for v in shifted.row_mut(r) {
                *v += 3.25;
            }
        }
        softmax_rows(&mut shifted);
        for (a, b) in s.data().iter().zip(shifted.data()) {
            prop_assert!((a - b).abs() < 1e-4);
        }
    }

    /// Softmax backward matches finite differences at a random coordinate.
    #[test]
    fn softmax_backward_matches_fd(
        logits in matrix_strategy(1, 6),
        upstream in matrix_strategy(1, 6),
        col in 0usize..6,
    ) {
        let mut a = logits.clone();
        softmax_rows(&mut a);
        let ds = softmax_rows_backward(&a, &upstream);
        let eps = 1e-2f32;
        let loss = |l: &Matrix| {
            let mut s = l.clone();
            softmax_rows(&mut s);
            s.frobenius_dot(&upstream)
        };
        let mut up = logits.clone();
        up.set(0, col, logits.get(0, col) + eps);
        let mut dn = logits.clone();
        dn.set(0, col, logits.get(0, col) - eps);
        let num = (loss(&up) - loss(&dn)) / (2.0 * eps);
        prop_assert!((num - ds.get(0, col)).abs() < 2e-2, "num {num} got {}", ds.get(0, col));
    }

    /// LayerNorm output is standardized per row for any non-constant input.
    #[test]
    fn layernorm_standardizes(m in matrix_strategy(3, 8)) {
        let ln = LayerNorm::new(8);
        let (y, _) = ln.forward(&m);
        for r in 0..3 {
            let mean: f32 = y.row(r).iter().sum::<f32>() / 8.0;
            prop_assert!(mean.abs() < 1e-3, "row {r} mean {mean}");
            let var: f32 = y.row(r).iter().map(|v| (v - mean).powi(2)).sum::<f32>() / 8.0;
            // Constant rows normalize to ~0 variance; others to ~1.
            prop_assert!(var < 1.3, "row {r} var {var}");
        }
    }

    /// The three matmul variants agree wherever their shapes overlap.
    #[test]
    fn matmul_variants_agree(a in matrix_strategy(3, 4), b in matrix_strategy(4, 2)) {
        let c = a.matmul(&b);
        let at = Matrix::from_fn(4, 3, |r, cc| a.get(cc, r));
        let c_tn = at.matmul_tn(&b);
        let bt = Matrix::from_fn(2, 4, |r, cc| b.get(cc, r));
        let c_nt = a.matmul_nt(&bt);
        for i in 0..c.data().len() {
            prop_assert!((c.data()[i] - c_tn.data()[i]).abs() < 1e-3);
            prop_assert!((c.data()[i] - c_nt.data()[i]).abs() < 1e-3);
        }
    }

    /// GELU is bounded below, asymptotically identity, and its analytic
    /// gradient matches finite differences.
    #[test]
    fn gelu_properties(x in -6.0f32..6.0) {
        prop_assert!(gelu(x) >= -0.2);
        prop_assert!(gelu(x) <= x.max(0.0) + 1e-4);
        let eps = 1e-3;
        let num = (gelu(x + eps) - gelu(x - eps)) / (2.0 * eps);
        prop_assert!((num - gelu_grad(x)).abs() < 5e-3);
    }

    /// Linear backward input gradient matches finite differences at a
    /// random coordinate, for random layer shapes and seeds.
    #[test]
    fn linear_dx_matches_fd(seed in 0u64..1000, r in 0usize..3, c in 0usize..4) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut lin = Linear::new(4, 3, &mut rng);
        let x = Matrix::randn(3, 4, 1.0, &mut rng);
        let upstream = Matrix::randn(3, 3, 1.0, &mut rng);
        let dx = lin.backward(&x, &upstream);
        let eval = lin.clone();
        let loss = |xm: &Matrix| eval.forward(xm).frobenius_dot(&upstream);
        let eps = 1e-2;
        let mut up = x.clone();
        up.set(r, c, x.get(r, c) + eps);
        let mut dn = x.clone();
        dn.set(r, c, x.get(r, c) - eps);
        let num = (loss(&up) - loss(&dn)) / (2.0 * eps);
        prop_assert!((num - dx.get(r, c)).abs() < 5e-2, "num {num} got {}", dx.get(r, c));
    }

    /// The parallel NN kernel is bit-identical to the sequential one for
    /// random shapes, seeds, and thread counts — the determinism contract
    /// the whole parallel execution layer rests on.
    #[test]
    fn matmul_par_bit_identical(
        m in 1usize..24, k in 1usize..24, n in 1usize..24,
        threads in 1usize..9, seed in 0u64..1000,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let a = Matrix::randn(m, k, 1.0, &mut rng);
        let b = Matrix::randn(k, n, 1.0, &mut rng);
        let seq = a.matmul_seq(&b);
        let par = a.matmul_par_with(&b, threads);
        prop_assert_eq!(seq.data(), par.data());
    }

    /// Same bit-identity contract for the TN (transposed-left) kernel.
    #[test]
    fn matmul_tn_par_bit_identical(
        m in 1usize..24, k in 1usize..24, n in 1usize..24,
        threads in 1usize..9, seed in 0u64..1000,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let a = Matrix::randn(k, m, 1.0, &mut rng);
        let b = Matrix::randn(k, n, 1.0, &mut rng);
        let seq = a.matmul_tn_seq(&b);
        let par = a.matmul_tn_par_with(&b, threads);
        prop_assert_eq!(seq.data(), par.data());
    }

    /// Same bit-identity contract for the NT (transposed-right) kernel.
    #[test]
    fn matmul_nt_par_bit_identical(
        m in 1usize..24, k in 1usize..24, n in 1usize..24,
        threads in 1usize..9, seed in 0u64..1000,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let a = Matrix::randn(m, k, 1.0, &mut rng);
        let b = Matrix::randn(n, k, 1.0, &mut rng);
        let seq = a.matmul_nt_seq(&b);
        let par = a.matmul_nt_par_with(&b, threads);
        prop_assert_eq!(seq.data(), par.data());
    }

    /// Dropout preserves expectation and its backward uses the same mask.
    #[test]
    fn dropout_expectation(seed in 0u64..1000, p in 0.0f32..0.9) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let x = Matrix::from_fn(30, 30, |_, _| 1.0);
        let (out, mask) = dropout_forward(&x, p, &mut rng);
        let mean: f32 = out.data().iter().sum::<f32>() / 900.0;
        prop_assert!((mean - 1.0).abs() < 0.25, "p {p} mean {mean}");
        // mask entries are exactly 0 or the inverse keep rate.
        let scale = if p == 0.0 { 1.0 } else { 1.0 / (1.0 - p) };
        for &m in mask.data() {
            prop_assert!(m == 0.0 || (m - scale).abs() < 1e-5);
        }
        let dy = Matrix::from_fn(30, 30, |_, _| 2.0);
        let dx = dropout_backward(&mask, &dy);
        for (d, m) in dx.data().iter().zip(mask.data()) {
            prop_assert!((d - 2.0 * m).abs() < 1e-5);
        }
    }
}

//! Failure injection: degenerate inputs, starved models, exhausted budgets.
//! The system must degrade to the paper's straight-line fallback — never
//! panic, never emit malformed output.

use kamel::{Kamel, KamelConfig, MultipointStrategy};
use kamel_geo::{GpsPoint, Trajectory};

fn street(n: usize) -> Trajectory {
    Trajectory::new(
        (0..n)
            .map(|i| GpsPoint::from_parts(41.15, -8.61 + i as f64 * 0.001, i as f64 * 10.0))
            .collect(),
    )
}

fn trained() -> Kamel {
    let kamel = Kamel::new(
        KamelConfig::builder()
            .pyramid_height(3)
            .model_threshold_k(50)
            .build(),
    );
    kamel.train(&(0..30).map(|_| street(25)).collect::<Vec<_>>());
    kamel
}

#[test]
fn empty_training_batches_are_noops() {
    let kamel = Kamel::new(KamelConfig::default());
    kamel.train(&[]);
    assert!(!kamel.is_trained());
    // Batches of sub-minimal trajectories are also no-ops.
    kamel.train(&[Trajectory::default(), street(1)]);
    assert!(!kamel.is_trained());
}

#[test]
fn degenerate_trajectories_pass_through() {
    let kamel = trained();
    for traj in [
        Trajectory::default(),
        street(1),
        // Two identical fixes (zero-length trajectory).
        Trajectory::new(vec![
            GpsPoint::from_parts(41.15, -8.61, 0.0),
            GpsPoint::from_parts(41.15, -8.61, 10.0),
        ]),
    ] {
        let out = kamel.impute(&traj);
        assert_eq!(out.trajectory.len(), traj.len());
        assert!(out.gaps.is_empty());
    }
}

#[test]
fn zero_duration_gap_is_survivable() {
    let kamel = trained();
    // Two far-apart fixes with the same timestamp: the speed ellipse
    // degenerates to the chord; imputation either follows the chord or
    // fails to linear — both acceptable, neither may panic.
    let sparse = Trajectory::new(vec![
        GpsPoint::from_parts(41.15, -8.61, 50.0),
        GpsPoint::from_parts(41.15, -8.59, 50.0),
    ]);
    let out = kamel.impute(&sparse);
    assert_eq!(out.gaps.len(), 1);
    assert!(out.trajectory.len() >= 2);
}

#[test]
fn out_of_order_timestamps_do_not_panic() {
    let kamel = trained();
    let sparse = Trajectory::new(vec![
        GpsPoint::from_parts(41.15, -8.61, 100.0),
        GpsPoint::from_parts(41.15, -8.595, 0.0), // goes back in time
    ]);
    let out = kamel.impute(&sparse);
    assert_eq!(out.gaps.len(), 1);
}

#[test]
fn starved_model_threshold_fails_to_linear() {
    // Threshold far above the corpus: no models are ever built.
    let kamel = Kamel::new(
        KamelConfig::builder()
            .pyramid_height(3)
            .model_threshold_k(1_000_000)
            .build(),
    );
    kamel.train(&(0..10).map(|_| street(25)).collect::<Vec<_>>());
    assert_eq!(kamel.stats().unwrap().models, 0);
    let out = kamel.impute(&street(25).sparsify(900.0));
    assert_eq!(out.failure_rate(), Some(1.0));
    // The fallback still materializes a usable dense trajectory.
    assert!(out.trajectory.len() > 10);
}

#[test]
fn tiny_call_budget_reports_failures_not_hangs() {
    let kamel = Kamel::new(
        KamelConfig::builder()
            .pyramid_height(3)
            .model_threshold_k(50)
            .max_model_calls(1)
            .build(),
    );
    kamel.train(&(0..30).map(|_| street(25)).collect::<Vec<_>>());
    let out = kamel.impute(&street(25).sparsify(1_500.0));
    for gap in &out.gaps {
        assert!(gap.outcome.model_calls <= 1);
    }
    // Large gaps cannot be filled in one call.
    assert_eq!(out.failure_rate(), Some(1.0));
}

#[test]
fn all_strategies_survive_a_hostile_gap() {
    // A gap pointing away from all training data.
    for strategy in [
        MultipointStrategy::Beam,
        MultipointStrategy::Iterative,
        MultipointStrategy::Single,
    ] {
        let kamel = Kamel::new(
            KamelConfig::builder()
                .pyramid_height(3)
                .model_threshold_k(50)
                .multipoint(strategy)
                .build(),
        );
        kamel.train(&(0..30).map(|_| street(25)).collect::<Vec<_>>());
        let hostile = Trajectory::new(vec![
            GpsPoint::from_parts(41.154, -8.61, 0.0),
            GpsPoint::from_parts(41.146, -8.595, 2.0), // absurd speed needed
        ]);
        let out = kamel.impute(&hostile);
        assert_eq!(out.gaps.len(), 1, "{strategy:?}");
        assert!(out.trajectory.len() >= 2, "{strategy:?}");
    }
}

#[test]
fn invalid_persisted_state_is_rejected() {
    assert!(Kamel::from_json("{").is_err());
    assert!(Kamel::from_json("{\"bogus\": 1}").is_err());
}

#[test]
fn anchor_dedup_handles_repeated_cells() {
    let kamel = trained();
    // Many fixes inside one cell followed by a jump: the run collapses to
    // one anchor; output still carries all original fixes.
    let mut points: Vec<GpsPoint> = (0..5)
        .map(|i| GpsPoint::from_parts(41.15, -8.61 + i as f64 * 0.00002, i as f64))
        .collect();
    points.push(GpsPoint::from_parts(41.15, -8.595, 200.0));
    let sparse = Trajectory::new(points.clone());
    let out = kamel.impute(&sparse);
    for p in &points {
        assert!(out.trajectory.points.contains(p));
    }
    assert_eq!(out.gaps.len(), 1);
}

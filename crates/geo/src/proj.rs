//! Local equirectangular projection.
//!
//! The hexagonal/square tessellations, the spatial constraints, and the road
//! simulator all work in a planar frame. KAMEL's spatial extent is city-scale
//! (the paper's datasets span ~500–660 km²), where an equirectangular
//! projection centered on the area of interest is accurate to centimeters —
//! far below GPS noise — and both directions are closed-form.

use crate::point::{LatLng, Xy};
use serde::{Deserialize, Serialize};

/// An equirectangular projection anchored at a reference coordinate.
///
/// Maps [`LatLng`] to planar meters ([`Xy`]) and back. The scale factor is
/// fixed at the anchor latitude, so accuracy degrades slowly as points move
/// away from the anchor; for < 100 km extents the error is negligible for
/// trajectory imputation purposes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LocalProjection {
    origin: LatLng,
    /// Meters per degree of longitude at the anchor latitude.
    m_per_deg_lng: f64,
    /// Meters per degree of latitude (constant on the sphere).
    m_per_deg_lat: f64,
}

impl LocalProjection {
    /// Creates a projection anchored at `origin`.
    ///
    /// # Panics
    /// Panics if `origin` is not a valid coordinate or lies on a pole
    /// (longitude scale would be zero).
    pub fn new(origin: LatLng) -> Self {
        assert!(origin.is_valid(), "projection origin must be valid: {origin:?}");
        assert!(
            origin.lat.abs() < 89.9,
            "projection origin too close to a pole: {origin:?}"
        );
        let m_per_deg_lat = crate::dist::EARTH_RADIUS_M * std::f64::consts::PI / 180.0;
        let m_per_deg_lng = m_per_deg_lat * origin.lat.to_radians().cos();
        Self {
            origin,
            m_per_deg_lng,
            m_per_deg_lat,
        }
    }

    /// The anchor coordinate this projection is centered on.
    #[inline]
    pub fn origin(&self) -> LatLng {
        self.origin
    }

    /// Projects a geodetic coordinate to planar meters.
    #[inline]
    pub fn to_xy(&self, p: LatLng) -> Xy {
        Xy::new(
            (p.lng - self.origin.lng) * self.m_per_deg_lng,
            (p.lat - self.origin.lat) * self.m_per_deg_lat,
        )
    }

    /// Inverse projection from planar meters back to geodetic degrees.
    #[inline]
    pub fn to_latlng(&self, p: Xy) -> LatLng {
        LatLng::new(
            self.origin.lat + p.y / self.m_per_deg_lat,
            self.origin.lng + p.x / self.m_per_deg_lng,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_is_exact_to_float_precision() {
        let proj = LocalProjection::new(LatLng::new(41.15, -8.61));
        for (lat, lng) in [(41.15, -8.61), (41.2, -8.5), (41.0, -8.7), (41.3, -8.61)] {
            let p = LatLng::new(lat, lng);
            let back = proj.to_latlng(proj.to_xy(p));
            assert!((back.lat - p.lat).abs() < 1e-10);
            assert!((back.lng - p.lng).abs() < 1e-10);
        }
    }

    #[test]
    fn projected_distance_matches_haversine() {
        let proj = LocalProjection::new(LatLng::new(-6.2, 106.8));
        let a = LatLng::new(-6.21, 106.81);
        let b = LatLng::new(-6.25, 106.90);
        let planar = proj.to_xy(a).dist(&proj.to_xy(b));
        let sphere = crate::dist::haversine_m(a, b);
        let rel = (planar - sphere).abs() / sphere;
        assert!(rel < 2e-3, "relative error {rel}");
    }

    #[test]
    fn origin_maps_to_zero() {
        let o = LatLng::new(41.15, -8.61);
        let proj = LocalProjection::new(o);
        let xy = proj.to_xy(o);
        assert_eq!(xy, Xy::new(0.0, 0.0));
    }

    #[test]
    #[should_panic(expected = "pole")]
    fn rejects_polar_origin() {
        let _ = LocalProjection::new(LatLng::new(89.95, 0.0));
    }

    #[test]
    #[should_panic(expected = "valid")]
    fn rejects_invalid_origin() {
        let _ = LocalProjection::new(LatLng::new(f64::NAN, 0.0));
    }
}

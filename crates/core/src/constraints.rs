//! Spatial Constraints — filtering model output (§5).
//!
//! BERT has no notion of physics: it may propose tokens that are unreachable
//! in the gap's time budget, jump behind the segment, or loop. This module
//! applies the paper's three filters to each batch of candidates:
//!
//! * **Speed** (§5.1): an imputed token between S and D must lie inside the
//!   ellipse with foci S, D and total-distance budget
//!   `v_max × (t_D − t_S)`.
//! * **Direction** (§5.1): a candidate must not deviate into the 45° cone
//!   from S back toward its previous token t₁, nor from D onward toward its
//!   next token t₂.
//! * **Cycles** (§5.2): an insertion must not create a repeated token
//!   sequence of length ≤ x (default 6).

use crate::config::{KamelConfig, SpeedMode};
use crate::tokenize::Tokenizer;
use kamel_geo::{angle_between_deg, bearing_deg, Ellipse, Xy};
use kamel_hexgrid::CellId;
use kamel_lm::Candidate;

/// Everything the filters need to know about one gap.
#[derive(Debug, Clone, Copy)]
pub struct GapContext {
    /// Gap source token.
    pub s: CellId,
    /// Gap destination token.
    pub d: CellId,
    /// Planar center of S.
    pub s_xy: Xy,
    /// Planar center of D.
    pub d_xy: Xy,
    /// Time at S in seconds (interpolated for imputed tokens).
    pub t_s: f64,
    /// Time at D in seconds.
    pub t_d: f64,
    /// Center of the token preceding S (t₁), when known.
    pub prev_xy: Option<Xy>,
    /// Center of the token following D (t₂), when known.
    pub next_xy: Option<Xy>,
    /// Observed speed of the preceding trajectory segment in m/s, when one
    /// exists — feeds [`crate::config::SpeedMode::AdaptivePreceding`].
    pub preceding_speed_mps: Option<f64>,
}

/// The Spatial Constraints module.
#[derive(Debug, Clone)]
pub struct SpatialConstraints {
    /// Maximum plausible speed in m/s (inferred from training data ×
    /// `speed_slack`, per §5.1 "KAMEL currently uses a fixed speed inferred
    /// from its training trajectory data").
    pub max_speed_mps: f64,
    speed_mode: SpeedMode,
    cone_deg: f64,
    cycle_window: usize,
    enabled: bool,
}

impl SpatialConstraints {
    /// Builds the module from the system config and the training-inferred
    /// speed cap.
    pub fn new(max_speed_mps: f64, config: &KamelConfig) -> Self {
        Self {
            max_speed_mps: max_speed_mps.max(1.0),
            speed_mode: config.speed_mode,
            cone_deg: config.direction_cone_deg,
            cycle_window: config.cycle_window,
            enabled: !config.disable_constraints,
        }
    }

    /// The speed cap applied to one gap under the configured policy.
    pub fn effective_speed_mps(&self, ctx: &GapContext) -> f64 {
        match self.speed_mode {
            SpeedMode::FixedFromTraining => self.max_speed_mps,
            SpeedMode::AdaptivePreceding { factor } => ctx
                .preceding_speed_mps
                .filter(|v| v.is_finite() && *v > 0.0)
                // The adaptive cap tightens, never loosens, the trained one.
                .map_or(self.max_speed_mps, |v| (v * factor).min(self.max_speed_mps)),
        }
    }

    /// The §5.1 speed ellipse for a gap.
    pub fn speed_ellipse(&self, ctx: &GapContext) -> Ellipse {
        Ellipse::speed_constraint(
            ctx.s_xy,
            ctx.d_xy,
            self.effective_speed_mps(ctx),
            ctx.t_d - ctx.t_s,
        )
    }

    /// Filters a candidate batch against the speed and direction
    /// constraints. Candidates equal to either endpoint are always dropped
    /// (they would be trivial x=1 cycles). Order is preserved.
    pub fn filter(
        &self,
        candidates: Vec<Candidate>,
        ctx: &GapContext,
        tokenizer: &Tokenizer,
    ) -> Vec<Candidate> {
        if !self.enabled {
            // "No Const." ablation still drops endpoint repeats, otherwise
            // imputation cannot terminate at all.
            return candidates
                .into_iter()
                .filter(|c| c.key != ctx.s.0 && c.key != ctx.d.0)
                .collect();
        }
        let ellipse = self.speed_ellipse(ctx);
        let back_cone_s = ctx
            .prev_xy
            .and_then(|p| bearing_deg(ctx.s_xy, p));
        let ahead_cone_d = ctx
            .next_xy
            .and_then(|p| bearing_deg(ctx.d_xy, p));
        candidates
            .into_iter()
            .filter(|c| {
                let cell = CellId(c.key);
                if cell == ctx.s || cell == ctx.d {
                    return false;
                }
                let pos = tokenizer.centroid(cell);
                if !ellipse.contains(pos) {
                    return false;
                }
                // Reject tokens behind S (toward t₁).
                if let Some(back) = back_cone_s {
                    if let Some(b) = bearing_deg(ctx.s_xy, pos) {
                        if angle_between_deg(b, back) <= self.cone_deg {
                            return false;
                        }
                    }
                }
                // Reject tokens past D (toward t₂).
                if let Some(ahead) = ahead_cone_d {
                    if let Some(b) = bearing_deg(ctx.d_xy, pos) {
                        if angle_between_deg(b, ahead) <= self.cone_deg {
                            return false;
                        }
                    }
                }
                true
            })
            .collect()
    }

    /// True when inserting produced a repeated adjacent block of length ≤ x
    /// that includes position `inserted_at` (§5.2). The Figure 5(d) overpass
    /// case — a token appearing twice *without* a repeated sequence — is
    /// correctly allowed.
    pub fn creates_cycle(&self, tokens: &[CellId], inserted_at: usize) -> bool {
        let n = tokens.len();
        debug_assert!(inserted_at < n);
        for x in 1..=self.cycle_window {
            if 2 * x > n {
                break;
            }
            // Any adjacent equal block pair of length x covering the
            // insertion point.
            let lo = inserted_at.saturating_sub(2 * x - 1);
            let hi = inserted_at.min(n - 2 * x);
            for start in lo..=hi {
                if tokens[start..start + x] == tokens[start + x..start + 2 * x] {
                    return true;
                }
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::KamelConfig;
    use kamel_geo::LatLng;

    fn setup() -> (Tokenizer, SpatialConstraints, KamelConfig) {
        let cfg = KamelConfig::default();
        let tok = Tokenizer::new(LatLng::new(41.15, -8.61), &cfg);
        let cons = SpatialConstraints::new(15.0, &cfg);
        (tok, cons, cfg)
    }

    fn cand(tok: &Tokenizer, x: f64, y: f64) -> Candidate {
        Candidate {
            key: tok.cell_of_xy(Xy::new(x, y)).0,
            prob: 0.5,
        }
    }

    fn ctx(tok: &Tokenizer, s: Xy, d: Xy, dt: f64) -> GapContext {
        GapContext {
            s: tok.cell_of_xy(s),
            d: tok.cell_of_xy(d),
            s_xy: s,
            d_xy: d,
            t_s: 0.0,
            t_d: dt,
            prev_xy: None,
            next_xy: None,
            preceding_speed_mps: None,
        }
    }

    #[test]
    fn speed_constraint_rejects_unreachable_tokens() {
        let (tok, cons, _) = setup();
        // 1000 m gap, 100 s budget, 15 m/s → ellipse budget 1500 m.
        let c = ctx(&tok, Xy::new(0.0, 0.0), Xy::new(1000.0, 0.0), 100.0);
        let reachable = cand(&tok, 500.0, 200.0); // ~2*sqrt(500²+200²)=1077
        let unreachable = cand(&tok, 500.0, 800.0); // ~2*sqrt(500²+800²)=1886
        let out = cons.filter(vec![reachable, unreachable], &c, &tok);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].key, reachable.key);
    }

    #[test]
    fn direction_constraint_rejects_backward_candidates() {
        let (tok, cons, _) = setup();
        let mut c = ctx(&tok, Xy::new(0.0, 0.0), Xy::new(500.0, 0.0), 600.0);
        // Previous token t₁ lies west of S: anything west of S (within 45°)
        // must be rejected.
        c.prev_xy = Some(Xy::new(-300.0, 0.0));
        let backward = cand(&tok, -150.0, 20.0);
        let forward = cand(&tok, 200.0, 20.0);
        let out = cons.filter(vec![backward, forward], &c, &tok);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].key, forward.key);
    }

    #[test]
    fn direction_constraint_rejects_overshoot_past_d() {
        let (tok, cons, _) = setup();
        let mut c = ctx(&tok, Xy::new(0.0, 0.0), Xy::new(500.0, 0.0), 600.0);
        // Next token t₂ lies east of D.
        c.next_xy = Some(Xy::new(800.0, 0.0));
        let overshoot = cand(&tok, 650.0, 10.0);
        let inside = cand(&tok, 250.0, 10.0);
        let out = cons.filter(vec![overshoot, inside], &c, &tok);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].key, inside.key);
    }

    #[test]
    fn endpoints_are_always_rejected() {
        let (tok, cons, _) = setup();
        let c = ctx(&tok, Xy::new(0.0, 0.0), Xy::new(400.0, 0.0), 600.0);
        let s_cand = Candidate { key: c.s.0, prob: 0.9 };
        let d_cand = Candidate { key: c.d.0, prob: 0.8 };
        let ok = cand(&tok, 200.0, 0.0);
        let out = cons.filter(vec![s_cand, d_cand, ok], &c, &tok);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].key, ok.key);
    }

    #[test]
    fn disabled_constraints_accept_everything_except_endpoints() {
        let (tok, _, mut cfg) = setup();
        cfg.disable_constraints = true;
        let cons = SpatialConstraints::new(15.0, &cfg);
        let c = ctx(&tok, Xy::new(0.0, 0.0), Xy::new(1000.0, 0.0), 10.0);
        // Physically absurd candidate far outside any ellipse.
        let absurd = cand(&tok, 5000.0, 5000.0);
        let s_dup = Candidate { key: c.s.0, prob: 0.9 };
        let out = cons.filter(vec![absurd, s_dup], &c, &tok);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].key, absurd.key);
    }

    fn cells(ids: &[i32]) -> Vec<CellId> {
        ids.iter().map(|&i| CellId::from_coords(i, 0)).collect()
    }

    #[test]
    fn trivial_cycle_detected() {
        let (_, cons, _) = setup();
        // Inserting a token equal to its neighbor: [.. 7, 7 ..]
        let toks = cells(&[1, 7, 7, 9]);
        assert!(cons.creates_cycle(&toks, 2));
    }

    #[test]
    fn longer_cycle_detected() {
        let (_, cons, _) = setup();
        // 3-4-3-4 ending at the inserted position.
        let toks = cells(&[1, 3, 4, 3, 4]);
        assert!(cons.creates_cycle(&toks, 4));
    }

    #[test]
    fn overpass_revisit_is_not_a_cycle() {
        let (_, cons, _) = setup();
        // The Figure 5(d) pattern: t3 appears twice but no repeated block.
        // S t3 t6 t7 t8 t3 D  → inserting the second t3 is legal.
        let toks = cells(&[0, 3, 6, 7, 8, 3, 100]);
        assert!(!cons.creates_cycle(&toks, 5));
    }

    #[test]
    fn cycle_window_limits_detection() {
        let cfg = KamelConfig::builder().cycle_window(2).build();
        let cons = SpatialConstraints::new(15.0, &cfg);
        // Repeated block of length 3 is beyond a window of 2.
        let toks = cells(&[5, 6, 7, 5, 6, 7]);
        assert!(!cons.creates_cycle(&toks, 5));
        let default_cons = SpatialConstraints::new(15.0, &KamelConfig::default());
        assert!(default_cons.creates_cycle(&toks, 5));
    }

    #[test]
    fn adaptive_speed_tightens_the_ellipse() {
        use crate::config::SpeedMode;
        let cfg = KamelConfig::builder()
            .speed_mode(SpeedMode::AdaptivePreceding { factor: 1.2 })
            .build();
        let tok = Tokenizer::new(LatLng::new(41.15, -8.61), &cfg);
        let cons = SpatialConstraints::new(30.0, &cfg);
        let mut c = ctx(&tok, Xy::new(0.0, 0.0), Xy::new(1000.0, 0.0), 120.0);
        // Without a hint, the trained cap applies.
        assert_eq!(cons.effective_speed_mps(&c), 30.0);
        // A slow preceding segment tightens the cap...
        c.preceding_speed_mps = Some(10.0);
        assert!((cons.effective_speed_mps(&c) - 12.0).abs() < 1e-9);
        // ...and a point reachable at 30 m/s but not 12 m/s gets rejected.
        let wide = cand(&tok, 500.0, 800.0); // total ~1886 m
        let kept_fixed = SpatialConstraints::new(30.0, &KamelConfig::default())
            .filter(vec![wide], &c, &tok);
        assert_eq!(kept_fixed.len(), 1, "fixed 30 m/s should accept");
        let kept_adaptive = cons.filter(vec![wide], &c, &tok);
        assert!(kept_adaptive.is_empty(), "adaptive 12 m/s must reject");
        // A fast hint never loosens beyond the trained cap.
        c.preceding_speed_mps = Some(500.0);
        assert_eq!(cons.effective_speed_mps(&c), 30.0);
    }

    #[test]
    fn filter_preserves_probability_order() {
        let (tok, cons, _) = setup();
        let c = ctx(&tok, Xy::new(0.0, 0.0), Xy::new(600.0, 0.0), 600.0);
        let c1 = Candidate {
            key: tok.cell_of_xy(Xy::new(150.0, 0.0)).0,
            prob: 0.5,
        };
        let c2 = Candidate {
            key: tok.cell_of_xy(Xy::new(300.0, 0.0)).0,
            prob: 0.3,
        };
        let c3 = Candidate {
            key: tok.cell_of_xy(Xy::new(450.0, 0.0)).0,
            prob: 0.2,
        };
        let out = cons.filter(vec![c1, c2, c3], &c, &tok);
        let probs: Vec<f64> = out.iter().map(|c| c.prob).collect();
        assert_eq!(probs, vec![0.5, 0.3, 0.2]);
    }
}

//! Per-shard health: the admission / ejection / re-admission state
//! machine (`std`-only, unit-tested without sockets).
//!
//! Each shard is in one of three states:
//!
//! ```text
//!              admit (probe: /healthz ok + /v1/info digest matches)
//!   Unverified ─────────────────────────────────────────────► Active
//!        ▲                                                      │
//!        │                                 eject_after consecutive
//!        │                                 failures (request or probe)
//!        │                                                      ▼
//!        └───────────── (never; admission is sticky) ──────  Ejected
//!                                                               │
//!                    admit (probe succeeds again) ──────────────┘
//! ```
//!
//! * `Unverified` — boot state: the router has not yet seen a healthy
//!   `/v1/info` with a matching config digest. Unverified shards receive
//!   no traffic (a mixed-grid shard must never answer a request).
//! * `Active` — serving. Any request/probe success resets the
//!   consecutive-failure count; `eject_after` consecutive failures eject.
//! * `Ejected` — receives no traffic; the periodic probe keeps checking
//!   and re-admits on the first healthy, digest-matching answer.
//!
//! Transitions are reported to the caller exactly once (the returned
//! booleans/previous states), so metrics counters stay deterministic even
//! when concurrent requests observe the same failing shard.

use std::sync::Mutex;
use std::time::Duration;

/// Health-machine tuning.
#[derive(Debug, Clone)]
pub struct HealthPolicy {
    /// Consecutive failures (request or probe) that eject an active
    /// shard.
    pub eject_after: u32,
    /// How often the background probe sweeps the fleet.
    pub probe_interval: Duration,
}

impl Default for HealthPolicy {
    fn default() -> Self {
        Self {
            eject_after: 3,
            probe_interval: Duration::from_millis(500),
        }
    }
}

/// One shard's position in the state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardState {
    /// Not yet admitted (no healthy, digest-matching `/v1/info` seen).
    Unverified,
    /// Serving traffic.
    Active,
    /// Ejected after consecutive failures; probed for re-admission.
    Ejected,
}

impl ShardState {
    /// The lowercase wire name used on `/v1/shards`.
    pub fn as_str(self) -> &'static str {
        match self {
            ShardState::Unverified => "unverified",
            ShardState::Active => "active",
            ShardState::Ejected => "ejected",
        }
    }
}

#[derive(Debug)]
struct Slot {
    state: ShardState,
    consecutive_failures: u32,
}

/// The fleet's health, indexed like `ShardMap::shards()`.
#[derive(Debug)]
pub struct HealthState {
    slots: Vec<Mutex<Slot>>,
    policy: HealthPolicy,
}

impl HealthState {
    /// All shards start `Unverified`.
    pub fn new(shards: usize, policy: HealthPolicy) -> Self {
        Self {
            slots: (0..shards)
                .map(|_| {
                    Mutex::new(Slot {
                        state: ShardState::Unverified,
                        consecutive_failures: 0,
                    })
                })
                .collect(),
            policy,
        }
    }

    /// The probe cadence configured for this fleet.
    pub fn policy(&self) -> &HealthPolicy {
        &self.policy
    }

    /// The shard's current state.
    pub fn state(&self, shard: usize) -> ShardState {
        self.slots[shard].lock().unwrap().state
    }

    /// True when the shard may receive traffic.
    pub fn is_available(&self, shard: usize) -> bool {
        self.state(shard) == ShardState::Active
    }

    /// `(state, consecutive_failures)` for every shard, for `/v1/shards`.
    pub fn snapshot(&self) -> Vec<(ShardState, u32)> {
        self.slots
            .iter()
            .map(|s| {
                let slot = s.lock().unwrap();
                (slot.state, slot.consecutive_failures)
            })
            .collect()
    }

    /// A request or probe succeeded: an active shard's failure streak
    /// resets. (Success alone never admits — only [`HealthState::admit`]
    /// does, after the digest check.)
    pub fn record_success(&self, shard: usize) {
        let mut slot = self.slots[shard].lock().unwrap();
        if slot.state == ShardState::Active {
            slot.consecutive_failures = 0;
        }
    }

    /// A request or probe failed. Returns `true` exactly once per
    /// ejection: when this failure pushed an active shard over the
    /// threshold.
    pub fn record_failure(&self, shard: usize) -> bool {
        let mut slot = self.slots[shard].lock().unwrap();
        slot.consecutive_failures = slot.consecutive_failures.saturating_add(1);
        if slot.state == ShardState::Active
            && slot.consecutive_failures >= self.policy.eject_after.max(1)
        {
            slot.state = ShardState::Ejected;
            return true;
        }
        false
    }

    /// The probe verified the shard (healthy + digest match): admit it.
    /// Returns the state it left, or `None` when it was already active
    /// (so admission/re-admission counters fire exactly once).
    pub fn admit(&self, shard: usize) -> Option<ShardState> {
        let mut slot = self.slots[shard].lock().unwrap();
        if slot.state == ShardState::Active {
            return None;
        }
        let previous = slot.state;
        slot.state = ShardState::Active;
        slot.consecutive_failures = 0;
        Some(previous)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn health(eject_after: u32) -> HealthState {
        HealthState::new(
            2,
            HealthPolicy {
                eject_after,
                probe_interval: Duration::from_millis(10),
            },
        )
    }

    #[test]
    fn shards_start_unverified_and_unavailable() {
        let h = health(3);
        assert_eq!(h.state(0), ShardState::Unverified);
        assert!(!h.is_available(0));
        // Failures on an unverified shard never "eject" it.
        assert!(!h.record_failure(0));
        assert_eq!(h.state(0), ShardState::Unverified);
    }

    #[test]
    fn admission_activates_and_reports_the_previous_state() {
        let h = health(3);
        assert_eq!(h.admit(0), Some(ShardState::Unverified));
        assert!(h.is_available(0));
        assert_eq!(h.admit(0), None, "already active: no second admission event");
    }

    #[test]
    fn ejection_takes_exactly_the_configured_streak() {
        let h = health(3);
        h.admit(0);
        assert!(!h.record_failure(0));
        assert!(!h.record_failure(0));
        assert!(h.record_failure(0), "third consecutive failure ejects");
        assert_eq!(h.state(0), ShardState::Ejected);
        assert!(!h.record_failure(0), "the ejection event fires only once");
    }

    #[test]
    fn a_success_resets_the_streak() {
        let h = health(2);
        h.admit(0);
        assert!(!h.record_failure(0));
        h.record_success(0);
        assert!(!h.record_failure(0), "streak restarted after the success");
        assert!(h.record_failure(0));
    }

    #[test]
    fn readmission_resets_and_reports_ejected() {
        let h = health(1);
        h.admit(0);
        assert!(h.record_failure(0));
        assert_eq!(h.admit(0), Some(ShardState::Ejected));
        assert!(h.is_available(0));
        // Fresh streak after re-admission.
        assert!(h.record_failure(0), "eject_after=1 ejects again immediately");
    }

    #[test]
    fn readmission_racing_an_inflight_failure_costs_one_streak_slot() {
        // A request was in flight against the ejected shard while the
        // probe re-admitted it. The stale failure lands *after* the
        // admission: it must count toward the fresh streak (the shard
        // really did just fail) but must not eject by itself.
        let h = health(2);
        h.admit(0);
        h.record_failure(0);
        assert!(h.record_failure(0), "ejected");
        assert_eq!(h.admit(0), Some(ShardState::Ejected));
        assert!(
            !h.record_failure(0),
            "stale in-flight failure after re-admission starts a new streak, not an ejection"
        );
        assert_eq!(h.snapshot()[0], (ShardState::Active, 1));
        assert!(h.record_failure(0), "one more genuine failure completes the streak");
    }

    #[test]
    fn failures_while_ejected_never_fire_a_second_ejection_event() {
        // Concurrent requests that raced the ejection keep failing against
        // the same shard; the counter keeps rising but the transition
        // (and its metrics increment) happened exactly once.
        let h = health(1);
        h.admit(0);
        assert!(h.record_failure(0));
        for _ in 0..5 {
            assert!(!h.record_failure(0));
        }
        assert_eq!(h.state(0), ShardState::Ejected);
        // Re-admission wipes the accumulated ejected-state failures.
        assert_eq!(h.admit(0), Some(ShardState::Ejected));
        assert_eq!(h.snapshot()[0], (ShardState::Active, 0));
    }

    #[test]
    fn success_while_not_active_does_not_clear_the_streak() {
        // A straggler success from before the ejection must not launder
        // the failure count: only admission (digest-checked) resets it.
        let h = health(2);
        h.admit(0);
        h.record_failure(0);
        h.record_failure(0);
        assert_eq!(h.state(0), ShardState::Ejected);
        h.record_success(0);
        assert_eq!(
            h.snapshot()[0],
            (ShardState::Ejected, 2),
            "stale success neither re-admits nor resets the streak"
        );
        // Same for a success against an unverified shard.
        h.record_success(1);
        assert_eq!(h.snapshot()[1], (ShardState::Unverified, 0));
        assert!(!h.is_available(1), "success alone never admits");
    }

    #[test]
    fn unverified_failure_streak_is_wiped_by_first_admission() {
        // Boot-time probe failures accumulate on the counter; the first
        // successful (digest-matching) admission must not inherit them,
        // or the shard would eject on its first real wobble.
        let h = health(3);
        h.record_failure(0);
        h.record_failure(0);
        assert_eq!(h.snapshot()[0], (ShardState::Unverified, 2));
        assert_eq!(h.admit(0), Some(ShardState::Unverified));
        assert_eq!(h.snapshot()[0], (ShardState::Active, 0));
        assert!(!h.record_failure(0));
        assert!(!h.record_failure(0));
        assert!(h.record_failure(0), "full fresh streak required after admission");
    }

    #[test]
    fn snapshot_reflects_per_shard_state() {
        let h = health(2);
        h.admit(0);
        h.admit(1);
        h.record_failure(1);
        let snap = h.snapshot();
        assert_eq!(snap[0], (ShardState::Active, 0));
        assert_eq!(snap[1], (ShardState::Active, 1));
    }
}

//! A dependency-free readiness poller: `epoll` on Linux, `kqueue` on
//! macOS/FreeBSD — the OS primitive under the async serving core
//! ([`crate::reactor`]) and the open-loop load generator.
//!
//! The build environment has no crates registry, so this speaks to the
//! kernel directly through `extern "C"` declarations against the libc
//! that `std` already links (the same approach as `shutdown.rs` and the
//! store's `mmap`). The surface is deliberately tiny:
//!
//! * [`Poller::register`] — watch an fd (edge-triggered) under a caller
//!   token;
//! * [`Poller::wait`] — block until readiness events (or a timeout);
//! * [`Waker`] — wake a blocked `wait` from any thread (a nonblocking
//!   `UnixStream` pair registered under [`WAKE_TOKEN`]).
//!
//! Everything is edge-triggered (`EPOLLET` / `EV_CLEAR`): a readiness
//! event fires once per kernel-state transition, so consumers must drain
//! (`read`/`write` until `WouldBlock`) before waiting again.
//!
//! On platforms with neither epoll nor kqueue, [`Poller::new`] returns
//! `Unsupported` and the serving layer falls back to the blocking
//! thread-per-connection path ([`crate::server::ConnMode::Threaded`]).

use std::io;
use std::time::Duration;

#[cfg(unix)]
use std::os::unix::io::{AsRawFd, RawFd};
#[cfg(unix)]
use std::os::unix::net::UnixStream;

/// The token [`Poller::wait`] reports for [`Waker`] wakeups. Reserved:
/// never register a connection under it.
pub const WAKE_TOKEN: u64 = u64::MAX;

/// Which directions of readiness to watch for an fd.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the fd becomes readable (or the peer hung up).
    pub readable: bool,
    /// Wake when the fd becomes writable again.
    pub writable: bool,
}

impl Interest {
    /// Readable only.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Readable and writable.
    pub const BOTH: Interest = Interest {
        readable: true,
        writable: true,
    };
}

/// One readiness event out of [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct PollEvent {
    /// The token the fd was registered under.
    pub token: u64,
    /// The fd has bytes to read (or EOF/hangup to observe via `read`).
    pub readable: bool,
    /// The fd can accept writes again.
    pub writable: bool,
    /// The peer closed or the fd errored; drain reads, then close.
    pub closed: bool,
}

#[cfg(all(unix, any(target_os = "linux", target_os = "android")))]
mod sys {
    //! Raw epoll, declared against the libc `std` links.
    use std::io;
    use std::os::unix::io::RawFd;
    use std::time::Duration;

    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;
    pub const EPOLLET: u32 = 1 << 31;
    const EPOLL_CLOEXEC: i32 = 0o2000000;
    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;

    /// The kernel's `struct epoll_event`. The kernel packs it ONLY on
    /// x86-64 (`EPOLL_PACKED`); on every other architecture `data` sits
    /// at offset 8 behind natural padding, so the packing must be
    /// cfg-gated or the event stride and token offset are wrong.
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    pub struct Event {
        pub events: u32,
        pub data: u64,
    }

    unsafe extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut Event) -> i32;
        fn epoll_wait(epfd: i32, events: *mut Event, maxevents: i32, timeout: i32) -> i32;
        fn close(fd: i32) -> i32;
    }

    fn check(ret: i32) -> io::Result<i32> {
        if ret < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(ret)
        }
    }

    /// An epoll instance.
    pub struct Selector {
        epfd: RawFd,
    }

    impl Selector {
        pub fn new() -> io::Result<Selector> {
            let epfd = check(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
            Ok(Selector { epfd })
        }

        fn ctl(&self, op: i32, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
            let mut ev = Event {
                events,
                data: token,
            };
            check(unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) }).map(|_| ())
        }

        pub fn register(&self, fd: RawFd, token: u64, events: u32) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, events, token)
        }

        pub fn reregister(&self, fd: RawFd, token: u64, events: u32) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, events, token)
        }

        pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
        }

        /// Waits for events; `timeout` of `None` blocks indefinitely.
        pub fn wait(
            &self,
            buf: &mut [Event],
            timeout: Option<Duration>,
        ) -> io::Result<usize> {
            let timeout_ms = match timeout {
                // Round up so a 100µs timeout does not busy-spin at 0ms.
                Some(t) => t.as_millis().min(i32::MAX as u128).max(u128::from(!t.is_zero())) as i32,
                None => -1,
            };
            loop {
                let n = unsafe {
                    epoll_wait(self.epfd, buf.as_mut_ptr(), buf.len() as i32, timeout_ms)
                };
                match check(n) {
                    Ok(n) => return Ok(n as usize),
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) => return Err(e),
                }
            }
        }
    }

    impl Drop for Selector {
        fn drop(&mut self) {
            unsafe {
                close(self.epfd);
            }
        }
    }

    /// Translates [`super::Interest`] to an edge-triggered event mask.
    pub fn event_mask(interest: super::Interest) -> u32 {
        let mut mask = EPOLLET | EPOLLRDHUP;
        if interest.readable {
            mask |= EPOLLIN;
        }
        if interest.writable {
            mask |= EPOLLOUT;
        }
        mask
    }

    /// Decodes a kernel event into the portable [`super::PollEvent`].
    pub fn decode(ev: &Event) -> super::PollEvent {
        let bits = ev.events;
        super::PollEvent {
            token: ev.data,
            readable: bits & (EPOLLIN | EPOLLRDHUP | EPOLLHUP | EPOLLERR) != 0,
            writable: bits & EPOLLOUT != 0,
            closed: bits & (EPOLLHUP | EPOLLERR | EPOLLRDHUP) != 0,
        }
    }
}

#[cfg(all(unix, any(target_os = "macos", target_os = "ios", target_os = "freebsd")))]
mod sys {
    //! Raw kqueue. Each (fd, filter) pair is its own kernel registration,
    //! so read and write interest are added/deleted independently.
    use std::io;
    use std::os::unix::io::RawFd;
    use std::time::Duration;

    const EVFILT_READ: i16 = -1;
    const EVFILT_WRITE: i16 = -2;
    const EV_ADD: u16 = 0x0001;
    const EV_DELETE: u16 = 0x0002;
    const EV_CLEAR: u16 = 0x0020;
    const EV_RECEIPT: u16 = 0x0040;
    const EV_ERROR: u16 = 0x4000;
    const EV_EOF: u16 = 0x8000;

    #[repr(C)]
    struct Timespec {
        tv_sec: i64,
        tv_nsec: i64,
    }

    /// `struct kevent`. macOS and FreeBSD (≥12) differ only in the
    /// trailing `ext` words FreeBSD appends.
    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct Event {
        ident: usize,
        filter: i16,
        flags: u16,
        fflags: u32,
        data: isize,
        udata: *mut std::ffi::c_void,
        #[cfg(target_os = "freebsd")]
        ext: [u64; 4],
    }

    unsafe impl Send for Event {}

    impl Event {
        fn change(fd: RawFd, filter: i16, flags: u16, token: u64) -> Event {
            Event {
                ident: fd as usize,
                filter,
                flags,
                fflags: 0,
                data: 0,
                udata: token as *mut std::ffi::c_void,
                #[cfg(target_os = "freebsd")]
                ext: [0; 4],
            }
        }
    }

    unsafe extern "C" {
        fn kqueue() -> i32;
        fn kevent(
            kq: i32,
            changelist: *const Event,
            nchanges: i32,
            eventlist: *mut Event,
            nevents: i32,
            timeout: *const Timespec,
        ) -> i32;
        fn close(fd: i32) -> i32;
    }

    fn check(ret: i32) -> io::Result<i32> {
        if ret < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(ret)
        }
    }

    pub struct Selector {
        kq: RawFd,
    }

    impl Selector {
        pub fn new() -> io::Result<Selector> {
            let kq = check(unsafe { kqueue() })?;
            Ok(Selector { kq })
        }

        /// Applies a change list; per-change errors are reported through
        /// `EV_RECEIPT` result events.
        fn apply(&self, changes: &mut [Event]) -> io::Result<()> {
            let n = check(unsafe {
                kevent(
                    self.kq,
                    changes.as_ptr(),
                    changes.len() as i32,
                    changes.as_mut_ptr(),
                    changes.len() as i32,
                    std::ptr::null(),
                )
            })?;
            for ev in changes.iter().take(n as usize) {
                if ev.flags & EV_ERROR != 0 && ev.data != 0 {
                    return Err(io::Error::from_raw_os_error(ev.data as i32));
                }
            }
            Ok(())
        }

        pub fn register(&self, fd: RawFd, token: u64, events: u32) -> io::Result<()> {
            let mut changes = Vec::with_capacity(2);
            if events & 1 != 0 {
                changes.push(Event::change(
                    fd,
                    EVFILT_READ,
                    EV_ADD | EV_CLEAR | EV_RECEIPT,
                    token,
                ));
            }
            if events & 2 != 0 {
                changes.push(Event::change(
                    fd,
                    EVFILT_WRITE,
                    EV_ADD | EV_CLEAR | EV_RECEIPT,
                    token,
                ));
            }
            self.apply(&mut changes)
        }

        pub fn reregister(&self, fd: RawFd, token: u64, events: u32) -> io::Result<()> {
            // EV_ADD on an existing (fd, filter) updates it in place; an
            // interest dropped to zero is deleted best-effort.
            self.register(fd, token, events)?;
            if events & 2 == 0 {
                let mut del = [Event::change(fd, EVFILT_WRITE, EV_DELETE | EV_RECEIPT, 0)];
                let _ = self.apply(&mut del);
            }
            Ok(())
        }

        pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
            // Closing the fd removes its kevents; explicit deletes are
            // best-effort cleanup for callers that keep the fd open.
            let mut del_r = [Event::change(fd, EVFILT_READ, EV_DELETE | EV_RECEIPT, 0)];
            let _ = self.apply(&mut del_r);
            let mut del_w = [Event::change(fd, EVFILT_WRITE, EV_DELETE | EV_RECEIPT, 0)];
            let _ = self.apply(&mut del_w);
            Ok(())
        }

        pub fn wait(&self, buf: &mut [Event], timeout: Option<Duration>) -> io::Result<usize> {
            let ts;
            let ts_ptr = match timeout {
                Some(t) => {
                    ts = Timespec {
                        tv_sec: t.as_secs().min(i64::MAX as u64) as i64,
                        tv_nsec: i64::from(t.subsec_nanos()),
                    };
                    &ts as *const Timespec
                }
                None => std::ptr::null(),
            };
            loop {
                let n = unsafe {
                    kevent(
                        self.kq,
                        std::ptr::null(),
                        0,
                        buf.as_mut_ptr(),
                        buf.len() as i32,
                        ts_ptr,
                    )
                };
                match check(n) {
                    Ok(n) => return Ok(n as usize),
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) => return Err(e),
                }
            }
        }
    }

    impl Drop for Selector {
        fn drop(&mut self) {
            unsafe {
                close(self.kq);
            }
        }
    }

    /// Interest encoding shared with the portable layer: bit 0 read,
    /// bit 1 write (kqueue has no combined mask).
    pub fn event_mask(interest: super::Interest) -> u32 {
        u32::from(interest.readable) | (u32::from(interest.writable) << 1)
    }

    pub fn decode(ev: &Event) -> super::PollEvent {
        super::PollEvent {
            token: ev.udata as u64,
            readable: ev.filter == EVFILT_READ,
            writable: ev.filter == EVFILT_WRITE,
            closed: ev.flags & EV_EOF != 0,
        }
    }
}

#[cfg(not(all(
    unix,
    any(
        target_os = "linux",
        target_os = "android",
        target_os = "macos",
        target_os = "ios",
        target_os = "freebsd"
    )
)))]
mod sys {
    //! No readiness syscall on this platform; [`super::Poller::new`]
    //! reports `Unsupported` and callers fall back to blocking I/O.
    use std::io;
    use std::time::Duration;

    pub type RawFd = i32;

    #[derive(Clone, Copy)]
    pub struct Event;

    pub struct Selector;

    impl Selector {
        pub fn new() -> io::Result<Selector> {
            Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "no epoll/kqueue on this platform",
            ))
        }

        pub fn register(&self, _fd: RawFd, _token: u64, _events: u32) -> io::Result<()> {
            unreachable!("Selector::new never succeeds here")
        }

        pub fn reregister(&self, _fd: RawFd, _token: u64, _events: u32) -> io::Result<()> {
            unreachable!("Selector::new never succeeds here")
        }

        pub fn deregister(&self, _fd: RawFd) -> io::Result<()> {
            unreachable!("Selector::new never succeeds here")
        }

        pub fn wait(&self, _buf: &mut [Event], _timeout: Option<Duration>) -> io::Result<usize> {
            unreachable!("Selector::new never succeeds here")
        }
    }

    pub fn event_mask(_interest: super::Interest) -> u32 {
        0
    }

    pub fn decode(_ev: &Event) -> super::PollEvent {
        unreachable!("Selector::new never succeeds here")
    }
}

/// A readiness poller over the platform selector, with a built-in waker
/// channel so other threads can interrupt [`Poller::wait`].
pub struct Poller {
    selector: sys::Selector,
    #[cfg(unix)]
    wake_rx: UnixStream,
    #[cfg(unix)]
    wake_tx: UnixStream,
    events: Vec<sys::Event>,
}

/// Wakes a [`Poller`] blocked in `wait` from any thread. Cloneable and
/// cheap; coalesces (many wakes before a drain produce one event).
#[derive(Clone)]
pub struct Waker {
    #[cfg(unix)]
    tx: std::sync::Arc<UnixStream>,
}

impl Waker {
    /// Interrupts the poller's current (or next) `wait`.
    pub fn wake(&self) {
        #[cfg(unix)]
        {
            use std::io::Write;
            // A full pipe already guarantees a pending wake event.
            let _ = (&*self.tx).write(&[1]);
        }
    }
}

impl Poller {
    /// Creates a poller, or `Unsupported` where no selector exists.
    pub fn new() -> io::Result<Poller> {
        let selector = sys::Selector::new()?;
        #[cfg(unix)]
        {
            let (wake_tx, wake_rx) = UnixStream::pair()?;
            wake_rx.set_nonblocking(true)?;
            wake_tx.set_nonblocking(true)?;
            selector.register(
                wake_rx.as_raw_fd(),
                WAKE_TOKEN,
                sys::event_mask(Interest::READ),
            )?;
            Ok(Poller {
                selector,
                wake_rx,
                wake_tx,
                events: vec![unsafe { std::mem::zeroed() }; 1024],
            })
        }
        #[cfg(not(unix))]
        {
            let _ = selector;
            unreachable!("Selector::new never succeeds off unix")
        }
    }

    /// A handle that wakes this poller from any thread.
    pub fn waker(&self) -> Waker {
        #[cfg(unix)]
        {
            Waker {
                tx: std::sync::Arc::new(
                    self.wake_tx.try_clone().expect("clone waker stream"),
                ),
            }
        }
        #[cfg(not(unix))]
        {
            Waker {}
        }
    }

    /// Watches `fd` (edge-triggered) under `token`.
    #[cfg(unix)]
    pub fn register(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        debug_assert_ne!(token, WAKE_TOKEN, "WAKE_TOKEN is reserved");
        self.selector.register(fd, token, sys::event_mask(interest))
    }

    /// Changes the interest set of a registered fd.
    #[cfg(unix)]
    pub fn reregister(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.selector.reregister(fd, token, sys::event_mask(interest))
    }

    /// Stops watching `fd` (also implicit when the fd is closed).
    #[cfg(unix)]
    pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
        self.selector.deregister(fd)
    }

    /// Blocks until readiness events arrive (or `timeout` passes),
    /// appending them to `out`. Waker wakeups are drained internally and
    /// reported as a [`WAKE_TOKEN`] event so callers can react (e.g.
    /// drain a completion queue) without seeing the pipe itself.
    pub fn wait(&mut self, out: &mut Vec<PollEvent>, timeout: Option<Duration>) -> io::Result<()> {
        let n = self.selector.wait(&mut self.events, timeout)?;
        for i in 0..n {
            let ev = sys::decode(&self.events[i]);
            if ev.token == WAKE_TOKEN {
                #[cfg(unix)]
                {
                    use std::io::Read;
                    let mut sink = [0u8; 64];
                    while let Ok(k) = (&self.wake_rx).read(&mut sink) {
                        if k < sink.len() {
                            break;
                        }
                    }
                }
                out.push(PollEvent {
                    token: WAKE_TOKEN,
                    readable: true,
                    writable: false,
                    closed: false,
                });
            } else {
                out.push(ev);
            }
        }
        Ok(())
    }
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};

    fn wait_for(poller: &mut Poller, want_token: u64, what: &str) -> Vec<PollEvent> {
        let mut events = Vec::new();
        for _ in 0..50 {
            poller
                .wait(&mut events, Some(Duration::from_millis(100)))
                .unwrap();
            if events.iter().any(|e| e.token == want_token) {
                return events;
            }
            events.clear();
        }
        panic!("no {what} event for token {want_token}");
    }

    #[test]
    fn readable_event_fires_once_per_arrival_edge() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let mut poller = Poller::new().unwrap();
        poller
            .register(server.as_raw_fd(), 7, Interest::READ)
            .unwrap();

        client.write_all(b"hello").unwrap();
        let events = wait_for(&mut poller, 7, "readable");
        let ev = events.iter().find(|e| e.token == 7).unwrap();
        assert!(ev.readable);

        // Drain; edge-triggered means no further event until new bytes.
        let mut buf = [0u8; 16];
        assert_eq!((&server).read(&mut buf).unwrap(), 5);
        let mut quiet = Vec::new();
        poller
            .wait(&mut quiet, Some(Duration::from_millis(50)))
            .unwrap();
        assert!(
            quiet.iter().all(|e| e.token != 7),
            "spurious re-event after drain: {quiet:?}"
        );

        // New bytes are a new edge.
        client.write_all(b"again").unwrap();
        wait_for(&mut poller, 7, "second readable");
    }

    #[test]
    fn peer_close_reports_closed() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let mut poller = Poller::new().unwrap();
        poller
            .register(server.as_raw_fd(), 3, Interest::READ)
            .unwrap();
        drop(client);
        let events = wait_for(&mut poller, 3, "close");
        let ev = events.iter().find(|e| e.token == 3).unwrap();
        assert!(ev.closed || ev.readable, "{ev:?}");
    }

    #[test]
    fn waker_interrupts_a_blocked_wait() {
        let mut poller = Poller::new().unwrap();
        let waker = poller.waker();
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            waker.wake();
        });
        let mut events = Vec::new();
        let t0 = std::time::Instant::now();
        poller
            .wait(&mut events, Some(Duration::from_secs(10)))
            .unwrap();
        assert!(t0.elapsed() < Duration::from_secs(5), "woke early");
        assert!(events.iter().any(|e| e.token == WAKE_TOKEN), "{events:?}");
        handle.join().unwrap();
        // Coalesced wakes drain clean: many wakes, one (or few) events.
        let waker = poller.waker();
        for _ in 0..100 {
            waker.wake();
        }
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_millis(100)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == WAKE_TOKEN));
        let mut quiet = Vec::new();
        poller
            .wait(&mut quiet, Some(Duration::from_millis(30)))
            .unwrap();
        assert!(
            quiet.iter().all(|e| e.token != WAKE_TOKEN),
            "wake pipe not drained: {quiet:?}"
        );
    }

    #[test]
    fn writable_fires_after_a_full_buffer_drains() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let mut poller = Poller::new().unwrap();
        poller
            .register(server.as_raw_fd(), 9, Interest::BOTH)
            .unwrap();
        // Fill the socket until WouldBlock.
        let chunk = [0u8; 64 * 1024];
        let mut wrote_total = 0usize;
        loop {
            match (&server).write(&chunk) {
                Ok(n) => wrote_total += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) => panic!("{e}"),
            }
        }
        assert!(wrote_total > 0);
        // Drain the peer; writability must come back.
        let mut drained = 0usize;
        let mut reader = client;
        reader
            .set_read_timeout(Some(Duration::from_millis(200)))
            .unwrap();
        let mut buf = vec![0u8; 256 * 1024];
        while drained < wrote_total {
            match reader.read(&mut buf) {
                Ok(0) => break,
                Ok(n) => drained += n,
                Err(_) => break,
            }
        }
        let events = wait_for(&mut poller, 9, "writable");
        let ev = events
            .iter()
            .find(|e| e.token == 9 && e.writable)
            .unwrap_or_else(|| panic!("no writable event: {events:?}"));
        assert!(ev.writable);
    }
}

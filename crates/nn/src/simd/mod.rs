//! Explicit SIMD kernels with runtime ISA dispatch.
//!
//! Every hot inner loop of the neural substrate (`dot`, the matmul block
//! kernels' axpy stripes, bias broadcasts, GELU, softmax, LayerNorm
//! statistics, and the int8 serving dot) funnels through this module. A
//! backend is selected **once** per process — AVX2 on x86-64 hosts that
//! report it, NEON on aarch64, a plain-array fallback everywhere else —
//! and can be overridden with `KAMEL_SIMD={auto,avx2,neon,scalar}` or
//! [`set_backend`] (tests and benchmarks sweep backends explicitly).
//!
//! **Bit-identity contract.** Whatever the backend, every kernel performs
//! the *same floating-point operations in the same order* as the scalar
//! reference in [`scalar`]:
//!
//! * Reductions (`dot`, `sum`, `sum_sq_diff`, `max`) accumulate into the
//!   same fixed 8-lane layout the scalar `chunks_exact(8)` loop fills —
//!   lane `l` sees exactly the elements `8k + l` — and the eight lanes
//!   are then combined sequentially (`acc[0] op acc[1] op …`), followed
//!   by the tail elements in ascending order. An AVX2 vector register
//!   *is* that 8-lane accumulator; NEON uses two 4-lane registers for
//!   lanes 0–3 and 4–7.
//! * Element-wise kernels (`axpy`, `add`, `add_assign`, `scale`,
//!   `gelu_map`, `ln_affine`) evaluate the same expression per element,
//!   so vectorizing them cannot change a single rounding.
//! * No FMA. The scalar reference rounds after the multiply and again
//!   after the add; a fused multiply-add rounds once and would diverge in
//!   the last ulp, so the AVX2 kernels deliberately use `mul` + `add`
//!   even when the host reports FMA.
//! * Transcendentals (`exp` in softmax, `tanh` in GELU) run the
//!   [`crate::math`] sequences — fixed chains of IEEE-exact primitives —
//!   so a vector backend evaluates whole lanes (see `avx2::exp_ps`)
//!   instead of falling back to per-lane libm, without changing a bit.
//! * Block kernels ([`nn_block`], [`nt_block`]) dispatch **once per
//!   block**, not once per stripe or per dot: AVX2 keeps output stripes
//!   in registers across the whole `k` loop (NN) and runs four
//!   independent dot chains (NT), while each output element still
//!   accumulates in the canonical order.
//! * Integer kernels (`dot_i8`, `dot_i8x4`) are exact, so any
//!   accumulation order yields identical results by construction.
//!
//! The contract is enforced by proptests (`tests/simd_identity.rs`) that
//! compare every backend pair directly, across non-multiple-of-8 tails
//! and thread budgets.

use std::sync::atomic::{AtomicU8, Ordering};

#[cfg(target_arch = "x86_64")]
mod avx2;
#[cfg(target_arch = "aarch64")]
mod neon;
pub(crate) mod scalar;

/// Environment variable that overrides backend auto-detection.
pub const SIMD_ENV: &str = "KAMEL_SIMD";

/// A SIMD backend. All variants exist on every architecture (so configs
/// and tests parse uniformly), but only backends the host supports can be
/// activated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Plain-array reference kernels; the canonical accumulation order.
    Scalar,
    /// 8-lane AVX2 kernels (x86-64).
    Avx2,
    /// 2×4-lane NEON kernels (aarch64).
    Neon,
}

impl Backend {
    /// The ISA name as reported on `/v1/info` and in BENCH_infer.json.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Scalar => "scalar",
            Backend::Avx2 => "avx2",
            Backend::Neon => "neon",
        }
    }
}

/// How a raw `KAMEL_SIMD` value resolved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EnvIsa {
    /// Not set: auto-detect.
    Unset,
    /// Explicit `auto`: auto-detect.
    Auto,
    /// An explicit backend request (may still be unsupported on this
    /// host, which falls back to detection with a warning).
    Requested(Backend),
    /// Unusable value; carries the warning to surface.
    Invalid(String),
}

/// Interprets a raw `KAMEL_SIMD` value (`None` = unset). Matching is
/// case-insensitive and whitespace-tolerant.
pub fn parse_simd_env(raw: Option<&str>) -> EnvIsa {
    let Some(raw) = raw else {
        return EnvIsa::Unset;
    };
    match raw.trim().to_ascii_lowercase().as_str() {
        "" => EnvIsa::Invalid(format!(
            "{SIMD_ENV} is set but empty; falling back to auto-detection"
        )),
        "auto" => EnvIsa::Auto,
        "scalar" => EnvIsa::Requested(Backend::Scalar),
        "avx2" => EnvIsa::Requested(Backend::Avx2),
        "neon" => EnvIsa::Requested(Backend::Neon),
        other => EnvIsa::Invalid(format!(
            "{SIMD_ENV}=`{other}` is not one of auto/avx2/neon/scalar; \
             falling back to auto-detection"
        )),
    }
}

/// 0 = unresolved; otherwise `Backend` + 1.
static BACKEND: AtomicU8 = AtomicU8::new(0);

fn encode(b: Backend) -> u8 {
    match b {
        Backend::Scalar => 1,
        Backend::Avx2 => 2,
        Backend::Neon => 3,
    }
}

fn decode(v: u8) -> Backend {
    match v {
        2 => Backend::Avx2,
        3 => Backend::Neon,
        _ => Backend::Scalar,
    }
}

/// True when this host can execute `b`'s kernels.
pub fn backend_supported(b: Backend) -> bool {
    match b {
        Backend::Scalar => true,
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => std::arch::is_x86_feature_detected!("avx2"),
        #[cfg(not(target_arch = "x86_64"))]
        Backend::Avx2 => false,
        Backend::Neon => cfg!(target_arch = "aarch64"),
    }
}

/// Every backend this host can execute, scalar first.
pub fn supported_backends() -> Vec<Backend> {
    [Backend::Scalar, Backend::Avx2, Backend::Neon]
        .into_iter()
        .filter(|&b| backend_supported(b))
        .collect()
}

/// The widest backend this host supports.
fn detect() -> Backend {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        return Backend::Avx2;
    }
    #[cfg(target_arch = "aarch64")]
    return Backend::Neon;
    #[allow(unreachable_code)]
    Backend::Scalar
}

/// The active backend, resolving and caching the choice on first use:
/// a prior [`set_backend`] call wins, then `KAMEL_SIMD`, then detection.
/// An unusable or unsupported `KAMEL_SIMD` value is reported on stderr
/// once and detection applies instead.
pub fn backend() -> Backend {
    let cached = BACKEND.load(Ordering::Relaxed);
    if cached != 0 {
        return decode(cached);
    }
    let env = std::env::var(SIMD_ENV).ok();
    let resolved = match parse_simd_env(env.as_deref()) {
        EnvIsa::Unset | EnvIsa::Auto => detect(),
        EnvIsa::Requested(b) if backend_supported(b) => b,
        EnvIsa::Requested(b) => {
            eprintln!(
                "warning: {SIMD_ENV}={} is not supported on this host; using {}",
                b.name(),
                detect().name()
            );
            detect()
        }
        EnvIsa::Invalid(warning) => {
            eprintln!("warning: {warning}");
            detect()
        }
    };
    BACKEND.store(encode(resolved), Ordering::Relaxed);
    resolved
}

/// Forces the active backend (tests and the benchmark backend sweep).
/// Fails when the host cannot execute `b`; results never change either
/// way — only speed does.
pub fn set_backend(b: Backend) -> Result<(), String> {
    if !backend_supported(b) {
        return Err(format!("backend {} is not supported on this host", b.name()));
    }
    BACKEND.store(encode(b), Ordering::Relaxed);
    Ok(())
}

/// The active ISA name (`scalar`/`avx2`/`neon`), as served on `/v1/info`.
pub fn active_isa() -> &'static str {
    backend().name()
}

/// Dense dot product in the canonical 8-lane accumulation order.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    match backend() {
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => unsafe { avx2::dot(a, b) },
        #[cfg(target_arch = "aarch64")]
        Backend::Neon => neon::dot(a, b),
        _ => scalar::dot(a, b),
    }
}

/// `out[i] += a * x[i]` — the axpy stripe at the heart of the NN/TN
/// matmul block kernels.
#[inline]
pub fn axpy(out: &mut [f32], a: f32, x: &[f32]) {
    debug_assert_eq!(out.len(), x.len());
    match backend() {
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => unsafe { avx2::axpy(out, a, x) },
        #[cfg(target_arch = "aarch64")]
        Backend::Neon => neon::axpy(out, a, x),
        _ => scalar::axpy(out, a, x),
    }
}

/// `out[i] += x[i]` (bias broadcasts, gradient accumulation).
#[inline]
pub fn add_assign(out: &mut [f32], x: &[f32]) {
    debug_assert_eq!(out.len(), x.len());
    match backend() {
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => unsafe { avx2::add_assign(out, x) },
        #[cfg(target_arch = "aarch64")]
        Backend::Neon => neon::add_assign(out, x),
        _ => scalar::add_assign(out, x),
    }
}

/// `out[i] = a[i] + b[i]` (residual sums).
#[inline]
pub fn add(a: &[f32], b: &[f32], out: &mut [f32]) {
    debug_assert_eq!(a.len(), b.len());
    debug_assert_eq!(a.len(), out.len());
    match backend() {
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => unsafe { avx2::add(a, b, out) },
        #[cfg(target_arch = "aarch64")]
        Backend::Neon => neon::add(a, b, out),
        _ => scalar::add(a, b, out),
    }
}

/// `out[i] *= s` (attention score scaling, softmax normalization).
#[inline]
pub fn scale(out: &mut [f32], s: f32) {
    match backend() {
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => unsafe { avx2::scale(out, s) },
        #[cfg(target_arch = "aarch64")]
        Backend::Neon => neon::scale(out, s),
        _ => scalar::scale(out, s),
    }
}

/// Maximum element in the canonical 8-lane reduction order
/// (`NEG_INFINITY` for an empty slice). `max` is insensitive to
/// association for non-NaN inputs, so all backends agree exactly.
#[inline]
pub fn max(x: &[f32]) -> f32 {
    match backend() {
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => unsafe { avx2::max(x) },
        #[cfg(target_arch = "aarch64")]
        Backend::Neon => neon::max(x),
        _ => scalar::max(x),
    }
}

/// Sum in the canonical 8-lane accumulation order (LayerNorm means).
#[inline]
pub fn sum(x: &[f32]) -> f32 {
    match backend() {
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => unsafe { avx2::sum(x) },
        #[cfg(target_arch = "aarch64")]
        Backend::Neon => neon::sum(x),
        _ => scalar::sum(x),
    }
}

/// `Σ (x[i] - mean)²` in the canonical 8-lane accumulation order
/// (LayerNorm variances).
#[inline]
pub fn sum_sq_diff(x: &[f32], mean: f32) -> f32 {
    match backend() {
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => unsafe { avx2::sum_sq_diff(x, mean) },
        #[cfg(target_arch = "aarch64")]
        Backend::Neon => neon::sum_sq_diff(x, mean),
        _ => scalar::sum_sq_diff(x, mean),
    }
}

/// `out[i] = gelu(x[i])` with the polynomial evaluated in vector lanes
/// and `tanh` per lane — element-wise, so bit-identical across backends.
#[inline]
pub fn gelu_map(x: &[f32], out: &mut [f32]) {
    debug_assert_eq!(x.len(), out.len());
    match backend() {
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => unsafe { avx2::gelu_map(x, out) },
        #[cfg(target_arch = "aarch64")]
        Backend::Neon => neon::gelu_map(x, out),
        _ => scalar::gelu_map(x, out),
    }
}

/// `out[c] = ((x[c] - mean) * rstd) * gamma[c] + beta[c]` — the LayerNorm
/// affine step, element-wise.
#[inline]
pub fn ln_affine(x: &[f32], mean: f32, rstd: f32, gamma: &[f32], beta: &[f32], out: &mut [f32]) {
    debug_assert_eq!(x.len(), out.len());
    debug_assert_eq!(x.len(), gamma.len());
    debug_assert_eq!(x.len(), beta.len());
    match backend() {
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => unsafe { avx2::ln_affine(x, mean, rstd, gamma, beta, out) },
        #[cfg(target_arch = "aarch64")]
        Backend::Neon => neon::ln_affine(x, mean, rstd, gamma, beta, out),
        _ => scalar::ln_affine(x, mean, rstd, gamma, beta, out),
    }
}

/// Widening `i8 × i8 → i32` dot product (the int8 serving path). Exact
/// integer arithmetic: every backend returns identical values for any
/// accumulation order.
#[inline]
pub fn dot_i8(a: &[i8], b: &[i8]) -> i32 {
    debug_assert_eq!(a.len(), b.len());
    match backend() {
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => unsafe { avx2::dot_i8(a, b) },
        #[cfg(target_arch = "aarch64")]
        Backend::Neon => neon::dot_i8(a, b),
        _ => scalar::dot_i8(a, b),
    }
}

/// Four int8 dots against four consecutive weight rows packed in `w`
/// (`w.len() == 4 * a.len()`) — the int8 matvec inner step, fused so the
/// activation codes are loaded once and the dispatch happens once per
/// four outputs. Exact integer arithmetic on every backend.
#[inline]
pub fn dot_i8x4(a: &[i8], w: &[i8]) -> [i32; 4] {
    debug_assert_eq!(w.len(), 4 * a.len());
    match backend() {
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => unsafe { avx2::dot_i8x4(a, w) },
        #[cfg(target_arch = "aarch64")]
        Backend::Neon => {
            let k = a.len();
            std::array::from_fn(|t| neon::dot_i8(a, &w[t * k..(t + 1) * k]))
        }
        _ => {
            let k = a.len();
            std::array::from_fn(|t| scalar::dot_i8(a, &w[t * k..(t + 1) * k]))
        }
    }
}

/// Absolute maximum plus an all-finite flag, in one pass — the scale
/// pass of activation quantization. `max` over absolute values is
/// associative for finite rows (the only case the quantizer uses the
/// maximum), so every backend returns identical values.
#[inline]
pub fn abs_max_finite(row: &[f32]) -> (f32, bool) {
    match backend() {
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => unsafe { avx2::abs_max_finite(row) },
        _ => scalar::abs_max_finite(row),
    }
}

/// Activation quantization: `out[i] = round_ties_even(row[i] * inv)`
/// clamped to ±127. Ties-to-even is the hardware nearest rounding
/// (`vroundps`), and the clamp runs in the same max/min operand order on
/// every backend, so codes are bit-identical.
#[inline]
pub fn quantize_i8(row: &[f32], inv: f32, out: &mut [i8]) {
    debug_assert_eq!(row.len(), out.len());
    match backend() {
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => unsafe { avx2::quantize_i8(row, inv, out) },
        _ => scalar::quantize_i8(row, inv, out),
    }
}

/// Reference int8 matvec + rescale, one [`dot_i8`]-style reduction per
/// output row. The rescale expression per output is the contract:
/// `sum as f32 * (x_scale * scales[o]) + bias[o]` with separate
/// multiplies and add.
fn quant_matvec_dots(
    xq: &[i8],
    x_scale: f32,
    wq: &[i8],
    scales: &[f32],
    bias: &[f32],
    out: &mut [f32],
    dot_fn: impl Fn(&[i8], &[i8]) -> i32,
) {
    let k = xq.len();
    for (o, y) in out.iter_mut().enumerate() {
        let acc = dot_fn(xq, &wq[o * k..(o + 1) * k]);
        *y = acc as f32 * (x_scale * scales[o]) + bias[o];
    }
}

/// Whole int8 matvec plus f32 rescale —
/// `out[o] = (xq · wq[o]) as f32 × (x_scale·scales[o]) + bias[o]` with
/// `wq` holding `out.len()` weight rows of length `xq.len()` — in **one**
/// dispatch (the int8 serving hot loop). The integer sums are exact and
/// the rescale runs the same multiply/add sequence on every backend, so
/// results are bit-identical.
#[inline]
pub fn quant_matvec(
    xq: &[i8],
    x_scale: f32,
    wq: &[i8],
    scales: &[f32],
    bias: &[f32],
    out: &mut [f32],
) {
    debug_assert_eq!(wq.len(), xq.len() * out.len());
    debug_assert_eq!(scales.len(), out.len());
    debug_assert_eq!(bias.len(), out.len());
    match backend() {
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => unsafe { avx2::quant_matvec(xq, x_scale, wq, scales, bias, out) },
        #[cfg(target_arch = "aarch64")]
        Backend::Neon => quant_matvec_dots(xq, x_scale, wq, scales, bias, out, neon::dot_i8),
        _ => quant_matvec_dots(xq, x_scale, wq, scales, bias, out, scalar::dot_i8),
    }
}

/// Softmax core: `row[i] = exp(row[i] - max)` through the
/// SIMD-reproducible [`crate::math::exp_f32`] sequence, returning the sum
/// in the canonical 8-lane accumulation order. One dispatch per row.
#[inline]
pub fn exp_sum(row: &mut [f32], max: f32) -> f32 {
    match backend() {
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => unsafe { avx2::exp_sum(row, max) },
        _ => scalar::exp_sum(row, max),
    }
}

/// Output-column block width for the stripe-based matmul fallback: the
/// active stripe of the output row plus one stripe of a `b` row stays
/// resident in L1 while the full `k` axis streams past it.
const NN_COL_BLOCK: usize = 1024;

/// Stripe-based NN block — the canonical accumulation order (ascending
/// `k` per output element) expressed as axpy sweeps. Backends without a
/// fused kernel run this with their own axpy.
fn nn_block_stripes(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    row0: usize,
    k: usize,
    n: usize,
    axpy_fn: impl Fn(&mut [f32], f32, &[f32]),
) {
    let rows = out.len() / n;
    for ri in 0..rows {
        let a_row = &a[(row0 + ri) * k..(row0 + ri + 1) * k];
        let out_row = &mut out[ri * n..(ri + 1) * n];
        let mut j0 = 0;
        while j0 < n {
            let j1 = (j0 + NN_COL_BLOCK).min(n);
            // Dense-path assumption: activations are dense, so no
            // zero-skip branch — it defeats vectorization and saves
            // nothing on real inputs.
            for (kk, &av) in a_row.iter().enumerate() {
                axpy_fn(&mut out_row[j0..j1], av, &b[kk * n + j0..kk * n + j1]);
            }
            j0 = j1;
        }
    }
}

/// Per-dot NT block — one [`dot`]-ordered reduction per output element.
fn nt_block_dots(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    row0: usize,
    k: usize,
    n: usize,
    dot_fn: impl Fn(&[f32], &[f32]) -> f32,
) {
    let rows = out.len() / n;
    for ri in 0..rows {
        let a_row = &a[(row0 + ri) * k..(row0 + ri + 1) * k];
        let out_row = &mut out[ri * n..(ri + 1) * n];
        for (j, o) in out_row.iter_mut().enumerate() {
            *o = dot_fn(a_row, &b[j * k..(j + 1) * k]);
        }
    }
}

/// NN matmul block kernel: `out (rows×n chunk at row0) += a[row0..] × b`
/// with `a: [m,k]`, `b: [k,n]`. **One dispatch per block**: AVX2 runs a
/// fused register-blocked kernel (the output stripe lives in `ymm`
/// registers across the whole `k` loop); other backends run the
/// axpy-stripe reference. Per output element the `k` axis accumulates in
/// ascending order with separate mul/add on every path, so results are
/// bit-identical across backends.
#[inline]
pub fn nn_block(a: &[f32], b: &[f32], out: &mut [f32], row0: usize, k: usize, n: usize) {
    if n == 0 {
        return;
    }
    match backend() {
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => unsafe { avx2::nn_block(a, b, out, row0, k, n) },
        #[cfg(target_arch = "aarch64")]
        Backend::Neon => nn_block_stripes(a, b, out, row0, k, n, neon::axpy),
        _ => nn_block_stripes(a, b, out, row0, k, n, scalar::axpy),
    }
}

/// NT matmul block kernel: `out (rows×n chunk at row0) = a[row0..] × bᵀ`
/// with `a: [m,k]`, `b: [n,k]`. One dispatch per block; AVX2 computes
/// four output dots concurrently (independent accumulator chains hide
/// add latency), each in the canonical [`dot`] order, so results are
/// bit-identical across backends.
#[inline]
pub fn nt_block(a: &[f32], b: &[f32], out: &mut [f32], row0: usize, k: usize, n: usize) {
    if n == 0 {
        return;
    }
    match backend() {
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => unsafe { avx2::nt_block(a, b, out, row0, k, n) },
        #[cfg(target_arch = "aarch64")]
        Backend::Neon => nt_block_dots(a, b, out, row0, k, n, neon::dot),
        _ => nt_block_dots(a, b, out, row0, k, n, scalar::dot),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_parsing_accepts_known_isas() {
        assert_eq!(parse_simd_env(None), EnvIsa::Unset);
        assert_eq!(parse_simd_env(Some("auto")), EnvIsa::Auto);
        assert_eq!(parse_simd_env(Some(" AVX2 ")), EnvIsa::Requested(Backend::Avx2));
        assert_eq!(parse_simd_env(Some("neon")), EnvIsa::Requested(Backend::Neon));
        assert_eq!(parse_simd_env(Some("scalar")), EnvIsa::Requested(Backend::Scalar));
    }

    #[test]
    fn env_parsing_rejects_unknown_values() {
        for raw in ["", "  ", "sse2", "avx512", "8"] {
            let EnvIsa::Invalid(warning) = parse_simd_env(Some(raw)) else {
                panic!("`{raw}` must be invalid");
            };
            assert!(warning.contains("falling back"), "{warning}");
        }
    }

    #[test]
    fn scalar_is_always_supported_and_settable() {
        assert!(backend_supported(Backend::Scalar));
        assert!(supported_backends().contains(&Backend::Scalar));
        let before = backend();
        set_backend(Backend::Scalar).unwrap();
        assert_eq!(backend(), Backend::Scalar);
        assert_eq!(active_isa(), "scalar");
        set_backend(before).unwrap();
    }

    #[test]
    fn unsupported_backends_are_refused() {
        for b in [Backend::Avx2, Backend::Neon] {
            if !backend_supported(b) {
                assert!(set_backend(b).is_err());
            }
        }
    }

    #[test]
    fn backend_names_round_trip_through_env_parsing() {
        for b in [Backend::Scalar, Backend::Avx2, Backend::Neon] {
            assert_eq!(parse_simd_env(Some(b.name())), EnvIsa::Requested(b));
        }
    }
}

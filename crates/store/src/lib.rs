//! # kamel-store — memory-mapped pyramid model store
//!
//! City-scale KAMEL deployments hold thousands of per-cell BERT models
//! (§4's pyramid partitioning); keeping every one heap-resident is what
//! caps how large a city a single serving process can carry. This crate
//! moves the model repository onto disk:
//!
//! * [`pack`] turns a trained [`kamel::Kamel`] into one `.kstore` file —
//!   a CRC-checked index over per-cell records, each holding the cell's
//!   serialized model plus (for quantized BERT engines) its packed int8
//!   weights in the exact layout `kamel_nn::quant_matvec` consumes.
//! * [`load_kamel`] opens a store (mmap on Linux, heap elsewhere) and
//!   returns a `Kamel` whose model lookups route through a
//!   [`StoreSource`]: models materialize lazily on first touch, live in
//!   an LRU set bounded by `--model-memory-budget`, and quantized
//!   weights serve as zero-copy views straight out of the mapped pages.
//!
//! Predictions from a store-backed system are byte-identical to the heap
//! system it was packed from: records carry the same serde form the heap
//! repository persists, the packed int8 layout round-trips bit-exactly,
//! and the store mirrors (rather than re-decides) the packed system's
//! quantization gate decisions.

#![warn(missing_docs)]

pub mod format;
pub mod mmap;
pub mod resident;

pub use format::{IndexEntry, RecordKey, Store, StoreBuilder, FLAG_QUANT};
pub use mmap::MappedFile;
pub use resident::StoreSource;

use kamel::checkpoint::fnv1a64;
use kamel::partition::ModelSummary;
use kamel::{Kamel, KamelConfig};
use std::path::Path;
use std::sync::Arc;

/// Errors from packing, opening, or materializing a store.
#[derive(Debug)]
pub enum StoreError {
    /// The underlying file operation failed.
    Io(std::io::Error),
    /// The file's bytes contradict its own checksums or framing.
    Corrupt(String),
    /// The file is well-formed but not usable by this process (format
    /// version skew, or packed for a different configuration).
    Incompatible(String),
    /// The system being packed could not be exported.
    Pack(String),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "model store I/O error: {e}"),
            StoreError::Corrupt(m) => write!(f, "model store corrupt: {m}"),
            StoreError::Incompatible(m) => write!(f, "model store incompatible: {m}"),
            StoreError::Pack(m) => write!(f, "model store pack failed: {m}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// What [`pack`] wrote.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PackStats {
    /// Model records written (the meta record is extra).
    pub models: usize,
    /// Models that carry packed int8 weights.
    pub quant_models: usize,
    /// Total store file size in bytes.
    pub bytes: u64,
}

/// FNV-1a64 digest of a config's JSON — the store↔process compatibility
/// check, matching the digest `kamel-server` reports on `/v1/info`.
pub fn config_digest_of(config: &KamelConfig) -> u64 {
    fnv1a64(&serde_json::to_vec(config).unwrap_or_default())
}

/// Renders a trained system into store-file bytes (see [`pack`]).
pub fn pack_bytes(kamel: &Kamel) -> Result<Vec<u8>, StoreError> {
    let skeleton = kamel
        .serving_skeleton_json()
        .map_err(|e| StoreError::Pack(e.to_string()))?;
    let summaries = serde_json::to_string(&kamel.model_summaries())
        .map_err(|e| StoreError::Pack(format!("summaries: {e}")))?;
    let mut builder = StoreBuilder::new(config_digest_of(kamel.config()));
    builder.push_record(RecordKey::META, skeleton.as_bytes(), summaries.as_bytes());
    for export in kamel
        .export_models()
        .map_err(|e| StoreError::Pack(e.to_string()))?
    {
        let aux = export
            .quant
            .map(|q| q.write_packed())
            .unwrap_or_default();
        builder.push_record(
            RecordKey::from_selection(export.selection),
            export.entry_json.as_bytes(),
            &aux,
        );
    }
    Ok(builder.finish())
}

/// Packs a trained system into a single `.kstore` file at `out`,
/// written atomically (temp file + fsync + rename) so a crash mid-pack
/// never leaves a half-written store where a serving process will look.
pub fn pack(kamel: &Kamel, out: &Path) -> Result<PackStats, StoreError> {
    let bytes = pack_bytes(kamel)?;
    kamel::checkpoint::write_file_atomic(out, &bytes)?;
    let store = Store::from_bytes(bytes)?;
    let quant_models = (1..store.record_count())
        .filter(|&i| store.record(i).map(|v| v.aux_len > 0).unwrap_or(false))
        .count();
    Ok(PackStats {
        models: store.record_count().saturating_sub(1),
        quant_models,
        bytes: store.file_len(),
    })
}

/// Opens the store at `path` and builds a serving-ready [`Kamel`]:
/// skeleton state (tokenizer, detokenizer, pyramid geometry) from the
/// meta record, model lookups routed through a budget-bounded
/// [`StoreSource`], and every record checksum verified by a boot sweep.
///
/// `budget_override` (from `--model-memory-budget`) takes precedence
/// over the packed config's `model_memory_budget`; with neither set,
/// residency is unbounded.
pub fn load_kamel(path: &Path, budget_override: Option<u64>) -> Result<Kamel, StoreError> {
    let store = Store::open(path)?;
    if store.record_count() == 0 || store.index()[0].key != RecordKey::META {
        return Err(StoreError::Corrupt(
            "store does not start with its meta record".to_string(),
        ));
    }
    let meta = store.record(0)?;
    let skeleton_json = std::str::from_utf8(meta.json)
        .map_err(|e| StoreError::Corrupt(format!("meta record holds non-UTF-8 JSON: {e}")))?;
    let summaries: Vec<ModelSummary> = {
        let b = store.byte_source();
        let bytes = &kamel_nn::ByteSource::bytes(&*b)[meta.aux_offset..meta.aux_offset + meta.aux_len];
        serde_json::from_slice(bytes)
            .map_err(|e| StoreError::Corrupt(format!("meta summaries failed to decode: {e}")))?
    };
    let mut kamel = Kamel::from_json(skeleton_json)
        .map_err(|e| StoreError::Corrupt(format!("meta skeleton failed to load: {e}")))?;
    let expected = config_digest_of(kamel.config());
    if expected != store.config_digest() {
        return Err(StoreError::Incompatible(format!(
            "store packed for config digest {:016x}, but its skeleton digests to {expected:016x} \
             — refusing to serve mismatched models",
            store.config_digest()
        )));
    }
    let skeleton_repo = kamel
        .repo_skeleton()
        .ok_or_else(|| StoreError::Corrupt("meta skeleton holds no trained state".to_string()))?;
    let budget = budget_override
        .or(kamel.config().model_memory_budget)
        .unwrap_or(u64::MAX);
    let source = StoreSource::new(store, skeleton_repo, summaries, budget)?;
    source.warm_all()?;
    kamel.set_model_source(Arc::new(source));
    Ok(kamel)
}

//! Flat hexagonal and square tessellations for KAMEL's Tokenization module.
//!
//! The paper tokenizes GPS points with Uber's H3 flat hexagonal grid (§3.1)
//! and compares against Google S2 squares (§8.5). What the algorithms rely on
//! is the abstract tessellation contract — point → cell id, cell → centroid,
//! neighbors, grid lines — not the specific icosahedral projection of H3, so
//! this crate implements both grids over a [`kamel_geo::LocalProjection`]
//! planar frame behind the [`Tessellation`] trait:
//!
//! * [`HexGrid`] — pointy-top hexagons in axial coordinates with a
//!   configurable edge length (the paper's `H`, default 75 m). All six
//!   neighbors of a cell are equidistant from its centroid, the property the
//!   paper's §3.1 rationale hinges on.
//! * [`SquareGrid`] — an S2-style square grid (default edge 120 m so the cell
//!   area matches a 75 m hexagon, exactly as §8.5 configures it).

#![warn(missing_docs)]

pub mod cell;
pub mod hex;
pub mod square;

pub use cell::CellId;
pub use hex::HexGrid;
pub use square::SquareGrid;

use kamel_geo::Xy;

/// A space tessellation: the contract KAMEL's Tokenization/Detokenization
/// modules require from a grid (§3, §7).
pub trait Tessellation: Send + Sync {
    /// Maps a planar point to the id of the cell containing it.
    fn cell_of(&self, p: Xy) -> CellId;

    /// The centroid of a cell in planar meters.
    fn centroid(&self, cell: CellId) -> Xy;

    /// The ids of all cells sharing an edge with `cell`
    /// (6 for hexagons, 4 for squares).
    fn neighbors(&self, cell: CellId) -> Vec<CellId>;

    /// Number of grid steps between two cells (0 when equal).
    fn grid_distance(&self, a: CellId, b: CellId) -> u32;

    /// The cells crossed when walking the straight segment between the two
    /// cell centers (inclusive of both ends, in order, no repeats).
    fn line(&self, a: CellId, b: CellId) -> Vec<CellId>;

    /// All cells within `radius` grid steps of `center` (inclusive).
    fn disk(&self, center: CellId, radius: u32) -> Vec<CellId>;

    /// The cells at exactly `radius` grid steps from `center` (the hollow
    /// ring). Default implementation filters [`Tessellation::disk`];
    /// implementations may override with a direct walk.
    fn ring(&self, center: CellId, radius: u32) -> Vec<CellId> {
        self.disk(center, radius)
            .into_iter()
            .filter(|&c| self.grid_distance(center, c) == radius)
            .collect()
    }

    /// The configured edge length in meters.
    fn edge_len_m(&self) -> f64;

    /// Typical center-to-center spacing between edge neighbors, in meters.
    /// For hexagons this is `sqrt(3) * edge`; for squares it is `edge`.
    fn neighbor_spacing_m(&self) -> f64;

    /// A short human-readable name ("hex" / "square") used in experiment
    /// reports.
    fn kind(&self) -> &'static str;
}

#[cfg(test)]
mod trait_tests {
    use super::*;

    fn check_contract(grid: &dyn Tessellation) {
        let p = Xy::new(1234.5, -678.9);
        let c = grid.cell_of(p);
        // The centroid of a point's cell must be near the point.
        let d = grid.centroid(c).dist(&p);
        assert!(
            d <= grid.neighbor_spacing_m(),
            "{}: centroid {d} m from point",
            grid.kind()
        );
        // Neighbor symmetry: if b is a's neighbor, a is b's neighbor.
        for n in grid.neighbors(c) {
            assert!(
                grid.neighbors(n).contains(&c),
                "{}: asymmetric neighbor",
                grid.kind()
            );
            assert_eq!(grid.grid_distance(c, n), 1);
        }
        // Disk radius 0 is the cell itself.
        assert_eq!(grid.disk(c, 0), vec![c]);
        // Ring radius 0 is the cell itself; ring 2 ∪ ring 1 ∪ ring 0 = disk 2.
        assert_eq!(grid.ring(c, 0), vec![c]);
        let mut rings: Vec<_> = (0..=2).flat_map(|r| grid.ring(c, r)).collect();
        rings.sort();
        let mut disk = grid.disk(c, 2);
        disk.sort();
        assert_eq!(rings, disk, "{}: rings must tile the disk", grid.kind());
    }

    #[test]
    fn hex_and_square_satisfy_contract() {
        check_contract(&HexGrid::new(75.0));
        check_contract(&SquareGrid::new(120.0));
    }
}

//! TrImpute-style crowd-wisdom imputation (the state-of-the-art no-map
//! comparator, Elshrif et al., SIGSPATIAL 2022).
//!
//! TrImpute relies on the "wisdom of the crowd": historical GPS points act
//! as virtual guides. To impute a gap it repeatedly steps from the current
//! position to the densest nearby cluster of historical points whose
//! recorded travel direction is consistent with progress toward the
//! destination. It needs *highly dense* prior data near the gap; where
//! history is thin the walk dies and the segment falls back to a straight
//! line — exactly the sensitivity the paper's experiments expose (§8.1:
//! "TrImpute was unable to cope with such gaps as it only works when there
//! are highly dense prior trajectories").

use crate::{ImputationOutput, TrajectoryImputer};
use kamel_geo::{angle_between_deg, bearing_deg, GpsPoint, LatLng, LocalProjection, Trajectory, Xy};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// TrImpute parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TrImputeConfig {
    /// Guidance grid cell size in meters.
    pub cell_m: f64,
    /// Walk step length in meters (how far each guided hop moves).
    pub step_m: f64,
    /// Minimum historical points in a cell for it to guide the walk.
    pub min_density: usize,
    /// Maximum deviation between a candidate direction and the bearing to
    /// the destination, in degrees.
    pub max_deviation_deg: f64,
    /// Output spacing / gap threshold in meters.
    pub max_gap_m: f64,
    /// Walk step budget per gap.
    pub max_steps: usize,
}

impl Default for TrImputeConfig {
    fn default() -> Self {
        Self {
            cell_m: 60.0,
            step_m: 80.0,
            min_density: 3,
            max_deviation_deg: 75.0,
            max_gap_m: 100.0,
            max_steps: 120,
        }
    }
}

/// Per-cell crowd statistics.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
struct CellStats {
    count: u32,
    /// Sum of heading unit vectors, for the circular mean.
    sin_sum: f64,
    cos_sum: f64,
    /// Positional centroid accumulators.
    x_sum: f64,
    y_sum: f64,
}

impl CellStats {
    fn centroid(&self) -> Xy {
        Xy::new(self.x_sum / self.count as f64, self.y_sum / self.count as f64)
    }

    fn mean_heading(&self) -> Option<f64> {
        if self.sin_sum == 0.0 && self.cos_sum == 0.0 {
            return None;
        }
        Some(kamel_geo::normalize_deg(
            self.sin_sum.atan2(self.cos_sum).to_degrees(),
        ))
    }
}

/// The trained TrImpute comparator.
#[derive(Debug, Clone)]
pub struct TrImpute {
    config: TrImputeConfig,
    proj: LocalProjection,
    cells: HashMap<(i32, i32), CellStats>,
}

impl TrImpute {
    /// Builds the guidance grid from historical trajectories.
    ///
    /// Returns an imputer even for an empty corpus (every gap will fail).
    pub fn train(config: TrImputeConfig, history: &[Trajectory]) -> Self {
        let origin = history
            .iter()
            .find_map(|t| t.points.first().map(|p| p.pos))
            .unwrap_or(LatLng::new(0.0, 0.0));
        let proj = LocalProjection::new(origin);
        let mut cells: HashMap<(i32, i32), CellStats> = HashMap::new();
        for traj in history {
            let xy: Vec<Xy> = traj.points.iter().map(|p| proj.to_xy(p.pos)).collect();
            for i in 0..xy.len() {
                let heading = heading_at(&xy, i);
                let key = cell_key(xy[i], config.cell_m);
                let stats = cells.entry(key).or_default();
                stats.count += 1;
                stats.x_sum += xy[i].x;
                stats.y_sum += xy[i].y;
                if let Some(h) = heading {
                    let r = h.to_radians();
                    stats.sin_sum += r.sin();
                    stats.cos_sum += r.cos();
                }
            }
        }
        Self {
            config,
            proj,
            cells,
        }
    }

    /// Number of populated guidance cells.
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// Attempts the guided walk from `s` to `d`; `None` when the crowd
    /// guidance dies before reaching the destination.
    fn guided_walk(&self, s: Xy, d: Xy) -> Option<Vec<Xy>> {
        let cfg = &self.config;
        let mut current = s;
        let mut path = Vec::new();
        for _ in 0..cfg.max_steps {
            if current.dist(&d) <= cfg.step_m {
                return Some(path);
            }
            let target_bearing = bearing_deg(current, d)?;
            // Candidate cells: ring of cells roughly one step away.
            let mut best: Option<(f64, Xy)> = None;
            let r = (cfg.step_m / cfg.cell_m).ceil() as i32 + 1;
            let center = cell_key(current, cfg.cell_m);
            for dx in -r..=r {
                for dy in -r..=r {
                    let key = (center.0 + dx, center.1 + dy);
                    let Some(stats) = self.cells.get(&key) else {
                        continue;
                    };
                    if (stats.count as usize) < cfg.min_density {
                        continue;
                    }
                    let pos = stats.centroid();
                    let hop = current.dist(&pos);
                    if hop < cfg.step_m * 0.35 || hop > cfg.step_m * 1.6 {
                        continue;
                    }
                    let Some(hop_bearing) = bearing_deg(current, pos) else {
                        continue;
                    };
                    // Must make progress toward D...
                    let toward = angle_between_deg(hop_bearing, target_bearing);
                    if toward > cfg.max_deviation_deg {
                        continue;
                    }
                    // ...and agree with the crowd's recorded direction when
                    // one exists.
                    let crowd_penalty = stats
                        .mean_heading()
                        .map_or(0.5, |h| {
                            let dev = angle_between_deg(hop_bearing, h);
                            // Streets are bidirectional in GPS history;
                            // 180°-opposed headings are fine.
                            dev.min(180.0 - dev).min(90.0) / 90.0
                        });
                    let score = stats.count as f64 * (1.0 - 0.5 * toward / cfg.max_deviation_deg)
                        * (1.0 - 0.4 * crowd_penalty);
                    if best.is_none_or(|(b, _)| score > b) {
                        best = Some((score, pos));
                    }
                }
            }
            let (_, next) = best?;
            path.push(next);
            current = next;
        }
        None
    }
}

impl TrajectoryImputer for TrImpute {
    fn name(&self) -> &str {
        "TrImpute"
    }

    fn impute(&self, sparse: &Trajectory) -> ImputationOutput {
        let cfg = &self.config;
        if sparse.len() < 2 {
            return ImputationOutput {
                trajectory: sparse.clone(),
                segments_total: 0,
                segments_failed: 0,
            };
        }
        let mut points = Vec::with_capacity(sparse.len() * 2);
        let mut segments_total = 0usize;
        let mut segments_failed = 0usize;
        for w in sparse.points.windows(2) {
            points.push(w[0]);
            let gap_m = w[0].pos.fast_dist_m(&w[1].pos);
            if gap_m <= cfg.max_gap_m {
                continue;
            }
            segments_total += 1;
            let s = self.proj.to_xy(w[0].pos);
            let d = self.proj.to_xy(w[1].pos);
            let interior: Vec<Xy> = match self.guided_walk(s, d) {
                Some(walk) if !walk.is_empty() => walk,
                _ => {
                    segments_failed += 1;
                    // Straight-line fallback.
                    let n = (gap_m / cfg.max_gap_m).ceil() as usize;
                    (1..n).map(|i| s.lerp(&d, i as f64 / n as f64)).collect()
                }
            };
            // Timestamps: linear in cumulative distance.
            let mut cum = Vec::with_capacity(interior.len());
            let mut total = 0.0;
            let mut prev = s;
            for p in &interior {
                total += prev.dist(p);
                cum.push(total);
                prev = *p;
            }
            total += prev.dist(&d);
            for (p, c) in interior.iter().zip(cum) {
                let f = if total > 0.0 { c / total } else { 0.0 };
                points.push(GpsPoint::new(
                    self.proj.to_latlng(*p),
                    w[0].t + (w[1].t - w[0].t) * f,
                ));
            }
        }
        points.push(*sparse.points.last().expect("len >= 2"));
        ImputationOutput {
            trajectory: Trajectory::new(points),
            segments_total,
            segments_failed,
        }
    }
}

fn cell_key(p: Xy, cell_m: f64) -> (i32, i32) {
    ((p.x / cell_m).floor() as i32, (p.y / cell_m).floor() as i32)
}

/// Heading at fix `i` from its neighbors; `None` for degenerate inputs.
fn heading_at(xy: &[Xy], i: usize) -> Option<f64> {
    let n = xy.len();
    if n < 2 {
        return None;
    }
    let (a, b) = if i == 0 {
        (xy[0], xy[1])
    } else if i == n - 1 {
        (xy[n - 2], xy[n - 1])
    } else {
        (xy[i - 1], xy[i + 1])
    };
    bearing_deg(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Dense history along one street (the regime TrImpute is built for).
    fn street_history(n: usize) -> Vec<Trajectory> {
        (0..n)
            .map(|j| {
                Trajectory::new(
                    (0..60)
                        .map(|i| {
                            GpsPoint::from_parts(
                                41.15 + (j % 3) as f64 * 1e-5,
                                -8.61 + i as f64 * 0.0005,
                                i as f64 * 5.0,
                            )
                        })
                        .collect(),
                )
            })
            .collect()
    }

    #[test]
    fn dense_history_bridges_a_gap() {
        let tr = TrImpute::train(TrImputeConfig::default(), &street_history(20));
        assert!(tr.cell_count() > 10);
        let sparse = Trajectory::new(vec![
            GpsPoint::from_parts(41.15, -8.61, 0.0),
            GpsPoint::from_parts(41.15, -8.60, 100.0), // ~837 m gap
        ]);
        let out = tr.impute(&sparse);
        assert_eq!(out.segments_total, 1);
        assert_eq!(out.segments_failed, 0, "walk should succeed on dense history");
        assert!(out.trajectory.len() > 4);
        // Walk points hug the street.
        for p in &out.trajectory.points {
            assert!((p.pos.lat - 41.15).abs() < 0.001, "stray point {p:?}");
        }
    }

    #[test]
    fn sparse_history_fails_to_linear() {
        // Only two faint traces: below min_density nearly everywhere.
        let tr = TrImpute::train(TrImputeConfig::default(), &street_history(1));
        let sparse = Trajectory::new(vec![
            GpsPoint::from_parts(41.15, -8.61, 0.0),
            GpsPoint::from_parts(41.15, -8.60, 100.0),
        ]);
        let out = tr.impute(&sparse);
        assert_eq!(out.segments_total, 1);
        assert_eq!(out.segments_failed, 1, "thin history must fail");
        // Fallback still materializes a dense straight line.
        assert!(out.trajectory.len() > 4);
    }

    #[test]
    fn empty_history_never_panics() {
        let tr = TrImpute::train(TrImputeConfig::default(), &[]);
        let sparse = Trajectory::new(vec![
            GpsPoint::from_parts(41.15, -8.61, 0.0),
            GpsPoint::from_parts(41.15, -8.60, 100.0),
        ]);
        let out = tr.impute(&sparse);
        assert_eq!(out.failure_rate(), Some(1.0));
    }

    #[test]
    fn off_history_gap_fails() {
        let tr = TrImpute::train(TrImputeConfig::default(), &street_history(20));
        // Gap far away from all history (different latitude band).
        let sparse = Trajectory::new(vec![
            GpsPoint::from_parts(41.30, -8.61, 0.0),
            GpsPoint::from_parts(41.30, -8.60, 100.0),
        ]);
        let out = tr.impute(&sparse);
        assert_eq!(out.segments_failed, 1);
    }

    #[test]
    fn timestamps_are_monotone() {
        let tr = TrImpute::train(TrImputeConfig::default(), &street_history(20));
        let sparse = Trajectory::new(vec![
            GpsPoint::from_parts(41.15, -8.61, 0.0),
            GpsPoint::from_parts(41.15, -8.602, 80.0),
            GpsPoint::from_parts(41.15, -8.594, 160.0),
        ]);
        let out = tr.impute(&sparse);
        for w in out.trajectory.points.windows(2) {
            assert!(w[1].t >= w[0].t - 1e-9);
        }
    }
}

//! Dynamic micro-batching with admission control.
//!
//! Concurrent single-trajectory requests are coalesced into one
//! `impute_batch` call under a max-batch-size / max-wait policy, then the
//! batch result is scattered back to the per-request tickets in submission
//! order:
//!
//! ```text
//!            submit()                    worker pool
//! request ──► bounded FIFO queue ──► [collect ≤ batch_max, linger ≤ batch_wait]
//!      │            │                        │ run_batch(inputs)
//!      │            └─ full → Overloaded     ▼
//!      ▼                (shed, 503)    scatter outputs to tickets (FIFO order)
//!  Ticket::wait_deadline ◄──────────────────┘
//! ```
//!
//! The batcher is generic over the request/response payloads and the
//! [`BatchRunner`], so every queueing, lingering, shedding, and drain
//! behaviour is unit-tested here with gated mock runners — no HTTP and no
//! trained models involved.

use crate::clock::{Clock, SystemClock};
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Executes one coalesced batch. Implementations must return exactly one
/// output per input, in input order.
pub trait BatchRunner<I, O>: Send + Sync + 'static {
    /// Runs the batch.
    fn run_batch(&self, batch: Vec<I>) -> Vec<O>;
}

impl<I, O, F> BatchRunner<I, O> for F
where
    F: Fn(Vec<I>) -> Vec<O> + Send + Sync + 'static,
{
    fn run_batch(&self, batch: Vec<I>) -> Vec<O> {
        self(batch)
    }
}

/// Micro-batcher tuning knobs.
#[derive(Debug, Clone)]
pub struct BatcherConfig {
    /// Worker threads draining the queue.
    pub workers: usize,
    /// Largest batch handed to the runner.
    pub batch_max: usize,
    /// How long a worker lingers for more requests after the first one.
    pub batch_wait: Duration,
    /// Admission-queue capacity; submissions beyond it are shed.
    pub queue_cap: usize,
}

impl Default for BatcherConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            batch_max: 16,
            batch_wait: Duration::from_micros(500),
            queue_cap: 256,
        }
    }
}

/// Why a submission was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The admission queue is full; the caller should answer 503.
    Overloaded,
    /// The batcher is draining for shutdown; new work is refused.
    Draining,
}

/// Why a ticket did not produce an output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitError {
    /// The deadline passed before the batch completed (the work still ran
    /// or is running; only this waiter gave up).
    Deadline,
    /// The work was shed at drain time: its deadline had already passed
    /// when a worker picked it up, so the runner never saw it. Distinct
    /// from [`WaitError::Deadline`] so callers can count the queue stage
    /// separately from the compute stage.
    Expired,
    /// The runner panicked or returned a short batch; no output exists.
    Failed,
}

enum SlotState<O> {
    Pending,
    Ready(O),
    Expired,
    Failed,
}

struct Slot<O> {
    state: Mutex<SlotState<O>>,
    ready: Condvar,
}

impl<O> Slot<O> {
    fn fill(&self, state: SlotState<O>) {
        *self.state.lock().unwrap() = state;
        self.ready.notify_all();
    }
}

/// A handle to one submitted request's eventual output.
pub struct Ticket<O>(Arc<Slot<O>>);

impl<O> std::fmt::Debug for Ticket<O> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Ticket")
    }
}

impl<O> Ticket<O> {
    /// Blocks until the output is ready or `deadline` passes. The batch
    /// still completes server-side after a deadline miss; only this waiter
    /// gives up.
    pub fn wait_deadline(self, deadline: Instant) -> Result<O, WaitError> {
        let mut state = self.0.state.lock().unwrap();
        loop {
            match std::mem::replace(&mut *state, SlotState::Pending) {
                SlotState::Ready(out) => return Ok(out),
                SlotState::Expired => return Err(WaitError::Expired),
                SlotState::Failed => return Err(WaitError::Failed),
                SlotState::Pending => {}
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(WaitError::Deadline);
            }
            let (guard, _) = self
                .0
                .ready
                .wait_timeout(state, deadline - now)
                .unwrap();
            state = guard;
        }
    }
}

/// One queued request: the payload, its (optional) absolute deadline, and
/// the slot its waiter parks on.
struct Item<I, O> {
    input: I,
    deadline: Option<Instant>,
    slot: Arc<Slot<O>>,
}

struct Queue<I, O> {
    items: VecDeque<Item<I, O>>,
    draining: bool,
}

struct Shared<I, O> {
    queue: Mutex<Queue<I, O>>,
    available: Condvar,
    config: BatcherConfig,
    clock: Arc<dyn Clock>,
}

/// The micro-batcher: a bounded FIFO queue drained by a fixed worker pool.
pub struct Batcher<I, O> {
    shared: Arc<Shared<I, O>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl<I: Send + 'static, O: Send + 'static> Batcher<I, O> {
    /// Starts the worker pool. `on_batch` observes the size of every batch
    /// handed to the runner (for the batch-size histogram).
    pub fn start(
        config: BatcherConfig,
        runner: Arc<dyn BatchRunner<I, O>>,
        on_batch: impl Fn(usize) + Send + Sync + 'static,
    ) -> Self {
        Self::start_with_clock(config, runner, on_batch, Arc::new(SystemClock))
    }

    /// [`Batcher::start`] with an injected [`Clock`] — drain-time expiry
    /// of deadlined submissions asks this clock, so tests shed
    /// deterministically with a [`crate::clock::ManualClock`].
    pub fn start_with_clock(
        config: BatcherConfig,
        runner: Arc<dyn BatchRunner<I, O>>,
        on_batch: impl Fn(usize) + Send + Sync + 'static,
        clock: Arc<dyn Clock>,
    ) -> Self {
        assert!(config.workers >= 1, "batcher needs at least one worker");
        assert!(config.batch_max >= 1, "batch_max must be at least 1");
        assert!(config.queue_cap >= 1, "queue_cap must be at least 1");
        let shared = Arc::new(Shared {
            queue: Mutex::new(Queue {
                items: VecDeque::with_capacity(config.queue_cap),
                draining: false,
            }),
            available: Condvar::new(),
            config: config.clone(),
            clock,
        });
        let on_batch: Arc<dyn Fn(usize) + Send + Sync> = Arc::new(on_batch);
        let workers = (0..config.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                let runner = Arc::clone(&runner);
                let on_batch = Arc::clone(&on_batch);
                std::thread::Builder::new()
                    .name(format!("kamel-batch-{i}"))
                    .spawn(move || worker_loop(&shared, &*runner, &*on_batch))
                    .expect("spawn batch worker")
            })
            .collect();
        Self { shared, workers }
    }

    /// Submits one request. Returns a [`Ticket`] for its output, or the
    /// shedding decision when the queue is full or draining.
    pub fn submit(&self, input: I) -> Result<Ticket<O>, SubmitError> {
        self.submit_with_deadline(input, None)
    }

    /// Submits one request with an absolute deadline. A worker that drains
    /// the item *after* the deadline has passed sheds it without running
    /// the batch — the waiter gets [`WaitError::Expired`] — instead of
    /// computing an answer nobody is waiting for.
    pub fn submit_with_deadline(
        &self,
        input: I,
        deadline: Option<Instant>,
    ) -> Result<Ticket<O>, SubmitError> {
        self.try_submit_with_deadline(input, deadline)
            .map_err(|(_, e)| e)
    }

    /// Like [`Batcher::submit_with_deadline`], but a refusal hands the
    /// input back — so an overloaded caller can route the same job to a
    /// degraded path instead of rebuilding it.
    pub fn try_submit_with_deadline(
        &self,
        input: I,
        deadline: Option<Instant>,
    ) -> Result<Ticket<O>, (I, SubmitError)> {
        let mut queue = self.shared.queue.lock().unwrap();
        if queue.draining {
            return Err((input, SubmitError::Draining));
        }
        if queue.items.len() >= self.shared.config.queue_cap {
            return Err((input, SubmitError::Overloaded));
        }
        let slot = Arc::new(Slot {
            state: Mutex::new(SlotState::Pending),
            ready: Condvar::new(),
        });
        queue.items.push_back(Item {
            input,
            deadline,
            slot: Arc::clone(&slot),
        });
        drop(queue);
        self.shared.available.notify_one();
        Ok(Ticket(slot))
    }

    /// Current admission-queue depth (requests accepted but not yet picked
    /// up by a worker).
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.lock().unwrap().items.len()
    }

    /// Drains and stops: refuses new submissions immediately, lets the
    /// workers finish everything already queued, and joins them.
    pub fn shutdown(mut self) {
        {
            let mut queue = self.shared.queue.lock().unwrap();
            queue.draining = true;
        }
        self.shared.available.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl<I, O> Drop for Batcher<I, O> {
    fn drop(&mut self) {
        // `shutdown` already joined; a dropped batcher must still release
        // its workers instead of leaking them.
        {
            let mut queue = self.shared.queue.lock().unwrap();
            queue.draining = true;
        }
        self.shared.available.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

fn worker_loop<I: 'static, O: 'static>(
    shared: &Shared<I, O>,
    runner: &dyn BatchRunner<I, O>,
    on_batch: &(dyn Fn(usize) + Send + Sync),
) {
    loop {
        let drained: Vec<Item<I, O>> = {
            let mut queue = shared.queue.lock().unwrap();
            // Wait for the first request (or the drain signal).
            while queue.items.is_empty() {
                if queue.draining {
                    return;
                }
                queue = shared.available.wait(queue).unwrap();
            }
            // Linger for more, up to batch_wait past the first pickup —
            // unless the batch is already full or the server is draining.
            if !shared.config.batch_wait.is_zero() {
                let deadline = Instant::now() + shared.config.batch_wait;
                while queue.items.len() < shared.config.batch_max && !queue.draining {
                    let now = Instant::now();
                    if now >= deadline {
                        break;
                    }
                    let (guard, timeout) = shared
                        .available
                        .wait_timeout(queue, deadline - now)
                        .unwrap();
                    queue = guard;
                    if timeout.timed_out() {
                        break;
                    }
                }
            }
            let n = queue.items.len().min(shared.config.batch_max);
            queue.items.drain(..n).collect()
        };
        // Two workers can race past the empty-wait for the same request; a
        // sibling may have drained the whole queue while this worker
        // lingered. Never hand the runner an empty batch.
        if drained.is_empty() {
            continue;
        }
        // More work may remain queued (we took at most batch_max): hand it
        // to an idle sibling while this worker runs the batch.
        shared.available.notify_one();
        // Drain-time expiry: items whose deadline already passed are shed
        // here — their waiters have given up (or are about to), so running
        // them would burn compute on answers nobody reads. One clock read
        // covers the whole drain.
        let now = shared.clock.now();
        let mut batch = Vec::with_capacity(drained.len());
        for item in drained {
            match item.deadline {
                Some(d) if d <= now => item.slot.fill(SlotState::Expired),
                _ => batch.push((item.input, item.slot)),
            }
        }
        if batch.is_empty() {
            continue; // the whole drain had expired
        }
        on_batch(batch.len());
        let (inputs, slots): (Vec<I>, Vec<Arc<Slot<O>>>) = batch.into_iter().unzip();
        let outputs = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            runner.run_batch(inputs)
        }));
        match outputs {
            Ok(outputs) => {
                let got = outputs.len();
                let mut outputs = outputs.into_iter();
                for (i, slot) in slots.iter().enumerate() {
                    match outputs.next() {
                        Some(out) => slot.fill(SlotState::Ready(out)),
                        None => {
                            debug_assert!(false, "runner returned {got} outputs for {i}+ inputs");
                            slot.fill(SlotState::Failed);
                        }
                    }
                }
            }
            Err(_) => {
                // A panicking runner must not hang the waiters.
                for slot in &slots {
                    slot.fill(SlotState::Failed);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc;

    fn far() -> Instant {
        Instant::now() + Duration::from_secs(30)
    }

    /// A runner that doubles its inputs and records every batch size.
    fn doubling(batches: Arc<Mutex<Vec<usize>>>) -> Arc<dyn BatchRunner<u64, u64>> {
        Arc::new(move |batch: Vec<u64>| {
            batches.lock().unwrap().push(batch.len());
            batch.into_iter().map(|x| x * 2).collect()
        })
    }

    #[test]
    fn single_request_roundtrip() {
        let batches = Arc::new(Mutex::new(Vec::new()));
        let b = Batcher::start(
            BatcherConfig {
                workers: 1,
                ..Default::default()
            },
            doubling(Arc::clone(&batches)),
            |_| {},
        );
        let ticket = b.submit(21).unwrap();
        assert_eq!(ticket.wait_deadline(far()), Ok(42));
        b.shutdown();
        assert_eq!(batches.lock().unwrap().iter().sum::<usize>(), 1);
    }

    #[test]
    fn outputs_scatter_in_submission_order() {
        let batches = Arc::new(Mutex::new(Vec::new()));
        let b = Batcher::start(
            BatcherConfig {
                workers: 2,
                batch_max: 8,
                batch_wait: Duration::from_millis(5),
                queue_cap: 64,
            },
            doubling(Arc::clone(&batches)),
            |_| {},
        );
        let tickets: Vec<_> = (0..40u64).map(|i| b.submit(i).unwrap()).collect();
        for (i, t) in tickets.into_iter().enumerate() {
            assert_eq!(t.wait_deadline(far()), Ok(i as u64 * 2));
        }
        b.shutdown();
        let sizes = batches.lock().unwrap();
        assert_eq!(sizes.iter().sum::<usize>(), 40);
        assert!(sizes.iter().all(|&s| (1..=8).contains(&s)), "{sizes:?}");
    }

    #[test]
    fn lingering_coalesces_concurrent_requests() {
        let batches = Arc::new(Mutex::new(Vec::new()));
        let b = Batcher::start(
            BatcherConfig {
                workers: 1,
                batch_max: 32,
                batch_wait: Duration::from_millis(80),
                queue_cap: 64,
            },
            doubling(Arc::clone(&batches)),
            |_| {},
        );
        // Submissions landing within the linger window join one batch.
        let tickets: Vec<_> = (0..10u64).map(|i| b.submit(i).unwrap()).collect();
        for t in tickets {
            t.wait_deadline(far()).unwrap();
        }
        b.shutdown();
        let sizes = batches.lock().unwrap();
        assert!(
            sizes.iter().any(|&s| s > 1),
            "no coalescing happened: {sizes:?}"
        );
    }

    /// A runner that blocks until released through a channel.
    struct Gated {
        entered: mpsc::SyncSender<()>,
        release: Mutex<mpsc::Receiver<()>>,
    }

    impl BatchRunner<u64, u64> for Gated {
        fn run_batch(&self, batch: Vec<u64>) -> Vec<u64> {
            let _ = self.entered.send(());
            let _ = self.release.lock().unwrap().recv();
            batch
        }
    }

    #[test]
    fn full_queue_sheds_exactly_the_overflow() {
        const CAP: usize = 4;
        const OVERFLOW: usize = 3;
        let (entered_tx, entered_rx) = mpsc::sync_channel(8);
        let (release_tx, release_rx) = mpsc::sync_channel::<()>(8);
        let b = Batcher::start(
            BatcherConfig {
                workers: 1,
                batch_max: 1,
                batch_wait: Duration::ZERO,
                queue_cap: CAP,
            },
            Arc::new(Gated {
                entered: entered_tx,
                release: Mutex::new(release_rx),
            }),
            |_| {},
        );
        // First request occupies the (only) worker inside the gate …
        let first = b.submit(0).unwrap();
        entered_rx.recv().unwrap();
        // … so the next CAP requests exactly fill the queue …
        let queued: Vec<_> = (1..=CAP as u64).map(|i| b.submit(i).unwrap()).collect();
        assert_eq!(b.queue_depth(), CAP);
        // … and everything beyond is shed, deterministically.
        for _ in 0..OVERFLOW {
            assert_eq!(b.submit(99).unwrap_err(), SubmitError::Overloaded);
        }
        // Release the gate: the occupant and all queued requests complete.
        for _ in 0..(1 + CAP) {
            release_tx.send(()).unwrap();
        }
        assert_eq!(first.wait_deadline(far()), Ok(0));
        for (i, t) in queued.into_iter().enumerate() {
            assert_eq!(t.wait_deadline(far()), Ok(i as u64 + 1));
        }
        b.shutdown();
    }

    #[test]
    fn shutdown_drains_queued_work_and_refuses_new() {
        let done = Arc::new(AtomicUsize::new(0));
        let done2 = Arc::clone(&done);
        let b: Batcher<u64, u64> = Batcher::start(
            BatcherConfig {
                workers: 1,
                batch_max: 4,
                batch_wait: Duration::from_millis(50),
                queue_cap: 64,
            },
            Arc::new(move |batch: Vec<u64>| {
                std::thread::sleep(Duration::from_millis(10));
                done2.fetch_add(batch.len(), Ordering::SeqCst);
                batch
            }),
            |_| {},
        );
        let tickets: Vec<_> = (0..12u64).map(|i| b.submit(i).unwrap()).collect();
        b.shutdown(); // drains everything already accepted
        assert_eq!(done.load(Ordering::SeqCst), 12);
        for (i, t) in tickets.into_iter().enumerate() {
            assert_eq!(t.wait_deadline(far()), Ok(i as u64));
        }
    }

    #[test]
    fn draining_batcher_refuses_submissions() {
        let b: Batcher<u64, u64> = Batcher::start(
            BatcherConfig::default(),
            Arc::new(|batch: Vec<u64>| batch),
            |_| {},
        );
        {
            b.shared.queue.lock().unwrap().draining = true;
        }
        assert_eq!(b.submit(1).unwrap_err(), SubmitError::Draining);
    }

    #[test]
    fn deadline_miss_returns_deadline_error() {
        let (release_tx, release_rx) = mpsc::sync_channel::<()>(1);
        let (entered_tx, _entered_rx) = mpsc::sync_channel(1);
        let b = Batcher::start(
            BatcherConfig {
                workers: 1,
                batch_max: 1,
                batch_wait: Duration::ZERO,
                queue_cap: 4,
            },
            Arc::new(Gated {
                entered: entered_tx,
                release: Mutex::new(release_rx),
            }),
            |_| {},
        );
        let ticket = b.submit(7).unwrap();
        let verdict = ticket.wait_deadline(Instant::now() + Duration::from_millis(20));
        assert_eq!(verdict, Err(WaitError::Deadline));
        release_tx.send(()).unwrap();
        b.shutdown();
    }

    #[test]
    fn expired_submissions_are_shed_at_drain_time_not_run() {
        use crate::clock::ManualClock;
        let clock = ManualClock::shared();
        let (entered_tx, entered_rx) = mpsc::sync_channel(8);
        let (release_tx, release_rx) = mpsc::sync_channel::<()>(8);
        let release_rx = Mutex::new(release_rx);
        let ran = Arc::new(Mutex::new(Vec::new()));
        let ran2 = Arc::clone(&ran);
        let b = Batcher::start_with_clock(
            BatcherConfig {
                workers: 1,
                batch_max: 4,
                batch_wait: Duration::ZERO,
                queue_cap: 8,
            },
            Arc::new(move |batch: Vec<u64>| {
                let _ = entered_tx.send(());
                let _ = release_rx.lock().unwrap().recv();
                ran2.lock().unwrap().extend(batch.iter().copied());
                batch
            }),
            |_| {},
            Arc::clone(&clock) as Arc<dyn Clock>,
        );
        // Occupy the single worker so the queue builds up deterministically.
        let occupant = b.submit(0).unwrap();
        entered_rx.recv().unwrap();
        // One doomed item (deadline = now, then the clock moves past it),
        // one with headroom, one with no deadline at all.
        let doomed = b
            .submit_with_deadline(1, Some(clock.now()))
            .unwrap();
        let live = b
            .submit_with_deadline(2, Some(clock.now() + Duration::from_secs(60)))
            .unwrap();
        let eternal = b.submit(3).unwrap();
        clock.advance(Duration::from_millis(1));
        // Release the occupant; the worker drains the queue next.
        release_tx.send(()).unwrap();
        release_tx.send(()).unwrap();
        assert_eq!(occupant.wait_deadline(far()), Ok(0));
        assert_eq!(
            doomed.wait_deadline(far()),
            Err(WaitError::Expired),
            "the expired item is shed, distinct from a waiter timeout"
        );
        assert_eq!(live.wait_deadline(far()), Ok(2));
        assert_eq!(eternal.wait_deadline(far()), Ok(3));
        b.shutdown();
        let ran = ran.lock().unwrap();
        assert!(!ran.contains(&1), "the runner never saw the expired item: {ran:?}");
        assert!(ran.contains(&2) && ran.contains(&3), "{ran:?}");
    }

    #[test]
    fn a_fully_expired_drain_runs_no_batch_at_all() {
        use crate::clock::ManualClock;
        let clock = ManualClock::shared();
        let (entered_tx, entered_rx) = mpsc::sync_channel(8);
        let (release_tx, release_rx) = mpsc::sync_channel::<()>(8);
        let release_rx = Mutex::new(release_rx);
        let runs = Arc::new(AtomicUsize::new(0));
        let runs2 = Arc::clone(&runs);
        let observed = Arc::new(AtomicUsize::new(0));
        let observed2 = Arc::clone(&observed);
        let b = Batcher::start_with_clock(
            BatcherConfig {
                workers: 1,
                batch_max: 4,
                batch_wait: Duration::ZERO,
                queue_cap: 8,
            },
            Arc::new(move |batch: Vec<u64>| {
                let _ = entered_tx.send(());
                let _ = release_rx.lock().unwrap().recv();
                runs2.fetch_add(1, Ordering::SeqCst);
                batch
            }),
            move |n| {
                observed2.fetch_add(n, Ordering::SeqCst);
            },
            Arc::clone(&clock) as Arc<dyn Clock>,
        );
        let occupant = b.submit(0).unwrap();
        entered_rx.recv().unwrap();
        let t1 = b.submit_with_deadline(1, Some(clock.now())).unwrap();
        let t2 = b.submit_with_deadline(2, Some(clock.now())).unwrap();
        clock.advance(Duration::from_millis(1));
        release_tx.send(()).unwrap();
        assert_eq!(occupant.wait_deadline(far()), Ok(0));
        assert_eq!(t1.wait_deadline(far()), Err(WaitError::Expired));
        assert_eq!(t2.wait_deadline(far()), Err(WaitError::Expired));
        b.shutdown();
        assert_eq!(runs.load(Ordering::SeqCst), 1, "only the occupant's batch ran");
        assert_eq!(
            observed.load(Ordering::SeqCst),
            1,
            "on_batch never observed the all-expired drain"
        );
    }

    #[test]
    fn panicking_runner_fails_tickets_instead_of_hanging() {
        let b: Batcher<u64, u64> = Batcher::start(
            BatcherConfig {
                workers: 1,
                batch_max: 4,
                batch_wait: Duration::from_millis(5),
                queue_cap: 8,
            },
            Arc::new(|_batch: Vec<u64>| -> Vec<u64> { panic!("boom") }),
            |_| {},
        );
        let ticket = b.submit(1).unwrap();
        assert_eq!(ticket.wait_deadline(far()), Err(WaitError::Failed));
        // The worker survives the panic and keeps serving.
        let ticket = b.submit(2).unwrap();
        assert_eq!(ticket.wait_deadline(far()), Err(WaitError::Failed));
        b.shutdown();
    }

    #[test]
    fn racing_workers_never_run_empty_batches() {
        // With two workers and a linger window, both can wake for the same
        // lone request; the loser's drain comes up empty and must not reach
        // the runner. Sequential submits maximize the single-item window.
        let sizes = Arc::new(Mutex::new(Vec::new()));
        let sizes2 = Arc::clone(&sizes);
        let b: Batcher<u64, u64> = Batcher::start(
            BatcherConfig {
                workers: 2,
                batch_max: 8,
                batch_wait: Duration::from_millis(1),
                queue_cap: 64,
            },
            Arc::new(|batch: Vec<u64>| batch),
            move |n| sizes2.lock().unwrap().push(n),
        );
        for i in 0..100u64 {
            let t = b.submit(i).unwrap();
            assert_eq!(t.wait_deadline(far()), Ok(i));
        }
        b.shutdown();
        let sizes = sizes.lock().unwrap();
        assert_eq!(sizes.iter().sum::<usize>(), 100);
        assert!(sizes.iter().all(|&s| s >= 1), "empty batch ran: {sizes:?}");
    }

    #[test]
    fn on_batch_observes_every_batch() {
        let observed = Arc::new(AtomicUsize::new(0));
        let observed2 = Arc::clone(&observed);
        let b: Batcher<u64, u64> = Batcher::start(
            BatcherConfig {
                workers: 2,
                batch_max: 4,
                batch_wait: Duration::from_millis(2),
                queue_cap: 64,
            },
            Arc::new(|batch: Vec<u64>| batch),
            move |n| {
                observed2.fetch_add(n, Ordering::SeqCst);
            },
        );
        let tickets: Vec<_> = (0..9u64).map(|i| b.submit(i).unwrap()).collect();
        for t in tickets {
            t.wait_deadline(far()).unwrap();
        }
        b.shutdown();
        assert_eq!(observed.load(Ordering::SeqCst), 9);
    }
}

//! The §8 recall/precision metrics with their discretization protocol.

use kamel_geo::{discretize, point_to_polyline_distance, LocalProjection, Trajectory, Xy};
use serde::{Deserialize, Serialize};

/// Recall and precision of one comparison.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PointMetrics {
    /// Fraction of discretized ground-truth points recovered within δ.
    pub recall: f64,
    /// Fraction of discretized imputed points within δ of the ground truth.
    pub precision: f64,
}

/// Streaming accumulator over many trajectories: the paper's ratios are
/// computed over all points, so totals (not per-trajectory means) are
/// accumulated.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsAccumulator {
    /// Ground-truth discretized points examined.
    pub gt_points: u64,
    /// Ground-truth points matched within δ.
    pub gt_hits: u64,
    /// Imputed discretized points examined.
    pub imp_points: u64,
    /// Imputed points matched within δ.
    pub imp_hits: u64,
    /// Gap segments needing imputation.
    pub segments_total: u64,
    /// Gap segments imputed by a straight line.
    pub segments_failed: u64,
    /// Sum of per-pair mean deviations of the imputed polyline from the
    /// ground truth (meters).
    pub deviation_sum_m: f64,
    /// Pairs contributing to `deviation_sum_m`.
    pub deviation_pairs: u64,
    /// Worst single excursion observed (directed Hausdorff, meters).
    pub worst_deviation_m: f64,
}

impl MetricsAccumulator {
    /// Scores one (ground truth, imputed) pair and folds it in.
    ///
    /// `proj` maps both trajectories into one planar frame; `max_gap_m` is
    /// the discretization spacing and `delta_m` the accuracy threshold δ.
    pub fn add_pair(
        &mut self,
        ground_truth: &Trajectory,
        imputed: &Trajectory,
        proj: &LocalProjection,
        max_gap_m: f64,
        delta_m: f64,
    ) {
        let gt_line: Vec<Xy> = ground_truth.points.iter().map(|p| proj.to_xy(p.pos)).collect();
        let imp_line: Vec<Xy> = imputed.points.iter().map(|p| proj.to_xy(p.pos)).collect();
        if gt_line.is_empty() || imp_line.is_empty() {
            return;
        }
        // Recall: P = discretized ground truth vs imputed polyline.
        for p in discretize(&gt_line, max_gap_m) {
            self.gt_points += 1;
            if point_to_polyline_distance(p, &imp_line) <= delta_m {
                self.gt_hits += 1;
            }
        }
        // Precision: Q = discretized imputed vs ground-truth polyline.
        for q in discretize(&imp_line, max_gap_m) {
            self.imp_points += 1;
            if point_to_polyline_distance(q, &gt_line) <= delta_m {
                self.imp_hits += 1;
            }
        }
        // Deviation diagnostics (beyond the paper's threshold metrics):
        // average and worst excursion of the imputed line from the truth.
        let mean_dev = kamel_geo::mean_deviation_m(&imp_line, &gt_line, max_gap_m);
        if mean_dev.is_finite() {
            self.deviation_sum_m += mean_dev;
            self.deviation_pairs += 1;
        }
        let worst = kamel_geo::directed_hausdorff_m(&imp_line, &gt_line, max_gap_m);
        if worst.is_finite() {
            self.worst_deviation_m = self.worst_deviation_m.max(worst);
        }
    }

    /// Adds failure accounting from one imputation.
    pub fn add_failures(&mut self, segments_total: usize, segments_failed: usize) {
        self.segments_total += segments_total as u64;
        self.segments_failed += segments_failed as u64;
    }

    /// Merges another accumulator (for parallel sharding).
    pub fn merge(&mut self, other: &MetricsAccumulator) {
        self.gt_points += other.gt_points;
        self.gt_hits += other.gt_hits;
        self.imp_points += other.imp_points;
        self.imp_hits += other.imp_hits;
        self.segments_total += other.segments_total;
        self.segments_failed += other.segments_failed;
        self.deviation_sum_m += other.deviation_sum_m;
        self.deviation_pairs += other.deviation_pairs;
        self.worst_deviation_m = self.worst_deviation_m.max(other.worst_deviation_m);
    }

    /// Mean deviation of the imputed output from the ground truth in
    /// meters, averaged over scored pairs (0 when nothing was scored).
    pub fn mean_deviation_m(&self) -> f64 {
        if self.deviation_pairs == 0 {
            0.0
        } else {
            self.deviation_sum_m / self.deviation_pairs as f64
        }
    }

    /// Final recall (0 when nothing was scored).
    pub fn recall(&self) -> f64 {
        ratio(self.gt_hits, self.gt_points)
    }

    /// Final precision.
    pub fn precision(&self) -> f64 {
        ratio(self.imp_hits, self.imp_points)
    }

    /// Final failure rate (`None` when no segment needed imputation).
    pub fn failure_rate(&self) -> Option<f64> {
        if self.segments_total == 0 {
            None
        } else {
            Some(self.segments_failed as f64 / self.segments_total as f64)
        }
    }

    /// Both point metrics.
    pub fn point_metrics(&self) -> PointMetrics {
        PointMetrics {
            recall: self.recall(),
            precision: self.precision(),
        }
    }
}

fn ratio(hits: u64, total: u64) -> f64 {
    if total == 0 {
        0.0
    } else {
        hits as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kamel_geo::{GpsPoint, LatLng};

    fn proj() -> LocalProjection {
        LocalProjection::new(LatLng::new(41.15, -8.61))
    }

    fn line(points: &[(f64, f64)]) -> Trajectory {
        let p = proj();
        Trajectory::new(
            points
                .iter()
                .enumerate()
                .map(|(i, &(x, y))| GpsPoint::new(p.to_latlng(Xy::new(x, y)), i as f64 * 10.0))
                .collect(),
        )
    }

    #[test]
    fn perfect_imputation_scores_one() {
        let gt = line(&[(0.0, 0.0), (500.0, 0.0), (1000.0, 0.0)]);
        let mut acc = MetricsAccumulator::default();
        acc.add_pair(&gt, &gt, &proj(), 100.0, 50.0);
        assert_eq!(acc.recall(), 1.0);
        assert_eq!(acc.precision(), 1.0);
    }

    #[test]
    fn offset_beyond_delta_scores_zero() {
        let gt = line(&[(0.0, 0.0), (1000.0, 0.0)]);
        let offset = line(&[(0.0, 200.0), (1000.0, 200.0)]);
        let mut acc = MetricsAccumulator::default();
        acc.add_pair(&gt, &offset, &proj(), 100.0, 50.0);
        assert_eq!(acc.recall(), 0.0);
        assert_eq!(acc.precision(), 0.0);
    }

    #[test]
    fn recall_penalizes_missing_middle_precision_does_not() {
        // Ground truth detours north; imputed cuts straight. The detour
        // points are missed (low recall), but the straight cut lies close
        // to... actually far from GT too. Use a partial-coverage case:
        // imputed covers only the first half of the ground truth.
        let gt = line(&[(0.0, 0.0), (2000.0, 0.0)]);
        let half = line(&[(0.0, 0.0), (1000.0, 0.0)]);
        let mut acc = MetricsAccumulator::default();
        acc.add_pair(&gt, &half, &proj(), 100.0, 50.0);
        assert!(acc.recall() < 0.6, "recall {}", acc.recall());
        assert_eq!(acc.precision(), 1.0);
    }

    #[test]
    fn delta_widens_matches() {
        let gt = line(&[(0.0, 0.0), (1000.0, 0.0)]);
        let offset = line(&[(0.0, 60.0), (1000.0, 60.0)]);
        let mut tight = MetricsAccumulator::default();
        tight.add_pair(&gt, &offset, &proj(), 100.0, 50.0);
        let mut loose = MetricsAccumulator::default();
        loose.add_pair(&gt, &offset, &proj(), 100.0, 75.0);
        assert_eq!(tight.recall(), 0.0);
        assert_eq!(loose.recall(), 1.0);
    }

    #[test]
    fn deviation_diagnostics_accumulate() {
        let gt = line(&[(0.0, 0.0), (1000.0, 0.0)]);
        let offset = line(&[(0.0, 40.0), (1000.0, 40.0)]);
        let mut acc = MetricsAccumulator::default();
        acc.add_pair(&gt, &offset, &proj(), 100.0, 50.0);
        assert!((acc.mean_deviation_m() - 40.0).abs() < 1.0);
        assert!((acc.worst_deviation_m - 40.0).abs() < 1.0);
        // A detour raises the worst excursion but not the mean by as much.
        let detour = line(&[(0.0, 0.0), (500.0, 300.0), (1000.0, 0.0)]);
        acc.add_pair(&gt, &detour, &proj(), 100.0, 50.0);
        assert!(acc.worst_deviation_m > 200.0);
        assert!(acc.mean_deviation_m() < acc.worst_deviation_m);
    }

    #[test]
    fn merge_equals_sequential() {
        let gt = line(&[(0.0, 0.0), (1000.0, 0.0)]);
        let imp = line(&[(0.0, 30.0), (1000.0, 30.0)]);
        let mut seq = MetricsAccumulator::default();
        seq.add_pair(&gt, &imp, &proj(), 100.0, 50.0);
        seq.add_pair(&gt, &imp, &proj(), 100.0, 50.0);
        seq.add_failures(3, 1);
        let mut a = MetricsAccumulator::default();
        a.add_pair(&gt, &imp, &proj(), 100.0, 50.0);
        a.add_failures(3, 1);
        let mut b = MetricsAccumulator::default();
        b.add_pair(&gt, &imp, &proj(), 100.0, 50.0);
        a.merge(&b);
        assert_eq!(seq, a);
    }

    #[test]
    fn empty_inputs_are_ignored() {
        let mut acc = MetricsAccumulator::default();
        acc.add_pair(
            &Trajectory::default(),
            &line(&[(0.0, 0.0)]),
            &proj(),
            100.0,
            50.0,
        );
        assert_eq!(acc.gt_points, 0);
        assert_eq!(acc.recall(), 0.0);
        assert_eq!(acc.failure_rate(), None);
    }
}

//! Evaluation metrics and experiment harness for the KAMEL reproduction.
//!
//! Implements the paper's §8 performance metrics exactly:
//!
//! * **Recall** — discretize the ground-truth trajectory at `max_gap`
//!   spacing; the recall is the fraction of those points within the
//!   accuracy threshold δ of the imputed trajectory polyline.
//! * **Precision** — symmetric: discretize the imputed trajectory and
//!   measure against the ground truth polyline.
//! * **Failure rate** — fraction of gap segments imputed by a straight
//!   line.
//! * **Time overhead** — wall-clock training and imputation time.
//!
//! [`harness`] runs a technique over a dataset (sparsify → impute → score),
//! optionally in parallel across test trajectories, and powers every figure
//! regeneration in `kamel-bench`. [`roadtype`] adds the §8.4 straight/curved
//! segment classification.

#![warn(missing_docs)]

pub mod harness;
pub mod mapinfer;
pub mod metrics;
pub mod replay;
pub mod roadtype;

pub use harness::{
    quantization_delta, train_kamel, train_trimpute, EvalContext, KamelImputer,
    QuantizationDelta, TechniqueResult,
};
pub use mapinfer::{compare_maps, infer_map, rasterize_network, InferredMap, MapInferConfig, MapQuality};
pub use metrics::{MetricsAccumulator, PointMetrics};
pub use replay::{regression_gate, replay_score, GateReport, ReplayCase};
pub use roadtype::{classify_segments, RoadClass};

//! Scalar reference kernels: the canonical operation order every SIMD
//! backend must reproduce bit-for-bit.
//!
//! Reductions fill a fixed 8-slot accumulator from `chunks_exact(8)`
//! (slot `l` sees elements `8k + l`), combine the slots sequentially,
//! then fold the tail in ascending order — exactly the layout an AVX2
//! register (or a NEON register pair) holds, so the vector backends can
//! match it without shuffles. Element-wise kernels are plain loops; the
//! per-element expression is the contract.

use crate::layers::gelu;

/// Dot product: 8-lane accumulation, sequential lane sum, scalar tail.
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    let mut acc = [0.0f32; 8];
    let a_chunks = a.chunks_exact(8);
    let b_chunks = b.chunks_exact(8);
    let a_rem = a_chunks.remainder();
    let b_rem = b_chunks.remainder();
    for (ca, cb) in a_chunks.zip(b_chunks) {
        for (slot, (&x, &y)) in acc.iter_mut().zip(ca.iter().zip(cb)) {
            *slot += x * y;
        }
    }
    let mut s: f32 = acc.iter().sum();
    for (&x, &y) in a_rem.iter().zip(b_rem) {
        s += x * y;
    }
    s
}

/// `out[i] += a * x[i]`.
pub fn axpy(out: &mut [f32], a: f32, x: &[f32]) {
    for (o, &v) in out.iter_mut().zip(x) {
        *o += a * v;
    }
}

/// `out[i] += x[i]`.
pub fn add_assign(out: &mut [f32], x: &[f32]) {
    for (o, &v) in out.iter_mut().zip(x) {
        *o += v;
    }
}

/// `out[i] = a[i] + b[i]`.
pub fn add(a: &[f32], b: &[f32], out: &mut [f32]) {
    for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
        *o = x + y;
    }
}

/// `out[i] *= s`.
pub fn scale(out: &mut [f32], s: f32) {
    for o in out.iter_mut() {
        *o *= s;
    }
}

/// 8-lane maximum: lane maxima, sequential lane fold, scalar tail.
pub fn max(x: &[f32]) -> f32 {
    let mut acc = [f32::NEG_INFINITY; 8];
    let chunks = x.chunks_exact(8);
    let rem = chunks.remainder();
    for c in chunks {
        for (slot, &v) in acc.iter_mut().zip(c) {
            *slot = slot.max(v);
        }
    }
    let mut m = acc[0];
    for &lane in &acc[1..] {
        m = m.max(lane);
    }
    for &v in rem {
        m = m.max(v);
    }
    m
}

/// 8-lane sum: lane sums, sequential lane fold, scalar tail.
pub fn sum(x: &[f32]) -> f32 {
    let mut acc = [0.0f32; 8];
    let chunks = x.chunks_exact(8);
    let rem = chunks.remainder();
    for c in chunks {
        for (slot, &v) in acc.iter_mut().zip(c) {
            *slot += v;
        }
    }
    let mut s: f32 = acc.iter().sum();
    for &v in rem {
        s += v;
    }
    s
}

/// 8-lane `Σ (x[i] - mean)²`.
pub fn sum_sq_diff(x: &[f32], mean: f32) -> f32 {
    let mut acc = [0.0f32; 8];
    let chunks = x.chunks_exact(8);
    let rem = chunks.remainder();
    for c in chunks {
        for (slot, &v) in acc.iter_mut().zip(c) {
            let d = v - mean;
            *slot += d * d;
        }
    }
    let mut s: f32 = acc.iter().sum();
    for &v in rem {
        let d = v - mean;
        s += d * d;
    }
    s
}

/// `out[i] = gelu(x[i])`.
pub fn gelu_map(x: &[f32], out: &mut [f32]) {
    for (o, &v) in out.iter_mut().zip(x) {
        *o = gelu(v);
    }
}

/// Softmax core: `row[i] = exp(row[i] - max)` via the SIMD-reproducible
/// [`crate::math::exp_f32`], returning the sum in the canonical 8-lane
/// accumulation order.
pub fn exp_sum(row: &mut [f32], max: f32) -> f32 {
    use crate::math::exp_f32;
    let n8 = row.len() / 8 * 8;
    let mut acc = [0.0f32; 8];
    for c in row[..n8].chunks_exact_mut(8) {
        for (slot, v) in acc.iter_mut().zip(c.iter_mut()) {
            let e = exp_f32(*v - max);
            *v = e;
            *slot += e;
        }
    }
    let mut s: f32 = acc.iter().sum();
    for v in &mut row[n8..] {
        let e = exp_f32(*v - max);
        *v = e;
        s += e;
    }
    s
}

/// `out[c] = ((x[c] - mean) * rstd) * gamma[c] + beta[c]`.
pub fn ln_affine(x: &[f32], mean: f32, rstd: f32, gamma: &[f32], beta: &[f32], out: &mut [f32]) {
    for (c, o) in out.iter_mut().enumerate() {
        let h = (x[c] - mean) * rstd;
        *o = h * gamma[c] + beta[c];
    }
}

/// Absolute maximum plus an all-finite flag, in one pass. `max` over
/// absolute values is associative for the non-NaN lanes (NaN compares
/// false and never propagates into `amax`), so vector backends agree
/// exactly without fixing a lane order.
pub fn abs_max_finite(row: &[f32]) -> (f32, bool) {
    use crate::math::vmax;
    let mut amax = 0.0f32;
    let mut finite = true;
    for &v in row {
        amax = vmax(v.abs(), amax);
        finite &= v.is_finite();
    }
    (amax, finite)
}

/// Activation quantization: `out[i] = round_ties_even(row[i] * inv)`
/// clamped to ±127. Ties-to-even matches the hardware nearest rounding
/// (`vroundps`) the AVX2 backend uses, and the clamp is expressed as
/// max/min so saturating conversions agree lane-for-lane.
pub fn quantize_i8(row: &[f32], inv: f32, out: &mut [i8]) {
    use crate::math::{vmax, vmin};
    for (o, &v) in out.iter_mut().zip(row) {
        *o = vmin(vmax((v * inv).round_ties_even(), -127.0), 127.0) as i8;
    }
}

/// Widening `i8 × i8 → i32` dot product (exact).
pub fn dot_i8(a: &[i8], b: &[i8]) -> i32 {
    let mut s = 0i32;
    for (&x, &y) in a.iter().zip(b) {
        s += x as i32 * y as i32;
    }
    s
}

//! Model sourcing — the seam between `Kamel` and where its models live.
//!
//! The heap [`Repository`] owns every model; the mmap-backed store
//! (`kamel-store`) materializes them lazily out of a mapped file under a
//! byte budget. Serving code cares only that a spatial query resolves to
//! a model, so both sit behind [`ModelSource`]. The handle type lets the
//! repository lend a borrow while a resident set hands out `Arc` clones
//! that stay valid across evictions.

use crate::partition::{ModelSelection, ModelSummary, Repository};
use kamel_geo::BBox;
use kamel_lm::TrainedModel;
use serde::{Deserialize, Serialize};
use std::ops::Deref;
use std::sync::Arc;

/// A model resolved by a [`ModelSource`]: a borrow from a heap
/// repository, or a shared handle from a lazily-materialized resident
/// set (which may evict the cell while the caller is still predicting —
/// the `Arc` keeps the materialized model alive until the caller drops
/// it).
pub enum ModelHandle<'a> {
    /// Borrowed from an owning repository.
    Borrowed(&'a TrainedModel),
    /// Shared out of a resident set.
    Shared(Arc<TrainedModel>),
}

impl Deref for ModelHandle<'_> {
    type Target = TrainedModel;

    fn deref(&self) -> &TrainedModel {
        match self {
            ModelHandle::Borrowed(m) => m,
            ModelHandle::Shared(m) => m,
        }
    }
}

/// Residency snapshot of a budget-bounded model source, surfaced on
/// `GET /metrics` and `GET /v1/info`.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResidencyStats {
    /// Models currently materialized on the heap (pinned + LRU).
    pub resident_models: usize,
    /// Models pinned resident (pyramid upper levels + global).
    pub pinned_models: usize,
    /// Models available in the backing store.
    pub total_models: usize,
    /// LRU evictions since the store was opened.
    pub evictions_total: u64,
    /// Heap bytes (serialized-record proxy) held by resident models.
    pub bytes_resident: u64,
    /// Bytes of the mapped (or loaded) store file.
    pub bytes_mapped: u64,
    /// Configured residency budget in bytes (0 = unbounded).
    pub budget_bytes: u64,
}

/// Where serving models come from. `find_model` is §4.1 retrieval: the
/// smallest cell or neighbor pair enclosing `query` that has a model.
pub trait ModelSource: Send + Sync {
    /// Resolves the best model for a query rectangle.
    fn find_model(&self, query: &BBox) -> Option<(ModelSelection, ModelHandle<'_>)>;

    /// Number of models the source can serve.
    fn model_count(&self) -> usize;

    /// Summaries of every available model (for `kamel stats` / `/v1/info`).
    fn summaries(&self) -> Vec<ModelSummary>;

    /// Residency statistics, for sources with a bounded resident set.
    /// Heap-owned sources return `None`.
    fn residency(&self) -> Option<ResidencyStats> {
        None
    }
}

impl ModelSource for Repository {
    fn find_model(&self, query: &BBox) -> Option<(ModelSelection, ModelHandle<'_>)> {
        Repository::find_model(self, query).map(|(sel, m)| (sel, ModelHandle::Borrowed(m)))
    }

    fn model_count(&self) -> usize {
        Repository::model_count(self)
    }

    fn summaries(&self) -> Vec<ModelSummary> {
        Repository::summaries(self)
    }
}

//! Bidirectional interpolated n-gram masked-token model.
//!
//! For a masked slot with left neighbor `p` and right neighbor `n`, the
//! model scores each candidate `c` as an interpolation of
//! `P(c | p, n)` (skip-trigram), `P(c | p)` (forward bigram),
//! `P(c | n)` (backward bigram) and `P(c)` (unigram). This is exactly the
//! conditional a masked-LM head learns for one slot given its immediate
//! bidirectional context, estimated by counting instead of gradient descent
//! — the CPU-scale substitution documented in DESIGN.md §2.

use crate::vocab::Vocab;
use crate::{Candidate, MaskedTokenModel};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Interpolation weights and candidate limits for [`NgramMlm`].
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct NgramConfig {
    /// Weight of the skip-trigram conditional `P(c | prev, next)` (adjacent
    /// context).
    pub tri_weight: f64,
    /// Weight of the long-range route conditional `P(c | left, right)`:
    /// how often `c` appeared *between* the two context tokens in training
    /// sentences, within [`NgramConfig::between_window`] positions. This is
    /// the counting analogue of BERT's bidirectional attention on the whole
    /// segment — it is what keeps multi-token imputation on the route
    /// instead of on locally-confident detours.
    pub between_weight: f64,
    /// Weight of the forward bigram conditional `P(c | prev)`.
    pub fwd_weight: f64,
    /// Weight of the backward bigram conditional `P(c | next)`.
    pub bwd_weight: f64,
    /// Weight of the unigram prior `P(c)`.
    pub uni_weight: f64,
    /// Maximum token span counted by the between table.
    pub between_window: usize,
    /// Drop context-table entries observed fewer than this many times after
    /// training (0 keeps everything). City-scale corpora accumulate long
    /// tails of one-off co-occurrences; pruning them bounds model memory
    /// with negligible accuracy impact.
    pub prune_below: u32,
}

impl Default for NgramConfig {
    fn default() -> Self {
        Self {
            tri_weight: 0.40,
            between_weight: 0.32,
            fwd_weight: 0.11,
            bwd_weight: 0.11,
            uni_weight: 0.06,
            between_window: 24,
            prune_below: 0,
        }
    }
}

/// Packs an ordered id pair into one map key.
#[inline]
fn pair_key(a: u32, b: u32) -> u64 {
    ((a as u64) << 32) | b as u64
}

/// Count table: context id → (candidate id → count).
type CondCounts = HashMap<u32, HashMap<u32, u32>>;

/// The trained bidirectional n-gram model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NgramMlm {
    config: NgramConfig,
    vocab: Vocab,
    /// Unigram counts per id.
    uni: HashMap<u32, u32>,
    /// Total regular tokens seen.
    total: u64,
    /// `fwd[prev][cur]`: count of `cur` following `prev`.
    fwd: CondCounts,
    /// `bwd[next][cur]`: count of `cur` preceding `next`.
    bwd: CondCounts,
    /// `tri[(prev,next)][cur]`: count of `cur` between `prev` and `next`.
    tri: HashMap<u64, HashMap<u32, u32>>,
    /// `between[(a,b)][cur]`: count of `cur` occurring strictly between `a`
    /// and `b` in a sentence, with the whole span within `between_window`.
    between: HashMap<u64, HashMap<u32, u32>>,
}

impl NgramMlm {
    /// Counts all n-gram statistics over a corpus of token-key sequences.
    pub fn train(config: &NgramConfig, corpus: &[Vec<u64>]) -> Self {
        let mut vocab = Vocab::new();
        let mut uni: HashMap<u32, u32> = HashMap::new();
        let mut fwd: CondCounts = HashMap::new();
        let mut bwd: CondCounts = HashMap::new();
        let mut tri: HashMap<u64, HashMap<u32, u32>> = HashMap::new();
        let mut between: HashMap<u64, HashMap<u32, u32>> = HashMap::new();
        let window = config.between_window.max(2);
        let mut total = 0u64;
        let mut ids = Vec::new();
        for seq in corpus {
            ids.clear();
            ids.extend(seq.iter().map(|&k| vocab.get_or_insert(k)));
            total += ids.len() as u64;
            for &id in &ids {
                *uni.entry(id).or_insert(0) += 1;
            }
            for w in ids.windows(2) {
                *fwd.entry(w[0]).or_default().entry(w[1]).or_insert(0) += 1;
                *bwd.entry(w[1]).or_default().entry(w[0]).or_insert(0) += 1;
            }
            for w in ids.windows(3) {
                *tri.entry(pair_key(w[0], w[2]))
                    .or_default()
                    .entry(w[1])
                    .or_insert(0) += 1;
            }
            // Route co-occurrence: every token strictly between a pair of
            // anchors whose span fits the window.
            let n = ids.len();
            for i in 0..n {
                for k in (i + 2)..n.min(i + window + 1) {
                    let key = pair_key(ids[i], ids[k]);
                    let entry = between.entry(key).or_default();
                    for &mid in &ids[i + 1..k] {
                        *entry.entry(mid).or_insert(0) += 1;
                    }
                }
            }
        }
        let mut model = Self {
            config: *config,
            vocab,
            uni,
            total,
            fwd,
            bwd,
            tri,
            between,
        };
        if config.prune_below > 1 {
            model.prune(config.prune_below);
        }
        model
    }

    /// Drops all conditional-count entries below `min_count` and empty
    /// contexts. Unigram counts are kept (they are the fallback).
    pub fn prune(&mut self, min_count: u32) {
        let prune_cond = |table: &mut CondCounts| {
            for counts in table.values_mut() {
                counts.retain(|_, c| *c >= min_count);
            }
            table.retain(|_, counts| !counts.is_empty());
        };
        prune_cond(&mut self.fwd);
        prune_cond(&mut self.bwd);
        for counts in self.tri.values_mut() {
            counts.retain(|_, c| *c >= min_count);
        }
        self.tri.retain(|_, counts| !counts.is_empty());
        for counts in self.between.values_mut() {
            counts.retain(|_, c| *c >= min_count);
        }
        self.between.retain(|_, counts| !counts.is_empty());
    }

    /// Total entries across all conditional tables — the memory the
    /// model's transition statistics occupy (vocabulary excluded).
    pub fn table_entries(&self) -> usize {
        self.fwd.values().map(|c| c.len()).sum::<usize>()
            + self.bwd.values().map(|c| c.len()).sum::<usize>()
            + self.tri.values().map(|c| c.len()).sum::<usize>()
            + self.between.values().map(|c| c.len()).sum::<usize>()
    }

    /// The model's vocabulary (cell-key ↔ id mapping).
    pub fn vocab(&self) -> &Vocab {
        &self.vocab
    }

    fn cond_prob(table: &CondCounts, ctx: u32, cand: u32) -> f64 {
        match table.get(&ctx) {
            Some(counts) => {
                let total: u32 = counts.values().sum();
                if total == 0 {
                    0.0
                } else {
                    *counts.get(&cand).unwrap_or(&0) as f64 / total as f64
                }
            }
            None => 0.0,
        }
    }

    fn between_prob(&self, a: u32, b: u32, cand: u32) -> f64 {
        match self.between.get(&pair_key(a, b)) {
            Some(counts) => {
                let total: u32 = counts.values().sum();
                if total == 0 {
                    0.0
                } else {
                    *counts.get(&cand).unwrap_or(&0) as f64 / total as f64
                }
            }
            None => 0.0,
        }
    }

    fn tri_prob(&self, prev: u32, next: u32, cand: u32) -> f64 {
        match self.tri.get(&pair_key(prev, next)) {
            Some(counts) => {
                let total: u32 = counts.values().sum();
                if total == 0 {
                    0.0
                } else {
                    *counts.get(&cand).unwrap_or(&0) as f64 / total as f64
                }
            }
            None => 0.0,
        }
    }

    fn uni_prob(&self, cand: u32) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            *self.uni.get(&cand).unwrap_or(&0) as f64 / self.total as f64
        }
    }
}

impl MaskedTokenModel for NgramMlm {
    fn predict_masked(&self, seq: &[u64], pos: usize, top_k: usize) -> Vec<Candidate> {
        assert!(pos < seq.len(), "mask position {pos} out of range");
        if top_k == 0 || self.vocab.is_empty() {
            return Vec::new();
        }
        let prev = if pos > 0 {
            Some(self.vocab.id_of(seq[pos - 1]))
        } else {
            None
        };
        let next = if pos + 1 < seq.len() {
            Some(self.vocab.id_of(seq[pos + 1]))
        } else {
            None
        };
        // Candidate set: everything the context tables have seen in this
        // context. Falls back to the global unigram head when the context is
        // entirely novel.
        let mut cand_ids: Vec<u32> = Vec::new();
        if let (Some(p), Some(n)) = (prev, next) {
            if let Some(counts) = self.tri.get(&pair_key(p, n)) {
                cand_ids.extend(counts.keys());
            }
            if let Some(counts) = self.between.get(&pair_key(p, n)) {
                cand_ids.extend(counts.keys());
            }
        }
        if let Some(p) = prev {
            if let Some(counts) = self.fwd.get(&p) {
                cand_ids.extend(counts.keys());
            }
        }
        if let Some(n) = next {
            if let Some(counts) = self.bwd.get(&n) {
                cand_ids.extend(counts.keys());
            }
        }
        cand_ids.sort_unstable();
        cand_ids.dedup();
        if cand_ids.is_empty() {
            // Novel context: rank by unigram frequency.
            let mut by_freq: Vec<(u32, u32)> =
                self.uni.iter().map(|(&id, &c)| (id, c)).collect();
            by_freq.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
            cand_ids.extend(by_freq.into_iter().take(top_k * 4).map(|(id, _)| id));
        }
        let cfg = &self.config;
        let mut scored: Vec<(u32, f64)> = cand_ids
            .into_iter()
            .map(|c| {
                let mut s = cfg.uni_weight * self.uni_prob(c);
                if let (Some(p), Some(n)) = (prev, next) {
                    s += cfg.tri_weight * self.tri_prob(p, n, c);
                    s += cfg.between_weight * self.between_prob(p, n, c);
                }
                if let Some(p) = prev {
                    s += cfg.fwd_weight * Self::cond_prob(&self.fwd, p, c);
                }
                if let Some(n) = next {
                    s += cfg.bwd_weight * Self::cond_prob(&self.bwd, n, c);
                }
                (c, s)
            })
            .collect();
        let norm: f64 = scored.iter().map(|(_, s)| s).sum();
        if norm <= 0.0 {
            return Vec::new();
        }
        scored.sort_unstable_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .expect("finite scores")
                .then(a.0.cmp(&b.0))
        });
        scored
            .into_iter()
            .take(top_k)
            .filter_map(|(id, s)| {
                self.vocab.key_of(id).map(|key| Candidate {
                    key,
                    prob: s / norm,
                })
            })
            .collect()
    }

    fn vocab_len(&self) -> usize {
        self.vocab.regular_len()
    }

    fn trained_tokens(&self) -> u64 {
        self.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain_corpus() -> Vec<Vec<u64>> {
        (0..20).map(|_| vec![10u64, 20, 30, 40, 50]).collect()
    }

    #[test]
    fn learns_deterministic_chain() {
        let m = NgramMlm::train(&NgramConfig::default(), &chain_corpus());
        let preds = m.predict_masked(&[20, 0, 40], 1, 5);
        assert_eq!(preds[0].key, 30);
        assert!(preds[0].prob > 0.5);
    }

    #[test]
    fn probabilities_sum_to_one_over_candidates() {
        // Branching corpus: after 10, go to 20 (75%) or 21 (25%).
        let mut corpus = vec![vec![10u64, 20, 30]; 3];
        corpus.push(vec![10, 21, 30]);
        let m = NgramMlm::train(&NgramConfig::default(), &corpus);
        let preds = m.predict_masked(&[10, 0, 30], 1, 10);
        let sum: f64 = preds.iter().map(|c| c.prob).sum();
        assert!((sum - 1.0).abs() < 1e-9, "sum {sum}");
        assert_eq!(preds[0].key, 20);
        assert!(preds[0].prob > preds[1].prob);
    }

    #[test]
    fn respects_branch_frequencies() {
        let mut corpus = Vec::new();
        for _ in 0..9 {
            corpus.push(vec![1u64, 2, 3]);
        }
        corpus.push(vec![1u64, 7, 3]);
        let m = NgramMlm::train(&NgramConfig::default(), &corpus);
        let preds = m.predict_masked(&[1, 0, 3], 1, 2);
        assert_eq!(preds[0].key, 2);
        assert_eq!(preds[1].key, 7);
        assert!(preds[0].prob > 5.0 * preds[1].prob);
    }

    #[test]
    fn edge_positions_use_one_sided_context() {
        let m = NgramMlm::train(&NgramConfig::default(), &chain_corpus());
        // Mask at the start: only the right context (20) is available.
        let start = m.predict_masked(&[0, 20, 30], 0, 3);
        assert_eq!(start[0].key, 10);
        // Mask at the end: only the left context (40).
        let end = m.predict_masked(&[30, 40, 0], 2, 3);
        assert_eq!(end[0].key, 50);
    }

    #[test]
    fn unknown_context_falls_back_to_unigrams() {
        let m = NgramMlm::train(&NgramConfig::default(), &chain_corpus());
        // Context keys never seen in training.
        let preds = m.predict_masked(&[999, 0, 888], 1, 3);
        assert!(!preds.is_empty());
        // The most frequent tokens are all equally frequent in the chain; a
        // valid chain member must be returned.
        assert!([10u64, 20, 30, 40, 50].contains(&preds[0].key));
    }

    #[test]
    fn empty_model_returns_nothing() {
        let m = NgramMlm::train(&NgramConfig::default(), &[]);
        assert!(m.predict_masked(&[1, 0, 2], 1, 5).is_empty());
        assert_eq!(m.vocab_len(), 0);
        assert_eq!(m.trained_tokens(), 0);
    }

    #[test]
    fn top_k_truncates() {
        // 6 distinct successors of token 1.
        let corpus: Vec<Vec<u64>> = (0..6).map(|i| vec![1u64, 100 + i, 3]).collect();
        let m = NgramMlm::train(&NgramConfig::default(), &corpus);
        assert_eq!(m.predict_masked(&[1, 0, 3], 1, 3).len(), 3);
        assert_eq!(m.predict_masked(&[1, 0, 3], 1, 100).len(), 6);
        assert!(m.predict_masked(&[1, 0, 3], 1, 0).is_empty());
    }

    #[test]
    fn pruning_shrinks_tables_but_keeps_strong_transitions() {
        // 20 passes over the chain + 1 noise sentence.
        let mut corpus = chain_corpus();
        corpus.push(vec![77u64, 88, 99]);
        let full = NgramMlm::train(&NgramConfig::default(), &corpus);
        let pruned = NgramMlm::train(
            &NgramConfig {
                prune_below: 5,
                ..NgramConfig::default()
            },
            &corpus,
        );
        assert!(pruned.table_entries() < full.table_entries());
        // The heavily-observed chain still predicts perfectly...
        let preds = pruned.predict_masked(&[20, 0, 40], 1, 3);
        assert_eq!(preds[0].key, 30);
        // ...while the singleton noise context lost its entries.
        let noise = pruned.predict_masked(&[77, 0, 99], 1, 3);
        assert!(noise.is_empty() || noise[0].key != 88);
    }

    #[test]
    fn trained_tokens_counts_corpus_volume() {
        let m = NgramMlm::train(&NgramConfig::default(), &chain_corpus());
        assert_eq!(m.trained_tokens(), 100);
        assert_eq!(m.vocab_len(), 5);
    }
}

//! End-to-end router tests: a real fleet of `kamel-server` instances
//! behind a [`kamel_router::Router`] on loopback.
//!
//! The headline properties pinned here:
//!
//! * concurrent clients through router → 2 shards get responses
//!   byte-identical to a monolithic server (a direct engine render) over
//!   the same model;
//! * killing a shard mid-load completes every request via deterministic
//!   failover with exactly one recorded ejection;
//! * a shard whose config digest disagrees with the fleet is refused
//!   admission and never serves;
//! * shard-spanning trajectories scatter-gather into an order-preserving
//!   merge.

use kamel::{Kamel, KamelConfig};
use kamel_geo::{GpsPoint, Trajectory};
use kamel_router::{
    BreakerPolicy, HealthPolicy, Router, RouterConfig, ShardInfo, ShardMap, ShardState,
};
use kamel_server::{
    Client, ImputeEngine, ImputeResponse, RetryPolicy, Server, ServerConfig, WireService,
};
use std::net::SocketAddr;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn street_corpus(n: usize) -> Vec<Trajectory> {
    (0..n)
        .map(|_| {
            Trajectory::new(
                (0..30)
                    .map(|i| GpsPoint::from_parts(41.15, -8.61 + i as f64 * 0.001, i as f64 * 10.0))
                    .collect(),
            )
        })
        .collect()
}

fn trained() -> Arc<Kamel> {
    let kamel = Kamel::new(
        KamelConfig::builder()
            .model_threshold_k(50)
            .pyramid_height(3)
            .threads(Some(2))
            .build(),
    );
    kamel.train(&street_corpus(40));
    Arc::new(kamel)
}

fn sparse_request(i: usize) -> Trajectory {
    let jitter = i as f64 * 1e-5;
    Trajectory::new(vec![
        GpsPoint::from_parts(41.15, -8.610 + jitter, 0.0),
        GpsPoint::from_parts(41.15, -8.609 + jitter, 10.0),
        GpsPoint::from_parts(41.15, -8.589 + jitter, 210.0),
        GpsPoint::from_parts(41.15, -8.588 + jitter, 220.0),
    ])
}

fn shard_config() -> ServerConfig {
    ServerConfig {
        workers: 2,
        handlers: 16,
        batch_max: 4,
        batch_wait: Duration::from_millis(2),
        queue_cap: 64,
        cache_entries: 0,
        deadline: Duration::from_secs(30),
        idle_poll: Duration::from_millis(50),
        degraded_mode: false,
        ..ServerConfig::default()
    }
}

/// Boots one shard over (a clone of) the shared model.
fn boot_shard(kamel: &Arc<Kamel>) -> Server {
    let engine = Arc::new(ImputeEngine::new(Arc::clone(kamel)));
    Server::bind("127.0.0.1:0", engine, shard_config()).expect("bind shard")
}

fn router_config(eject_after: u32, probe_interval: Duration) -> RouterConfig {
    RouterConfig {
        handlers: 8,
        timeout: Duration::from_secs(10),
        retry: RetryPolicy {
            base: Duration::from_millis(1),
            max_delay: Duration::from_millis(4),
            max_attempts: 2,
            deadline: Duration::from_secs(10),
            jitter_seed: 7,
        },
        health: HealthPolicy {
            eject_after,
            probe_interval,
        },
        breaker: BreakerPolicy::default(),
        idle_poll: Duration::from_millis(50),
        max_pool: 8,
        default_deadline: Duration::from_secs(10),
        degraded: false,
        degraded_max_gap_m: 100.0,
        ..RouterConfig::default()
    }
}

fn fleet_map(addrs: &[SocketAddr], cell_deg: f64) -> ShardMap {
    let shards = addrs
        .iter()
        .enumerate()
        .map(|(i, addr)| ShardInfo {
            id: format!("shard-{i}"),
            addr: *addr,
        })
        .collect();
    ShardMap::new(shards, cell_deg).unwrap()
}

/// The monolith reference: what a direct library call renders.
fn direct_bytes(kamel: &Arc<Kamel>, sparse: &Trajectory) -> Vec<u8> {
    ImputeEngine::new(Arc::clone(kamel)).render(&kamel.impute(sparse))
}

fn wait_for<F: FnMut() -> bool>(what: &str, mut cond: F) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn concurrent_clients_through_router_match_the_monolith() {
    const N: usize = 8;
    let kamel = trained();
    let (shard_a, shard_b) = (boot_shard(&kamel), boot_shard(&kamel));
    // cell_deg 1.0: the whole city is one routing cell, so every request
    // is single-owner and forwarded verbatim.
    let map = fleet_map(&[shard_a.local_addr(), shard_b.local_addr()], 1.0);
    let router = Router::bind(
        "127.0.0.1:0",
        map,
        router_config(3, Duration::from_secs(10)),
    )
    .expect("bind router");
    assert_eq!(router.core().available_shards(), 2, "boot probe admitted the fleet");
    let addr = router.local_addr();
    let threads: Vec<_> = (0..N)
        .map(|i| {
            let kamel = Arc::clone(&kamel);
            std::thread::spawn(move || {
                let sparse = sparse_request(i);
                let body = serde_json::to_vec(&sparse).unwrap();
                let mut c = Client::connect(addr, Duration::from_secs(30)).unwrap();
                let resp = c.post_json("/v1/impute", &body).unwrap();
                assert_eq!(resp.status, 200, "{}", resp.text());
                assert_eq!(
                    resp.body,
                    direct_bytes(&kamel, &sparse),
                    "routed response {i} differs from the monolith"
                );
                let shard = resp.header("x-kamel-shard").expect("shard header").to_string();
                assert!(shard.starts_with("shard-"), "{shard}");
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    let metrics = router.core().metrics();
    assert_eq!(metrics.requests_ok.load(Ordering::Relaxed), N as u64);
    assert_eq!(metrics.scatter_requests.load(Ordering::Relaxed), 0);
    router.shutdown();
    shard_a.shutdown();
    shard_b.shutdown();
}

#[test]
fn failover_completes_every_request_with_one_deterministic_ejection() {
    const N: usize = 6;
    let kamel = trained();
    let (shard_a, shard_b) = (boot_shard(&kamel), boot_shard(&kamel));
    let addrs = [shard_a.local_addr(), shard_b.local_addr()];
    let map = fleet_map(&addrs, 1.0);
    // Every gap lands in one cell; find who owns it so we can kill
    // exactly the primary. Probes are effectively off (long interval), so
    // the ejection count is driven by the request path alone.
    let cell = map.cell_of(sparse_request(0).points[0].pos);
    let owner = map.owner_order(cell)[0];
    let survivor = 1 - owner;
    let router = Router::bind(
        "127.0.0.1:0",
        map,
        router_config(1, Duration::from_secs(600)),
    )
    .expect("bind router");
    assert_eq!(router.core().available_shards(), 2);
    let addr = router.local_addr();
    // Kill the primary, then fire a concurrent burst: every request must
    // complete on the replica with the same bytes the primary would have
    // produced (same model), and the health machine must record exactly
    // one ejection.
    let mut shards = [Some(shard_a), Some(shard_b)];
    shards[owner].take().unwrap().shutdown();
    let threads: Vec<_> = (0..N)
        .map(|i| {
            let kamel = Arc::clone(&kamel);
            std::thread::spawn(move || {
                let sparse = sparse_request(i);
                let body = serde_json::to_vec(&sparse).unwrap();
                let mut c = Client::connect(addr, Duration::from_secs(30)).unwrap();
                let resp = c.post_json("/v1/impute", &body).unwrap();
                assert_eq!(resp.status, 200, "{}", resp.text());
                assert_eq!(resp.body, direct_bytes(&kamel, &sparse), "request {i}");
                resp.header("x-kamel-shard").unwrap().to_string()
            })
        })
        .collect();
    let survivor_id = format!("shard-{survivor}");
    for t in threads {
        assert_eq!(t.join().unwrap(), survivor_id, "served by the replica");
    }
    let core = router.core();
    assert_eq!(
        core.metrics().shard(owner).ejections.load(Ordering::Relaxed),
        1,
        "the dead primary was ejected exactly once"
    );
    assert_eq!(core.health().state(owner), ShardState::Ejected);
    assert_eq!(core.health().state(survivor), ShardState::Active);
    // Follow-up requests skip the ejected shard without touching it.
    let touched_before = core.metrics().shard(owner).forwarded.load(Ordering::Relaxed);
    let mut c = Client::connect(addr, Duration::from_secs(30)).unwrap();
    let body = serde_json::to_vec(&sparse_request(40)).unwrap();
    assert_eq!(c.post_json("/v1/impute", &body).unwrap().status, 200);
    assert_eq!(
        core.metrics().shard(owner).forwarded.load(Ordering::Relaxed),
        touched_before,
        "an ejected shard receives no forwards"
    );
    router.shutdown();
    shards[survivor].take().unwrap().shutdown();
}

#[test]
fn spanning_trajectories_scatter_and_merge_in_order() {
    let kamel = trained();
    let (shard_a, shard_b) = (boot_shard(&kamel), boot_shard(&kamel));
    let addrs = [shard_a.local_addr(), shard_b.local_addr()];
    // Fine routing cells so the street spans several; pick shard ids such
    // that the request's anchor cells really have different owners.
    let cell_deg = 0.01;
    let sparse = sparse_request(0);
    let map = (0..64)
        .find_map(|salt| {
            let shards = addrs
                .iter()
                .enumerate()
                .map(|(i, addr)| ShardInfo {
                    id: if i == 0 { format!("west-{salt}") } else { "east".into() },
                    addr: *addr,
                })
                .collect();
            let map = ShardMap::new(shards, cell_deg).unwrap();
            let owners: Vec<usize> = sparse.points[..sparse.points.len() - 1]
                .iter()
                .map(|p| map.owner_order(map.cell_of(p.pos))[0])
                .collect();
            (owners.iter().any(|&o| o != owners[0])).then_some(map)
        })
        .expect("some id salt splits ownership across the street");
    let router = Router::bind(
        "127.0.0.1:0",
        map,
        router_config(3, Duration::from_secs(10)),
    )
    .expect("bind router");
    assert_eq!(router.core().available_shards(), 2);
    let mut c = Client::connect(router.local_addr(), Duration::from_secs(30)).unwrap();
    let body = serde_json::to_vec(&sparse).unwrap();
    let resp = c.post_json("/v1/impute", &body).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.text());
    let shards = resp.header("x-kamel-shard").unwrap();
    assert!(shards.contains(','), "served by more than one shard: {shards}");
    let merged: ImputeResponse = serde_json::from_slice(&resp.body).unwrap();
    let points = &merged.trajectory.points;
    assert!(points.len() >= sparse.len(), "all fixes survive the merge");
    assert_eq!(points.first().unwrap().t, sparse.points[0].t);
    assert_eq!(points.last().unwrap().t, sparse.points.last().unwrap().t);
    for pair in points.windows(2) {
        assert!(
            pair[0].t < pair[1].t,
            "merged trajectory is strictly time-ordered (no duplicated seam fixes)"
        );
    }
    // Scatter responses are deterministic: the same request merges to the
    // same bytes.
    let again = c.post_json("/v1/impute", &body).unwrap();
    assert_eq!(again.body, resp.body);
    assert_eq!(
        router.core().metrics().scatter_requests.load(Ordering::Relaxed),
        2
    );
    router.shutdown();
    shard_a.shutdown();
    shard_b.shutdown();
}

#[test]
fn digest_mismatch_refuses_admission() {
    let kamel = trained();
    let shard_a = boot_shard(&kamel);
    // Shard B runs a *differently configured* system: its /v1/info digest
    // disagrees with the fleet, so admitting it would mix grids.
    let other = Arc::new(Kamel::new(KamelConfig::default()));
    let shard_b = boot_shard(&other);
    let map = fleet_map(&[shard_a.local_addr(), shard_b.local_addr()], 1.0);
    let router = Router::bind(
        "127.0.0.1:0",
        map,
        router_config(3, Duration::from_millis(100)),
    )
    .expect("bind router");
    let core = router.core();
    // The boot sweep probes in map order: shard-0 pins the fleet digest,
    // shard-1 is refused — and stays refused over later probe sweeps.
    assert_eq!(core.available_shards(), 1);
    assert_eq!(core.health().state(1), ShardState::Unverified);
    wait_for("a second refused probe sweep", || {
        core.metrics().shard(1).admission_refusals.load(Ordering::Relaxed) >= 2
    });
    assert_eq!(core.health().state(1), ShardState::Unverified);
    // Traffic flows, all of it to the admitted shard.
    let mut c = Client::connect(router.local_addr(), Duration::from_secs(30)).unwrap();
    let body = serde_json::to_vec(&sparse_request(0)).unwrap();
    let resp = c.post_json("/v1/impute", &body).unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(resp.header("x-kamel-shard"), Some("shard-0"));
    assert_eq!(resp.body, direct_bytes(&kamel, &sparse_request(0)));
    assert_eq!(core.metrics().shard(1).forwarded.load(Ordering::Relaxed), 0);
    // /v1/shards reports the live picture.
    let shards_page = c.get("/v1/shards").unwrap();
    assert_eq!(shards_page.status, 200);
    let text = shards_page.text();
    assert!(text.contains("\"state\":\"active\""), "{text}");
    assert!(text.contains("\"state\":\"unverified\""), "{text}");
    router.shutdown();
    shard_a.shutdown();
    shard_b.shutdown();
}

#[test]
fn probe_ejects_a_dead_shard_and_readmits_it_after_recovery() {
    let kamel = trained();
    let shard_a = boot_shard(&kamel);
    let shard_b = boot_shard(&kamel);
    let b_addr = shard_b.local_addr();
    let map = fleet_map(&[shard_a.local_addr(), b_addr], 1.0);
    let router = Router::bind(
        "127.0.0.1:0",
        map,
        router_config(2, Duration::from_millis(50)),
    )
    .expect("bind router");
    let core = Arc::clone(router.core());
    assert_eq!(core.available_shards(), 2);
    // Take shard B down: the probe sweep alone (no request traffic) must
    // eject it after `eject_after` consecutive failures.
    shard_b.shutdown();
    wait_for("probe ejection of the dead shard", || {
        core.health().state(1) == ShardState::Ejected
    });
    assert_eq!(core.metrics().shard(1).ejections.load(Ordering::Relaxed), 1);
    // Bring it back on the same address with the same model: the probe
    // re-admits it (digest still matches the fleet).
    let revived = Server::bind(
        &b_addr.to_string(),
        Arc::new(ImputeEngine::new(Arc::clone(&kamel))),
        shard_config(),
    )
    .expect("rebind the revived shard");
    wait_for("probe re-admission of the revived shard", || {
        core.health().state(1) == ShardState::Active
    });
    // Boot admission + re-admission.
    assert_eq!(core.metrics().shard(1).admissions.load(Ordering::Relaxed), 2);
    router.shutdown();
    shard_a.shutdown();
    revived.shutdown();
}

#[test]
fn router_endpoints_and_errors() {
    let kamel = trained();
    let shard = boot_shard(&kamel);
    let map = fleet_map(&[shard.local_addr()], 1.0);
    let router = Router::bind(
        "127.0.0.1:0",
        map,
        router_config(3, Duration::from_secs(10)),
    )
    .expect("bind router");
    let mut c = Client::connect(router.local_addr(), Duration::from_secs(30)).unwrap();
    assert_eq!(c.get("/healthz").unwrap().text(), "ok\n");
    let metrics = c.get("/metrics").unwrap().text();
    assert!(metrics.contains("kamel_router_shard_requests_total{shard=\"shard-0\"}"), "{metrics}");
    assert_eq!(c.get("/nope").unwrap().status, 404);
    assert_eq!(c.post_json("/metrics", b"x").unwrap().status, 405);
    // Garbage JSON is rejected at the router, before any forward.
    let bad = c.post_json("/v1/impute", b"{not json").unwrap();
    assert_eq!(bad.status, 400);
    assert!(bad.text().contains("invalid trajectory JSON"), "{}", bad.text());
    assert_eq!(
        router.core().metrics().shard(0).forwarded.load(Ordering::Relaxed),
        0
    );
    // A shard-side 400 (non-finite coordinate) passes through verbatim.
    let nan_body = br#"{"points":[{"pos":{"lat":1e999,"lng":-8.0},"t":0.0},{"pos":{"lat":41.0,"lng":-8.0},"t":10.0}]}"#;
    let resp = c.post_json("/v1/impute", nan_body).unwrap();
    // (1e999 overflows to inf only if serde accepts it; either way the
    // answer is a clean 4xx from exactly one layer.)
    assert_eq!(resp.status, 400, "{}", resp.text());
    router.shutdown();
    shard.shutdown();
}

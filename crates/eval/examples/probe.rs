//! Internal debugging probe (not part of the public example set).

use kamel::{Kamel, KamelConfig};
use kamel_roadsim::{Dataset, DatasetScale};

fn run(label: &str, cfg: KamelConfig, dataset: &Dataset) {
    let kamel = Kamel::new(cfg);
    kamel.train(&dataset.train);
    let (mut no_model, mut failed, mut ok, mut calls) = (0, 0, 0, 0);
    let (mut budget, mut nocand) = (0, 0);
    for gt in dataset.test.iter().take(15) {
        let sparse = gt.sparsify(1_000.0);
        let out = kamel.impute(&sparse);
        for g in &out.gaps {
            calls += g.outcome.model_calls;
            if !g.had_model {
                no_model += 1;
            } else if g.outcome.failed {
                failed += 1;
                match g.outcome.failure_reason {
                    Some(kamel::impute::FailureReason::BudgetExhausted) => budget += 1,
                    Some(kamel::impute::FailureReason::NoValidCandidates) => nocand += 1,
                    _ => {}
                }
            } else {
                ok += 1;
            }
        }
    }
    // Metrics over all trajectories vs only fully-successful ones.
    let proj = dataset.projection();
    let mut all = kamel_eval::MetricsAccumulator::default();
    let mut clean = kamel_eval::MetricsAccumulator::default();
    for gt in dataset.test.iter().take(15) {
        let sparse = gt.sparsify(1_000.0);
        let out = kamel.impute(&sparse);
        all.add_pair(gt, &out.trajectory, &proj, 100.0, 50.0);
        if out.gaps.iter().all(|g| !g.outcome.failed) {
            clean.add_pair(gt, &out.trajectory, &proj, 100.0, 50.0);
        }
    }
    println!(
        "{label:<28} models={:>3} ok={ok:>3} fail={failed:>3} (budget={budget} nocand={nocand}) nomodel={no_model:>2} calls={calls} | all r={:.3} p={:.3} clean r={:.3} p={:.3}",
        kamel.stats().map_or(0, |s| s.models),
        all.recall(), all.precision(), clean.recall(), clean.precision()
    );
}

fn deviations(dataset: &Dataset) {
    let kamel = Kamel::new(
        KamelConfig::builder()
            .pyramid_height(3)
            .pyramid_maintained(3)
            .model_threshold_k(150)
            .build(),
    );
    kamel.train(&dataset.train);
    let proj = dataset.projection();
    let mut hist = [0usize; 8]; // 0-10,10-25,25-50,50-75,75-100,100-150,150-300,300+
    for gt in dataset.test.iter().take(15) {
        let sparse = gt.sparsify(1_000.0);
        let out = kamel.impute(&sparse);
        if out.gaps.iter().any(|g| g.outcome.failed) {
            continue;
        }
        let gt_line: Vec<kamel_geo::Xy> = gt.points.iter().map(|p| proj.to_xy(p.pos)).collect();
        let imp_line: Vec<kamel_geo::Xy> =
            out.trajectory.points.iter().map(|p| proj.to_xy(p.pos)).collect();
        for q in kamel_geo::discretize(&imp_line, 100.0) {
            let d = kamel_geo::point_to_polyline_distance(q, &gt_line);
            let bucket = match d {
                d if d < 10.0 => 0,
                d if d < 25.0 => 1,
                d if d < 50.0 => 2,
                d if d < 75.0 => 3,
                d if d < 100.0 => 4,
                d if d < 150.0 => 5,
                d if d < 300.0 => 6,
                _ => 7,
            };
            hist[bucket] += 1;
        }
    }
    println!("imputed-point deviation histogram (m): {hist:?} (0-10,10-25,25-50,50-75,75-100,100-150,150-300,300+)");
}

fn main() {
    let dataset = Dataset::porto_like(DatasetScale::Small);
    println!(
        "train {} trajs / {} pts; test {}",
        dataset.train.len(),
        dataset.train_points(),
        dataset.test.len()
    );
    let base = || {
        KamelConfig::builder()
            .pyramid_height(3)
            .pyramid_maintained(3)
            .model_threshold_k(150)
    };
    deviations(&dataset);
    run("beam default", base().build(), &dataset);
    run(
        "iterative",
        base()
            .multipoint(kamel::MultipointStrategy::Iterative)
            .build(),
        &dataset,
    );
    run("maxgap 280", base().max_gap_m(280.0).build(), &dataset);
    run("topk 25", base().top_k(25).build(), &dataset);
    run(
        "iter maxgap280 topk25",
        base()
            .multipoint(kamel::MultipointStrategy::Iterative)
            .max_gap_m(280.0)
            .top_k(25)
            .build(),
        &dataset,
    );
    run("budget 256", base().max_model_calls(256).build(), &dataset);
    run("no constraints", base().disable_constraints(true).build(), &dataset);
    run(
        "global model",
        base().disable_partitioning(true).build(),
        &dataset,
    );
}

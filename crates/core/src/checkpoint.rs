//! Crash-safe checkpoint container for persisted models.
//!
//! The paper positions KAMEL's training as a long-running offline process
//! whose output is then served online; losing hours of training to a torn
//! write or a full disk is not acceptable at that scale. This module gives
//! model persistence three durability properties:
//!
//! 1. **Integrity** — a checkpoint is a small binary envelope around the
//!    serialized model: an 8-byte magic, a format version, the payload
//!    length, and a CRC32C over the payload (implemented in-repo; the
//!    build environment has no crates registry). Truncation, bit rot, and
//!    files from a future format version are all detected at load time
//!    instead of surfacing as garbage model state.
//! 2. **Atomicity** — writes go to a same-directory temp file, are
//!    `sync_all`ed, and only then renamed over the live path, so the live
//!    file is always either the old or the new checkpoint, never a blend.
//! 3. **Rotation** — the previous good checkpoint is kept as `<path>.bak`
//!    (rotated by rename immediately before the new file lands), and the
//!    loader falls back to it — with a loud warning — whenever the live
//!    file is missing or fails validation.
//!
//! Legacy bare-JSON model files (everything this repo wrote before the
//! envelope existed) do not start with the magic and are loaded as-is for
//! backward compatibility.
//!
//! The write path is factored over a tiny I/O shim ([`CkptIo`]) so tests
//! can deterministically inject short writes, `ENOSPC`, and crashes
//! between the rename steps; the fault implementations are compiled in
//! tests only.

use std::fs::File;
use std::io::Write;
use std::path::{Path, PathBuf};

/// First bytes of every enveloped checkpoint.
pub const MAGIC: &[u8; 8] = b"KAMELCKP";
/// The (only) envelope version this build writes and reads.
pub const FORMAT_VERSION: u32 = 1;
/// Envelope header size: magic (8) + version (4) + payload length (8) +
/// CRC32C (4).
pub const HEADER_LEN: usize = 24;

/// CRC32C (Castagnoli) lookup table, reflected polynomial 0x82F63B78.
static CRC32C_TABLE: [u32; 256] = make_crc32c_table();

const fn make_crc32c_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0x82F6_3B78
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// CRC32C (Castagnoli) of `bytes`.
pub fn crc32c(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC32C_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// FNV-1a 64-bit digest of a byte stream (used as the training-input
/// fingerprint in resume progress records).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Why a byte buffer failed to decode as a checkpoint envelope.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Shorter than a full header despite starting with the magic.
    TruncatedHeader,
    /// The envelope claims a format version this build does not know.
    UnknownVersion(u32),
    /// File length disagrees with the header's payload length.
    LengthMismatch {
        /// Payload bytes the header promised.
        expected: u64,
        /// Payload bytes actually present.
        got: u64,
    },
    /// The payload does not match its recorded CRC32C.
    ChecksumMismatch {
        /// CRC32C recorded in the header.
        expected: u32,
        /// CRC32C of the payload as read.
        got: u32,
    },
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::TruncatedHeader => write!(f, "checkpoint header is truncated"),
            DecodeError::UnknownVersion(v) => {
                write!(f, "checkpoint format version {v} is newer than this build understands")
            }
            DecodeError::LengthMismatch { expected, got } => {
                write!(f, "checkpoint payload truncated: header promises {expected} bytes, file holds {got}")
            }
            DecodeError::ChecksumMismatch { expected, got } => write!(
                f,
                "checkpoint payload corrupt: CRC32C {got:08x} != recorded {expected:08x}"
            ),
        }
    }
}

/// Wraps `payload` in the versioned, checksummed envelope.
pub fn encode(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&crc32c(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Decodes an enveloped checkpoint back to its payload, validating magic,
/// version, length, and checksum. Buffers that do not start with the magic
/// are legacy bare payloads (pre-envelope model files) and are returned
/// whole.
pub fn decode(bytes: &[u8]) -> Result<&[u8], DecodeError> {
    if bytes.len() < MAGIC.len() || &bytes[..MAGIC.len()] != MAGIC {
        return Ok(bytes); // legacy bare-JSON checkpoint
    }
    if bytes.len() < HEADER_LEN {
        return Err(DecodeError::TruncatedHeader);
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if version != FORMAT_VERSION {
        return Err(DecodeError::UnknownVersion(version));
    }
    let payload_len = u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes"));
    let expected_crc = u32::from_le_bytes(bytes[20..24].try_into().expect("4 bytes"));
    let got_len = (bytes.len() - HEADER_LEN) as u64;
    if got_len != payload_len {
        return Err(DecodeError::LengthMismatch {
            expected: payload_len,
            got: got_len,
        });
    }
    let payload = &bytes[HEADER_LEN..];
    let got_crc = crc32c(payload);
    if got_crc != expected_crc {
        return Err(DecodeError::ChecksumMismatch {
            expected: expected_crc,
            got: got_crc,
        });
    }
    Ok(payload)
}

/// `<path>.bak` — where the previous good checkpoint is rotated to.
pub fn bak_path(path: &Path) -> PathBuf {
    sibling(path, ".bak")
}

/// `<path>.tmp` — the same-directory staging file for atomic writes.
pub fn tmp_path(path: &Path) -> PathBuf {
    sibling(path, ".tmp")
}

fn sibling(path: &Path, suffix: &str) -> PathBuf {
    let mut s = path.as_os_str().to_os_string();
    s.push(suffix);
    PathBuf::from(s)
}

/// The filesystem operations the checkpoint writer performs, factored out
/// so tests can inject faults at every step. The production implementation
/// ([`RealIo`]) is a transparent pass-through. Public so sibling storage
/// crates (the `.kstore` model store) write through the same shim and
/// inherit the same fault matrix.
pub trait CkptIo {
    /// Writes `buf` to `file` (the temp-file body write).
    fn write_all(&self, file: &mut File, buf: &[u8]) -> std::io::Result<()>;
    /// Makes `file` durable (`sync_all`).
    fn sync(&self, file: &File) -> std::io::Result<()>;
    /// Called once between the durable temp write and the rename pair; a
    /// fault here models a process death before any rename ran.
    fn before_rotate(&self) -> std::io::Result<()> {
        Ok(())
    }
    /// Called between the `live → bak` rotation and the `tmp → live`
    /// publish; a fault here models a process death between the renames.
    fn between_renames(&self) -> std::io::Result<()> {
        Ok(())
    }
    /// Renames `from` over `to` (the rotation and publish steps).
    fn rename(&self, from: &Path, to: &Path) -> std::io::Result<()>;
}

/// The production shim: plain `std::fs`.
pub struct RealIo;

impl CkptIo for RealIo {
    fn write_all(&self, file: &mut File, buf: &[u8]) -> std::io::Result<()> {
        file.write_all(buf)
    }

    fn sync(&self, file: &File) -> std::io::Result<()> {
        file.sync_all()
    }

    fn rename(&self, from: &Path, to: &Path) -> std::io::Result<()> {
        std::fs::rename(from, to)
    }
}

/// Atomically persists `bytes` at `path`:
///
/// 1. write + `sync_all` to `<path>.tmp` in the same directory;
/// 2. when `rotate`, rename an existing live file to `<path>.bak`;
/// 3. rename `<path>.tmp` over `<path>`;
/// 4. best-effort fsync of the parent directory so the renames themselves
///    are durable.
///
/// A crash at any point leaves either the old file at `path`, or the new
/// one at `path`, or (with rotation) the old one at `<path>.bak` with
/// `path` missing — never a half-written live file. The checkpoint loader
/// handles all three.
pub fn write_atomic_with(
    io: &dyn CkptIo,
    path: &Path,
    bytes: &[u8],
    rotate: bool,
) -> std::io::Result<()> {
    let tmp = tmp_path(path);
    let mut file = File::create(&tmp)?;
    io.write_all(&mut file, bytes)?;
    io.sync(&file)?;
    drop(file);
    io.before_rotate()?;
    if rotate && path.exists() {
        io.rename(path, &bak_path(path))?;
    }
    io.between_renames()?;
    io.rename(&tmp, path)?;
    sync_parent_dir(path);
    Ok(())
}

/// Atomically writes raw bytes at `path` (temp file + sync + rename; an
/// existing file is replaced in one step, no `.bak` is kept). This is the
/// envelope-free helper for outputs that are not checkpoints — e.g. CSV
/// exports — which share the same torn-write failure mode as model saves.
pub fn write_file_atomic(path: impl AsRef<Path>, bytes: &[u8]) -> std::io::Result<()> {
    write_atomic_with(&RealIo, path.as_ref(), bytes, false)
}

/// Envelopes `payload` and atomically persists it at `path`, rotating the
/// previous checkpoint to `<path>.bak` (see [`write_atomic_with`] for the
/// crash guarantees).
pub fn save_checkpoint(path: impl AsRef<Path>, payload: &[u8]) -> std::io::Result<()> {
    write_atomic_with(&RealIo, path.as_ref(), &encode(payload), true)
}

/// How a checkpoint payload was obtained by [`load_checkpoint`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadedFrom {
    /// The live file validated cleanly.
    Live,
    /// The live file was missing or corrupt; the `.bak` rotation was used.
    Backup,
}

/// Loads and validates the checkpoint payload at `path`, falling back to
/// `<path>.bak` (with a loud warning on stderr) when the live file is
/// missing, truncated, corrupt, or from an unknown future version.
///
/// Returns the payload bytes and where they came from. Errors only when
/// both the live file and the backup are unusable.
pub fn load_checkpoint(path: impl AsRef<Path>) -> std::io::Result<(Vec<u8>, LoadedFrom)> {
    let path = path.as_ref();
    let primary = read_validated(path);
    let primary_err = match primary {
        Ok(payload) => return Ok((payload, LoadedFrom::Live)),
        Err(e) => e,
    };
    let bak = bak_path(path);
    match read_validated(&bak) {
        Ok(payload) => {
            // Once per path per process — see [`note_bak_recovery`].
            if note_bak_recovery(path) {
                eprintln!(
                    "warning: checkpoint {} is unusable ({primary_err}); \
                     recovered from backup {}",
                    path.display(),
                    bak.display()
                );
            }
            Ok((payload, LoadedFrom::Backup))
        }
        Err(bak_err) => Err(std::io::Error::new(
            primary_err.kind(),
            format!(
                "{}: {primary_err} (backup {}: {bak_err})",
                path.display(),
                bak.display()
            ),
        )),
    }
}

/// Reads `path` and decodes its envelope; any validation failure becomes
/// an `InvalidData` error.
fn read_validated(path: &Path) -> std::io::Result<Vec<u8>> {
    let bytes = std::fs::read(path)?;
    match decode(&bytes) {
        Ok(payload) => Ok(payload.to_vec()),
        Err(e) => Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            e.to_string(),
        )),
    }
}

/// Best-effort fsync of `path`'s parent directory, making the rename pair
/// durable on filesystems where directory updates are buffered. Failure is
/// ignored: not all platforms allow opening directories for sync.
fn sync_parent_dir(path: &Path) {
    #[cfg(unix)]
    if let Some(parent) = path.parent() {
        let parent = if parent.as_os_str().is_empty() {
            Path::new(".")
        } else {
            parent
        };
        if let Ok(dir) = File::open(parent) {
            let _ = dir.sync_all();
        }
    }
    #[cfg(not(unix))]
    let _ = path;
}

/// Records a `.bak`-fallback recovery for `path`, returning `true` only
/// the first time this process notes it. Loaders gate their stderr
/// warning on this: a pyramid-scale boot loads hundreds of cells from the
/// same checkpoint tree, and one recovery event must not print hundreds
/// of identical lines.
pub fn note_bak_recovery(path: &Path) -> bool {
    use std::collections::HashSet;
    use std::sync::{Mutex, OnceLock};
    static SEEN: OnceLock<Mutex<HashSet<PathBuf>>> = OnceLock::new();
    SEEN.get_or_init(|| Mutex::new(HashSet::new()))
        .lock()
        .expect("bak-recovery registry poisoned")
        .insert(path.to_path_buf())
}

/// Deterministic fault injection for the checkpoint write path, compiled
/// in tests (and for dependents opting into the `fault-injection`
/// feature — the model store's corruption tests reuse the matrix). Each
/// fault models one real-world failure recovery must survive.
#[cfg(any(test, feature = "fault-injection"))]
pub mod faults {
    use super::CkptIo;
    use std::fs::File;
    use std::io::Write;
    use std::path::Path;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// The injectable failure modes.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Fault {
        /// The process dies after `keep` bytes of the temp file reached the
        /// kernel — a short/torn write. No rename ever runs.
        ShortWrite {
            /// Bytes written before the crash.
            keep: usize,
        },
        /// The disk fills after `after` bytes: the write call itself fails
        /// with `ENOSPC` (`StorageFull`), and the save returns an error.
        Enospc {
            /// Bytes written before the device fills.
            after: usize,
        },
        /// The process dies after the temp file is durable but before any
        /// rename ran: live and backup are untouched, a stray `.tmp`
        /// remains.
        CrashBeforeRename,
        /// The process dies between `live → bak` and `tmp → live`: the
        /// live path is missing and only the backup holds a checkpoint.
        CrashBetweenRenames,
    }

    /// The error kind carried by simulated crashes, so tests can tell a
    /// deliberate kill from a genuine I/O failure.
    pub const CRASH: std::io::ErrorKind = std::io::ErrorKind::Interrupted;

    fn crash(what: &str) -> std::io::Error {
        std::io::Error::new(CRASH, format!("injected crash: {what}"))
    }

    /// A [`CkptIo`] that fails exactly once, at the configured point.
    pub struct FaultyIo {
        fault: Fault,
        written: AtomicUsize,
    }

    impl FaultyIo {
        /// Wraps the configured fault.
        pub fn new(fault: Fault) -> Self {
            Self {
                fault,
                written: AtomicUsize::new(0),
            }
        }
    }

    impl CkptIo for FaultyIo {
        fn write_all(&self, file: &mut File, buf: &[u8]) -> std::io::Result<()> {
            let cap = match self.fault {
                Fault::ShortWrite { keep } => Some((keep, true)),
                Fault::Enospc { after } => Some((after, false)),
                _ => None,
            };
            let Some((cap, is_crash)) = cap else {
                return file.write_all(buf);
            };
            let already = self.written.load(Ordering::SeqCst);
            let room = cap.saturating_sub(already).min(buf.len());
            file.write_all(&buf[..room])?;
            file.sync_all()?; // the partial bytes really are on disk
            self.written.fetch_add(room, Ordering::SeqCst);
            if room < buf.len() {
                return Err(if is_crash {
                    crash("torn write")
                } else {
                    std::io::Error::new(std::io::ErrorKind::StorageFull, "injected ENOSPC")
                });
            }
            Ok(())
        }

        fn sync(&self, file: &File) -> std::io::Result<()> {
            file.sync_all()
        }

        fn before_rotate(&self) -> std::io::Result<()> {
            if self.fault == Fault::CrashBeforeRename {
                return Err(crash("before rename"));
            }
            Ok(())
        }

        fn between_renames(&self) -> std::io::Result<()> {
            if self.fault == Fault::CrashBetweenRenames {
                return Err(crash("between renames"));
            }
            Ok(())
        }

        fn rename(&self, from: &Path, to: &Path) -> std::io::Result<()> {
            std::fs::rename(from, to)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::faults::{Fault, FaultyIo};
    use super::*;

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "kamel_ckpt_{tag}_{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn bak_recovery_notes_each_path_once_per_process() {
        let dir = tempdir("warn_once");
        let a = dir.join("model_a.ckpt");
        let b = dir.join("model_b.ckpt");
        // First recovery of a path reports true (→ warning printed)...
        assert!(note_bak_recovery(&a));
        // ...every later recovery of the same path is silent, however many
        // cell loads hit it.
        assert!(!note_bak_recovery(&a));
        assert!(!note_bak_recovery(&a));
        // Distinct paths warn independently.
        assert!(note_bak_recovery(&b));
        assert!(!note_bak_recovery(&b));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn crc32c_matches_known_vectors() {
        // RFC 3720 §B.4 test vectors.
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
        assert_eq!(crc32c(&[0u8; 32]), 0x8A91_36AA);
        assert_eq!(crc32c(&[0xFFu8; 32]), 0x62A8_AB43);
        assert_eq!(crc32c(b""), 0);
    }

    #[test]
    fn fnv1a64_is_stable_and_sensitive() {
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a64(b"a"), fnv1a64(b"b"));
        assert_ne!(fnv1a64(b"ab"), fnv1a64(b"ba"));
        assert_eq!(fnv1a64(b"trips.csv"), fnv1a64(b"trips.csv"));
    }

    #[test]
    fn encode_decode_roundtrip() {
        let payload = b"{\"model\":42}";
        let wire = encode(payload);
        assert_eq!(&wire[..8], MAGIC);
        assert_eq!(wire.len(), HEADER_LEN + payload.len());
        assert_eq!(decode(&wire).unwrap(), payload);
        // Empty payloads are legal.
        assert_eq!(decode(&encode(b"")).unwrap(), b"");
    }

    #[test]
    fn legacy_bare_json_passes_through() {
        let legacy = b"{\"config\":{},\"state\":null}";
        assert_eq!(decode(legacy).unwrap(), legacy);
        // Short non-magic buffers are legacy too (they will fail JSON
        // parsing later, which the loader converts into a .bak fallback).
        assert_eq!(decode(b"{").unwrap(), b"{");
        assert_eq!(decode(b"").unwrap(), b"");
    }

    #[test]
    fn decode_rejects_every_corruption_class() {
        let wire = encode(b"payload-bytes");
        // Truncated header.
        assert_eq!(decode(&wire[..10]), Err(DecodeError::TruncatedHeader));
        // Unknown future version.
        let mut future = wire.clone();
        future[8..12].copy_from_slice(&99u32.to_le_bytes());
        assert_eq!(decode(&future), Err(DecodeError::UnknownVersion(99)));
        // Truncated payload.
        assert!(matches!(
            decode(&wire[..wire.len() - 3]),
            Err(DecodeError::LengthMismatch { .. })
        ));
        // Trailing garbage.
        let mut long = wire.clone();
        long.extend_from_slice(b"xx");
        assert!(matches!(decode(&long), Err(DecodeError::LengthMismatch { .. })));
        // Flipped payload bit.
        let mut flipped = wire.clone();
        *flipped.last_mut().unwrap() ^= 0x01;
        assert!(matches!(
            decode(&flipped),
            Err(DecodeError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn save_load_roundtrip_and_rotation() {
        let dir = tempdir("rotate");
        let path = dir.join("model.ckpt");
        save_checkpoint(&path, b"v1").unwrap();
        assert_eq!(
            load_checkpoint(&path).unwrap(),
            (b"v1".to_vec(), LoadedFrom::Live)
        );
        assert!(!bak_path(&path).exists(), "no backup after the first save");
        save_checkpoint(&path, b"v2").unwrap();
        assert_eq!(
            load_checkpoint(&path).unwrap(),
            (b"v2".to_vec(), LoadedFrom::Live)
        );
        // The rotation preserved v1 as the backup.
        let bak = std::fs::read(bak_path(&path)).unwrap();
        assert_eq!(decode(&bak).unwrap(), b"v1");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_live_falls_back_to_backup() {
        let dir = tempdir("fallback");
        let path = dir.join("model.ckpt");
        let old = vec![b'o'; 200];
        let new = vec![b'n'; 200];
        save_checkpoint(&path, &old).unwrap();
        save_checkpoint(&path, &new).unwrap();
        // Truncate the live file's last 64 bytes (the acceptance-criterion
        // shape): the magic survives, the payload does not.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 64]).unwrap();
        let (payload, from) = load_checkpoint(&path).unwrap();
        assert_eq!(from, LoadedFrom::Backup);
        assert_eq!(payload, old);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_live_with_backup_recovers() {
        let dir = tempdir("missing_live");
        let path = dir.join("model.ckpt");
        save_checkpoint(&path, b"only").unwrap();
        save_checkpoint(&path, b"newer").unwrap();
        std::fs::remove_file(&path).unwrap();
        let (payload, from) = load_checkpoint(&path).unwrap();
        assert_eq!(from, LoadedFrom::Backup);
        assert_eq!(payload, b"only");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn both_unusable_is_an_error_naming_both_paths() {
        let dir = tempdir("both_bad");
        let path = dir.join("model.ckpt");
        let err = load_checkpoint(&path).unwrap_err();
        assert!(err.to_string().contains("model.ckpt"), "{err}");
        assert!(err.to_string().contains(".bak"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    /// The recovery matrix: for every injected fault, a subsequent load
    /// must yield exactly the pre-save payload (the save never completed)
    /// — never a torn or blended file.
    #[test]
    fn fault_matrix_never_loses_the_previous_checkpoint() {
        let new_wire_len = encode(b"NEW-checkpoint-payload").len();
        let faults = [
            Fault::ShortWrite { keep: 3 },
            Fault::ShortWrite { keep: new_wire_len - 1 },
            Fault::Enospc { after: 0 },
            Fault::Enospc { after: new_wire_len / 2 },
            Fault::CrashBeforeRename,
            Fault::CrashBetweenRenames,
        ];
        for (i, fault) in faults.into_iter().enumerate() {
            let dir = tempdir(&format!("matrix_{i}"));
            let path = dir.join("model.ckpt");
            save_checkpoint(&path, b"OLD-checkpoint-payload").unwrap();
            let io = FaultyIo::new(fault);
            let err = write_atomic_with(&io, &path, &encode(b"NEW-checkpoint-payload"), true)
                .expect_err("fault must surface");
            assert!(
                err.kind() == super::faults::CRASH
                    || err.kind() == std::io::ErrorKind::StorageFull,
                "{fault:?}: unexpected error {err}"
            );
            let (payload, _) = load_checkpoint(&path)
                .unwrap_or_else(|e| panic!("{fault:?}: recovery failed: {e}"));
            assert_eq!(
                payload, b"OLD-checkpoint-payload",
                "{fault:?}: recovered payload is not the pre-save state"
            );
            std::fs::remove_dir_all(&dir).ok();
        }
    }

    /// Bit-flip corruption after a *successful* save: the flip lands on
    /// the live file, so recovery must hand back the previous checkpoint
    /// from the rotation. (A flip inside the magic itself demotes the file
    /// to a "legacy" payload at this layer; the model loader catches that
    /// class when the payload fails to parse as JSON — covered by the
    /// pipeline-level recovery tests.)
    #[test]
    fn post_save_bit_flip_recovers_previous_checkpoint() {
        let wire_len = encode(b"NEW").len();
        // One offset in each validated region: version, length, recorded
        // CRC, first payload byte, last payload byte.
        for offset in [8usize, 12, 20, HEADER_LEN, wire_len - 1] {
            let dir = tempdir(&format!("bitflip_{offset}"));
            let path = dir.join("model.ckpt");
            save_checkpoint(&path, b"OLD").unwrap();
            save_checkpoint(&path, b"NEW").unwrap();
            let mut bytes = std::fs::read(&path).unwrap();
            bytes[offset] ^= 0x40;
            std::fs::write(&path, &bytes).unwrap();
            let (payload, from) = load_checkpoint(&path)
                .unwrap_or_else(|e| panic!("offset {offset}: recovery failed: {e}"));
            assert_eq!(from, LoadedFrom::Backup, "offset {offset}");
            assert_eq!(payload, b"OLD", "offset {offset}");
            std::fs::remove_dir_all(&dir).ok();
        }
    }

    #[test]
    fn write_file_atomic_replaces_without_rotation() {
        let dir = tempdir("raw");
        let path = dir.join("out.csv");
        write_file_atomic(&path, b"a,b\n1,2\n").unwrap();
        write_file_atomic(&path, b"a,b\n3,4\n").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"a,b\n3,4\n");
        assert!(!bak_path(&path).exists(), "raw writes keep no .bak");
        assert!(!tmp_path(&path).exists(), "no stray temp file");
        std::fs::remove_dir_all(&dir).ok();
    }
}

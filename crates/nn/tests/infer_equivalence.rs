//! Bit-identity of the grad-free inference engine against the reference
//! training forward, across model scales, sequence shapes, batch mixes,
//! and thread budgets.
//!
//! These property tests are the contract `kamel_nn::infer` ships under:
//! `predict_with` / `predict_batch_with` return the *same bits* as
//! [`kamel_nn::BertMlmModel::predict`], and a reused scratch never leaks
//! state between calls. Thread budgets are exercised explicitly because
//! the fused batch changes which kernels parallelize — the results must
//! not change with them.

use kamel_nn::{set_thread_budget, BertConfig, BertMlmModel, InferScratch};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Tiny and Small — the scales the test suite can afford to build.
fn config_for(scale: u8, vocab: usize) -> BertConfig {
    match scale {
        0 => BertConfig::tiny(vocab),
        _ => BertConfig::small(vocab),
    }
}

/// A `(sequence, masked position)` request with ids in `[0, vocab)`.
fn request_strategy(vocab: usize, max_len: usize) -> impl Strategy<Value = (Vec<u32>, usize)> {
    proptest::collection::vec(0..vocab as u32, 1..=max_len)
        .prop_flat_map(|ids| {
            let len = ids.len();
            (Just(ids), 0..len)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Single grad-free prediction == reference forward, bit for bit, for
    /// any scale, sequence, mask position, and thread budget.
    #[test]
    fn predict_with_matches_predict(
        scale in 0u8..2,
        seed in 0u64..100,
        (ids, pos) in request_strategy(13, 24),
        threads in 1usize..5,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let model = BertMlmModel::new(config_for(scale, 13), &mut rng);
        set_thread_budget(threads);
        let reference = model.predict(&ids, pos);
        let mut scratch = InferScratch::new();
        let fast = model.predict_with(&mut scratch, &ids, pos);
        set_thread_budget(1);
        prop_assert_eq!(reference.as_slice(), fast);
    }

    /// A fused batch == each single call, bit for bit, regardless of how
    /// the requests are mixed (lengths, positions) or the thread budget.
    #[test]
    fn batch_matches_singles(
        scale in 0u8..2,
        seed in 0u64..100,
        reqs in proptest::collection::vec(request_strategy(11, 16), 1..6),
        threads in 1usize..5,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let model = BertMlmModel::new(config_for(scale, 11), &mut rng);
        set_thread_budget(threads);
        let views: Vec<(&[u32], usize)> = reqs
            .iter()
            .map(|(ids, pos)| (ids.as_slice(), *pos))
            .collect();
        let mut scratch = InferScratch::new();
        let batch = model.predict_batch_with(&mut scratch, &views).clone();
        set_thread_budget(1);
        prop_assert_eq!(batch.rows(), reqs.len());
        for (i, (ids, pos)) in reqs.iter().enumerate() {
            let reference = model.predict(ids, *pos);
            prop_assert_eq!(reference.as_slice(), batch.row(i), "request {} diverged", i);
        }
    }

    /// One scratch fed a shuffle of differently-shaped requests answers
    /// each exactly like a fresh scratch: reuse leaks no state.
    #[test]
    fn scratch_reuse_leaks_no_state(
        seed in 0u64..100,
        reqs in proptest::collection::vec(request_strategy(9, 12), 2..6),
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let model = BertMlmModel::new(BertConfig::tiny(9), &mut rng);
        let mut reused = InferScratch::new();
        // Warm the scratch with every request once, then replay: answers
        // must match fresh-scratch answers bit for bit.
        for (ids, pos) in &reqs {
            let _ = model.predict_with(&mut reused, ids, *pos);
        }
        for (ids, pos) in &reqs {
            let replay = model.predict_with(&mut reused, ids, *pos).to_vec();
            let mut fresh = InferScratch::new();
            let clean = model.predict_with(&mut fresh, ids, *pos);
            prop_assert_eq!(replay.as_slice(), clean);
        }
    }
}

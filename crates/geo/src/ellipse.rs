//! The speed-constraint ellipse of the Spatial Constraints module (§5.1).
//!
//! Between two segment end tokens S and D, a physically reachable imputed
//! point p must satisfy `|pS| + |pD| <= v_max * (t_D - t_S)` — an ellipse
//! whose foci are the centers of S and D.

use crate::point::Xy;
use serde::{Deserialize, Serialize};

/// An ellipse defined by two foci and the maximum total distance to them.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Ellipse {
    /// First focus (the gap's source token center).
    pub f1: Xy,
    /// Second focus (the gap's destination token center).
    pub f2: Xy,
    /// Maximum of `dist(p, f1) + dist(p, f2)` for contained points (2a).
    pub max_total_dist: f64,
}

impl Ellipse {
    /// Builds the speed-constraint ellipse for a gap.
    ///
    /// `max_speed_mps` is the maximum plausible travel speed and `dt_s` the
    /// timestamp difference between the endpoints. A negative or zero `dt_s`
    /// (noisy data) yields a degenerate ellipse that contains only points on
    /// the straight segment between the foci.
    pub fn speed_constraint(f1: Xy, f2: Xy, max_speed_mps: f64, dt_s: f64) -> Self {
        let focal_dist = f1.dist(&f2);
        // The ellipse is empty (degenerate) if the budget cannot even cover
        // the straight line; clamp so the direct path always qualifies.
        let budget = (max_speed_mps * dt_s.max(0.0)).max(focal_dist);
        Self {
            f1,
            f2,
            max_total_dist: budget,
        }
    }

    /// Distance between the two foci (2c).
    #[inline]
    pub fn focal_distance(&self) -> f64 {
        self.f1.dist(&self.f2)
    }

    /// Semi-major axis length (a).
    #[inline]
    pub fn semi_major(&self) -> f64 {
        self.max_total_dist * 0.5
    }

    /// True when `p` lies inside or on the ellipse.
    #[inline]
    pub fn contains(&self, p: Xy) -> bool {
        p.dist(&self.f1) + p.dist(&self.f2) <= self.max_total_dist + 1e-9
    }

    /// Expands the reachable budget by a multiplicative slack factor, keeping
    /// the invariant that the straight path stays contained.
    pub fn with_slack(&self, factor: f64) -> Self {
        Self {
            max_total_dist: (self.max_total_dist * factor).max(self.focal_distance()),
            ..*self
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn foci_and_midpoint_always_contained() {
        let e = Ellipse::speed_constraint(Xy::new(0.0, 0.0), Xy::new(100.0, 0.0), 10.0, 20.0);
        assert!(e.contains(e.f1));
        assert!(e.contains(e.f2));
        assert!(e.contains(Xy::new(50.0, 0.0)));
    }

    #[test]
    fn rejects_points_beyond_budget() {
        // 200 m budget between foci 100 m apart: a point 100 m off the axis at
        // the midpoint has total distance 2*sqrt(50^2+100^2) ≈ 223.6 > 200.
        let e = Ellipse::speed_constraint(Xy::new(0.0, 0.0), Xy::new(100.0, 0.0), 10.0, 20.0);
        assert!(!e.contains(Xy::new(50.0, 100.0)));
        // But 40 m off-axis is fine: 2*sqrt(50^2+40^2) ≈ 128 < 200.
        assert!(e.contains(Xy::new(50.0, 40.0)));
    }

    #[test]
    fn degenerate_time_still_contains_straight_path() {
        let e = Ellipse::speed_constraint(Xy::new(0.0, 0.0), Xy::new(100.0, 0.0), 10.0, 0.0);
        assert!(e.contains(Xy::new(25.0, 0.0)));
        assert!(!e.contains(Xy::new(25.0, 5.0)));
    }

    #[test]
    fn negative_dt_treated_as_zero() {
        let e = Ellipse::speed_constraint(Xy::new(0.0, 0.0), Xy::new(100.0, 0.0), 10.0, -5.0);
        assert_eq!(e.max_total_dist, 100.0);
    }

    #[test]
    fn slack_grows_budget() {
        let e = Ellipse::speed_constraint(Xy::new(0.0, 0.0), Xy::new(100.0, 0.0), 10.0, 20.0);
        let s = e.with_slack(1.5);
        assert!((s.max_total_dist - 300.0).abs() < 1e-9);
        assert!(s.contains(Xy::new(50.0, 100.0)));
    }

    #[test]
    fn coincident_foci_make_a_circle() {
        let c = Xy::new(10.0, 10.0);
        let e = Ellipse::speed_constraint(c, c, 5.0, 10.0); // radius 25
        assert!(e.contains(Xy::new(10.0, 34.9)));
        assert!(!e.contains(Xy::new(10.0, 35.1)));
    }
}

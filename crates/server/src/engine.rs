//! The real [`WireService`]: JSON in, `Kamel` imputation, JSON out.
//!
//! This is the only module of the crate that touches serde or the trained
//! system; everything else (framing, batching, caching, shedding,
//! shutdown) is `std`-only and tested against stub services.

use crate::learn::{FeedbackAck, FeedbackRequest, LearnSink};
use crate::server::{fnv1a, CacheKey, WireService};
use kamel::{ImputedTrajectory, Kamel};
use kamel_baselines::{LinearImputer, TrajectoryImputer};
use kamel_geo::Trajectory;
use serde::{Deserialize, Serialize};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// How a hot-reload rebuilds the served system: a display label (shown in
/// the reload confirmation) plus the closure that loads a fresh `Kamel`.
/// A closure rather than a path keeps this crate agnostic of model
/// *sources* — the CLI wires checkpoint files and mmap stores alike.
type ModelLoader = (String, Box<dyn Fn() -> Result<Kamel, String> + Send + Sync>);

/// The `POST /v1/impute` response body.
///
/// The dense trajectory plus the per-request imputation summary (the
/// fields a caller needs to judge the result without re-deriving them from
/// the point list).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ImputeResponse {
    /// The dense output: all original fixes plus imputed points, in time
    /// order.
    pub trajectory: Trajectory,
    /// Number of gaps that required imputation.
    pub gap_count: usize,
    /// Number of imputed (non-original) points.
    pub imputed_points: usize,
    /// Gaps that fell back to a straight line (the paper's failures, §8).
    pub failed_gaps: usize,
    /// Total masked-language-model calls across all gaps.
    pub model_calls: usize,
    /// `true` when this answer came from the degraded linear-interpolation
    /// path instead of the trained model (overload, open breakers, or an
    /// almost-spent deadline budget). Omitted from the wire format when
    /// `false`, so pre-resilience clients see unchanged bytes.
    #[serde(default, skip_serializing_if = "std::ops::Not::not")]
    pub degraded: bool,
    /// Why the degraded path answered (e.g. `"overloaded"`,
    /// `"no-shard-available"`, `"deadline"`). Empty for full-fidelity
    /// answers and omitted from the wire format.
    #[serde(default, skip_serializing_if = "String::is_empty")]
    pub degraded_reason: String,
}

impl ImputeResponse {
    /// Builds the wire response for one imputation result.
    pub fn from_result(result: ImputedTrajectory) -> Self {
        Self {
            gap_count: result.gaps.len(),
            imputed_points: result.imputed_points(),
            failed_gaps: result.gaps.iter().filter(|g| g.outcome.failed).count(),
            model_calls: result.model_calls(),
            trajectory: result.trajectory,
            degraded: false,
            degraded_reason: String::new(),
        }
    }

    /// Builds a degraded-mode response by linearly interpolating the
    /// sparse trajectory (the paper's §8.1 baseline). Every gap counts as
    /// failed — the straight line is exactly what KAMEL exists to beat —
    /// but under overload an approximate answer beats a shed request.
    pub fn degraded_linear(sparse: &Trajectory, max_gap_m: f64, reason: &str) -> Self {
        let out = LinearImputer { max_gap_m }.impute(sparse);
        Self {
            gap_count: out.segments_total,
            imputed_points: out.trajectory.points.len().saturating_sub(sparse.points.len()),
            failed_gaps: out.segments_failed,
            model_calls: 0,
            trajectory: out.trajectory,
            degraded: true,
            degraded_reason: reason.to_string(),
        }
    }
}

/// The `GET /v1/info` response body: the identity card a shard router
/// uses to admit (or refuse) this backend into a fleet.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InfoResponse {
    /// Model generation (0 until the first hot-reload).
    pub generation: u64,
    /// Whether a trained model is serving (vs the linear fallback).
    pub trained: bool,
    /// Largest vocabulary across the pyramid's models (0 untrained).
    pub vocab: usize,
    /// FNV-1a digest of the serialized [`kamel::KamelConfig`], hex-coded.
    /// Two backends agree on grid kind, cell size, constraints, and every
    /// other imputation knob iff their digests match — the router's
    /// admission check (mixed-grid fleets would silently answer requests
    /// with incompatible tokenizations).
    pub config_digest: String,
    /// The process thread budget resolved by the config.
    pub threads: usize,
    /// Shard index within a fleet (`kamel serve --shard-id`), if any.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub shard_id: Option<usize>,
    /// Fleet size this shard believes in (`kamel serve --shard-of`).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub shard_of: Option<usize>,
    /// Instruction set the SIMD kernels dispatched to ("scalar", "avx2",
    /// "neon"). Empty when reported by a pre-SIMD backend.
    #[serde(default)]
    pub simd_isa: String,
    /// Whether the int8 weight-quantized serving path is active.
    #[serde(default)]
    pub quantized: bool,
    /// Residency summary when models serve from a budget-bounded mmap
    /// store (`kamel serve --store`); absent for heap-resident systems.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub store: Option<kamel::ResidencyStats>,
    /// Continual-learning loop state when a learner is attached
    /// (`kamel serve --learn`); absent otherwise.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub learning: Option<crate::learn::LearningInfo>,
}

/// The config digest reported in [`InfoResponse::config_digest`].
pub fn config_digest(config: &kamel::KamelConfig) -> String {
    let bytes = serde_json::to_vec(config).unwrap_or_default();
    format!("fnv1a64:{:016x}", kamel::checkpoint::fnv1a64(&bytes))
}

/// [`WireService`] over a shared trained system.
///
/// Batches assembled by the server's micro-batcher go straight to
/// [`Kamel::impute_batch`], so a burst of concurrent single-trajectory
/// requests costs one batched call — and produces outputs identical to
/// imputing each request alone (batch imputation is order-preserving and
/// per-trajectory independent). Below that, each trajectory's beam-search
/// rounds coalesce their per-gap model queries into fused
/// `predict_masked_batch` calls served by the grad-free inference engine
/// (`kamel_nn::infer`), so coalesced requests ride batched kernels end to
/// end while the response bytes stay identical to serial calls.
///
/// The model sits behind an `RwLock<Arc<Kamel>>` so a hot-reload
/// ([`ImputeEngine::reload`]) swaps it atomically: each batch clones the
/// `Arc` once up front, so every response is computed entirely by one
/// model snapshot — never a mix of old and new — while in-flight batches
/// on the old model simply finish on it.
pub struct ImputeEngine {
    kamel: RwLock<Arc<Kamel>>,
    /// How reloads rebuild the system; `None` disables reload.
    loader: Option<ModelLoader>,
    /// Bumped on every successful reload; part of every cache key.
    generation: AtomicU64,
    /// `(shard_id, shard_of)` when serving as one shard of a fleet.
    shard: Option<(usize, usize)>,
    /// Whether `kamel serve --quantize` armed the int8 path: reloads must
    /// re-enable (and re-gate) it on the freshly loaded system, because
    /// the int8 artifact is derived state that never persists.
    quantize: bool,
    /// Where served traffic is teed for the continual learner (`kamel
    /// serve --learn`). Every call into it is non-blocking by the
    /// [`LearnSink`] contract, so capture can never slow serving.
    sink: Option<Arc<dyn LearnSink>>,
}

impl ImputeEngine {
    /// Wraps a (typically trained) system. Without a loader the engine
    /// cannot hot-reload (`/admin/reload` answers 500).
    pub fn new(kamel: Arc<Kamel>) -> Self {
        Self {
            kamel: RwLock::new(kamel),
            loader: None,
            generation: AtomicU64::new(0),
            shard: None,
            quantize: false,
            sink: None,
        }
    }

    /// Wraps a system loaded from `path`, enabling hot-reload from the
    /// same checkpoint path.
    pub fn with_model_path(kamel: Arc<Kamel>, path: PathBuf) -> Self {
        let label = path.display().to_string();
        Self::with_loader(
            kamel,
            label,
            Box::new(move || Kamel::load_from_file(&path).map_err(|e| e.to_string())),
        )
    }

    /// Wraps a system with an arbitrary reload source — e.g. the CLI's
    /// `serve --store` passes a closure that re-opens the `.kstore` file,
    /// so a re-packed store hot-swaps in as a fresh mapping (new
    /// generation, so cached responses from the old mapping never serve).
    pub fn with_loader(
        kamel: Arc<Kamel>,
        label: String,
        loader: Box<dyn Fn() -> Result<Kamel, String> + Send + Sync>,
    ) -> Self {
        Self {
            kamel: RwLock::new(kamel),
            loader: Some((label, loader)),
            generation: AtomicU64::new(0),
            shard: None,
            quantize: false,
            sink: None,
        }
    }

    /// Tags `/v1/info` with this backend's position in a fleet
    /// (`kamel serve --shard-id I --shard-of N`).
    pub fn with_shard_identity(mut self, shard_id: usize, shard_of: usize) -> Self {
        self.shard = Some((shard_id, shard_of));
        self
    }

    /// Records that the int8 serving path was requested (`kamel serve
    /// --quantize`), so hot-reloads re-enable and re-gate it on the
    /// freshly loaded system. Enabling quantization on the *current*
    /// system (and refusing startup on gate failure) is the caller's job.
    pub fn with_quantization(mut self, on: bool) -> Self {
        self.quantize = on;
        self
    }

    /// Attaches a continual-learning capture sink (`kamel serve --learn`):
    /// completed imputations and feedback corrections are teed into it,
    /// its counters appear on `/metrics` and `/v1/info`, and
    /// `POST /v1/feedback` starts answering 200 instead of 404.
    pub fn with_learn_sink(mut self, sink: Arc<dyn LearnSink>) -> Self {
        self.sink = Some(sink);
        self
    }

    /// The [`InfoResponse`] this engine serves on `GET /v1/info`.
    pub fn info_response(&self) -> InfoResponse {
        let kamel = self.kamel();
        InfoResponse {
            generation: self.generation(),
            trained: kamel.is_trained(),
            vocab: kamel
                .model_summaries()
                .iter()
                .map(|s| s.vocab)
                .max()
                .unwrap_or(0),
            config_digest: config_digest(kamel.config()),
            threads: kamel.config().effective_threads(),
            shard_id: self.shard.map(|(id, _)| id),
            shard_of: self.shard.map(|(_, of)| of),
            simd_isa: kamel::active_isa().to_string(),
            quantized: kamel.is_quantized(),
            store: kamel.residency(),
            learning: self.sink.as_ref().map(|s| s.learning()),
        }
    }

    /// A snapshot of the current system.
    pub fn kamel(&self) -> Arc<Kamel> {
        Arc::clone(&self.kamel.read().expect("engine lock poisoned"))
    }

    /// The current model generation (0 until the first reload).
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::SeqCst)
    }
}

impl WireService for ImputeEngine {
    type Job = Trajectory;
    type Out = ImputedTrajectory;

    fn parse(&self, body: &[u8]) -> Result<Trajectory, String> {
        let sparse: Trajectory =
            serde_json::from_slice(body).map_err(|e| format!("invalid trajectory JSON: {e}"))?;
        for (i, p) in sparse.points.iter().enumerate() {
            if !p.pos.lat.is_finite() || !p.pos.lng.is_finite() || !p.t.is_finite() {
                return Err(format!("fix {i} has a non-finite coordinate or timestamp"));
            }
        }
        Ok(sparse)
    }

    fn cache_key(&self, job: &Trajectory) -> Option<CacheKey> {
        // Untrained systems have no tokenizer, so jobs are uncacheable
        // (and the linear fallback is cheap anyway).
        let (cells, spans) = self.kamel().gap_context(job)?;
        let digest = fnv1a(job.points.iter().flat_map(|p| {
            [p.pos.lat.to_bits(), p.pos.lng.to_bits(), p.t.to_bits()]
        }));
        Some(CacheKey {
            generation: self.generation(),
            cells: cells.into_iter().map(|c| c.0).collect(),
            spans: spans.into_iter().map(f64::to_bits).collect(),
            digest,
        })
    }

    fn run_batch(&self, jobs: Vec<Trajectory>) -> Vec<ImputedTrajectory> {
        // One snapshot per batch: a reload mid-batch cannot mix models
        // within it, and the read lock is held only for the clone.
        let kamel = self.kamel();
        let outs = kamel.impute_batch(&jobs);
        // Tee completed answers to the continual learner. The sink's
        // contract makes this a try_send: a full queue drops the record
        // and the response is unaffected. Cache hits never reach this
        // point — only freshly computed answers are capture candidates.
        if let Some(sink) = &self.sink {
            for (job, out) in jobs.iter().zip(&outs) {
                sink.on_impute(job, out);
            }
        }
        outs
    }

    fn render(&self, out: &ImputedTrajectory) -> Vec<u8> {
        serde_json::to_vec(&ImputeResponse::from_result(out.clone()))
            .unwrap_or_else(|e| format!("{{\"error\":\"render failed: {e}\"}}").into_bytes())
    }

    fn degraded(&self, job: &Trajectory, reason: &str) -> Option<Vec<u8>> {
        let max_gap_m = self.kamel().config().max_gap_m;
        serde_json::to_vec(&ImputeResponse::degraded_linear(job, max_gap_m, reason)).ok()
    }

    fn info(&self) -> Vec<u8> {
        serde_json::to_vec(&self.info_response())
            .unwrap_or_else(|e| format!("{{\"error\":\"info failed: {e}\"}}").into_bytes())
    }

    fn reload(&self) -> Result<String, String> {
        let Some((label, load)) = &self.loader else {
            return Err("server was started without a reloadable model path".into());
        };
        // Validate the new model fully (envelope, CRC, JSON, config — or
        // for a store, its whole index and boot sweep) before touching
        // the served model; any failure keeps it as-is.
        let fresh = load()?;
        // Re-arm the int8 path when the server was started with
        // --quantize: the artifact never persists, and a gate failure on
        // the fresh checkpoint fails the reload (the old model keeps
        // serving rather than silently de-quantizing).
        if self.quantize && !fresh.is_quantized() {
            fresh.enable_quantization().map_err(|e| e.to_string())?;
        }
        let trained = fresh.is_trained();
        *self.kamel.write().expect("engine lock poisoned") = Arc::new(fresh);
        let generation = self.generation.fetch_add(1, Ordering::SeqCst) + 1;
        Ok(format!(
            "reloaded {label} (generation {generation}{})",
            if trained { "" } else { ", untrained" }
        ))
    }

    fn feedback(&self, body: &[u8]) -> Option<Result<Vec<u8>, String>> {
        let sink = self.sink.as_ref()?;
        let parsed: Result<FeedbackRequest, String> = serde_json::from_slice(body)
            .map_err(|e| format!("invalid feedback JSON: {e}"));
        Some(parsed.and_then(|req| {
            if req.truth.points.len() < 2 {
                return Err("ground truth needs at least 2 fixes".into());
            }
            for p in req.sparse.points.iter().chain(&req.truth.points) {
                if !p.pos.lat.is_finite() || !p.pos.lng.is_finite() || !p.t.is_finite() {
                    return Err("non-finite coordinate or timestamp".into());
                }
            }
            sink.on_feedback(&req.sparse, &req.truth);
            let ack = FeedbackAck {
                status: "accepted".to_string(),
                queue_records: sink.learning().queue_records,
            };
            serde_json::to_vec(&ack).map_err(|e| format!("render failed: {e}"))
        }))
    }

    fn extra_metrics(&self) -> String {
        let mut out = String::new();
        if let Some(r) = self.kamel().residency() {
            out.push_str(&format!(
                "kamel_store_resident_models {}\n\
                 kamel_store_pinned_models {}\n\
                 kamel_store_total_models {}\n\
                 kamel_store_evictions_total {}\n\
                 kamel_store_bytes_resident {}\n\
                 kamel_store_bytes_mapped {}\n\
                 kamel_store_budget_bytes {}\n",
                r.resident_models,
                r.pinned_models,
                r.total_models,
                r.evictions_total,
                r.bytes_resident,
                r.bytes_mapped,
                r.budget_bytes
            ));
        }
        if let Some(sink) = &self.sink {
            let l = sink.learning();
            out.push_str(&format!(
                "kamel_learn_captured_total {}\n\
                 kamel_learn_dropped_total {}\n\
                 kamel_learn_queue_records {}\n\
                 kamel_learn_queue_bytes {}\n\
                 kamel_learn_retrains_total {}\n\
                 kamel_learn_rollbacks_total {}\n\
                 kamel_learn_cells_retrained_total {}\n\
                 kamel_learn_last_generation {}\n",
                l.captured_total,
                l.dropped_total,
                l.queue_records,
                l.queue_bytes,
                l.retrains_total,
                l.rollbacks_total,
                l.cells_retrained_total,
                l.last_generation
            ));
        }
        out
    }
}

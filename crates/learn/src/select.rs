//! Active-learning cell selection: where should the retraining budget go?
//!
//! Every capture batch is reduced to per-cell evidence, and cells are
//! ranked by a weighted need score:
//!
//! * **disagreement** — how far the model's answers sit from ground-truth
//!   feedback (1 − replay recall). The strongest signal: the model is
//!   *known* wrong there.
//! * **uncertainty** — 1 − mean beam confidence of served answers. The
//!   model suspects itself.
//! * **traffic** — log-scaled request volume; fixing a busy cell pays
//!   more than fixing a quiet one.
//! * **staleness** — rounds since the cell was last retrained; keeps
//!   rarely-selected cells from starving forever.
//!
//! The scorer is a pure function over accumulated [`CellStats`], so its
//! ranking is unit-testable without models or I/O.

use std::collections::HashMap;

/// Accumulated evidence about one pyramid cell.
#[derive(Debug, Clone, Default)]
pub struct CellStats {
    /// Requests whose gap context touched this cell.
    pub traffic: u64,
    /// Sum of per-request beam confidences (over `confidence_n` samples).
    pub confidence_sum: f64,
    /// Confidence samples counted into `confidence_sum`.
    pub confidence_n: u64,
    /// Sum of feedback disagreements (1 − replay recall, over
    /// `disagreement_n` samples).
    pub disagreement_sum: f64,
    /// Disagreement samples counted into `disagreement_sum`.
    pub disagreement_n: u64,
    /// Retrain round that last selected this cell (0 = never).
    pub last_selected_round: u64,
}

impl CellStats {
    /// Mean served confidence, defaulting optimistic (1.0) with no data.
    pub fn mean_confidence(&self) -> f64 {
        if self.confidence_n == 0 {
            1.0
        } else {
            self.confidence_sum / self.confidence_n as f64
        }
    }

    /// Mean feedback disagreement, defaulting to 0 with no feedback.
    pub fn mean_disagreement(&self) -> f64 {
        if self.disagreement_n == 0 {
            0.0
        } else {
            self.disagreement_sum / self.disagreement_n as f64
        }
    }
}

/// Scoring weights and the per-round budget.
#[derive(Debug, Clone)]
pub struct SelectionConfig {
    /// Cells retrained per round at most.
    pub max_cells: usize,
    /// Weight of feedback disagreement.
    pub w_disagreement: f64,
    /// Weight of (1 − confidence).
    pub w_uncertainty: f64,
    /// Weight of log-scaled traffic.
    pub w_traffic: f64,
    /// Weight of staleness.
    pub w_staleness: f64,
    /// Cells below this score are never selected — retraining a cell the
    /// model already serves well wastes the budget and churns
    /// generations.
    pub min_score: f64,
}

impl Default for SelectionConfig {
    fn default() -> Self {
        Self {
            max_cells: 4,
            w_disagreement: 4.0,
            w_uncertainty: 2.0,
            w_traffic: 1.0,
            w_staleness: 0.25,
            min_score: 0.05,
        }
    }
}

/// The retraining-need score of one cell at `round`.
pub fn need_score(stats: &CellStats, round: u64, cfg: &SelectionConfig) -> f64 {
    if stats.traffic == 0 {
        return 0.0; // nothing observed; nothing to learn
    }
    // Weakness is the gate: a cell with perfect confidence and no
    // feedback scores 0 no matter how busy it is — traffic and staleness
    // only *amplify* evidence of weakness, they are never a reason to
    // retrain on their own (busy healthy cells must not churn
    // generations).
    let weak = stats.disagreement_n > 0 || stats.mean_confidence() < 1.0;
    if !weak {
        return 0.0;
    }
    let staleness = round.saturating_sub(stats.last_selected_round) as f64;
    cfg.w_disagreement * stats.mean_disagreement()
        + cfg.w_uncertainty * (1.0 - stats.mean_confidence())
        + cfg.w_traffic * ((1.0 + stats.traffic as f64).ln() / 10.0)
        + cfg.w_staleness * (staleness / (1.0 + staleness))
}

/// Ranks cells by [`need_score`] and returns the top `cfg.max_cells`
/// above `cfg.min_score`, highest first. Ties break on cell id so the
/// selection is deterministic.
pub fn select_cells(
    stats: &HashMap<u64, CellStats>,
    round: u64,
    cfg: &SelectionConfig,
) -> Vec<u64> {
    let mut scored: Vec<(u64, f64)> = stats
        .iter()
        .map(|(&cell, s)| (cell, need_score(s, round, cfg)))
        .filter(|&(_, score)| score >= cfg.min_score)
        .collect();
    scored.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .expect("finite scores")
            .then(a.0.cmp(&b.0))
    });
    scored.truncate(cfg.max_cells);
    scored.into_iter().map(|(cell, _)| cell).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(
        traffic: u64,
        mean_conf: f64,
        conf_n: u64,
        mean_dis: f64,
        dis_n: u64,
    ) -> CellStats {
        CellStats {
            traffic,
            confidence_sum: mean_conf * conf_n as f64,
            confidence_n: conf_n,
            disagreement_sum: mean_dis * dis_n as f64,
            disagreement_n: dis_n,
            last_selected_round: 0,
        }
    }

    #[test]
    fn disagreement_dominates_selection() {
        let mut m = HashMap::new();
        // Busy + confident + agreed: healthy, low score.
        m.insert(1, stats(1000, 0.95, 1000, 0.02, 10));
        // Moderate traffic but feedback says it is wrong.
        m.insert(2, stats(50, 0.9, 50, 0.8, 5));
        // Low confidence, no feedback.
        m.insert(3, stats(50, 0.3, 50, 0.0, 0));
        let cfg = SelectionConfig {
            max_cells: 2,
            ..SelectionConfig::default()
        };
        let picked = select_cells(&m, 1, &cfg);
        assert_eq!(picked.len(), 2);
        assert_eq!(picked[0], 2, "known-wrong cell must rank first");
        assert_eq!(picked[1], 3, "uncertain cell second");
    }

    #[test]
    fn untouched_cells_are_never_selected() {
        let mut m = HashMap::new();
        m.insert(7, CellStats::default()); // zero traffic
        assert!(select_cells(&m, 3, &SelectionConfig::default()).is_empty());
    }

    #[test]
    fn healthy_cells_fall_under_min_score() {
        let mut m = HashMap::new();
        // Light traffic, perfect confidence, feedback fully agrees.
        m.insert(9, stats(3, 1.0, 3, 0.0, 3));
        let cfg = SelectionConfig {
            min_score: 0.5,
            ..SelectionConfig::default()
        };
        assert!(select_cells(&m, 1, &cfg).is_empty());
    }

    #[test]
    fn budget_and_tiebreak_are_deterministic() {
        let mut m = HashMap::new();
        for cell in [5u64, 3, 8, 1] {
            m.insert(cell, stats(10, 0.5, 10, 0.5, 2));
        }
        let cfg = SelectionConfig {
            max_cells: 3,
            ..SelectionConfig::default()
        };
        // Equal evidence: ties break on ascending cell id.
        assert_eq!(select_cells(&m, 1, &cfg), vec![1, 3, 5]);
    }

    #[test]
    fn staleness_needs_some_evidence_of_weakness() {
        // A cell with traffic but perfect confidence and no feedback must
        // not accrue staleness score (nothing suggests it is weak).
        let healthy = stats(100, 1.0, 100, 0.0, 0);
        let score = need_score(&healthy, 1000, &SelectionConfig::default());
        let cfg = SelectionConfig::default();
        assert!(score < cfg.w_traffic * (101.0_f64).ln() / 10.0 + 1e-9);
    }
}

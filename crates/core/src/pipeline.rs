//! The assembled KAMEL system (Figure 1).
//!
//! [`Kamel`] owns the five modules and exposes the architecture's two
//! entry points:
//!
//! * [`Kamel::train`] — feed a batch of training trajectories: tokenize,
//!   store, rebuild detokenization clusters, infer the speed cap, and run
//!   pyramid maintenance (all offline work, §4.2).
//! * [`Kamel::impute`] / [`Kamel::impute_batch`] / [`Kamel::impute_stream`]
//!   — impute sparse trajectories using only precomputed models (the online
//!   path, which never rescans trajectory data, §4.1).
//!
//! Internally the state sits behind a [`parking_lot::RwLock`], so an
//! `Arc<Kamel>` can serve online imputation from many threads while a
//! background thread periodically trains on new batches — the paper's
//! "scheduled as a background process … without causing any downtime".
//! Both entry points also parallelize internally on the configured thread
//! budget ([`KamelConfig::threads`], `KAMEL_THREADS`, or all hardware
//! threads): training fans per-cell maintenance jobs over a worker pool and
//! batch imputation imputes trajectories concurrently under the read lock —
//! with results identical to single-threaded execution in both cases.

use crate::config::KamelConfig;
use crate::constraints::SpatialConstraints;
use crate::detokenize::Detokenizer;
use crate::error::KamelError;
use crate::impute::{GapFiller, SegmentOutcome};
use crate::partition::{ModelSelection, Repository};
use crate::source::{ModelSource, ResidencyStats};
use crate::tokenize::Tokenizer;
use kamel_geo::{BBox, GpsPoint, LatLng, Trajectory, Xy};
use kamel_hexgrid::CellId;
use kamel_lm::MaskedTokenModel;
use kamel_trajstore::TrajStore;
use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Report for one imputed gap.
#[derive(Debug, Clone, PartialEq)]
pub struct GapReport {
    /// Planar distance between the gap's endpoints in meters.
    pub gap_m: f64,
    /// Number of points inserted into the output for this gap.
    pub points_inserted: usize,
    /// The multipoint imputation outcome (tokens, failure flag, calls).
    pub outcome: SegmentOutcome,
    /// Whether a pyramid model covered this gap (false → straight-line
    /// fallback before the imputer even ran).
    pub had_model: bool,
}

/// The result of imputing one sparse trajectory.
#[derive(Debug, Clone, PartialEq)]
pub struct ImputedTrajectory {
    /// The dense output trajectory: all original fixes plus imputed points,
    /// in time order.
    pub trajectory: Trajectory,
    /// One report per gap that required imputation.
    pub gaps: Vec<GapReport>,
}

impl ImputedTrajectory {
    /// Fraction of gaps imputed by a straight line (the paper's failure
    /// rate, §8). `None` when the trajectory had no gaps.
    pub fn failure_rate(&self) -> Option<f64> {
        if self.gaps.is_empty() {
            return None;
        }
        let failed = self.gaps.iter().filter(|g| g.outcome.failed).count();
        Some(failed as f64 / self.gaps.len() as f64)
    }

    /// Total model calls across all gaps.
    pub fn model_calls(&self) -> usize {
        self.gaps.iter().map(|g| g.outcome.model_calls).sum()
    }

    /// Number of imputed (non-original) points.
    pub fn imputed_points(&self) -> usize {
        self.gaps.iter().map(|g| g.points_inserted).sum()
    }
}

/// Snapshot of system state for reporting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KamelStats {
    /// Trajectories in the store.
    pub stored_trajectories: usize,
    /// Total tokens in the store.
    pub stored_tokens: u64,
    /// Models in the repository (single + pair + global).
    pub models: usize,
    /// Token cells with detokenization metadata.
    pub detok_cells: usize,
    /// Inferred maximum speed (m/s) used by the constraints.
    pub max_speed_mps: f64,
}

/// Everything built from training data.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct State {
    tokenizer: Tokenizer,
    store: TrajStore,
    repo: Repository,
    detok: Detokenizer,
    /// Capped sample of observed per-fix speeds (m/s) for the §5.1 cap.
    speed_sample: Vec<f64>,
    max_speed_mps: f64,
}

/// Cap on the retained speed sample.
const SPEED_SAMPLE_CAP: usize = 50_000;
/// Padding applied around the first batch's MBR when rooting the pyramid.
const ROOT_PAD_FRACTION: f64 = 0.25;
/// Probes per model for the int8 accuracy gate.
const QUANT_PROBES: usize = 64;
/// Fixed seed for the gate's probe generator — the gate verdict is
/// deterministic for a given repository.
const QUANT_GATE_SEED: u64 = 0xA93E_E001;

/// The KAMEL system.
pub struct Kamel {
    config: KamelConfig,
    inner: RwLock<Option<State>>,
    /// Whether the repository is currently serving through the int8 path.
    /// `config.quantize` records *intent*; this records the live state
    /// (quantization can be refused by the accuracy gate).
    quantized: AtomicBool,
    /// External model source overriding the heap repository's models
    /// (the mmap store's resident set). When set, imputation resolves
    /// models through it; the inner repository is only the retrieval
    /// skeleton. `None` for an ordinary heap-resident system.
    source: Option<Arc<dyn ModelSource>>,
}

impl Kamel {
    /// Creates an untrained system.
    ///
    /// # Panics
    /// Panics when the configuration is invalid (use
    /// [`KamelConfig::validate`] to check beforehand).
    pub fn new(config: KamelConfig) -> Self {
        config.validate().expect("invalid KAMEL configuration");
        if let Some(n) = config.threads {
            kamel_nn::set_thread_budget(n);
        }
        Self {
            config,
            inner: RwLock::new(None),
            quantized: AtomicBool::new(false),
            source: None,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &KamelConfig {
        &self.config
    }

    /// A deep, independent copy of this system (configuration plus the
    /// full in-heap trained state), without going through serialization.
    ///
    /// This is how the continual-learning trainer obtains a private
    /// instance to retrain off-path while the original keeps serving.
    /// Any external model source binding is *not* carried over — the
    /// copy owns whatever models live in the heap repository — and the
    /// quantized serving path is re-gated on the copy when the
    /// configuration asks for it.
    pub fn deep_clone(&self) -> Self {
        let copy = Self {
            config: self.config.clone(),
            inner: RwLock::new(self.inner.read().clone()),
            quantized: AtomicBool::new(false),
            source: None,
        };
        if copy.config.quantize && copy.is_trained() {
            if let Err(e) = copy.enable_quantization() {
                eprintln!("warning: cloned model serves on the f32 path: {e}");
            }
        }
        copy
    }

    /// Overrides where serving models come from. The system keeps its
    /// tokenizer, detokenizer, and pyramid *shape*, but every model
    /// lookup goes through `source` — this is how a store-backed system
    /// (loaded from a serving skeleton) serves out of an mmap'd `.kstore`
    /// resident set instead of heap-owned models. Takes `&mut self`
    /// deliberately: the source is wired at construction time, before
    /// the system is shared behind an `Arc`.
    pub fn set_model_source(&mut self, source: Arc<dyn ModelSource>) {
        self.source = Some(source);
    }

    /// Residency statistics of the model source, when it has a bounded
    /// resident set (`None` for heap-resident systems).
    pub fn residency(&self) -> Option<ResidencyStats> {
        self.source.as_ref().and_then(|s| s.residency())
    }

    /// True once at least one training batch has been processed.
    pub fn is_trained(&self) -> bool {
        self.inner.read().is_some()
    }

    /// Current system statistics, when trained.
    pub fn stats(&self) -> Option<KamelStats> {
        let guard = self.inner.read();
        guard.as_ref().map(|s| KamelStats {
            stored_trajectories: s.store.len(),
            stored_tokens: s.store.total_tokens(),
            models: match &self.source {
                Some(src) => src.model_count(),
                None => s.repo.model_count(),
            },
            detok_cells: s.detok.len(),
            max_speed_mps: s.max_speed_mps,
        })
    }

    /// Summaries of every model in the repository (empty before training).
    pub fn model_summaries(&self) -> Vec<crate::partition::ModelSummary> {
        if let Some(src) = &self.source {
            return src.summaries();
        }
        self.inner
            .read()
            .as_ref()
            .map(|s| s.repo.summaries())
            .unwrap_or_default()
    }

    /// Switches the repository to the int8 weight-quantized serving path,
    /// gated on accuracy: every BERT model's top-1 agreement with its f32
    /// twin is measured first, and if the worst agreement falls below
    /// [`KamelConfig::quantize_min_agreement`] **nothing** is quantized and
    /// [`KamelError::QuantizationRejected`] is returned. On success returns
    /// the worst agreement observed. Before training (or on n-gram
    /// repositories) there is nothing to quantize: the call returns
    /// `Ok(1.0)` and arms the path, so [`Kamel::train`] re-gates and
    /// applies it to the models it builds.
    pub fn enable_quantization(&self) -> Result<f64, KamelError> {
        let mut guard = self.inner.write();
        let Some(state) = guard.as_mut() else {
            self.quantized.store(true, Ordering::Release);
            return Ok(1.0);
        };
        let worst = state.repo.enable_quantization(
            self.config.quantize_min_agreement,
            QUANT_PROBES,
            QUANT_GATE_SEED,
        )?;
        self.quantized.store(true, Ordering::Release);
        Ok(worst)
    }

    /// Reverts the repository to the f32 serving path.
    pub fn disable_quantization(&self) {
        if let Some(state) = self.inner.write().as_mut() {
            state.repo.disable_quantization();
        }
        self.quantized.store(false, Ordering::Release);
    }

    /// Whether the int8 serving path is currently active.
    pub fn is_quantized(&self) -> bool {
        self.quantized.load(Ordering::Acquire)
    }

    /// Feeds a batch of training trajectories (the offline path): tokenizes
    /// and stores them, refreshes the speed cap and detokenization
    /// clusters, and runs pyramid maintenance over the affected region.
    pub fn train(&self, trajectories: &[Trajectory]) {
        let batch: Vec<&Trajectory> = trajectories.iter().filter(|t| t.len() >= 2).collect();
        if batch.is_empty() {
            return;
        }
        let mut guard = self.inner.write();
        if guard.is_none() {
            let origin = batch[0].points[0].pos;
            *guard = Some(State {
                tokenizer: Tokenizer::new(origin, &self.config),
                store: TrajStore::new((self.config.cell_edge_m * 8.0).max(300.0)),
                repo: Repository::new(
                    padded_bbox(&batch, &Tokenizer::new(origin, &self.config)),
                    &self.config,
                ),
                detok: Detokenizer::default(),
                speed_sample: Vec::new(),
                max_speed_mps: 30.0,
            });
        }
        let state = guard.as_mut().expect("initialized above");
        // Tokenize + store, tracking the dirty region.
        let mut dirty: Option<BBox> = None;
        for traj in &batch {
            let tt = state.tokenizer.tokenize(traj);
            if let Some(bb) = tt.bbox() {
                dirty = Some(match dirty {
                    Some(d) => d.union(&bb),
                    None => bb,
                });
            }
            // Speed observations for the §5.1 cap.
            if state.speed_sample.len() < SPEED_SAMPLE_CAP {
                for w in traj.points.windows(2) {
                    if let Some(v) = w[0].speed_to(&w[1]) {
                        if v.is_finite() && v < 120.0 {
                            state.speed_sample.push(v);
                        }
                    }
                }
                state.speed_sample.truncate(SPEED_SAMPLE_CAP);
            }
            state.store.insert(tt);
        }
        let Some(dirty) = dirty else { return };
        // Speed cap: 95th percentile of observed speeds × slack.
        state.max_speed_mps = percentile(&mut state.speed_sample.clone(), 0.95)
            .map_or(30.0, |p| (p * self.config.speed_slack).max(3.0));
        // Re-root the pyramid if the data outgrew it (rebuilds all models
        // from the store, which still holds everything).
        let root = state.repo.root_bbox();
        let full_rebuild = !root.contains_bbox(&dirty);
        if full_rebuild {
            let grown = grow_bbox(root.union(&dirty), ROOT_PAD_FRACTION);
            state.repo = Repository::new(grown, &self.config);
        }
        // Detokenization clusters (offline §7 operation): full rebuild from
        // the store, in id order — HashMap iteration order varies across
        // processes and DBSCAN border-point assignment is order-sensitive,
        // so sorting keeps training bit-reproducible run to run.
        let mut stored: Vec<_> = state.store.iter().collect();
        stored.sort_by_key(|(id, _)| **id);
        state.detok =
            Detokenizer::build(stored.into_iter().map(|(_, t)| t), &self.config.detok);
        // Pyramid maintenance (§4.2) or the global-model ablation.
        if self.config.disable_partitioning {
            state.repo.train_global(&state.store, &self.config.engine);
        } else {
            let region = if full_rebuild {
                state.repo.root_bbox()
            } else {
                dirty
            };
            state.repo.maintain_with_threads(
                &state.store,
                &region,
                &self.config.engine,
                self.config.effective_threads(),
            );
        }
        // Re-apply quantization: maintenance rebuilds models, and rebuilt
        // models come out of the trainer on the f32 path. Run the gate
        // directly on the repository — we already hold the write guard, and
        // parking_lot's RwLock is not reentrant.
        if self.config.quantize || self.quantized.load(Ordering::Acquire) {
            match state.repo.enable_quantization(
                self.config.quantize_min_agreement,
                QUANT_PROBES,
                QUANT_GATE_SEED,
            ) {
                Ok(_) => self.quantized.store(true, Ordering::Release),
                Err(e) => {
                    self.quantized.store(false, Ordering::Release);
                    eprintln!("warning: serving stays on the f32 path after training: {e}");
                }
            }
        }
    }

    /// Cell-targeted retraining (the continual-learning path): trains on
    /// only those `examples` whose tokenization touches one of the selected
    /// `cells`, so the incremental dirty-region maintenance rebuilds just
    /// the pyramid slots covering them. Everything else — detokenization
    /// clusters, the speed cap, the quantization re-gate — follows the same
    /// [`Kamel::train`] path, keeping retrained state indistinguishable
    /// from offline-trained state. Returns the number of examples used.
    ///
    /// Call this on a **separate** instance loaded from the checkpoint, not
    /// the serving one: training write-locks the model state for the whole
    /// maintenance pass.
    pub fn retrain_cells(&self, cells: &[CellId], examples: &[Trajectory]) -> usize {
        let selected: Vec<Trajectory> = {
            let guard = self.inner.read();
            let Some(state) = guard.as_ref() else {
                // Untrained: nothing to target, train on everything.
                drop(guard);
                self.train(examples);
                return examples.len();
            };
            let targets: std::collections::HashSet<CellId> = cells.iter().copied().collect();
            examples
                .iter()
                .filter(|t| {
                    anchors_of(t, &state.tokenizer)
                        .iter()
                        .any(|a| targets.contains(&a.cell))
                })
                .cloned()
                .collect()
        };
        let n = selected.len();
        if n > 0 {
            self.train(&selected);
        }
        n
    }

    /// Imputes one sparse trajectory (the online path).
    ///
    /// This is a total function: trajectories with fewer than two points
    /// pass through unchanged, and gaps no model covers are imputed by a
    /// straight line and reported as failures — exactly the paper's
    /// fallback semantics (§4.1, §6).
    pub fn impute(&self, sparse: &Trajectory) -> ImputedTrajectory {
        let guard = self.inner.read();
        let Some(state) = guard.as_ref() else {
            return linear_only(sparse, &self.config);
        };
        if sparse.len() < 2 {
            return ImputedTrajectory {
                trajectory: sparse.clone(),
                gaps: Vec::new(),
            };
        }
        let tokenizer = &state.tokenizer;
        let gap_threshold = tokenizer.effective_max_gap_m(self.config.max_gap_m);
        let constraints = SpatialConstraints::new(state.max_speed_mps, &self.config);
        // Anchors: one (cell, fix) per run of consecutive same-cell fixes.
        let anchors = anchors_of(sparse, tokenizer);
        // Models resolve through the external source when one is wired
        // (the mmap store), else through the heap repository.
        let source: &dyn ModelSource = match &self.source {
            Some(src) => src.as_ref(),
            None => &state.repo,
        };
        // Whole-trajectory model (§4.1), falling back to per-gap retrieval.
        let traj_bbox = BBox::of_points(anchors.iter().map(|a| a.xy)).expect("non-empty");
        let whole_model = source.find_model(&traj_bbox);
        let mut out_points: Vec<GpsPoint> = Vec::with_capacity(sparse.len() * 2);
        let mut gaps = Vec::new();
        for (i, anchor) in anchors.iter().enumerate() {
            // Emit every original fix of this run.
            for p in &sparse.points[anchor.first_idx..=anchor.last_idx] {
                out_points.push(*p);
            }
            let Some(next) = anchors.get(i + 1) else { break };
            let gap_m = anchor.xy.dist(&next.xy);
            if gap_m <= gap_threshold {
                continue; // no imputation needed
            }
            let prev_cell = i.checked_sub(1).map(|j| anchors[j].cell);
            // Speed of the preceding sparse segment, for the adaptive §5.1
            // speed policy.
            let preceding_speed_mps = i.checked_sub(1).and_then(|j| {
                let dt = anchor.t - anchors[j].t;
                if dt > 0.0 {
                    Some(anchors[j].xy.dist(&anchor.xy) / dt)
                } else {
                    None
                }
            });
            let next_cell = anchors.get(i + 2).map(|a| a.cell);
            // Resolve a model for this gap. The per-gap handle must
            // outlive `model`, hence the early declaration.
            let gap_bbox = grow_bbox(BBox::new(anchor.xy, next.xy), 0.3);
            let gap_model;
            let model: Option<&dyn MaskedTokenModel> = match &whole_model {
                Some((_, m)) => Some(&**m as &dyn MaskedTokenModel),
                None => {
                    gap_model = source.find_model(&gap_bbox);
                    gap_model
                        .as_ref()
                        .map(|(_, m)| &**m as &dyn MaskedTokenModel)
                }
            };
            let (outcome, had_model) = match model {
                Some(model) => {
                    let filler = GapFiller {
                        model,
                        constraints: &constraints,
                        tokenizer,
                        config: &self.config,
                        preceding_speed_mps,
                    };
                    (
                        filler.fill(
                            anchor.cell,
                            next.cell,
                            anchor.t,
                            next.t,
                            prev_cell,
                            next_cell,
                        ),
                        true,
                    )
                }
                None => (
                    SegmentOutcome {
                        tokens: vec![anchor.cell, next.cell],
                        failed: true,
                        model_calls: 0,
                        failure_reason: Some(crate::impute::FailureReason::NoModel),
                        confidence: 0.0,
                    },
                    false,
                ),
            };
            // Materialize the gap's interior points.
            let interior: Vec<Xy> = if outcome.failed {
                straight_line_points(anchor.xy, next.xy, self.config.max_gap_m)
            } else {
                let inner_tokens = &outcome.tokens[1..outcome.tokens.len() - 1];
                state
                    .detok
                    .detokenize(&outcome.tokens, tokenizer)
                    .into_iter()
                    .skip(1)
                    .take(inner_tokens.len())
                    .collect()
            };
            let timed = time_points(anchor.xy, next.xy, anchor.t, next.t, &interior);
            let points_inserted = timed.len();
            for (xy, t) in timed {
                out_points.push(GpsPoint::new(tokenizer.projection().to_latlng(xy), t));
            }
            gaps.push(GapReport {
                gap_m,
                points_inserted,
                outcome,
                had_model,
            });
        }
        ImputedTrajectory {
            trajectory: Trajectory::new(out_points),
            gaps,
        }
    }

    /// Bulk offline imputation. Trajectories are imputed concurrently on
    /// the configured thread budget (imputation only reads shared state
    /// under the read lock); output order matches input order and each
    /// result is identical to a sequential [`Kamel::impute`] call.
    pub fn impute_batch(&self, sparse: &[Trajectory]) -> Vec<ImputedTrajectory> {
        self.impute_batch_with_threads(sparse, self.config.effective_threads())
    }

    /// [`Kamel::impute_batch`] with an explicit worker-thread count.
    pub fn impute_batch_with_threads(
        &self,
        sparse: &[Trajectory],
        threads: usize,
    ) -> Vec<ImputedTrajectory> {
        let threads = threads.clamp(1, sparse.len().max(1));
        if threads <= 1 {
            return sparse.iter().map(|t| self.impute(t)).collect();
        }
        let mut out: Vec<Option<ImputedTrajectory>> = Vec::new();
        out.resize_with(sparse.len(), || None);
        let per = sparse.len().div_ceil(threads);
        std::thread::scope(|s| {
            for (in_chunk, out_chunk) in sparse.chunks(per).zip(out.chunks_mut(per)) {
                s.spawn(move || {
                    for (t, slot) in in_chunk.iter().zip(out_chunk) {
                        *slot = Some(self.impute(t));
                    }
                });
            }
        });
        out.into_iter().map(|o| o.expect("every slot filled")).collect()
    }

    /// Online/streaming imputation: lazily imputes each incoming trajectory
    /// as the stream yields it.
    pub fn impute_stream<'a, I>(&'a self, stream: I) -> impl Iterator<Item = ImputedTrajectory> + 'a
    where
        I: IntoIterator<Item = Trajectory> + 'a,
    {
        stream.into_iter().map(move |t| self.impute(&t))
    }

    /// The tokenized gap context of `sparse` under the trained tokenizer:
    /// the dedup-run cell-id sequence (one cell per run of consecutive
    /// same-cell fixes, exactly the anchors [`Kamel::impute`] works from)
    /// and the planar span in meters between each consecutive anchor pair.
    ///
    /// Two sparse trajectories with equal gap context traverse the same
    /// cells with the same gap geometry, which makes this the semantic part
    /// of an online response-cache key (`kamel-server` combines it with a
    /// digest of the raw fixes, since originals are echoed verbatim into
    /// the imputed output). Returns `None` while untrained — no tokenizer
    /// exists yet, so there is nothing stable to key on.
    pub fn gap_context(&self, sparse: &Trajectory) -> Option<(Vec<CellId>, Vec<f64>)> {
        let guard = self.inner.read();
        let state = guard.as_ref()?;
        let anchors = anchors_of(sparse, &state.tokenizer);
        let cells = anchors.iter().map(|a| a.cell).collect();
        let spans = anchors
            .windows(2)
            .map(|w| w[0].xy.dist(&w[1].xy))
            .collect();
        Some((cells, spans))
    }

    /// Serializes the full trained state (config + store + models +
    /// detokenization metadata) to JSON.
    pub fn to_json(&self) -> Result<String, KamelError> {
        let guard = self.inner.read();
        let doc = PersistedKamel {
            config: self.config.clone(),
            state: guard.clone(),
        };
        serde_json::to_string(&doc).map_err(|e| KamelError::Persistence(e.to_string()))
    }

    /// Serializes a **serving skeleton**: the trained tokenizer,
    /// detokenization clusters, speed cap, and pyramid shape — with the
    /// trajectory store emptied and every model dropped. This is what
    /// `kamel pack` embeds as the store's meta record: a few KB standing
    /// in for the full model set, enough to rebuild a serving `Kamel`
    /// whose models then resolve through the store's resident set.
    pub fn serving_skeleton_json(&self) -> Result<String, KamelError> {
        let guard = self.inner.read();
        let Some(state) = guard.as_ref() else {
            return Err(KamelError::NotTrained);
        };
        let skeleton = State {
            tokenizer: state.tokenizer.clone(),
            store: TrajStore::new((self.config.cell_edge_m * 8.0).max(300.0)),
            repo: state.repo.skeleton(),
            detok: state.detok.clone(),
            speed_sample: Vec::new(),
            max_speed_mps: state.max_speed_mps,
        };
        let doc = PersistedKamel {
            config: self.config.clone(),
            state: Some(skeleton),
        };
        serde_json::to_string(&doc).map_err(|e| KamelError::Persistence(e.to_string()))
    }

    /// Every stored model as a `(selection, serialized entry, int8
    /// artifact)` export, in [`Repository::model_keys`] order — the
    /// per-cell records `kamel pack` writes. The entry JSON is the same
    /// serde form the heap repository persists, so a store materializing
    /// it deserializes the *identical* model; the artifact (BERT engines
    /// only) additionally packs the int8 weights so quantized serving
    /// reads them zero-copy out of the mapped file.
    pub fn export_models(&self) -> Result<Vec<ExportedModel>, KamelError> {
        let guard = self.inner.read();
        let Some(state) = guard.as_ref() else {
            return Err(KamelError::NotTrained);
        };
        let mut out = Vec::new();
        for selection in state.repo.model_keys() {
            let entry = state
                .repo
                .entry(selection)
                .expect("model_keys lists only stored entries");
            let entry_json = serde_json::to_string(entry)
                .map_err(|e| KamelError::Persistence(e.to_string()))?;
            out.push(ExportedModel {
                selection,
                entry_json,
                quant: entry.model.quant_artifact(),
            });
        }
        Ok(out)
    }

    /// A modelless clone of the repository's pyramid geometry (root,
    /// height, maintained levels, k) — the selection structure a model
    /// store needs to route queries without holding any weights.
    pub fn repo_skeleton(&self) -> Option<crate::partition::Repository> {
        self.inner.read().as_ref().map(|s| s.repo.skeleton())
    }

    /// Persists the full trained state to a file as a crash-safe
    /// checkpoint: the JSON state is wrapped in a versioned, CRC32C-
    /// checksummed envelope, written to a same-directory temp file,
    /// synced, and renamed over `path`, rotating any previous checkpoint
    /// to `<path>.bak` (see [`crate::checkpoint`]). A crash or full disk
    /// mid-save leaves the previous checkpoint intact.
    pub fn save_to_file(&self, path: impl AsRef<std::path::Path>) -> Result<(), KamelError> {
        let json = self.to_json()?;
        crate::checkpoint::save_checkpoint(path.as_ref(), json.as_bytes()).map_err(|e| {
            KamelError::Persistence(format!("write {}: {e}", path.as_ref().display()))
        })
    }

    /// Restores a system persisted with [`Kamel::save_to_file`].
    ///
    /// Loads the checkpoint at `path`, validating its envelope (magic,
    /// version, length, CRC32C); legacy bare-JSON model files load
    /// unchanged. When the live file is missing, truncated, corrupt, or
    /// fails to parse, the loader falls back to the rotated `<path>.bak`
    /// checkpoint with a loud warning on stderr, and errors only when
    /// both copies are unusable.
    pub fn load_from_file(path: impl AsRef<std::path::Path>) -> Result<Self, KamelError> {
        let path = path.as_ref();
        let primary_err = match Self::read_checkpoint_file(path) {
            Ok(kamel) => return Ok(kamel),
            Err(e) => e,
        };
        let bak = crate::checkpoint::bak_path(path);
        if !bak.exists() {
            return Err(primary_err);
        }
        match Self::read_checkpoint_file(&bak) {
            Ok(kamel) => {
                // Once per path per process: a store boot loads hundreds
                // of cells from the same tree and must not repeat this
                // for every one of them.
                if crate::checkpoint::note_bak_recovery(path) {
                    eprintln!(
                        "warning: checkpoint {} is unusable ({primary_err}); \
                         recovered previous checkpoint from {}",
                        path.display(),
                        bak.display()
                    );
                }
                Ok(kamel)
            }
            Err(bak_err) => Err(KamelError::Persistence(format!(
                "{primary_err}; backup {} also unusable: {bak_err}",
                bak.display()
            ))),
        }
    }

    /// Reads and fully validates one checkpoint file (no fallback).
    fn read_checkpoint_file(path: &std::path::Path) -> Result<Self, KamelError> {
        let bytes = std::fs::read(path).map_err(|e| {
            KamelError::Persistence(format!("read {}: {e}", path.display()))
        })?;
        let payload = crate::checkpoint::decode(&bytes).map_err(|e| {
            KamelError::Persistence(format!("{}: {e}", path.display()))
        })?;
        let json = std::str::from_utf8(payload).map_err(|e| {
            KamelError::Persistence(format!("{}: payload is not UTF-8: {e}", path.display()))
        })?;
        Self::from_json(json)
    }

    /// Restores a system serialized with [`Kamel::to_json`].
    pub fn from_json(json: &str) -> Result<Self, KamelError> {
        let doc: PersistedKamel =
            serde_json::from_str(json).map_err(|e| KamelError::Persistence(e.to_string()))?;
        doc.config.validate()?;
        if let Some(n) = doc.config.threads {
            kamel_nn::set_thread_budget(n);
        }
        let kamel = Self {
            config: doc.config,
            inner: RwLock::new(doc.state),
            quantized: AtomicBool::new(false),
            source: None,
        };
        // The int8 artifact is derived state and never persists; when the
        // persisted config asks for it, rebuild and re-gate it now. A gate
        // failure is not a load failure — the system serves f32 instead.
        if kamel.config.quantize && kamel.is_trained() {
            if let Err(e) = kamel.enable_quantization() {
                eprintln!("warning: loaded model serves on the f32 path: {e}");
            }
        }
        Ok(kamel)
    }
}

/// Serialized form of a trained system.
#[derive(Serialize, Deserialize)]
struct PersistedKamel {
    config: KamelConfig,
    state: Option<State>,
}

/// One model record exported by [`Kamel::export_models`] for `kamel pack`.
pub struct ExportedModel {
    /// Which pyramid slot the model occupies.
    pub selection: ModelSelection,
    /// The serialized [`crate::partition::ModelEntry`] — the byte-for-byte
    /// serde form the heap repository would persist.
    pub entry_json: String,
    /// Packed-ready int8 weights (BERT engines only).
    pub quant: Option<kamel_nn::QuantizedBertMlm>,
}

/// One dedup-run anchor.
struct Anchor {
    cell: CellId,
    xy: Xy,
    t: f64,
    first_idx: usize,
    last_idx: usize,
}

fn anchors_of(sparse: &Trajectory, tokenizer: &Tokenizer) -> Vec<Anchor> {
    let mut anchors: Vec<Anchor> = Vec::with_capacity(sparse.len());
    for (idx, p) in sparse.points.iter().enumerate() {
        let xy = tokenizer.projection().to_xy(p.pos);
        let cell = tokenizer.cell_of_xy(xy);
        match anchors.last_mut() {
            Some(last) if last.cell == cell => last.last_idx = idx,
            _ => anchors.push(Anchor {
                cell,
                xy,
                t: p.t,
                first_idx: idx,
                last_idx: idx,
            }),
        }
    }
    anchors
}

/// Interior points of a straight-line fallback, spaced at `max_gap`.
fn straight_line_points(a: Xy, b: Xy, max_gap_m: f64) -> Vec<Xy> {
    let d = a.dist(&b);
    let n = (d / max_gap_m).ceil() as usize;
    (1..n).map(|i| a.lerp(&b, i as f64 / n as f64)).collect()
}

/// Assigns timestamps to interior points, linear in cumulative distance
/// between the gap endpoints.
fn time_points(a: Xy, b: Xy, t_a: f64, t_b: f64, interior: &[Xy]) -> Vec<(Xy, f64)> {
    if interior.is_empty() {
        return Vec::new();
    }
    let mut cum = Vec::with_capacity(interior.len() + 1);
    let mut total = 0.0;
    let mut prev = a;
    for p in interior {
        total += prev.dist(p);
        cum.push(total);
        prev = *p;
    }
    total += prev.dist(&b);
    if total <= 0.0 {
        return interior.iter().map(|p| (*p, t_a)).collect();
    }
    interior
        .iter()
        .zip(cum)
        .map(|(p, c)| (*p, t_a + (t_b - t_a) * c / total))
        .collect()
}

/// Pure straight-line imputation used before any training.
fn linear_only(sparse: &Trajectory, config: &KamelConfig) -> ImputedTrajectory {
    if sparse.len() < 2 {
        return ImputedTrajectory {
            trajectory: sparse.clone(),
            gaps: Vec::new(),
        };
    }
    // Without a tokenizer we still honour the output contract: interpolate
    // in geodetic space directly (valid at city scale).
    let mut points = Vec::with_capacity(sparse.len() * 2);
    let mut gaps = Vec::new();
    for w in sparse.points.windows(2) {
        points.push(w[0]);
        let gap_m = w[0].pos.fast_dist_m(&w[1].pos);
        if gap_m > config.max_gap_m {
            let n = (gap_m / config.max_gap_m).ceil() as usize;
            for i in 1..n {
                let f = i as f64 / n as f64;
                points.push(GpsPoint::new(
                    w[0].pos.lerp(&w[1].pos, f),
                    w[0].t + (w[1].t - w[0].t) * f,
                ));
            }
            gaps.push(GapReport {
                gap_m,
                points_inserted: n.saturating_sub(1),
                outcome: SegmentOutcome {
                    tokens: Vec::new(),
                    failed: true,
                    model_calls: 0,
                    failure_reason: Some(crate::impute::FailureReason::NoModel),
                    confidence: 0.0,
                },
                had_model: false,
            });
        }
    }
    points.push(*sparse.points.last().expect("len >= 2"));
    ImputedTrajectory {
        trajectory: Trajectory::new(points),
        gaps,
    }
}

fn padded_bbox(batch: &[&Trajectory], tokenizer: &Tokenizer) -> BBox {
    let bb = BBox::of_points(
        batch
            .iter()
            .flat_map(|t| t.points.iter().map(|p| tokenizer.projection().to_xy(p.pos))),
    )
    .expect("non-empty batch");
    grow_bbox(bb, ROOT_PAD_FRACTION)
}

fn grow_bbox(bb: BBox, fraction: f64) -> BBox {
    let dx = (bb.width() * fraction).max(1.0);
    let dy = (bb.height() * fraction).max(1.0);
    BBox::new(
        Xy::new(bb.min.x - dx, bb.min.y - dy),
        Xy::new(bb.max.x + dx, bb.max.y + dy),
    )
}

/// In-place percentile of a sample (`None` when empty). `q` in [0, 1].
fn percentile(sample: &mut [f64], q: f64) -> Option<f64> {
    if sample.is_empty() {
        return None;
    }
    let idx = ((sample.len() - 1) as f64 * q).round() as usize;
    sample
        .select_nth_unstable_by(idx, |a, b| a.partial_cmp(b).expect("finite speeds"));
    Some(sample[idx])
}

/// Cell-size auto-tuning (§3.2): trains a throwaway system per candidate
/// hexagon edge on a training subsample and scores imputation accuracy on a
/// held-out validation subsample; returns the edge with the best recall
/// proxy.
///
/// `delta_m` is the accuracy threshold δ and `sparse_m` the sparsification
/// distance used for validation.
pub fn tune_cell_size(
    training: &[Trajectory],
    candidate_edges_m: &[f64],
    base: &KamelConfig,
    delta_m: f64,
    sparse_m: f64,
) -> f64 {
    tune_cell_size_detailed(training, candidate_edges_m, base, delta_m, sparse_m)
        .into_iter()
        .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite scores"))
        .map_or(base.cell_edge_m, |(edge, _)| edge)
}

/// Like [`tune_cell_size`] but returns the full `(edge, validation score)`
/// curve — the data behind the paper's Figure 3(d) accuracy-vs-cell-size
/// plot. Sizes that could not be scored are omitted.
pub fn tune_cell_size_detailed(
    training: &[Trajectory],
    candidate_edges_m: &[f64],
    base: &KamelConfig,
    delta_m: f64,
    sparse_m: f64,
) -> Vec<(f64, f64)> {
    assert!(!candidate_edges_m.is_empty(), "no candidate sizes");
    if training.len() < 5 {
        return vec![(base.cell_edge_m, 0.0)];
    }
    // 80/20 split of the (sub)sample.
    let n_val = (training.len() / 5).max(1);
    let (train_part, val_part) = training.split_at(training.len() - n_val);
    let mut curve = Vec::with_capacity(candidate_edges_m.len());
    for &edge in candidate_edges_m {
        let cfg = KamelConfig {
            cell_edge_m: edge,
            ..base.clone()
        };
        if cfg.validate().is_err() {
            continue;
        }
        let kamel = Kamel::new(cfg);
        kamel.train(train_part);
        let mut score_sum = 0.0;
        let mut scored = 0usize;
        for gt in val_part {
            if gt.len() < 3 {
                continue;
            }
            let sparse = gt.sparsify(sparse_m);
            if sparse.len() >= gt.len() {
                continue; // nothing was removed; no signal
            }
            let imputed = kamel.impute(&sparse);
            score_sum += recall_proxy(gt, &imputed.trajectory, delta_m);
            scored += 1;
        }
        if scored > 0 {
            curve.push((edge, score_sum / scored as f64));
        }
    }
    curve
}

/// Fraction of ground-truth fixes within `delta_m` of the imputed polyline.
///
/// A light-weight recall used by cell-size tuning and by the continual
/// learner's replay-based regression gate (the evaluation crate implements
/// the paper's full discretized metrics; this proxy is cheap enough to run
/// on every rollout).
pub fn replay_recall(gt: &Trajectory, imputed: &Trajectory, delta_m: f64) -> f64 {
    recall_proxy(gt, imputed, delta_m)
}

/// Fraction of ground-truth fixes within `delta_m` of the imputed polyline
/// (a light-weight recall used only for tuning; the evaluation crate
/// implements the paper's full discretized metrics).
fn recall_proxy(gt: &Trajectory, imputed: &Trajectory, delta_m: f64) -> f64 {
    if gt.is_empty() || imputed.is_empty() {
        return 0.0;
    }
    let origin = gt.points[0].pos;
    let proj = kamel_geo::LocalProjection::new(LatLng::new(origin.lat, origin.lng));
    let line: Vec<Xy> = imputed.points.iter().map(|p| proj.to_xy(p.pos)).collect();
    let hits = gt
        .points
        .iter()
        .filter(|p| {
            kamel_geo::point_to_polyline_distance(proj.to_xy(p.pos), &line) <= delta_m
        })
        .count();
    hits as f64 / gt.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use kamel_geo::GpsPoint;

    /// A corpus of trips along one straight street, fixes every ~84 m.
    fn street_corpus(n: usize) -> Vec<Trajectory> {
        (0..n)
            .map(|_| {
                Trajectory::new(
                    (0..30)
                        .map(|i| {
                            GpsPoint::from_parts(41.15, -8.61 + i as f64 * 0.001, i as f64 * 10.0)
                        })
                        .collect(),
                )
            })
            .collect()
    }

    fn trained() -> Kamel {
        let kamel = Kamel::new(
            KamelConfig::builder()
                .model_threshold_k(50)
                .pyramid_height(3)
                .build(),
        );
        kamel.train(&street_corpus(40));
        kamel
    }

    #[test]
    fn train_builds_models_and_stats() {
        let kamel = trained();
        assert!(kamel.is_trained());
        let stats = kamel.stats().expect("stats");
        assert!(stats.models >= 1, "no models: {stats:?}");
        assert_eq!(stats.stored_trajectories, 40);
        assert!(stats.detok_cells > 5);
        assert!(stats.max_speed_mps > 3.0 && stats.max_speed_mps < 60.0);
    }

    #[test]
    fn impute_fills_a_street_gap() {
        let kamel = trained();
        // Sparse trajectory along the street with one ~1.7 km gap.
        let sparse = Trajectory::new(vec![
            GpsPoint::from_parts(41.15, -8.610, 0.0),
            GpsPoint::from_parts(41.15, -8.609, 10.0),
            GpsPoint::from_parts(41.15, -8.589, 210.0),
            GpsPoint::from_parts(41.15, -8.588, 220.0),
        ]);
        let result = kamel.impute(&sparse);
        assert_eq!(result.gaps.len(), 1);
        let gap = &result.gaps[0];
        assert!(gap.had_model, "no model for gap");
        assert!(!gap.outcome.failed, "imputation failed: {:?}", gap.outcome);
        assert!(gap.points_inserted >= 5, "too few points: {gap:?}");
        // Output is time-ordered and contains all originals.
        let ts: Vec<f64> = result.trajectory.points.iter().map(|p| p.t).collect();
        for w in ts.windows(2) {
            assert!(w[1] >= w[0], "timestamps not monotone: {ts:?}");
        }
        assert!(result.trajectory.len() >= sparse.len() + gap.points_inserted);
        // Imputed points stay on the street (lat ≈ 41.15).
        for p in &result.trajectory.points {
            assert!((p.pos.lat - 41.15).abs() < 0.002, "off-street point {p:?}");
        }
    }

    #[test]
    fn untrained_system_falls_back_to_linear() {
        let kamel = Kamel::new(KamelConfig::default());
        let sparse = Trajectory::new(vec![
            GpsPoint::from_parts(41.15, -8.61, 0.0),
            GpsPoint::from_parts(41.15, -8.60, 100.0),
        ]);
        let result = kamel.impute(&sparse);
        assert_eq!(result.failure_rate(), Some(1.0));
        assert!(result.trajectory.len() > 2, "linear fallback materializes points");
    }

    #[test]
    fn short_trajectories_pass_through() {
        let kamel = trained();
        let single = Trajectory::new(vec![GpsPoint::from_parts(41.15, -8.61, 0.0)]);
        let result = kamel.impute(&single);
        assert_eq!(result.trajectory, single);
        assert!(result.gaps.is_empty());
        let empty = kamel.impute(&Trajectory::default());
        assert!(empty.trajectory.is_empty());
    }

    #[test]
    fn small_gaps_require_no_imputation() {
        let kamel = trained();
        let dense = Trajectory::new(
            (0..10)
                .map(|i| GpsPoint::from_parts(41.15, -8.61 + i as f64 * 0.0005, i as f64 * 5.0))
                .collect(),
        );
        let result = kamel.impute(&dense);
        assert!(result.gaps.is_empty());
        assert_eq!(result.trajectory.len(), dense.len());
    }

    #[test]
    fn batch_and_stream_agree() {
        let kamel = trained();
        let sparse: Vec<Trajectory> = street_corpus(3)
            .into_iter()
            .map(|t| t.sparsify(800.0))
            .collect();
        let batch = kamel.impute_batch(&sparse);
        let streamed: Vec<ImputedTrajectory> =
            kamel.impute_stream(sparse.clone()).collect();
        assert_eq!(batch, streamed);
    }

    #[test]
    fn persistence_roundtrip_preserves_behaviour() {
        let kamel = trained();
        let sparse = street_corpus(1)[0].sparsify(900.0);
        let before = kamel.impute(&sparse);
        let json = kamel.to_json().expect("serialize");
        let restored = Kamel::from_json(&json).expect("deserialize");
        let after = restored.impute(&sparse);
        assert_eq!(before, after);
    }

    #[test]
    fn quantize_config_survives_training_and_reload() {
        use kamel_lm::{BertEngineConfig, EngineConfig};
        let kamel = Kamel::new(
            KamelConfig::builder()
                .model_threshold_k(50)
                .pyramid_height(3)
                .disable_partitioning(true)
                .engine(EngineConfig::Bert(BertEngineConfig::for_tests()))
                .quantize(true)
                .quantize_min_agreement(0.0)
                .build(),
        );
        assert!(!kamel.is_quantized(), "untrained system starts on f32");
        kamel.train(&street_corpus(40));
        assert!(kamel.is_quantized(), "config.quantize applies after training");
        // The quantized system still serves imputation end to end.
        let sparse = street_corpus(1)[0].sparsify(900.0);
        let result = kamel.impute(&sparse);
        assert!(!result.trajectory.is_empty());
        // The int8 artifact is derived state: a reload rebuilds and
        // re-gates it because the persisted config asks for it.
        let json = kamel.to_json().expect("serialize");
        let restored = Kamel::from_json(&json).expect("deserialize");
        assert!(restored.is_quantized(), "reload re-enables quantization");
        restored.disable_quantization();
        assert!(!restored.is_quantized());
    }

    #[test]
    fn explicit_enable_quantization_gates_and_applies() {
        use kamel_lm::{BertEngineConfig, EngineConfig};
        let kamel = Kamel::new(
            KamelConfig::builder()
                .model_threshold_k(50)
                .pyramid_height(3)
                .disable_partitioning(true)
                .engine(EngineConfig::Bert(BertEngineConfig::for_tests()))
                // A tiny test model under-trains; keep the gate permissive
                // so this test exercises the pass path deterministically.
                .quantize_min_agreement(0.5)
                .build(),
        );
        kamel.train(&street_corpus(40));
        assert!(!kamel.is_quantized(), "quantization is opt-in");
        let worst = kamel.enable_quantization().expect("gate passes");
        assert!((0.0..=1.0).contains(&worst), "agreement out of range: {worst}");
        assert!(kamel.is_quantized());
        // Re-training keeps the armed path live (models are rebuilt, so
        // quantization is re-applied under the same gate).
        kamel.train(&street_corpus(5));
        assert!(kamel.is_quantized(), "training dropped the armed int8 path");
    }

    #[test]
    fn model_summaries_match_stats() {
        let kamel = trained();
        let summaries = kamel.model_summaries();
        assert_eq!(summaries.len(), kamel.stats().unwrap().models);
        assert!(!summaries.is_empty());
        let untrained = Kamel::new(KamelConfig::default());
        assert!(untrained.model_summaries().is_empty());
    }

    #[test]
    fn file_persistence_roundtrip() {
        let kamel = trained();
        let dir = ckpt_dir("roundtrip");
        let path = dir.join("kamel_test_model.json");
        kamel.save_to_file(&path).expect("save");
        let restored = Kamel::load_from_file(&path).expect("load");
        let sparse = street_corpus(1)[0].sparsify(900.0);
        assert_eq!(kamel.impute(&sparse), restored.impute(&sparse));
        std::fs::remove_file(&path).ok();
        // Missing file (and no backup rotation yet) surfaces a
        // persistence error.
        assert!(matches!(
            Kamel::load_from_file(&path),
            Err(crate::error::KamelError::Persistence(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    /// A temp directory unique to one test, wiped up front so reruns
    /// never see stale checkpoints.
    fn ckpt_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("kamel_pipe_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn from_json_failure_paths_never_panic() {
        // Empty input.
        assert!(matches!(
            Kamel::from_json(""),
            Err(crate::error::KamelError::Persistence(_))
        ));
        // Truncated JSON.
        let full = trained().to_json().expect("serialize");
        for cut in [1, full.len() / 2, full.len() - 1] {
            assert!(
                matches!(
                    Kamel::from_json(&full[..cut]),
                    Err(crate::error::KamelError::Persistence(_))
                ),
                "cut at {cut} did not fail cleanly"
            );
        }
        // Valid JSON carrying an invalid configuration.
        let bad_config = full.replace("\"beam_size\":10", "\"beam_size\":0");
        assert_ne!(bad_config, full, "replacement must hit the config field");
        assert!(matches!(
            Kamel::from_json(&bad_config),
            Err(crate::error::KamelError::InvalidConfig(_))
        ));
    }

    #[test]
    fn legacy_bare_json_checkpoint_still_loads() {
        let kamel = trained();
        let dir = ckpt_dir("legacy");
        let path = dir.join("model.json");
        // A pre-envelope model file: bare JSON, written directly.
        std::fs::write(&path, kamel.to_json().expect("serialize")).unwrap();
        let restored = Kamel::load_from_file(&path).expect("legacy load");
        let sparse = street_corpus(1)[0].sparsify(900.0);
        assert_eq!(kamel.impute(&sparse), restored.impute(&sparse));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncated_checkpoint_tail_falls_back_to_backup() {
        let a = trained();
        let dir = ckpt_dir("truncate");
        let path = dir.join("model.ckpt");
        a.save_to_file(&path).expect("save A");
        // A second training batch makes a distinct post-save state.
        a.train(&street_corpus(5));
        a.save_to_file(&path).expect("save B");
        let stats_b = a.stats().unwrap();
        assert_eq!(
            Kamel::load_from_file(&path).expect("clean load").stats().unwrap(),
            stats_b
        );
        // Truncate the live checkpoint's last 64 bytes: the loader must
        // recover the previous checkpoint from the rotation.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 64]).unwrap();
        let recovered = Kamel::load_from_file(&path).expect("fallback load");
        let stats_a = recovered.stats().unwrap();
        assert_eq!(stats_a.stored_trajectories, 40, "recovered pre-save state");
        assert_ne!(stats_a, stats_b);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// The acceptance-criterion fault matrix, round-tripped through
    /// imputation: after every injected fault during a save, the model
    /// that loads back imputes byte-identically to either the pre-save or
    /// the post-save system — never something in between.
    #[test]
    fn fault_matrix_roundtrips_imputation_output() {
        use crate::checkpoint::faults::{Fault, FaultyIo};
        let a = trained();
        let sparse = street_corpus(1)[0].sparsify(900.0);
        let out_a = a.impute(&sparse);
        // The post-save state: the same system after one more batch.
        let b = trained();
        b.train(&street_corpus(5));
        let out_b = b.impute(&sparse);
        let b_wire =
            crate::checkpoint::encode(b.to_json().expect("serialize").as_bytes());
        let faults = [
            Fault::ShortWrite { keep: 100 },
            Fault::ShortWrite { keep: b_wire.len() - 1 },
            Fault::Enospc { after: b_wire.len() / 2 },
            Fault::CrashBeforeRename,
            Fault::CrashBetweenRenames,
        ];
        for (i, fault) in faults.into_iter().enumerate() {
            let dir = ckpt_dir(&format!("matrix_{i}"));
            let path = dir.join("model.ckpt");
            a.save_to_file(&path).expect("pre-save");
            crate::checkpoint::write_atomic_with(&FaultyIo::new(fault), &path, &b_wire, true)
                .expect_err("fault must surface");
            let recovered = Kamel::load_from_file(&path)
                .unwrap_or_else(|e| panic!("{fault:?}: recovery failed: {e}"));
            assert_eq!(
                recovered.impute(&sparse),
                out_a,
                "{fault:?}: recovered model is not the pre-save system"
            );
            std::fs::remove_dir_all(&dir).ok();
        }
        // CRC corruption after a *successful* save: payload bit flip on
        // the live file → fallback to the rotated pre-save checkpoint.
        let dir = ckpt_dir("matrix_bitflip");
        let path = dir.join("model.ckpt");
        a.save_to_file(&path).expect("pre-save");
        b.save_to_file(&path).expect("post-save");
        assert_eq!(
            Kamel::load_from_file(&path).expect("clean").impute(&sparse),
            out_b,
            "clean post-save load is the post-save system"
        );
        let mut bytes = std::fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n - 40] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();
        let recovered = Kamel::load_from_file(&path).expect("bit-flip fallback");
        assert_eq!(recovered.impute(&sparse), out_a);
        // A flip inside the magic demotes the file to "legacy JSON",
        // which fails to parse — same fallback, via the parse layer.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[0] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let recovered = Kamel::load_from_file(&path).expect("magic-flip fallback");
        assert_eq!(recovered.impute(&sparse), out_a);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stats_none_before_training() {
        let kamel = Kamel::new(KamelConfig::default());
        assert!(!kamel.is_trained());
        assert!(kamel.stats().is_none());
    }

    #[test]
    fn gap_context_keys_match_anchor_structure() {
        let kamel = trained();
        let sparse = Trajectory::new(vec![
            GpsPoint::from_parts(41.15, -8.610, 0.0),
            GpsPoint::from_parts(41.15, -8.609, 10.0),
            GpsPoint::from_parts(41.15, -8.589, 210.0),
        ]);
        let (cells, spans) = kamel.gap_context(&sparse).expect("trained");
        assert!(!cells.is_empty());
        assert_eq!(spans.len(), cells.len() - 1);
        assert!(spans.iter().all(|s| *s >= 0.0 && s.is_finite()));
        // Same trajectory → same context; a shifted copy → different cells.
        assert_eq!(kamel.gap_context(&sparse), Some((cells.clone(), spans)));
        let shifted = Trajectory::new(
            sparse
                .points
                .iter()
                .map(|p| GpsPoint::from_parts(p.pos.lat + 0.01, p.pos.lng, p.t))
                .collect(),
        );
        let (shifted_cells, _) = kamel.gap_context(&shifted).expect("trained");
        assert_ne!(cells, shifted_cells);
        // Untrained systems have no tokenizer, hence no context.
        assert!(Kamel::new(KamelConfig::default()).gap_context(&sparse).is_none());
    }

    #[test]
    fn percentile_basics() {
        let mut v = vec![5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(percentile(&mut v, 0.0), Some(1.0));
        assert_eq!(percentile(&mut v, 1.0), Some(5.0));
        assert_eq!(percentile(&mut v, 0.5), Some(3.0));
        assert_eq!(percentile(&mut [], 0.5), None);
    }

    #[test]
    fn straight_line_spacing() {
        let pts = straight_line_points(Xy::new(0.0, 0.0), Xy::new(350.0, 0.0), 100.0);
        assert_eq!(pts.len(), 3); // 87.5, 175, 262.5
        for w in pts.windows(2) {
            assert!(w[0].dist(&w[1]) <= 100.0);
        }
    }

    #[test]
    fn time_points_are_monotone() {
        let interior = vec![Xy::new(100.0, 0.0), Xy::new(200.0, 0.0)];
        let timed = time_points(Xy::new(0.0, 0.0), Xy::new(300.0, 0.0), 0.0, 30.0, &interior);
        assert_eq!(timed.len(), 2);
        assert!((timed[0].1 - 10.0).abs() < 1e-9);
        assert!((timed[1].1 - 20.0).abs() < 1e-9);
    }

    #[test]
    fn tune_cell_size_picks_a_candidate() {
        let corpus = street_corpus(30);
        let base = KamelConfig::builder()
            .model_threshold_k(50)
            .pyramid_height(3)
            .build();
        let edge = tune_cell_size(&corpus, &[50.0, 75.0, 150.0], &base, 50.0, 500.0);
        assert!([50.0, 75.0, 150.0].contains(&edge));
    }
}

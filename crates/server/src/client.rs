//! A tiny blocking HTTP/1.1 client over `std::net::TcpStream`.
//!
//! Just enough to drive the server from the integration tests, the
//! `bench_serve` load generator, and the CI smoke job — one connection,
//! sequential keep-alive requests, `Content-Length` bodies only.

use std::io::{BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A parsed HTTP response.
#[derive(Debug, Clone)]
pub struct ClientResponse {
    /// Status code.
    pub status: u16,
    /// Header `(name, value)` pairs; names lowercased.
    pub headers: Vec<(String, String)>,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// First value of header `name` (lowercase), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 (lossy).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// A keep-alive connection to the server.
pub struct Client {
    stream: BufReader<TcpStream>,
}

impl Client {
    /// Connects with a read/write timeout (applied per request).
    pub fn connect(addr: SocketAddr, timeout: Duration) -> std::io::Result<Self> {
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        stream.set_nodelay(true)?;
        Ok(Self {
            stream: BufReader::new(stream),
        })
    }

    /// Sends `GET path`.
    pub fn get(&mut self, path: &str) -> std::io::Result<ClientResponse> {
        self.request("GET", path, None)
    }

    /// Sends `POST path` with a JSON body.
    pub fn post_json(&mut self, path: &str, body: &[u8]) -> std::io::Result<ClientResponse> {
        self.request("POST", path, Some(body))
    }

    fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&[u8]>,
    ) -> std::io::Result<ClientResponse> {
        let mut head = format!("{method} {path} HTTP/1.1\r\nhost: kamel\r\n");
        if let Some(body) = body {
            head.push_str("content-type: application/json\r\n");
            head.push_str(&format!("content-length: {}\r\n", body.len()));
        }
        head.push_str("\r\n");
        let stream = self.stream.get_mut();
        stream.write_all(head.as_bytes())?;
        if let Some(body) = body {
            stream.write_all(body)?;
        }
        stream.flush()?;
        self.read_response()
    }

    fn read_response(&mut self) -> std::io::Result<ClientResponse> {
        let status_line = self.read_line()?;
        let status: u16 = status_line
            .split_ascii_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| bad_data(format!("bad status line `{status_line}`")))?;
        let mut headers = Vec::new();
        loop {
            let line = self.read_line()?;
            if line.is_empty() {
                break;
            }
            let (name, value) = line
                .split_once(':')
                .ok_or_else(|| bad_data(format!("bad header `{line}`")))?;
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
        }
        let len: usize = headers
            .iter()
            .find(|(k, _)| k == "content-length")
            .and_then(|(_, v)| v.parse().ok())
            .ok_or_else(|| bad_data("response without content-length".into()))?;
        let mut body = vec![0u8; len];
        self.stream.read_exact(&mut body)?;
        Ok(ClientResponse {
            status,
            headers,
            body,
        })
    }

    /// Reads one CRLF-terminated line, excluding the terminator.
    fn read_line(&mut self) -> std::io::Result<String> {
        let mut line = Vec::with_capacity(64);
        loop {
            let mut byte = [0u8; 1];
            let n = self.stream.read(&mut byte)?;
            if n == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed mid-response",
                ));
            }
            if byte[0] == b'\n' {
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                return String::from_utf8(line).map_err(|_| bad_data("non-UTF-8 line".into()));
            }
            line.push(byte[0]);
        }
    }
}

fn bad_data(msg: String) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg)
}

//! Criterion bench for Figure 11: training time (11a) and per-trajectory
//! imputation time (11b) of KAMEL vs TrImpute.

use criterion::{criterion_group, criterion_main, Criterion};
use kamel::Kamel;
use kamel_baselines::{TrajectoryImputer, TrImpute, TrImputeConfig};
use kamel_bench::{default_kamel_config, City};
use kamel_eval::harness::{train_kamel, train_trimpute};
use kamel_roadsim::DatasetScale;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let dataset = City::Porto.dataset(DatasetScale::Small);
    let config = default_kamel_config().pyramid_height(3).model_threshold_k(150).build();

    let mut group = c.benchmark_group("fig11_training");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));
    group.bench_function("KAMEL_train", |b| {
        b.iter(|| {
            let k = Kamel::new(config.clone());
            k.train(&dataset.train);
            std::hint::black_box(k.stats())
        })
    });
    group.bench_function("TrImpute_train", |b| {
        b.iter(|| std::hint::black_box(TrImpute::train(TrImputeConfig::default(), &dataset.train)))
    });
    group.finish();

    let (kamel, _) = train_kamel(&dataset, config);
    let (trimpute, _) = train_trimpute(&dataset, TrImputeConfig::default());
    let sparse: Vec<_> = dataset.test.iter().take(5).map(|t| t.sparsify(1_000.0)).collect();
    let mut group = c.benchmark_group("fig11_imputation");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    group.bench_function("KAMEL_impute", |b| {
        b.iter(|| {
            for s in &sparse {
                std::hint::black_box(kamel.impute(s));
            }
        })
    });
    group.bench_function("TrImpute_impute", |b| {
        b.iter(|| {
            for s in &sparse {
                std::hint::black_box(trimpute.impute(s));
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Axis-aligned bounding boxes in the local planar frame.
//!
//! Used by the Partitioning module (§4.1): the pyramid retrieval finds the
//! smallest cell fully enclosing a trajectory's minimum bounding rectangle.

use crate::point::Xy;
use serde::{Deserialize, Serialize};

/// An axis-aligned rectangle in planar meters. `min` is the south-west
/// corner, `max` the north-east corner; both edges are inclusive.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BBox {
    /// South-west corner.
    pub min: Xy,
    /// North-east corner.
    pub max: Xy,
}

impl BBox {
    /// Creates a bounding box from two corners, normalizing the ordering.
    pub fn new(a: Xy, b: Xy) -> Self {
        Self {
            min: Xy::new(a.x.min(b.x), a.y.min(b.y)),
            max: Xy::new(a.x.max(b.x), a.y.max(b.y)),
        }
    }

    /// The minimum bounding rectangle of a non-empty point set.
    ///
    /// Returns `None` for an empty iterator.
    pub fn of_points<I: IntoIterator<Item = Xy>>(points: I) -> Option<Self> {
        let mut it = points.into_iter();
        let first = it.next()?;
        let mut bb = BBox::new(first, first);
        for p in it {
            bb.expand(p);
        }
        Some(bb)
    }

    /// Grows the box to include `p`.
    pub fn expand(&mut self, p: Xy) {
        self.min.x = self.min.x.min(p.x);
        self.min.y = self.min.y.min(p.y);
        self.max.x = self.max.x.max(p.x);
        self.max.y = self.max.y.max(p.y);
    }

    /// Grows the box to include all of `other`.
    pub fn union(&self, other: &BBox) -> BBox {
        BBox {
            min: Xy::new(self.min.x.min(other.min.x), self.min.y.min(other.min.y)),
            max: Xy::new(self.max.x.max(other.max.x), self.max.y.max(other.max.y)),
        }
    }

    /// True when `p` lies inside or on the boundary.
    #[inline]
    pub fn contains(&self, p: Xy) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// True when `other` lies entirely inside or on the boundary of `self`.
    #[inline]
    pub fn contains_bbox(&self, other: &BBox) -> bool {
        self.contains(other.min) && self.contains(other.max)
    }

    /// True when the two boxes share any point.
    #[inline]
    pub fn intersects(&self, other: &BBox) -> bool {
        self.min.x <= other.max.x
            && self.max.x >= other.min.x
            && self.min.y <= other.max.y
            && self.max.y >= other.min.y
    }

    /// Width in meters (east-west extent).
    #[inline]
    pub fn width(&self) -> f64 {
        self.max.x - self.min.x
    }

    /// Height in meters (north-south extent).
    #[inline]
    pub fn height(&self) -> f64 {
        self.max.y - self.min.y
    }

    /// Geometric center of the box.
    #[inline]
    pub fn center(&self) -> Xy {
        Xy::new(
            (self.min.x + self.max.x) * 0.5,
            (self.min.y + self.max.y) * 0.5,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_normalizes_corners() {
        let bb = BBox::new(Xy::new(5.0, -1.0), Xy::new(-2.0, 3.0));
        assert_eq!(bb.min, Xy::new(-2.0, -1.0));
        assert_eq!(bb.max, Xy::new(5.0, 3.0));
    }

    #[test]
    fn of_points_handles_empty_and_singleton() {
        assert!(BBox::of_points(std::iter::empty()).is_none());
        let bb = BBox::of_points([Xy::new(1.0, 2.0)]).unwrap();
        assert_eq!(bb.min, bb.max);
        assert!(bb.contains(Xy::new(1.0, 2.0)));
    }

    #[test]
    fn containment_and_intersection() {
        let outer = BBox::new(Xy::new(0.0, 0.0), Xy::new(10.0, 10.0));
        let inner = BBox::new(Xy::new(2.0, 2.0), Xy::new(8.0, 8.0));
        let overlapping = BBox::new(Xy::new(8.0, 8.0), Xy::new(12.0, 12.0));
        let disjoint = BBox::new(Xy::new(20.0, 20.0), Xy::new(30.0, 30.0));
        assert!(outer.contains_bbox(&inner));
        assert!(!inner.contains_bbox(&outer));
        assert!(outer.intersects(&overlapping));
        assert!(!outer.intersects(&disjoint));
        // Boundary point counts as contained.
        assert!(outer.contains(Xy::new(10.0, 10.0)));
    }

    #[test]
    fn union_and_dims() {
        let a = BBox::new(Xy::new(0.0, 0.0), Xy::new(1.0, 1.0));
        let b = BBox::new(Xy::new(4.0, -2.0), Xy::new(5.0, 0.5));
        let u = a.union(&b);
        assert_eq!(u.min, Xy::new(0.0, -2.0));
        assert_eq!(u.max, Xy::new(5.0, 1.0));
        assert_eq!(u.width(), 5.0);
        assert_eq!(u.height(), 3.0);
        assert_eq!(u.center(), Xy::new(2.5, -0.5));
    }
}

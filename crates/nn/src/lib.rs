//! From-scratch neural-network substrate for KAMEL's BERT model.
//!
//! The paper trains Google's original BERT architecture on tokenized
//! trajectories (§8: 768 hidden / 12 heads / 12 layers on a Cloud TPU). This
//! crate reimplements that architecture from first principles in pure Rust —
//! no external ML dependency — at CPU-trainable scale:
//!
//! * [`matrix::Matrix`] — a dense row-major `f32` matrix with the BLAS-style
//!   kernels a transformer needs (plain/transposed matmuls, broadcast row
//!   ops).
//! * [`layers`] — `Linear`, `Embedding`, `LayerNorm`, GELU, softmax; every
//!   layer carries explicit `forward`/`backward` passes with gradient
//!   accumulation, validated against finite differences in the test suite.
//! * [`attention`] — multi-head scaled dot-product self-attention with
//!   padding masks (the heart of BERT).
//! * [`encoder`] — transformer encoder blocks (post-LayerNorm, as in the
//!   original BERT).
//! * [`bert`] — the full masked-language model: token + position embeddings,
//!   encoder stack, vocab projection, masked cross-entropy.
//! * [`optim`] — Adam with bias correction and optional weight decay.
//! * [`train`] — the BERT MLM pretraining loop (15% masking with the 80/10/10
//!   mask/random/keep split from Devlin et al.).
//! * [`infer`] — the grad-free batched inference engine: cache-free
//!   forward through a reusable scratch arena, masked-row vocabulary
//!   head, and ragged batching of many `(sequence, mask)` requests into
//!   one fused forward. Bit-identical to the training forward.
//! * [`threads`] — the process-wide worker-thread budget shared by the
//!   parallel matmul kernels and the higher compute tiers (per-cell
//!   training, batch imputation). Parallel paths are bit-identical to
//!   their sequential counterparts, so the budget never changes results.
//! * [`simd`] — explicit SIMD kernels (AVX2 on x86-64, NEON on aarch64)
//!   behind a runtime-dispatched backend, overridable with `KAMEL_SIMD`.
//!   Every vector kernel reproduces the scalar reference's accumulation
//!   order, so like the thread budget, the active instruction set never
//!   changes results.
//! * [`quant`] — the opt-in int8 weight-quantized serving path:
//!   per-output-row symmetric weight scales, dynamic activation
//!   quantization, exact `i8×i8→i32` dots with one f32 rescale per
//!   output element.
//!
//! The layer-by-layer backward design (rather than a taped autograd) keeps
//! the code auditable and the memory profile flat, which matters when many
//! pyramid-cell models are trained in one process (§4).

#![warn(missing_docs)]

pub mod attention;
pub mod bert;
pub mod encoder;
pub mod infer;
pub mod layers;
pub mod math;
pub mod matrix;
pub mod optim;
pub mod quant;
pub mod simd;
pub mod threads;
pub mod train;

pub use bert::{BertConfig, BertMlmModel};
pub use infer::InferScratch;
pub use matrix::Matrix;
pub use optim::Adam;
pub use quant::{ByteSource, QuantizedBertMlm, QuantizedLinear, QPACK_VERSION};
pub use simd::{active_isa, parse_simd_env, set_backend, supported_backends, Backend, EnvIsa};
pub use threads::{available_threads, parse_thread_env, set_thread_budget, thread_budget, EnvBudget};
pub use train::{MlmBatcher, TrainOptions, Trainer};

//! Visual inspection bundle: writes GeoJSON layers for the hidden network,
//! a sparse trajectory, and its KAMEL imputation.
//!
//! ```text
//! cargo run --release --example visualize
//! ```
//!
//! Drop the three files this prints onto <https://geojson.io> (or QGIS /
//! Kepler) to see the imputation follow streets through a gap the sparse
//! input jumps over.

use kamel::{Kamel, KamelConfig};
use kamel_roadsim::{network_to_geojson, trajectories_to_geojson, Dataset, DatasetScale};

fn main() {
    let dataset = Dataset::porto_like(DatasetScale::Small);
    let proj = dataset.projection();
    let kamel = Kamel::new(
        KamelConfig::builder()
            .pyramid_height(3)
            .pyramid_maintained(3)
            .model_threshold_k(150)
            .build(),
    );
    kamel.train(&dataset.train);

    // Pick the longest held-out trip, sparsify at 1.5 km, impute.
    let ground_truth = dataset
        .test
        .iter()
        .max_by_key(|t| t.len())
        .expect("non-empty test split")
        .clone();
    let sparse = ground_truth.sparsify(1_500.0);
    let imputed = kamel.impute(&sparse);
    println!(
        "trajectory: {} ground-truth fixes -> {} sparse -> {} output points \
         ({} imputed over {} gaps)",
        ground_truth.len(),
        sparse.len(),
        imputed.trajectory.len(),
        imputed.imputed_points(),
        imputed.gaps.len()
    );

    let out_dir = std::env::temp_dir().join("kamel_visualize");
    std::fs::create_dir_all(&out_dir).expect("create output dir");
    let layers: [(&str, serde_json::Value); 4] = [
        ("network.geojson", network_to_geojson(&dataset.network, &proj)),
        (
            "ground_truth.geojson",
            trajectories_to_geojson(std::slice::from_ref(&ground_truth)),
        ),
        (
            "sparse.geojson",
            trajectories_to_geojson(std::slice::from_ref(&sparse)),
        ),
        (
            "imputed.geojson",
            trajectories_to_geojson(std::slice::from_ref(&imputed.trajectory)),
        ),
    ];
    for (name, doc) in layers {
        let path = out_dir.join(name);
        std::fs::write(&path, serde_json::to_string(&doc).expect("serialize"))
            .expect("write layer");
        println!("wrote {}", path.display());
    }
}

//! Criterion bench for the Figure 3(d) / §3.2 path: training and imputing
//! at different hexagon edge lengths.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kamel::Kamel;
use kamel_baselines::TrajectoryImputer;
use kamel_bench::{default_kamel_config, City};
use kamel_eval::harness::train_kamel;
use kamel_roadsim::DatasetScale;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let dataset = City::Porto.dataset(DatasetScale::Small);
    let mut group = c.benchmark_group("fig3d_cellsize_train");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));
    for edge_m in [25.0f64, 75.0, 200.0] {
        let config = default_kamel_config()
            .pyramid_height(3)
            .model_threshold_k(150)
            .cell_edge_m(edge_m)
            .build();
        group.bench_with_input(
            BenchmarkId::from_parameter(edge_m as u64),
            &config,
            |b, cfg| {
                b.iter(|| {
                    let k = Kamel::new(cfg.clone());
                    k.train(&dataset.train);
                    std::hint::black_box(k.stats())
                })
            },
        );
    }
    group.finish();

    let mut group = c.benchmark_group("fig3d_cellsize_impute");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    let sparse: Vec<_> = dataset.test.iter().take(4).map(|t| t.sparsify(1_000.0)).collect();
    for edge_m in [25.0f64, 75.0, 200.0] {
        let (kamel, _) = train_kamel(
            &dataset,
            default_kamel_config()
                .pyramid_height(3)
                .model_threshold_k(150)
                .cell_edge_m(edge_m)
                .build(),
        );
        group.bench_with_input(
            BenchmarkId::from_parameter(edge_m as u64),
            &kamel,
            |b, k| {
                b.iter(|| {
                    for s in &sparse {
                        std::hint::black_box(k.impute(s));
                    }
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Component microbenchmarks: the hot inner operations of every KAMEL
//! module, plus the from-scratch BERT path (training step + masked
//! prediction) so the paper's engine stays continuously measured.

use criterion::{criterion_group, criterion_main, Criterion};
use kamel::cluster::{dbscan, DirectedPoint};
use kamel::{KamelConfig, Tokenizer};
use kamel_geo::{LatLng, Xy};
use kamel_hexgrid::{HexGrid, Tessellation};
use kamel_lm::{BertEngineConfig, BertMlm, EngineConfig, MaskedTokenModel, NgramConfig, NgramMlm};
use kamel_nn::{BertConfig, BertMlmModel};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::time::Duration;

fn corpus() -> Vec<Vec<u64>> {
    // 200 trips over a 40-token loop with occasional branches.
    (0..200)
        .map(|i| {
            (0..40)
                .map(|j| 1_000 + ((i + j) % 40) as u64)
                .collect::<Vec<u64>>()
        })
        .collect()
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("components");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    // Tokenization: latlng → hex cell.
    let tokenizer = Tokenizer::new(LatLng::new(41.15, -8.61), &KamelConfig::default());
    group.bench_function("tokenize_cell_of", |b| {
        b.iter(|| {
            for i in 0..1_000 {
                let p = LatLng::new(41.15 + i as f64 * 1e-5, -8.61 + i as f64 * 1e-5);
                std::hint::black_box(tokenizer.cell_of_latlng(p));
            }
        })
    });

    // Hex line drawing (the multipoint geometry primitive).
    let grid = HexGrid::new(75.0);
    let a = grid.cell_of(Xy::new(0.0, 0.0));
    let b2 = grid.cell_of(Xy::new(3_000.0, 2_000.0));
    group.bench_function("hex_line_3km", |b| {
        b.iter(|| std::hint::black_box(grid.line(a, b2)))
    });

    // N-gram engine: train + predict.
    let corpus = corpus();
    group.bench_function("ngram_train_200x40", |b| {
        b.iter(|| std::hint::black_box(NgramMlm::train(&NgramConfig::default(), &corpus)))
    });
    let ngram = EngineConfig::Ngram(NgramConfig::default()).train(&corpus);
    let seq: Vec<u64> = (0..10).map(|j| 1_000 + j as u64).collect();
    group.bench_function("ngram_predict", |b| {
        b.iter(|| std::hint::black_box(ngram.predict_masked(&seq, 5, 10)))
    });

    // DBSCAN over a typical token cell.
    let points: Vec<DirectedPoint> = (0..200)
        .map(|i| DirectedPoint {
            pos: Xy::new((i % 20) as f64 * 3.0, (i / 20) as f64 * 3.0),
            heading_deg: if i % 2 == 0 { 90.0 } else { 0.0 },
        })
        .collect();
    group.bench_function("dbscan_200pts", |b| {
        b.iter(|| std::hint::black_box(dbscan(&points, 25.0, 30.0, 4)))
    });
    group.finish();

    // BERT path: one training example (fwd+bwd) and one masked prediction.
    let mut group = c.benchmark_group("bert");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let mut model = BertMlmModel::new(BertConfig::tiny(64), &mut rng);
    let ids: Vec<u32> = (5..25).collect();
    let labels: Vec<Option<u32>> = ids
        .iter()
        .enumerate()
        .map(|(i, &id)| if i % 7 == 3 { Some(id) } else { None })
        .collect();
    group.bench_function("bert_tiny_train_example", |b| {
        b.iter(|| {
            let loss = model.train_example(&ids, &labels);
            model.zero_grads();
            std::hint::black_box(loss)
        })
    });
    let small_corpus: Vec<Vec<u64>> = (0..20).map(|_| (100u64..120).collect()).collect();
    let bert = BertMlm::train(&BertEngineConfig::for_tests(), &small_corpus);
    let seq: Vec<u64> = (100u64..110).collect();
    group.bench_function("bert_tiny_predict", |b| {
        b.iter(|| std::hint::black_box(bert.predict_masked(&seq, 5, 10)))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

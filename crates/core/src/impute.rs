//! Multipoint Imputation (§6): filling a gap with a token sequence.
//!
//! Implements the paper's two strategies plus the single-call ablation:
//!
//! * [`MultipointStrategy::Iterative`] — Algorithm 1: greedily insert the
//!   top valid candidate at the first remaining gap until every adjacent
//!   pair is within `max_gap`.
//! * [`MultipointStrategy::Beam`] — Algorithm 2: bidirectional beam search
//!   over partial segments with length-normalized probabilities
//!   (`P × |imputed|^α`, §6.2) and a completed-answer pruning bound.
//! * [`MultipointStrategy::Single`] — the §8.7 "No Multi." variant: one
//!   model call per gap.
//!
//! Every strategy respects the hard model-call budget; on exhaustion the
//! segment is declared failed and the caller falls back to a straight line,
//! exactly as §6 prescribes.

use crate::config::{KamelConfig, MultipointStrategy};
use crate::constraints::{GapContext, SpatialConstraints};
use crate::tokenize::Tokenizer;
use kamel_hexgrid::CellId;
use kamel_lm::{Candidate, MaskedTokenModel};

/// Why a gap could not be imputed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureReason {
    /// The hard model-call budget ran out (§6).
    BudgetExhausted,
    /// A model call returned no candidate that passed the spatial
    /// constraints and cycle check.
    NoValidCandidates,
    /// No pyramid model covered the gap (§4.1 fallback).
    NoModel,
}

/// The result of imputing one trajectory segment (gap).
#[derive(Debug, Clone, PartialEq)]
pub struct SegmentOutcome {
    /// The full token sequence from S to D inclusive. On failure this is
    /// just `[S, D]`.
    pub tokens: Vec<CellId>,
    /// True when the gap had to be imputed by a straight line (the paper's
    /// failure-rate numerator).
    pub failed: bool,
    /// Number of model ("BERT") calls spent.
    pub model_calls: usize,
    /// Populated when `failed` is true.
    pub failure_reason: Option<FailureReason>,
    /// Model confidence in the imputation: the geometric mean of the
    /// chosen candidates' probabilities, in `(0, 1]`. A gap that needed no
    /// imputation reports `1.0`; a failed gap reports `0.0`. The continual
    /// learner uses this to rank cells for retraining (low-confidence
    /// answers mean the cell's model is weak there).
    pub confidence: f64,
}

/// One gap-filling engine bound to a model, constraints, tokenizer, and
/// config.
pub struct GapFiller<'a> {
    /// The selected pyramid model.
    pub model: &'a dyn MaskedTokenModel,
    /// The Spatial Constraints module.
    pub constraints: &'a SpatialConstraints,
    /// The Tokenization module (for centroids/distances).
    pub tokenizer: &'a Tokenizer,
    /// System configuration.
    pub config: &'a KamelConfig,
    /// Observed speed of the trajectory segment preceding this gap, for the
    /// adaptive speed policy (§5.1). `None` when unknown.
    pub preceding_speed_mps: Option<f64>,
}

/// A partial segment during beam search.
#[derive(Debug, Clone)]
struct BeamSeg {
    tokens: Vec<CellId>,
    /// Product of candidate probabilities of all imputed tokens.
    prob: f64,
    imputed: usize,
}

impl BeamSeg {
    fn normalized(&self, alpha: f64) -> f64 {
        self.prob * (self.imputed.max(1) as f64).powf(alpha)
    }
}

impl<'a> GapFiller<'a> {
    /// Fills the gap between tokens `s` (at time `t_s`) and `d` (at `t_d`).
    /// `prev`/`next` are the trajectory tokens around the gap (t₁/t₂ in
    /// Figure 5), used by the direction constraints.
    pub fn fill(
        &self,
        s: CellId,
        d: CellId,
        t_s: f64,
        t_d: f64,
        prev: Option<CellId>,
        next: Option<CellId>,
    ) -> SegmentOutcome {
        if s == d
            || self.tokenizer.centroid_distance_m(s, d)
                <= self.tokenizer.effective_max_gap_m(self.config.max_gap_m)
        {
            // Nothing to impute.
            return SegmentOutcome {
                tokens: vec![s, d],
                failed: false,
                model_calls: 0,
                failure_reason: None,
                confidence: 1.0,
            };
        }
        match self.config.multipoint {
            MultipointStrategy::Iterative => self.iterative(s, d, t_s, t_d, prev, next),
            MultipointStrategy::Beam => self.beam(s, d, t_s, t_d, prev, next),
            MultipointStrategy::Single => self.single(s, d, t_s, t_d, prev, next),
        }
    }

    /// The FindFirstGap/FindGaps threshold (see
    /// [`Tokenizer::effective_max_gap_m`]).
    fn gap_threshold(&self) -> f64 {
        self.tokenizer.effective_max_gap_m(self.config.max_gap_m)
    }

    /// First adjacent pair with centroid distance above the gap threshold.
    fn first_gap(&self, tokens: &[CellId]) -> Option<usize> {
        let limit = self.gap_threshold();
        tokens
            .windows(2)
            .position(|w| self.tokenizer.centroid_distance_m(w[0], w[1]) > limit)
    }

    /// All gap indices in a segment.
    fn all_gaps(&self, tokens: &[CellId]) -> Vec<usize> {
        let limit = self.gap_threshold();
        tokens
            .windows(2)
            .enumerate()
            .filter(|(_, w)| self.tokenizer.centroid_distance_m(w[0], w[1]) > limit)
            .map(|(i, _)| i)
            .collect()
    }

    /// Interpolated timestamp of `tokens[idx]`, linear in cumulative
    /// centroid distance between the segment's real endpoints.
    fn token_time(&self, tokens: &[CellId], idx: usize, t_s: f64, t_d: f64) -> f64 {
        if tokens.len() < 2 {
            return t_s;
        }
        let mut cum = vec![0.0f64; tokens.len()];
        for i in 1..tokens.len() {
            cum[i] = cum[i - 1] + self.tokenizer.centroid_distance_m(tokens[i - 1], tokens[i]);
        }
        let total = cum[tokens.len() - 1];
        if total <= 0.0 {
            return t_s;
        }
        t_s + (t_d - t_s) * cum[idx] / total
    }

    /// Builds the masked model input for the gap at `gap_idx`:
    /// `[prev?] tokens[..=gap_idx] [MASK] tokens[gap_idx+1..] [next?]`.
    /// Returns the sequence and the mask position within it.
    fn build_model_input(
        &self,
        tokens: &[CellId],
        gap_idx: usize,
        prev: Option<CellId>,
        next: Option<CellId>,
    ) -> (Vec<u64>, usize) {
        let mut seq: Vec<u64> = Vec::with_capacity(tokens.len() + 3);
        if let Some(p) = prev {
            seq.push(p.0);
        }
        seq.extend(tokens[..=gap_idx].iter().map(|c| c.0));
        let mask_pos = seq.len();
        seq.push(0); // masked slot placeholder
        seq.extend(tokens[gap_idx + 1..].iter().map(|c| c.0));
        if let Some(nx) = next {
            seq.push(nx.0);
        }
        (seq, mask_pos)
    }

    /// Builds the model input around the current segment, queries it at the
    /// masked slot for the gap at `gap_idx`, and applies the spatial
    /// constraints.
    fn call_model(
        &self,
        tokens: &[CellId],
        gap_idx: usize,
        t_s: f64,
        t_d: f64,
        prev: Option<CellId>,
        next: Option<CellId>,
    ) -> Vec<Candidate> {
        let (seq, mask_pos) = self.build_model_input(tokens, gap_idx, prev, next);
        let raw = self.model.predict_masked(&seq, mask_pos, self.config.top_k);
        self.postprocess_candidates(raw, tokens, gap_idx, (t_s, t_d), prev, next)
    }

    /// The non-model half of a "call BERT" step: micro-gap bridging and the
    /// spatial-constraints filter over the raw candidate list. `span` is
    /// the segment's `(t_s, t_d)` endpoint times.
    fn postprocess_candidates(
        &self,
        mut raw: Vec<Candidate>,
        tokens: &[CellId],
        gap_idx: usize,
        span: (f64, f64),
        prev: Option<CellId>,
        next: Option<CellId>,
    ) -> Vec<Candidate> {
        let (t_s, t_d) = span;
        let gap_s = tokens[gap_idx];
        let gap_d = tokens[gap_idx + 1];
        // Micro-gap bridging. A count-based MLM can only propose tokens it
        // has seen in this exact context, while the paper's BERT softmax
        // covers the whole vocabulary — its top-k routinely includes the
        // geometric in-between cell for a short hop. Emulate that tail for
        // grid-close endpoints only (≤ 3 steps): offer the interior cells
        // of the grid line between them at a low floor probability. They
        // still pass through the spatial constraints below.
        let grid_dist = self.tokenizer.grid().grid_distance(gap_s, gap_d);
        if (2..=3).contains(&grid_dist) {
            let line = self.tokenizer.grid().line(gap_s, gap_d);
            for cell in &line[1..line.len().saturating_sub(1)] {
                if !raw.iter().any(|c| c.key == cell.0) {
                    raw.push(Candidate {
                        key: cell.0,
                        prob: 1e-3,
                    });
                }
            }
        }
        let ctx = GapContext {
            s: gap_s,
            d: gap_d,
            s_xy: self.tokenizer.centroid(gap_s),
            d_xy: self.tokenizer.centroid(gap_d),
            t_s: self.token_time(tokens, gap_idx, t_s, t_d),
            t_d: self.token_time(tokens, gap_idx + 1, t_s, t_d),
            prev_xy: if gap_idx > 0 {
                Some(self.tokenizer.centroid(tokens[gap_idx - 1]))
            } else {
                prev.map(|p| self.tokenizer.centroid(p))
            },
            next_xy: if gap_idx + 2 < tokens.len() {
                Some(self.tokenizer.centroid(tokens[gap_idx + 2]))
            } else {
                next.map(|p| self.tokenizer.centroid(p))
            },
            preceding_speed_mps: self.preceding_speed_mps,
        };
        self.constraints.filter(raw, &ctx, self.tokenizer)
    }

    /// Algorithm 1: Iterative BERT Calling.
    fn iterative(
        &self,
        s: CellId,
        d: CellId,
        t_s: f64,
        t_d: f64,
        prev: Option<CellId>,
        next: Option<CellId>,
    ) -> SegmentOutcome {
        let mut tokens = vec![s, d];
        let mut calls = 0usize;
        let mut prob_product = 1.0f64;
        let mut inserted_total = 0usize;
        while let Some(gap_idx) = self.first_gap(&tokens) {
            if calls >= self.config.max_model_calls {
                return Self::failure(s, d, calls, FailureReason::BudgetExhausted);
            }
            let candidates = self.call_model(&tokens, gap_idx, t_s, t_d, prev, next);
            calls += 1;
            // Top candidate that does not create a cycle.
            let mut inserted = false;
            for c in candidates {
                let mut attempt = tokens.clone();
                attempt.insert(gap_idx + 1, CellId(c.key));
                if !self.constraints.creates_cycle(&attempt, gap_idx + 1) {
                    tokens = attempt;
                    prob_product *= c.prob;
                    inserted_total += 1;
                    inserted = true;
                    break;
                }
            }
            if !inserted {
                return Self::failure(s, d, calls, FailureReason::NoValidCandidates);
            }
        }
        SegmentOutcome {
            tokens,
            failed: false,
            model_calls: calls,
            failure_reason: None,
            confidence: Self::geometric_mean(prob_product, inserted_total),
        }
    }

    /// The §8.7 "No Multi." ablation: a single model call, keeping at most
    /// one imputed token per gap. Per the paper's failure definition, a gap
    /// that still exceeds `max_gap` after the one insertion counts as a
    /// failure (the system resorts to a linear line for it), which is why
    /// "No Multi." has the highest failure rate in Figure 12-VI.
    fn single(
        &self,
        s: CellId,
        d: CellId,
        t_s: f64,
        t_d: f64,
        prev: Option<CellId>,
        next: Option<CellId>,
    ) -> SegmentOutcome {
        let tokens = vec![s, d];
        let candidates = self.call_model(&tokens, 0, t_s, t_d, prev, next);
        match candidates.first() {
            Some(c) => {
                let tokens = vec![s, CellId(c.key), d];
                let unfilled = self.first_gap(&tokens).is_some();
                SegmentOutcome {
                    tokens,
                    failed: unfilled,
                    model_calls: 1,
                    failure_reason: unfilled.then_some(FailureReason::NoValidCandidates),
                    confidence: if unfilled { 0.0 } else { c.prob.clamp(0.0, 1.0) },
                }
            }
            None => Self::failure(s, d, 1, FailureReason::NoValidCandidates),
        }
    }

    /// Algorithm 2: Bidirectional Beam Search.
    fn beam(
        &self,
        s: CellId,
        d: CellId,
        t_s: f64,
        t_d: f64,
        prev: Option<CellId>,
        next: Option<CellId>,
    ) -> SegmentOutcome {
        let alpha = self.config.length_norm_alpha;
        let b = self.config.beam_size;
        let init = BeamSeg {
            tokens: vec![s, d],
            prob: 1.0,
            imputed: 0,
        };
        // (segment, gap index) pairs awaiting expansion — the paper's
        // AllGaps list.
        let mut all_gaps: Vec<(BeamSeg, usize)> = vec![(init, 0)];
        let mut answers: Vec<BeamSeg> = Vec::new();
        // Completed-answer bound (the Figure 7 "lower bound"): partial
        // segments whose normalized score falls below the best complete
        // answer are dropped.
        let mut prob_limit = f64::NEG_INFINITY;
        let mut calls = 0usize;
        let mut budget_exhausted = false;
        while !all_gaps.is_empty() {
            let mut new_segments: Vec<BeamSeg> = Vec::new();
            // The whole round goes through the model as ONE batched call:
            // every frontier gap that fits the remaining call budget. Each
            // request still counts as one "BERT call" against the budget,
            // and the per-request results are identical to serial calls
            // (the batched API guarantees it), so semantics are unchanged —
            // only the kernels get the fused batch.
            let take = all_gaps
                .len()
                .min(self.config.max_model_calls.saturating_sub(calls));
            let budget_hit = take < all_gaps.len();
            if budget_hit {
                budget_exhausted = true;
            }
            let reqs: Vec<(Vec<u64>, usize)> = all_gaps[..take]
                .iter()
                .map(|(seg, gap_idx)| self.build_model_input(&seg.tokens, *gap_idx, prev, next))
                .collect();
            let batched = self.model.predict_masked_batch(&reqs, self.config.top_k);
            calls += take;
            for ((seg, gap_idx), raw) in all_gaps[..take].iter().zip(batched) {
                let candidates =
                    self.postprocess_candidates(raw, &seg.tokens, *gap_idx, (t_s, t_d), prev, next);
                for c in candidates.into_iter().take(b) {
                    let mut tokens = seg.tokens.clone();
                    tokens.insert(gap_idx + 1, CellId(c.key));
                    if self.constraints.creates_cycle(&tokens, gap_idx + 1) {
                        continue;
                    }
                    new_segments.push(BeamSeg {
                        tokens,
                        prob: seg.prob * c.prob,
                        imputed: seg.imputed + 1,
                    });
                }
            }
            // TopB(NewSegments, B, ProbLimit): rank by probability, prune by
            // the completed-answer bound.
            new_segments.sort_by(|a, b2| {
                b2.prob
                    .partial_cmp(&a.prob)
                    .expect("finite probabilities")
            });
            new_segments.dedup_by(|a, b2| a.tokens == b2.tokens);
            new_segments.truncate(b);
            new_segments.retain(|seg2| seg2.normalized(alpha) >= prob_limit || answers.is_empty());

            all_gaps.clear();
            for seg in new_segments {
                let gaps = self.all_gaps(&seg.tokens);
                if gaps.is_empty() {
                    let score = seg.normalized(alpha);
                    prob_limit = prob_limit.max(score);
                    answers.push(seg);
                } else {
                    for g in gaps {
                        all_gaps.push((seg.clone(), g));
                    }
                }
            }
            if budget_hit {
                break;
            }
        }
        match answers
            .into_iter()
            .max_by(|a, b2| {
                a.normalized(alpha)
                    .partial_cmp(&b2.normalized(alpha))
                    .expect("finite scores")
            }) {
            Some(best) => SegmentOutcome {
                confidence: Self::geometric_mean(best.prob, best.imputed),
                tokens: best.tokens,
                failed: false,
                model_calls: calls,
                failure_reason: None,
            },
            None => Self::failure(
                s,
                d,
                calls,
                if budget_exhausted {
                    FailureReason::BudgetExhausted
                } else {
                    FailureReason::NoValidCandidates
                },
            ),
        }
    }

    fn failure(s: CellId, d: CellId, calls: usize, reason: FailureReason) -> SegmentOutcome {
        SegmentOutcome {
            tokens: vec![s, d],
            failed: true,
            model_calls: calls,
            failure_reason: Some(reason),
            confidence: 0.0,
        }
    }

    /// Geometric mean of `count` candidate probabilities whose product is
    /// `product`, clamped into `[0, 1]`. Zero insertions means the segment
    /// was already complete → full confidence.
    fn geometric_mean(product: f64, count: usize) -> f64 {
        if count == 0 {
            1.0
        } else {
            product.max(0.0).powf(1.0 / count as f64).clamp(0.0, 1.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::KamelConfig;
    use kamel_geo::LatLng;
    use kamel_lm::EngineConfig;

    /// Builds a tokenizer + straight-street corpus and returns the cells of
    /// the street, spaced under 100 m so a trained model knows the chain.
    fn street() -> (Tokenizer, Vec<CellId>, kamel_lm::TrainedModel) {
        let cfg = KamelConfig::default();
        let tok = Tokenizer::new(LatLng::new(41.15, -8.61), &cfg);
        // A straight east-west street sampled every ~120 m (neighbor hexes).
        let cells: Vec<CellId> = (0..25)
            .map(|i| tok.cell_of_xy(kamel_geo::Xy::new(i as f64 * 120.0, 0.0)))
            .collect();
        let mut dedup = cells.clone();
        dedup.dedup();
        let corpus: Vec<Vec<u64>> = (0..30)
            .map(|_| dedup.iter().map(|c| c.0).collect())
            .collect();
        let model = EngineConfig::default().train(&corpus);
        (tok, dedup, model)
    }

    fn filler<'a>(
        tok: &'a Tokenizer,
        model: &'a kamel_lm::TrainedModel,
        cons: &'a SpatialConstraints,
        cfg: &'a KamelConfig,
    ) -> GapFiller<'a> {
        GapFiller {
            model,
            constraints: cons,
            tokenizer: tok,
            config: cfg,
            preceding_speed_mps: None,
        }
    }

    #[test]
    fn no_gap_means_no_calls() {
        let (tok, cells, model) = street();
        let cfg = KamelConfig::default();
        let cons = SpatialConstraints::new(20.0, &cfg);
        let f = filler(&tok, &model, &cons, &cfg);
        // Adjacent cells are ~130 m apart > 100 m max gap, so pick the same
        // cell twice for the trivial case.
        let out = f.fill(cells[0], cells[0], 0.0, 10.0, None, None);
        assert!(!out.failed);
        assert_eq!(out.model_calls, 0);
        assert_eq!(out.tokens, vec![cells[0], cells[0]]);
    }

    #[test]
    fn iterative_fills_a_street_gap() {
        let (tok, cells, model) = street();
        let cfg = KamelConfig::builder()
            .multipoint(MultipointStrategy::Iterative)
            .build();
        let cons = SpatialConstraints::new(20.0, &cfg);
        let f = filler(&tok, &model, &cons, &cfg);
        // Gap spanning 8 street cells (~1 km), generous time budget.
        let (s, d) = (cells[2], cells[10]);
        let out = f.fill(s, d, 0.0, 200.0, Some(cells[1]), Some(cells[11]));
        assert!(!out.failed, "iterative failed: {out:?}");
        assert!(out.tokens.len() > 2, "no tokens imputed");
        // Every adjacent pair within max_gap.
        for w in out.tokens.windows(2) {
            assert!(
                tok.centroid_distance_m(w[0], w[1])
                    <= tok.effective_max_gap_m(cfg.max_gap_m) + 1e-9
            );
        }
        // Endpoints preserved.
        assert_eq!(out.tokens[0], s);
        assert_eq!(*out.tokens.last().unwrap(), d);
        // The imputed tokens are the street cells in between.
        assert_eq!(out.tokens, cells[2..=10].to_vec());
    }

    #[test]
    fn beam_fills_the_same_gap() {
        let (tok, cells, model) = street();
        let cfg = KamelConfig::builder()
            .multipoint(MultipointStrategy::Beam)
            .beam_size(5)
            .build();
        let cons = SpatialConstraints::new(20.0, &cfg);
        let f = filler(&tok, &model, &cons, &cfg);
        let (s, d) = (cells[2], cells[10]);
        let out = f.fill(s, d, 0.0, 200.0, Some(cells[1]), Some(cells[11]));
        assert!(!out.failed, "beam failed: {out:?}");
        assert_eq!(out.tokens, cells[2..=10].to_vec());
    }

    #[test]
    fn single_strategy_inserts_exactly_one_token() {
        let (tok, cells, model) = street();
        let cfg = KamelConfig::builder()
            .multipoint(MultipointStrategy::Single)
            .build();
        let cons = SpatialConstraints::new(20.0, &cfg);
        let f = filler(&tok, &model, &cons, &cfg);
        // A 2-cell hop completes with one insertion.
        let out = f.fill(cells[2], cells[4], 0.0, 60.0, None, None);
        assert!(!out.failed, "{out:?}");
        assert_eq!(out.tokens.len(), 3);
        assert_eq!(out.model_calls, 1);
        // A long gap keeps its one inserted token but is reported failed
        // (the paper's "No Multi." failure accounting, §8.7).
        let long = f.fill(cells[2], cells[10], 0.0, 200.0, None, None);
        assert_eq!(long.model_calls, 1);
        assert!(long.failed);
    }

    #[test]
    fn budget_exhaustion_fails_cleanly() {
        let (tok, cells, model) = street();
        let cfg = KamelConfig::builder()
            .multipoint(MultipointStrategy::Iterative)
            .max_model_calls(2)
            .build();
        let cons = SpatialConstraints::new(20.0, &cfg);
        let f = filler(&tok, &model, &cons, &cfg);
        // 15-cell gap cannot be filled in 2 calls.
        let out = f.fill(cells[2], cells[17], 0.0, 400.0, None, None);
        assert!(out.failed);
        assert_eq!(out.tokens, vec![cells[2], cells[17]]);
        assert!(out.model_calls <= 2);
    }

    #[test]
    fn impossible_time_budget_fails_via_constraints() {
        let (tok, cells, model) = street();
        let cfg = KamelConfig::builder()
            .multipoint(MultipointStrategy::Iterative)
            .build();
        let cons = SpatialConstraints::new(5.0, &cfg); // 5 m/s cap
        let f = filler(&tok, &model, &cons, &cfg);
        // 1 km gap in 10 s at 5 m/s: ellipse is a degenerate line; street
        // cell centroids off the exact line get rejected, so the gap cannot
        // be bridged by any candidate except those exactly on the chord.
        let out = f.fill(cells[2], cells[10], 0.0, 10.0, None, None);
        // Either fails outright or (if centroids happen to lie on the
        // chord) fills; with jittered hexes failure is expected.
        if !out.failed {
            for w in out.tokens.windows(2) {
                assert!(
                    tok.centroid_distance_m(w[0], w[1])
                        <= tok.effective_max_gap_m(cfg.max_gap_m) + 1e-9
                );
            }
        }
    }

    #[test]
    fn beam_score_normalization_favors_longer_probable_paths() {
        let seg_short = BeamSeg {
            tokens: vec![],
            prob: 0.06,
            imputed: 2,
        };
        let seg_long = BeamSeg {
            tokens: vec![],
            prob: 0.09,
            imputed: 4,
        };
        // With α=1: 0.06×2=0.12 < 0.09×4=0.36 (the Figure 7 example).
        assert!(seg_long.normalized(1.0) > seg_short.normalized(1.0));
        // With α=0 normalization is off.
        assert!(seg_long.normalized(0.0) > seg_short.normalized(0.0));
        assert_eq!(seg_short.normalized(0.0), 0.06);
    }

    /// A scriptable model: answers per (left, right) mask context.
    struct MockModel {
        by_context: std::collections::HashMap<(u64, u64), Vec<Candidate>>,
    }

    impl kamel_lm::MaskedTokenModel for MockModel {
        fn predict_masked(&self, seq: &[u64], pos: usize, _top_k: usize) -> Vec<Candidate> {
            let left = seq[pos - 1];
            let right = seq[pos + 1];
            self.by_context
                .get(&(left, right))
                .cloned()
                .unwrap_or_default()
        }

        fn vocab_len(&self) -> usize {
            self.by_context.len()
        }

        fn trained_tokens(&self) -> u64 {
            0
        }
    }

    /// The §6.2 / Figure 7 claim, reproduced exactly: greedy iterative
    /// calling follows the locally-best first token into a low-probability
    /// route, while bidirectional beam search returns the route whose
    /// normalized probability is highest.
    #[test]
    fn beam_escapes_the_greedy_trap_of_figure_7() {
        use kamel_hexgrid::CellId;
        let tok = Tokenizer::hex(LatLng::new(41.15, -8.61), 75.0);
        // Axial cells: the direct row c0..c3 and a detour row below it.
        let c = |q: i32, r: i32| CellId::from_coords(q, r);
        let (c0, c1, c2, c3) = (c(0, 0), c(1, 0), c(2, 0), c(3, 0));
        let (d1, dm, d2) = (c(1, -1), c(2, -1), c(3, -1));
        let cand = |cell: CellId, prob: f64| Candidate { key: cell.0, prob };
        let mut by_context = std::collections::HashMap::new();
        // First call: the detour's first step looks best (0.5 > 0.4)...
        by_context.insert((c0.0, c3.0), vec![cand(d1, 0.5), cand(c1, 0.4)]);
        // ...but the detour needs three weak steps (0.5×0.2×0.2 = 0.02,
        // normalized 0.06)...
        by_context.insert((d1.0, c3.0), vec![cand(dm, 0.2)]);
        by_context.insert((dm.0, c3.0), vec![cand(d2, 0.2)]);
        // ...while the direct route completes strongly
        // (0.4×0.8 = 0.32, normalized 0.64).
        by_context.insert((c1.0, c3.0), vec![cand(c2, 0.8)]);
        let model = MockModel { by_context };
        let cons = SpatialConstraints::new(30.0, &KamelConfig::default());
        let fill = |strategy: MultipointStrategy| {
            let cfg = KamelConfig::builder().multipoint(strategy).beam_size(3).build();
            let filler = GapFiller {
                model: &model,
                constraints: &cons,
                tokenizer: &tok,
                config: &cfg,
                preceding_speed_mps: None,
            };
            filler.fill(c0, c3, 0.0, 60.0, None, None)
        };
        let greedy = fill(MultipointStrategy::Iterative);
        assert!(!greedy.failed, "{greedy:?}");
        assert_eq!(
            greedy.tokens,
            vec![c0, d1, dm, d2, c3],
            "greedy must fall into the detour"
        );
        let beam = fill(MultipointStrategy::Beam);
        assert!(!beam.failed, "{beam:?}");
        assert_eq!(
            beam.tokens,
            vec![c0, c1, c2, c3],
            "beam must return the higher-normalized-probability route"
        );
    }

    /// Forwards single predictions but hides any engine batch override, so
    /// the trait's default serial-loop batch implementation is used.
    struct SerialOnly<'a>(&'a dyn kamel_lm::MaskedTokenModel);

    impl kamel_lm::MaskedTokenModel for SerialOnly<'_> {
        fn predict_masked(&self, seq: &[u64], pos: usize, top_k: usize) -> Vec<Candidate> {
            self.0.predict_masked(seq, pos, top_k)
        }

        fn vocab_len(&self) -> usize {
            self.0.vocab_len()
        }

        fn trained_tokens(&self) -> u64 {
            self.0.trained_tokens()
        }
    }

    /// The beam's round-batched model calls must produce exactly the fill
    /// the serial per-gap calls produce — with the BERT engine, whose fused
    /// batch path is the one under test.
    #[test]
    fn batched_beam_rounds_match_serial_model_calls() {
        let cfg = KamelConfig::builder()
            .multipoint(MultipointStrategy::Beam)
            .beam_size(4)
            .build();
        let tok = Tokenizer::new(LatLng::new(41.15, -8.61), &cfg);
        let cells: Vec<CellId> = (0..25)
            .map(|i| tok.cell_of_xy(kamel_geo::Xy::new(i as f64 * 120.0, 0.0)))
            .collect();
        let mut dedup = cells;
        dedup.dedup();
        let corpus: Vec<Vec<u64>> = (0..30)
            .map(|_| dedup.iter().map(|c| c.0).collect())
            .collect();
        let model = EngineConfig::Bert(kamel_lm::BertEngineConfig::for_tests()).train(&corpus);
        let cons = SpatialConstraints::new(20.0, &cfg);
        let serial = SerialOnly(&model);
        let run = |m: &dyn kamel_lm::MaskedTokenModel| {
            let f = GapFiller {
                model: m,
                constraints: &cons,
                tokenizer: &tok,
                config: &cfg,
                preceding_speed_mps: None,
            };
            f.fill(dedup[2], dedup[10], 0.0, 200.0, Some(dedup[1]), Some(dedup[11]))
        };
        let batched = run(&model);
        let serial_out = run(&serial);
        assert_eq!(batched, serial_out);
        assert!(!batched.failed, "{batched:?}");
    }

    #[test]
    fn confidence_reflects_candidate_probabilities() {
        let (tok, cells, model) = street();
        // Trivial no-gap fill is fully confident.
        let cfg = KamelConfig::default();
        let cons = SpatialConstraints::new(20.0, &cfg);
        let f = filler(&tok, &model, &cons, &cfg);
        let trivial = f.fill(cells[0], cells[0], 0.0, 10.0, None, None);
        assert_eq!(trivial.confidence, 1.0);
        // A real fill reports the geometric mean of the chosen candidates'
        // probabilities: strictly inside (0, 1].
        for strategy in [MultipointStrategy::Iterative, MultipointStrategy::Beam] {
            let cfg = KamelConfig::builder().multipoint(strategy).build();
            let cons = SpatialConstraints::new(20.0, &cfg);
            let f = filler(&tok, &model, &cons, &cfg);
            let out = f.fill(cells[2], cells[10], 0.0, 200.0, Some(cells[1]), Some(cells[11]));
            assert!(!out.failed, "{out:?}");
            assert!(
                out.confidence > 0.0 && out.confidence <= 1.0,
                "confidence out of range: {}",
                out.confidence
            );
        }
        // Failures carry zero confidence.
        let cfg = KamelConfig::builder()
            .multipoint(MultipointStrategy::Iterative)
            .max_model_calls(2)
            .build();
        let cons = SpatialConstraints::new(20.0, &cfg);
        let f = filler(&tok, &model, &cons, &cfg);
        let failed = f.fill(cells[2], cells[17], 0.0, 400.0, None, None);
        assert!(failed.failed);
        assert_eq!(failed.confidence, 0.0);
    }

    #[test]
    fn untrained_model_fails_gracefully() {
        let cfg = KamelConfig::default();
        let tok = Tokenizer::new(LatLng::new(41.15, -8.61), &cfg);
        let model = EngineConfig::default().train(&[]);
        let cons = SpatialConstraints::new(20.0, &cfg);
        let f = filler(&tok, &model, &cons, &cfg);
        let s = tok.cell_of_xy(kamel_geo::Xy::new(0.0, 0.0));
        let d = tok.cell_of_xy(kamel_geo::Xy::new(1000.0, 0.0));
        let out = f.fill(s, d, 0.0, 100.0, None, None);
        assert!(out.failed);
    }
}

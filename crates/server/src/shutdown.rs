//! Graceful-shutdown plumbing.
//!
//! A [`ShutdownFlag`] is a shared boolean the accept loop polls between
//! `accept` attempts and connection handlers consult before reading the
//! next keep-alive request. [`install_signal_handlers`] arms SIGINT
//! (ctrl-c) and SIGTERM to trip the process-wide flag — via a direct
//! `signal(2)` FFI declaration, since the build environment has no crates
//! registry for a signal crate and an atomic store is async-signal-safe.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A shared "stop now" flag.
#[derive(Clone, Default)]
pub struct ShutdownFlag(Arc<AtomicBool>);

impl ShutdownFlag {
    /// Creates an untripped flag.
    pub fn new() -> Self {
        Self::default()
    }

    /// Trips the flag; idempotent.
    pub fn trip(&self) {
        self.0.store(true, Ordering::SeqCst);
    }

    /// True once tripped.
    pub fn is_tripped(&self) -> bool {
        self.0.load(Ordering::SeqCst)
    }
}

/// The flag tripped by SIGINT/SIGTERM. Process-wide because a signal
/// handler cannot capture state.
static SIGNAL_TRIPPED: AtomicBool = AtomicBool::new(false);

/// Set by SIGHUP: "reload the model". Consumed (reset) by
/// [`SignalFlag::take_hup`] so each SIGHUP triggers exactly one reload.
static SIGNAL_HUP: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod sys {
    use super::{SIGNAL_HUP, SIGNAL_TRIPPED};
    use std::sync::atomic::Ordering;

    const SIGHUP: i32 = 1;
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" fn on_signal(signum: i32) {
        // Only async-signal-safe work here: one atomic store.
        if signum == SIGHUP {
            SIGNAL_HUP.store(true, Ordering::SeqCst);
        } else {
            SIGNAL_TRIPPED.store(true, Ordering::SeqCst);
        }
    }

    pub(super) fn install() {
        // `signal(2)` from the libc that std already links. The handler
        // address is passed as the platform's `sighandler_t` (a pointer-
        // sized integer).
        unsafe extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        let handler = on_signal as extern "C" fn(i32) as usize;
        unsafe {
            signal(SIGHUP, handler);
            signal(SIGINT, handler);
            signal(SIGTERM, handler);
        }
    }
}

#[cfg(not(unix))]
mod sys {
    pub(super) fn install() {
        // No signal story off unix; shutdown still works via
        // `ShutdownFlag::trip` (e.g. from a test or an admin thread).
    }
}

/// Arms SIGINT/SIGTERM to request a graceful shutdown and SIGHUP to
/// request a model reload, and returns a flag view reflecting those
/// signals. Safe to call more than once.
pub fn install_signal_handlers() -> SignalFlag {
    sys::install();
    SignalFlag
}

/// A read-only view of the process signal flags.
#[derive(Clone, Copy)]
pub struct SignalFlag;

impl SignalFlag {
    /// True once SIGINT or SIGTERM arrived.
    pub fn is_tripped(&self) -> bool {
        SIGNAL_TRIPPED.load(Ordering::SeqCst)
    }

    /// Consumes a pending SIGHUP: true at most once per delivered signal.
    pub fn take_hup(&self) -> bool {
        SIGNAL_HUP.swap(false, Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_trips_once_and_stays() {
        let f = ShutdownFlag::new();
        assert!(!f.is_tripped());
        let g = f.clone();
        f.trip();
        assert!(f.is_tripped());
        assert!(g.is_tripped(), "clones share the flag");
        f.trip();
        assert!(f.is_tripped());
    }

    #[test]
    fn take_hup_consumes_the_pending_signal() {
        SIGNAL_HUP.store(true, Ordering::SeqCst);
        let f = SignalFlag;
        assert!(f.take_hup());
        assert!(!f.take_hup(), "a SIGHUP triggers exactly one reload");
    }

    #[cfg(unix)]
    #[test]
    fn signal_handler_installation_is_idempotent() {
        let a = install_signal_handlers();
        let _b = install_signal_handlers();
        // The flag itself is only tripped by a real signal; here we only
        // assert installation does not crash and the view is readable.
        let _ = a.is_tripped();
    }
}

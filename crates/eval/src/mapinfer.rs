//! Density-based map inference — the application KAMEL exists to serve.
//!
//! The paper's §1 motivation: when the road network is unknown or
//! untrusted, map inference must reconstruct it from trajectories, and
//! sparse trajectories reveal almost nothing. This module implements the
//! standard density-threshold inference step (the common core of the map
//! inference literature the paper cites): rasterize trajectories onto a
//! fine grid, keep cells crossed by enough evidence, prune isolated noise,
//! and score the inferred map against the hidden ground-truth network with
//! the GEO-style matched recall/precision used in map-inference evaluation.

use kamel_geo::{discretize, LocalProjection, Trajectory, Xy};
use kamel_roadsim::RoadNetwork;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::collections::HashSet;

/// Map-inference parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct MapInferConfig {
    /// Raster cell size in meters.
    pub cell_m: f64,
    /// Minimum trajectory passes through a cell to call it road.
    pub min_evidence: u32,
    /// Drop inferred cells with no inferred 8-neighborhood support
    /// (single-cell GPS-noise specks).
    pub prune_isolated: bool,
}

impl Default for MapInferConfig {
    fn default() -> Self {
        Self {
            cell_m: 25.0,
            min_evidence: 1,
            prune_isolated: true,
        }
    }
}

/// An inferred (or rasterized ground-truth) map: the set of road cells.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InferredMap {
    /// Raster cell size in meters.
    pub cell_m: f64,
    cells: HashSet<(i32, i32)>,
}

impl InferredMap {
    /// Number of road cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True when nothing was inferred.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// True when the cell containing `p` is marked as road.
    pub fn contains(&self, p: Xy) -> bool {
        self.cells.contains(&key(p, self.cell_m))
    }

    /// True when `cell` or any 8-neighbor within `tolerance` cells is road.
    fn near(&self, cell: (i32, i32), tolerance: i32) -> bool {
        for dx in -tolerance..=tolerance {
            for dy in -tolerance..=tolerance {
                if self.cells.contains(&(cell.0 + dx, cell.1 + dy)) {
                    return true;
                }
            }
        }
        false
    }
}

fn key(p: Xy, cell_m: f64) -> (i32, i32) {
    ((p.x / cell_m).floor() as i32, (p.y / cell_m).floor() as i32)
}

/// Infers a road map from trajectories: cells crossed by at least
/// `min_evidence` distinct trajectories become road.
pub fn infer_map(
    trajectories: &[Trajectory],
    proj: &LocalProjection,
    config: &MapInferConfig,
) -> InferredMap {
    assert!(config.cell_m > 0.0, "cell size must be positive");
    let mut evidence: HashMap<(i32, i32), u32> = HashMap::new();
    for traj in trajectories {
        let line: Vec<Xy> = traj.points.iter().map(|p| proj.to_xy(p.pos)).collect();
        if line.is_empty() {
            continue;
        }
        // Each trajectory contributes at most one unit of evidence per cell.
        let mut touched: HashSet<(i32, i32)> = HashSet::new();
        if line.len() == 1 {
            touched.insert(key(line[0], config.cell_m));
        } else {
            for p in discretize(&line, config.cell_m * 0.8) {
                touched.insert(key(p, config.cell_m));
            }
        }
        for cell in touched {
            *evidence.entry(cell).or_insert(0) += 1;
        }
    }
    let mut cells: HashSet<(i32, i32)> = evidence
        .iter()
        .filter(|(_, &count)| count >= config.min_evidence)
        .map(|(&cell, _)| cell)
        .collect();
    if config.prune_isolated {
        let original = cells.clone();
        cells.retain(|&(x, y)| {
            (-1..=1).any(|dx| {
                (-1..=1)
                    .any(|dy| (dx != 0 || dy != 0) && original.contains(&(x + dx, y + dy)))
            })
        });
    }
    InferredMap {
        cell_m: config.cell_m,
        cells,
    }
}

/// Rasterizes the true road network at the same cell size (the inference
/// target).
pub fn rasterize_network(
    network: &RoadNetwork,
    config: &MapInferConfig,
) -> InferredMap {
    let mut cells = HashSet::new();
    for (a, b) in network.edges() {
        let line = vec![network.node(a), network.node(b)];
        for p in discretize(&line, config.cell_m * 0.8) {
            cells.insert(key(p, config.cell_m));
        }
    }
    InferredMap {
        cell_m: config.cell_m,
        cells,
    }
}

/// Matched-coverage quality of an inferred map against the rasterized
/// truth.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MapQuality {
    /// Fraction of true road cells within `tolerance` cells of an inferred
    /// cell (how much of the network was discovered).
    pub road_recall: f64,
    /// Fraction of inferred cells within `tolerance` cells of a true road
    /// cell (how much of the inference is real road).
    pub road_precision: f64,
    /// Harmonic mean of the two.
    pub f1: f64,
}

/// Scores `inferred` against `truth` with a ±`tolerance_cells` match
/// window.
///
/// # Panics
/// Panics when the two maps use different cell sizes.
pub fn compare_maps(inferred: &InferredMap, truth: &InferredMap, tolerance_cells: i32) -> MapQuality {
    assert_eq!(
        inferred.cell_m, truth.cell_m,
        "maps must share a raster cell size"
    );
    let recall = if truth.is_empty() {
        0.0
    } else {
        truth
            .cells
            .iter()
            .filter(|&&c| inferred.near(c, tolerance_cells))
            .count() as f64
            / truth.len() as f64
    };
    let precision = if inferred.is_empty() {
        0.0
    } else {
        inferred
            .cells
            .iter()
            .filter(|&&c| truth.near(c, tolerance_cells))
            .count() as f64
            / inferred.len() as f64
    };
    let f1 = if recall + precision > 0.0 {
        2.0 * recall * precision / (recall + precision)
    } else {
        0.0
    };
    MapQuality {
        road_recall: recall,
        road_precision: precision,
        f1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kamel_geo::{GpsPoint, LatLng};
    use kamel_roadsim::{generate_city, CityConfig};

    fn proj() -> LocalProjection {
        LocalProjection::new(LatLng::new(41.15, -8.61))
    }

    fn line_traj(y: f64, n: usize, step: f64) -> Trajectory {
        let p = proj();
        Trajectory::new(
            (0..n)
                .map(|i| GpsPoint::new(p.to_latlng(Xy::new(i as f64 * step, y)), i as f64))
                .collect(),
        )
    }

    #[test]
    fn dense_trajectory_infers_its_street() {
        let cfg = MapInferConfig::default();
        let trajs = vec![line_traj(0.0, 50, 20.0), line_traj(2.0, 50, 20.0)];
        let map = infer_map(&trajs, &proj(), &cfg);
        assert!(!map.is_empty());
        // Every point along the street is marked.
        for i in 0..40 {
            assert!(map.contains(Xy::new(i as f64 * 25.0, 0.0)), "cell {i}");
        }
        // A parallel street 500 m away is not.
        assert!(!map.contains(Xy::new(100.0, 500.0)));
    }

    #[test]
    fn evidence_threshold_filters_noise() {
        let cfg = MapInferConfig {
            min_evidence: 2,
            prune_isolated: false,
            ..MapInferConfig::default()
        };
        // One trajectory only: below the 2-pass threshold everywhere.
        let map = infer_map(&[line_traj(0.0, 50, 20.0)], &proj(), &cfg);
        assert!(map.is_empty());
        // Two passes over the same street clear it.
        let map2 = infer_map(
            &[line_traj(0.0, 50, 20.0), line_traj(1.0, 50, 20.0)],
            &proj(),
            &cfg,
        );
        assert!(!map2.is_empty());
    }

    #[test]
    fn isolated_specks_are_pruned() {
        let cfg = MapInferConfig::default();
        let p = proj();
        // A single stationary fix far from anything.
        let speck = Trajectory::new(vec![GpsPoint::new(p.to_latlng(Xy::new(5_000.0, 5_000.0)), 0.0)]);
        let map = infer_map(&[line_traj(0.0, 50, 20.0), speck], &p, &cfg);
        assert!(!map.contains(Xy::new(5_000.0, 5_000.0)), "speck survived");
        assert!(map.contains(Xy::new(200.0, 0.0)));
    }

    #[test]
    fn perfect_inference_scores_one() {
        let net = generate_city(&CityConfig {
            cols: 5,
            rows: 5,
            jitter_m: 0.0,
            street_removal_prob: 0.0,
            roundabouts: 0,
            diagonals: 0,
            ring_road: false,
            overpass: false,
            ..CityConfig::default()
        });
        let cfg = MapInferConfig::default();
        let truth = rasterize_network(&net, &cfg);
        let q = compare_maps(&truth, &truth, 1);
        assert_eq!(q.road_recall, 1.0);
        assert_eq!(q.road_precision, 1.0);
        assert_eq!(q.f1, 1.0);
    }

    #[test]
    fn partial_inference_scores_between() {
        let net = generate_city(&CityConfig {
            cols: 5,
            rows: 5,
            jitter_m: 0.0,
            street_removal_prob: 0.0,
            roundabouts: 0,
            diagonals: 0,
            ring_road: false,
            overpass: false,
            ..CityConfig::default()
        });
        let cfg = MapInferConfig::default();
        let truth = rasterize_network(&net, &cfg);
        // Infer from one street only.
        let map = infer_map(&[line_traj(0.0, 40, 15.0)], &proj(), &cfg);
        let q = compare_maps(&map, &truth, 1);
        assert!(q.road_recall > 0.0 && q.road_recall < 0.5, "{q:?}");
        assert!(q.road_precision > 0.8, "{q:?}");
        assert!(q.f1 > 0.0 && q.f1 < 1.0);
    }

    #[test]
    fn empty_maps_score_zero() {
        let cfg = MapInferConfig::default();
        let empty = infer_map(&[], &proj(), &cfg);
        let truth = InferredMap {
            cell_m: cfg.cell_m,
            cells: [(0, 0)].into_iter().collect(),
        };
        let q = compare_maps(&empty, &truth, 1);
        assert_eq!(q.road_recall, 0.0);
        assert_eq!(q.road_precision, 0.0);
        assert_eq!(q.f1, 0.0);
    }
}

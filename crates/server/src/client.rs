//! A tiny blocking HTTP/1.1 client over `std::net::TcpStream`.
//!
//! Just enough to drive the server from the integration tests, the
//! `bench_serve` load generator, and the CI smoke job — one connection,
//! sequential keep-alive requests, `Content-Length` bodies only.
//! [`RetryingClient`] layers transient-failure retries on top: transport
//! errors and 503 shed responses are retried with exponential backoff and
//! deterministic jitter, honoring `Retry-After` and bounded by both an
//! attempt count and a wall-clock deadline.

use std::io::{BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// A parsed HTTP response.
#[derive(Debug, Clone)]
pub struct ClientResponse {
    /// Status code.
    pub status: u16,
    /// Header `(name, value)` pairs; names lowercased.
    pub headers: Vec<(String, String)>,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// First value of header `name` (lowercase), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 (lossy).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// Per-request options: extra headers and an overall time budget.
#[derive(Debug, Default, Clone, Copy)]
pub struct RequestOpts<'a> {
    /// Extra request headers, sent verbatim.
    pub headers: &'a [(&'a str, &'a str)],
    /// Overall budget for the whole exchange. When set it is stamped as
    /// `x-kamel-deadline-ms` so the server can shed late work, and it
    /// bounds the client's total read time by re-arming the socket
    /// timeout with the *remaining* budget before every read — a peer
    /// trickling one byte per timeout window (slow-loris) cannot pin the
    /// caller past its deadline the way a fixed per-read timeout can.
    pub budget: Option<Duration>,
}

/// A keep-alive connection to the server.
pub struct Client {
    stream: BufReader<TcpStream>,
    timeout: Duration,
}

impl Client {
    /// Connects with a read/write timeout (applied per request).
    pub fn connect(addr: SocketAddr, timeout: Duration) -> std::io::Result<Self> {
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        stream.set_nodelay(true)?;
        Ok(Self {
            stream: BufReader::new(stream),
            timeout,
        })
    }

    /// Sends `GET path`.
    pub fn get(&mut self, path: &str) -> std::io::Result<ClientResponse> {
        self.request("GET", path, None, RequestOpts::default())
    }

    /// Sends `POST path` with a JSON body.
    pub fn post_json(&mut self, path: &str, body: &[u8]) -> std::io::Result<ClientResponse> {
        self.request("POST", path, Some(body), RequestOpts::default())
    }

    /// Sends `POST path` with a JSON body and per-request options.
    pub fn post_json_opts(
        &mut self,
        path: &str,
        body: &[u8],
        opts: RequestOpts<'_>,
    ) -> std::io::Result<ClientResponse> {
        self.request("POST", path, Some(body), opts)
    }

    fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&[u8]>,
        opts: RequestOpts<'_>,
    ) -> std::io::Result<ClientResponse> {
        let mut head = format!("{method} {path} HTTP/1.1\r\nhost: kamel\r\n");
        for (name, value) in opts.headers {
            head.push_str(&format!("{name}: {value}\r\n"));
        }
        if let Some(budget) = opts.budget {
            head.push_str(&format!(
                "x-kamel-deadline-ms: {}\r\n",
                budget.as_millis().max(1)
            ));
        }
        if let Some(body) = body {
            head.push_str("content-type: application/json\r\n");
            head.push_str(&format!("content-length: {}\r\n", body.len()));
        }
        head.push_str("\r\n");
        let deadline = opts.budget.map(|b| Instant::now() + b);
        let stream = self.stream.get_mut();
        stream.write_all(head.as_bytes())?;
        if let Some(body) = body {
            stream.write_all(body)?;
        }
        stream.flush()?;
        let result = self.read_response(deadline);
        if deadline.is_some() {
            // Budgeted reads shrank the socket timeout; restore the
            // connection-level default for the next request.
            let _ = self.stream.get_ref().set_read_timeout(Some(self.timeout));
        }
        result
    }

    /// Re-arms the socket read timeout with the remaining budget, erring
    /// out once the budget is spent. A no-op without a deadline.
    fn arm(&mut self, deadline: Option<Instant>) -> std::io::Result<()> {
        let Some(deadline) = deadline else {
            return Ok(());
        };
        let remaining = deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::TimedOut,
                "request budget exhausted mid-response",
            ));
        }
        self.stream
            .get_ref()
            .set_read_timeout(Some(remaining.min(self.timeout)))
    }

    fn read_response(&mut self, deadline: Option<Instant>) -> std::io::Result<ClientResponse> {
        let status_line = self.read_line(deadline)?;
        let status: u16 = status_line
            .split_ascii_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| bad_data(format!("bad status line `{status_line}`")))?;
        let mut headers = Vec::new();
        loop {
            let line = self.read_line(deadline)?;
            if line.is_empty() {
                break;
            }
            let (name, value) = line
                .split_once(':')
                .ok_or_else(|| bad_data(format!("bad header `{line}`")))?;
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
        }
        let len: usize = headers
            .iter()
            .find(|(k, _)| k == "content-length")
            .and_then(|(_, v)| v.parse().ok())
            .ok_or_else(|| bad_data("response without content-length".into()))?;
        // Chunked loop rather than one `read_exact`: each read is bounded
        // by the remaining budget, so a torn or trickled body surfaces as
        // an error instead of an indefinite stall.
        let mut body = vec![0u8; len];
        let mut filled = 0;
        while filled < len {
            self.arm(deadline)?;
            let n = self.stream.read(&mut body[filled..])?;
            if n == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed mid-body",
                ));
            }
            filled += n;
        }
        Ok(ClientResponse {
            status,
            headers,
            body,
        })
    }

    /// Reads one CRLF-terminated line, excluding the terminator.
    fn read_line(&mut self, deadline: Option<Instant>) -> std::io::Result<String> {
        let mut line = Vec::with_capacity(64);
        loop {
            self.arm(deadline)?;
            let mut byte = [0u8; 1];
            let n = self.stream.read(&mut byte)?;
            if n == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed mid-response",
                ));
            }
            if byte[0] == b'\n' {
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                return String::from_utf8(line).map_err(|_| bad_data("non-UTF-8 line".into()));
            }
            line.push(byte[0]);
        }
    }
}

fn bad_data(msg: String) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg)
}

/// Exponential backoff with deterministic jitter for [`RetryingClient`].
///
/// The delay before retry `r` is `base·2^r` capped at `max_delay`, then
/// equal-jittered into `[d/2, d]` by a hash of `(jitter_seed, r)` — no
/// RNG, so a given policy always produces the same schedule (testable,
/// reproducible), while different seeds (e.g. per client) decorrelate
/// retry storms. A server-provided `Retry-After` acts as a floor.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Backoff base: the un-jittered first-retry delay.
    pub base: Duration,
    /// Cap applied to every per-retry delay.
    pub max_delay: Duration,
    /// Total attempts including the first try (minimum 1).
    pub max_attempts: u32,
    /// Wall-clock budget: no retry starts if `elapsed + delay` would pass
    /// it.
    pub deadline: Duration,
    /// Seed for the deterministic jitter hash.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            base: Duration::from_millis(100),
            max_delay: Duration::from_secs(5),
            max_attempts: 4,
            deadline: Duration::from_secs(30),
            jitter_seed: 0x6b61_6d65_6c00_0001,
        }
    }
}

/// SplitMix64: a tiny, well-distributed integer hash (public domain
/// constants) used for jitter — deterministic, no RNG state.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl RetryPolicy {
    /// The delay before retry number `retry` (0-based), honoring a
    /// server-provided `Retry-After` as a floor. Pure: same inputs, same
    /// delay.
    pub fn delay(&self, retry: u32, retry_after: Option<Duration>) -> Duration {
        let exp = self
            .base
            .checked_mul(1u32 << retry.min(20))
            .unwrap_or(self.max_delay);
        let capped = exp.min(self.max_delay);
        // 53 high bits of the hash → a uniform fraction in [0, 1).
        let h = splitmix64(self.jitter_seed ^ u64::from(retry));
        let frac = (h >> 11) as f64 / (1u64 << 53) as f64;
        let jittered = capped.mul_f64(0.5 + 0.5 * frac);
        match retry_after {
            Some(floor) => jittered.max(floor),
            None => jittered,
        }
    }

    /// True when sleeping `next_delay` after `elapsed` would overrun the
    /// deadline — the retry loop gives up instead of sleeping.
    pub fn gives_up(&self, elapsed: Duration, next_delay: Duration) -> bool {
        elapsed.saturating_add(next_delay) > self.deadline
    }
}

/// A [`Client`] wrapper that retries transient failures.
///
/// Retried: transport errors (connect/read/write) and 503 shed responses
/// (the server closes those connections, so each retry reconnects). Not
/// retried: any other status — 4xx are the caller's bug and 504 already
/// burned the request's deadline server-side.
pub struct RetryingClient {
    addr: SocketAddr,
    timeout: Duration,
    policy: RetryPolicy,
    conn: Option<Client>,
}

impl RetryingClient {
    /// A retrying client for `addr`; `timeout` applies per attempt.
    pub fn new(addr: SocketAddr, timeout: Duration, policy: RetryPolicy) -> Self {
        Self {
            addr,
            timeout,
            policy,
            conn: None,
        }
    }

    /// Sends `GET path`, retrying per the policy.
    pub fn get(&mut self, path: &str) -> std::io::Result<ClientResponse> {
        self.with_retries(None, |c, _| c.get(path))
    }

    /// Sends `POST path` with a JSON body, retrying per the policy.
    pub fn post_json(&mut self, path: &str, body: &[u8]) -> std::io::Result<ClientResponse> {
        self.with_retries(None, |c, _| c.post_json(path, body))
    }

    /// Sends `POST path` with per-request options, retrying per the
    /// policy. When `opts.budget` is set, every attempt carries only the
    /// *remaining* budget (stamped on the wire as `x-kamel-deadline-ms`),
    /// and the retry loop gives up — without sleeping — as soon as the
    /// next backoff would overrun what is left.
    pub fn post_json_opts(
        &mut self,
        path: &str,
        body: &[u8],
        opts: RequestOpts<'_>,
    ) -> std::io::Result<ClientResponse> {
        let headers = opts.headers;
        self.with_retries(opts.budget, |c, remaining| {
            c.post_json_opts(
                path,
                body,
                RequestOpts {
                    headers,
                    budget: remaining,
                },
            )
        })
    }

    fn with_retries(
        &mut self,
        budget: Option<Duration>,
        mut send: impl FnMut(&mut Client, Option<Duration>) -> std::io::Result<ClientResponse>,
    ) -> std::io::Result<ClientResponse> {
        let start = Instant::now();
        let attempts = self.policy.max_attempts.max(1);
        let mut retry = 0u32;
        loop {
            let remaining = budget.map(|b| b.saturating_sub(start.elapsed()));
            let outcome = self.attempt(remaining, &mut send);
            let retry_after = match &outcome {
                Ok(resp) if resp.status == 503 => {
                    // Shed responses close the connection server-side;
                    // reconnect on the next attempt, backing off at least
                    // as long as the server asked.
                    self.conn = None;
                    resp.header("retry-after")
                        .and_then(|v| v.parse::<u64>().ok())
                        .map(Duration::from_secs)
                }
                Ok(_) => return outcome,
                Err(_) => None, // `attempt` already dropped the connection
            };
            if retry + 1 >= attempts {
                return outcome;
            }
            let delay = self.policy.delay(retry, retry_after);
            if self.policy.gives_up(start.elapsed(), delay) {
                return outcome;
            }
            // The caller's own budget binds tighter than the policy: once
            // backoff would exceed what remains, sleeping is pure waste —
            // the answer could only arrive after the caller's deadline.
            if let Some(b) = budget {
                if start.elapsed().saturating_add(delay) > b {
                    return outcome;
                }
            }
            std::thread::sleep(delay);
            retry += 1;
        }
    }

    /// One try: (re)connect if needed, send, and poison the connection on
    /// any transport error so the next attempt starts fresh.
    ///
    /// A pooled keep-alive connection can die between requests — the
    /// server timed it out or restarted, surfacing as EPIPE / connection
    /// reset / EOF on the next use. That says nothing about the server's
    /// ability to serve a fresh connection, so the death of a *reused*
    /// connection earns one immediate reconnect-and-resend that does not
    /// consume a retry attempt (a client configured for a single attempt
    /// still succeeds). Only a dead-connection error qualifies: a timeout
    /// on a live connection means the server is slow, and resending could
    /// double-execute the request.
    fn attempt(
        &mut self,
        remaining: Option<Duration>,
        send: &mut impl FnMut(&mut Client, Option<Duration>) -> std::io::Result<ClientResponse>,
    ) -> std::io::Result<ClientResponse> {
        let reused = self.conn.is_some();
        if self.conn.is_none() {
            self.conn = Some(Client::connect(self.addr, self.timeout)?);
        }
        let conn = self.conn.as_mut().expect("connected above");
        match send(conn, remaining) {
            Ok(resp) => Ok(resp),
            Err(e) => {
                self.conn = None;
                if !(reused && is_dead_connection(&e)) {
                    return Err(e);
                }
                // Free reconnect: the pooled connection was already dead.
                self.conn = Some(Client::connect(self.addr, self.timeout)?);
                let conn = self.conn.as_mut().expect("reconnected above");
                match send(conn, remaining) {
                    Ok(resp) => Ok(resp),
                    Err(e2) => {
                        self.conn = None;
                        Err(e2)
                    }
                }
            }
        }
    }
}

/// True for transport errors that mean the peer already abandoned the
/// connection (as opposed to being slow on a live one).
fn is_dead_connection(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::BrokenPipe
            | std::io::ErrorKind::ConnectionReset
            | std::io::ErrorKind::ConnectionAborted
            | std::io::ErrorKind::UnexpectedEof
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    // ---- pure policy tests: no wall clock, no RNG in any assertion ----

    fn policy() -> RetryPolicy {
        RetryPolicy {
            base: Duration::from_millis(100),
            max_delay: Duration::from_secs(5),
            max_attempts: 4,
            deadline: Duration::from_secs(30),
            jitter_seed: 42,
        }
    }

    #[test]
    fn backoff_is_deterministic_and_equal_jittered() {
        let p = policy();
        for retry in 0..10u32 {
            let capped = p
                .base
                .checked_mul(1u32 << retry.min(20))
                .unwrap_or(p.max_delay)
                .min(p.max_delay);
            let d = p.delay(retry, None);
            assert_eq!(d, p.delay(retry, None), "retry {retry}: deterministic");
            assert!(d >= capped / 2, "retry {retry}: {d:?} below half {capped:?}");
            assert!(d <= capped, "retry {retry}: {d:?} above cap {capped:?}");
        }
        // Far-out retries saturate at the cap's jitter band, never panic.
        let huge = p.delay(63, None);
        assert!(huge <= p.max_delay && huge >= p.max_delay / 2);
    }

    #[test]
    fn different_seeds_decorrelate_the_schedule() {
        let a = RetryPolicy { jitter_seed: 1, ..policy() };
        let b = RetryPolicy { jitter_seed: 2, ..policy() };
        assert!(
            (0..8).any(|r| a.delay(r, None) != b.delay(r, None)),
            "two seeds produced identical schedules"
        );
    }

    #[test]
    fn retry_after_is_a_floor_not_a_cap() {
        let p = policy();
        // Floor above the jitter band wins outright…
        assert_eq!(
            p.delay(0, Some(Duration::from_secs(7))),
            Duration::from_secs(7)
        );
        // …and a floor below it leaves the computed backoff unchanged.
        assert_eq!(
            p.delay(3, Some(Duration::from_millis(1))),
            p.delay(3, None)
        );
    }

    #[test]
    fn deadline_gives_up_instead_of_oversleeping() {
        let p = policy();
        assert!(p.gives_up(Duration::from_secs(29), Duration::from_secs(2)));
        assert!(!p.gives_up(Duration::from_secs(1), Duration::from_secs(2)));
        assert!(!p.gives_up(Duration::from_secs(28), Duration::from_secs(2)));
        assert!(p.gives_up(Duration::MAX, Duration::from_secs(1)), "no overflow");
    }

    // ---- behavior tests against a scripted listener; assertions are on
    // outcomes and attempt counts, never on elapsed time ----

    /// Serves one connection per script entry: writes the raw bytes (an
    /// empty entry just closes the socket), then moves on. Returns the
    /// bound address and a handle yielding the number of connections
    /// served.
    fn scripted_server(script: Vec<&'static str>) -> (SocketAddr, std::thread::JoinHandle<usize>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            let mut served = 0;
            for raw in script {
                let (mut stream, _) = listener.accept().unwrap();
                let mut buf = [0u8; 1024];
                let _ = stream.read(&mut buf);
                if !raw.is_empty() {
                    stream.write_all(raw.as_bytes()).unwrap();
                }
                served += 1;
            }
            served
        });
        (addr, handle)
    }

    const SHED: &str = "HTTP/1.1 503 Service Unavailable\r\ncontent-length: 5\r\n\
                        retry-after: 0\r\nconnection: close\r\n\r\nshed\n";
    const OK: &str =
        "HTTP/1.1 200 OK\r\ncontent-length: 3\r\nconnection: keep-alive\r\n\r\nok\n";

    fn fast_policy(max_attempts: u32) -> RetryPolicy {
        RetryPolicy {
            base: Duration::from_millis(1),
            max_delay: Duration::from_millis(4),
            max_attempts,
            deadline: Duration::from_secs(30),
            jitter_seed: 7,
        }
    }

    #[test]
    fn retries_through_a_503_then_succeeds() {
        let (addr, server) = scripted_server(vec![SHED, OK]);
        let mut c = RetryingClient::new(addr, Duration::from_secs(5), fast_policy(4));
        let resp = c.get("/healthz").unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.text(), "ok\n");
        assert_eq!(server.join().unwrap(), 2, "exactly one retry");
    }

    #[test]
    fn gives_up_after_max_attempts_returning_the_last_503() {
        let (addr, server) = scripted_server(vec![SHED, SHED, SHED]);
        let mut c = RetryingClient::new(addr, Duration::from_secs(5), fast_policy(3));
        let resp = c.get("/healthz").unwrap();
        assert_eq!(resp.status, 503, "the final shed response is surfaced");
        assert_eq!(server.join().unwrap(), 3, "attempts are bounded");
    }

    #[test]
    fn transport_error_reconnects_and_retries() {
        // First connection is dropped without a response (mid-exchange
        // failure); the retry reconnects and succeeds.
        let (addr, server) = scripted_server(vec!["", OK]);
        let mut c = RetryingClient::new(addr, Duration::from_secs(5), fast_policy(4));
        let resp = c.post_json("/v1/impute", b"{}").unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(server.join().unwrap(), 2);
    }

    #[test]
    fn dead_pooled_connection_reconnects_without_consuming_an_attempt() {
        // The scripted server closes each connection after one exchange,
        // so the client's pooled connection is dead by the second request.
        let (addr, server) = scripted_server(vec![OK, OK]);
        // max_attempts = 1: any counted retry would fail this client.
        let mut c = RetryingClient::new(addr, Duration::from_secs(5), fast_policy(1));
        assert_eq!(c.get("/healthz").unwrap().status, 200);
        let resp = c.get("/healthz").unwrap();
        assert_eq!(resp.status, 200, "free reconnect revived the request");
        assert_eq!(server.join().unwrap(), 2);
    }

    #[test]
    fn the_free_reconnect_is_granted_only_once() {
        // Second connection also dies without answering: the resend's
        // failure must surface (attempts are exhausted at 1).
        let (addr, server) = scripted_server(vec![OK, ""]);
        let mut c = RetryingClient::new(addr, Duration::from_secs(5), fast_policy(1));
        assert_eq!(c.get("/healthz").unwrap().status, 200);
        let err = c.get("/healthz").unwrap_err();
        assert!(is_dead_connection(&err), "unexpected error kind: {err}");
        assert_eq!(server.join().unwrap(), 2);
    }

    #[test]
    fn a_spent_budget_stops_retries_without_sleeping() {
        // One scripted shed and nothing else: a retry would hang on a
        // second accept, so the join proves the client never came back.
        let (addr, server) = scripted_server(vec![SHED]);
        let policy = RetryPolicy {
            base: Duration::from_millis(500), // delay(0) ≥ 250ms …
            max_delay: Duration::from_secs(5),
            max_attempts: 4,                  // … with attempts to spare
            deadline: Duration::from_secs(30), // policy alone would retry
            jitter_seed: 7,
        };
        let mut c = RetryingClient::new(addr, Duration::from_secs(5), policy);
        let resp = c
            .post_json_opts(
                "/v1/impute",
                b"{}",
                RequestOpts {
                    headers: &[],
                    budget: Some(Duration::from_millis(50)), // < any backoff
                },
            )
            .unwrap();
        assert_eq!(resp.status, 503, "the shed response surfaces unretried");
        assert_eq!(server.join().unwrap(), 1, "no retry past the budget");
    }

    #[test]
    fn the_budget_is_stamped_as_a_deadline_header() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let mut buf = [0u8; 2048];
            let n = stream.read(&mut buf).unwrap();
            stream.write_all(OK.as_bytes()).unwrap();
            String::from_utf8_lossy(&buf[..n]).into_owned()
        });
        let mut c = Client::connect(addr, Duration::from_secs(5)).unwrap();
        let resp = c
            .post_json_opts(
                "/v1/impute",
                b"{}",
                RequestOpts {
                    headers: &[("x-kamel-test", "1")],
                    budget: Some(Duration::from_millis(750)),
                },
            )
            .unwrap();
        assert_eq!(resp.status, 200);
        let head = server.join().unwrap();
        assert!(head.contains("x-kamel-deadline-ms: 750\r\n"), "{head}");
        assert!(head.contains("x-kamel-test: 1\r\n"), "{head}");
    }

    #[test]
    fn a_trickling_response_cannot_outlive_the_budget() {
        // The server answers the head promptly, then drips the body one
        // byte at a time — each drip inside any fixed per-read timeout.
        // Only an overall budget can bound this.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let mut buf = [0u8; 1024];
            let _ = stream.read(&mut buf);
            stream
                .write_all(b"HTTP/1.1 200 OK\r\ncontent-length: 1000\r\n\r\n")
                .unwrap();
            for _ in 0..1000 {
                if stream.write_all(b"x").is_err() {
                    return; // client hung up: exactly what we want
                }
                std::thread::sleep(Duration::from_millis(20));
            }
        });
        let mut c = Client::connect(addr, Duration::from_secs(30)).unwrap();
        let err = c
            .post_json_opts(
                "/v1/impute",
                b"{}",
                RequestOpts {
                    headers: &[],
                    budget: Some(Duration::from_millis(150)),
                },
            )
            .unwrap_err();
        assert!(
            matches!(
                err.kind(),
                std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock
            ),
            "unexpected error: {err}"
        );
        drop(c); // close the socket so the dripper exits promptly
        server.join().unwrap();
    }

    #[test]
    fn non_503_statuses_are_not_retried() {
        let (addr, server) = scripted_server(vec![
            "HTTP/1.1 400 Bad Request\r\ncontent-length: 4\r\nconnection: close\r\n\r\nnope",
        ]);
        let mut c = RetryingClient::new(addr, Duration::from_secs(5), fast_policy(4));
        let resp = c.post_json("/v1/impute", b"garbage").unwrap();
        assert_eq!(resp.status, 400);
        assert_eq!(server.join().unwrap(), 1, "a 4xx must not be retried");
    }
}

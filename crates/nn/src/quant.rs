//! Opt-in int8 weight-quantized serving path.
//!
//! Serving memory and bandwidth are dominated by the linear-layer weights
//! (Q/K/V/O, the two FFN projections, and the vocab head). This module
//! quantizes those weights to `i8` with **per-output-row symmetric
//! scales** and runs their matmuls as exact `i8 × i8 → i32` integer dot
//! products with a single f32 rescale per output element:
//!
//! ```text
//! w_scale[o] = max_i |W[i][o]| / 127          (per output column of W)
//! Wq[o][i]   = rne(W[i][o] / w_scale[o])      clamped to [-127, 127]
//! x_scale    = max_i |x[i]| / 127             (per activation row, dynamic)
//! xq[i]      = rne(x[i] / x_scale)            clamped to [-127, 127]
//! y[o]       = Σ_i xq[i]·Wq[o][i]  ×  (x_scale · w_scale[o])  +  b[o]
//! ```
//!
//! `rne` is round-to-nearest, ties-to-even — the hardware vector rounding
//! mode (`vroundps`), so the SIMD and scalar quantizers emit identical
//! codes.
//!
//! Everything *between* the weight matmuls — embeddings, LayerNorm,
//! softmax, attention score products, residuals, GELU — stays f32, so the
//! error budget is confined to the projections. The clamp range is the
//! symmetric `[-127, 127]` (never `-128`): that keeps `q` and `-q` both
//! representable and bounds every product by `127² = 16129`.
//!
//! The integer dot runs through [`crate::simd::dot_i8x4`] /
//! [`crate::simd::dot_i8`]. Integer addition is associative, so — unlike
//! the f32 kernels — any lane order gives the same sum and cross-backend
//! bit-identity is trivial. Activation quantization runs through
//! [`crate::simd::abs_max_finite`] and [`crate::simd::quantize_i8`]; the
//! codes are element-wise and bit-identical across backends.
//!
//! A quantized model is a **derived artifact**: it is rebuilt from the
//! f32 weights (which remain the source of truth) after training or on
//! load, never serialized. Accuracy gating lives upstream in `kamel-lm` /
//! `kamel-core`, which refuse to enable the path when top-1 agreement
//! with the f32 model drops below the configured bound.

use crate::bert::BertMlmModel;
use crate::infer::{add_into, InferScratch};
use crate::layers::{gelu_forward_into, softmax_rows, softmax_slice, Linear};
use crate::matrix::Matrix;
use crate::simd;
use std::sync::Arc;

/// Read-only backing bytes for zero-copy quantized weights — typically a
/// memory-mapped model-store file. The returned slice must be stable for
/// the source's lifetime (a mapping never moves; a `Vec` source must not
/// be mutated, which `ByteSource` consumers cannot do through the trait).
pub trait ByteSource: Send + Sync {
    /// The full backing byte range.
    fn bytes(&self) -> &[u8];
}

impl ByteSource for Vec<u8> {
    fn bytes(&self) -> &[u8] {
        self
    }
}

/// Storage behind a quantized layer's `i8` codes: owned after
/// quantization from f32 weights, or a borrowed view into a shared
/// [`ByteSource`] (the mmap serving path — the codes are read straight
/// out of the mapped pages, never copied to the heap).
enum CodeStore {
    Owned(Vec<i8>),
    Shared {
        buf: Arc<dyn ByteSource>,
        offset: usize,
        len: usize,
    },
}

impl CodeStore {
    fn codes(&self) -> &[i8] {
        match self {
            CodeStore::Owned(v) => v,
            CodeStore::Shared { buf, offset, len } => {
                let bytes = &buf.bytes()[*offset..*offset + *len];
                // i8 and u8 have identical size and alignment, and every
                // bit pattern is valid for both; reinterpreting a shared
                // read-only byte slice is sound.
                unsafe { std::slice::from_raw_parts(bytes.as_ptr() as *const i8, bytes.len()) }
            }
        }
    }

    fn len(&self) -> usize {
        match self {
            CodeStore::Owned(v) => v.len(),
            CodeStore::Shared { len, .. } => *len,
        }
    }
}

impl std::fmt::Debug for CodeStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodeStore::Owned(v) => write!(f, "CodeStore::Owned({} codes)", v.len()),
            CodeStore::Shared { offset, len, .. } => {
                write!(f, "CodeStore::Shared({len} codes at +{offset})")
            }
        }
    }
}

impl Clone for CodeStore {
    fn clone(&self) -> Self {
        match self {
            CodeStore::Owned(v) => CodeStore::Owned(v.clone()),
            CodeStore::Shared { buf, offset, len } => CodeStore::Shared {
                buf: Arc::clone(buf),
                offset: *offset,
                len: *len,
            },
        }
    }
}

/// Quantizes one activation row into `xq`, returning the dequantization
/// scale (`amax / 127`). A row of zeros (or non-finite garbage) maps to
/// all-zero codes with scale 0, so the dot contributes nothing and the
/// output falls back to the bias.
///
/// Codes round ties-to-even (the hardware vector rounding mode, see
/// [`simd::quantize_i8`]) — runs per activation row on the serving hot
/// path, so both passes dispatch into the SIMD backend.
pub fn quantize_row(row: &[f32], xq: &mut Vec<i8>) -> f32 {
    xq.clear();
    xq.resize(row.len(), 0);
    let (amax, finite) = simd::abs_max_finite(row);
    if amax == 0.0 || !finite {
        return 0.0;
    }
    let inv = 127.0 / amax;
    simd::quantize_i8(row, inv, xq);
    amax / 127.0
}

/// An int8-quantized linear layer: `i8` weights in transposed `[out, in]`
/// layout (row `o` holds output column `o` of the f32 weight), one f32
/// scale per output row, and the f32 bias.
#[derive(Debug, Clone)]
pub struct QuantizedLinear {
    /// `i8` weights, `[out_dim, in_dim]` row-major — owned, or a
    /// zero-copy view into a mapped model-store record.
    wq: CodeStore,
    /// Per-output-row dequantization scales (`amax / 127`).
    scales: Vec<f32>,
    /// f32 bias, length `out_dim`.
    bias: Vec<f32>,
    in_dim: usize,
    out_dim: usize,
}

impl QuantizedLinear {
    /// Quantizes an f32 [`Linear`] (`W: [in, out]`) with per-output-column
    /// symmetric scales.
    pub fn from_linear(l: &Linear) -> Self {
        let (in_dim, out_dim) = (l.weight.w.rows(), l.weight.w.cols());
        let w = l.weight.w.data();
        let mut wq = vec![0i8; in_dim * out_dim];
        let mut scales = vec![0.0f32; out_dim];
        for o in 0..out_dim {
            let mut amax = 0.0f32;
            for i in 0..in_dim {
                amax = amax.max(w[i * out_dim + o].abs());
            }
            if amax == 0.0 || !amax.is_finite() {
                continue; // row stays zero with scale 0
            }
            let inv = 127.0 / amax;
            scales[o] = amax / 127.0;
            let row = &mut wq[o * in_dim..(o + 1) * in_dim];
            for (i, q) in row.iter_mut().enumerate() {
                // Ties-to-even, matching the activation codes (`simd::quantize_i8`).
                *q = (w[i * out_dim + o] * inv).round_ties_even().clamp(-127.0, 127.0) as i8;
            }
        }
        Self {
            wq: CodeStore::Owned(wq),
            scales,
            bias: l.bias.w.row(0).to_vec(),
            in_dim,
            out_dim,
        }
    }

    /// Whether the codes are a zero-copy view into a shared byte source
    /// (vs heap-owned).
    pub fn codes_are_borrowed(&self) -> bool {
        matches!(self.wq, CodeStore::Shared { .. })
    }

    /// Bytes this layer occupies in the packed record layout.
    fn packed_len(out_dim: usize, in_dim: usize) -> usize {
        let unpadded = 8 + out_dim * 4 * 2 + out_dim * in_dim;
        (unpadded + 3) & !3
    }

    /// Appends this layer in the fixed record layout (all little-endian):
    ///
    /// ```text
    /// u32 out_dim │ u32 in_dim │ f32 scales[out] │ f32 bias[out]
    ///             │ i8 codes[out × in] │ zero pad to a 4-byte boundary
    /// ```
    ///
    /// The codes block is last, so with a 4-byte-aligned record start
    /// every numeric field lands on its natural alignment and the codes
    /// can be served as one contiguous `[out, in]` slice — exactly what
    /// [`simd::quant_matvec`] consumes.
    pub fn write_packed(&self, out: &mut Vec<u8>) {
        let start = out.len();
        out.extend_from_slice(&(self.out_dim as u32).to_le_bytes());
        out.extend_from_slice(&(self.in_dim as u32).to_le_bytes());
        for &s in &self.scales {
            out.extend_from_slice(&s.to_le_bytes());
        }
        for &b in &self.bias {
            out.extend_from_slice(&b.to_le_bytes());
        }
        for &q in self.wq.codes() {
            out.push(q as u8);
        }
        while (out.len() - start) % 4 != 0 {
            out.push(0);
        }
        debug_assert_eq!(out.len() - start, Self::packed_len(self.out_dim, self.in_dim));
    }

    /// Reads one layer back from the packed layout at `cur`, taking the
    /// codes as a zero-copy view into `cur`'s byte source. Scales and
    /// bias (a few KB of f32s) are copied out — unlike the codes they
    /// need 4-byte alignment, which an arbitrary byte source cannot
    /// guarantee.
    fn read_packed(cur: &mut PackCursor) -> Result<Self, String> {
        let out_dim = cur.read_u32()? as usize;
        let in_dim = cur.read_u32()? as usize;
        if out_dim == 0 || in_dim == 0 || out_dim > (1 << 24) || in_dim > (1 << 24) {
            return Err(format!("implausible quantized dims {out_dim}×{in_dim}"));
        }
        let scales = cur.read_f32s(out_dim)?;
        let bias = cur.read_f32s(out_dim)?;
        let (offset, len) = cur.take_codes(out_dim * in_dim)?;
        cur.align4()?;
        Ok(Self {
            wq: CodeStore::Shared {
                buf: Arc::clone(cur.buf),
                offset,
                len,
            },
            scales,
            bias,
            in_dim,
            out_dim,
        })
    }

    /// Input width.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output width.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Bytes held by the quantized weights (the f32 layer holds 4× this).
    pub fn weight_bytes(&self) -> usize {
        self.wq.len()
    }

    /// The raw code slice (`[out_dim, in_dim]` row-major).
    pub fn codes(&self) -> &[i8] {
        self.wq.codes()
    }

    /// Per-output-row dequantization scales.
    pub fn scales(&self) -> &[f32] {
        &self.scales
    }

    /// Quantized matvec for one activation row: `out[o] = q·Wq[o] ×
    /// (x_scale·w_scale[o]) + b[o]`. `xq` is the caller's reusable code
    /// buffer.
    pub fn forward_row_into(&self, x_row: &[f32], xq: &mut Vec<i8>, out: &mut [f32]) {
        debug_assert_eq!(x_row.len(), self.in_dim);
        debug_assert_eq!(out.len(), self.out_dim);
        let x_scale = quantize_row(x_row, xq);
        // One dispatch for the whole matvec: the fused kernel shares each
        // activation load across four weight rows and rescales in-register.
        // With mapped codes this reads straight out of the store's pages.
        simd::quant_matvec(xq, x_scale, self.wq.codes(), &self.scales, &self.bias, out);
    }

    /// Quantized forward for a `[rows, in]` batch into a reusable buffer
    /// (the int8 counterpart of [`Linear::forward_into`]).
    pub fn forward_into(&self, x: &Matrix, xq: &mut Vec<i8>, out: &mut Matrix) {
        assert_eq!(x.cols(), self.in_dim, "input width mismatch");
        out.reset_zeroed(x.rows(), self.out_dim);
        for r in 0..x.rows() {
            self.forward_row_into(x.row(r), xq, out.row_mut(r));
        }
    }
}

/// The quantized projections of one encoder layer.
#[derive(Debug, Clone)]
struct QuantizedLayer {
    wq: QuantizedLinear,
    wk: QuantizedLinear,
    wv: QuantizedLinear,
    wo: QuantizedLinear,
    ff1: QuantizedLinear,
    ff2: QuantizedLinear,
}

/// All int8 weights of a BERT MLM: the per-layer projections plus the
/// vocab head. Built from (and served alongside) the f32 model, which
/// keeps the embeddings and LayerNorm parameters.
#[derive(Debug, Clone)]
pub struct QuantizedBertMlm {
    layers: Vec<QuantizedLayer>,
    head: QuantizedLinear,
}

impl QuantizedBertMlm {
    /// Quantizes every linear projection of `model`.
    pub fn from_model(model: &BertMlmModel) -> Self {
        let layers = model
            .layers
            .iter()
            .map(|l| QuantizedLayer {
                wq: QuantizedLinear::from_linear(&l.attn.wq),
                wk: QuantizedLinear::from_linear(&l.attn.wk),
                wv: QuantizedLinear::from_linear(&l.attn.wv),
                wo: QuantizedLinear::from_linear(&l.attn.wo),
                ff1: QuantizedLinear::from_linear(&l.ff1),
                ff2: QuantizedLinear::from_linear(&l.ff2),
            })
            .collect();
        Self {
            layers,
            head: QuantizedLinear::from_linear(&model.out),
        }
    }

    /// Bytes held by all quantized weights.
    pub fn weight_bytes(&self) -> usize {
        let per_layer: usize = self
            .layers
            .iter()
            .map(|l| {
                l.wq.weight_bytes()
                    + l.wk.weight_bytes()
                    + l.wv.weight_bytes()
                    + l.wo.weight_bytes()
                    + l.ff1.weight_bytes()
                    + l.ff2.weight_bytes()
            })
            .sum();
        per_layer + self.head.weight_bytes()
    }

    /// Number of quantized encoder layers.
    pub fn layer_count(&self) -> usize {
        self.layers.len()
    }

    /// Serializes all quantized weights into the fixed packed record
    /// layout ([`QPACK_VERSION`] header, then every projection of every
    /// layer in order, then the head). The result round-trips through
    /// [`QuantizedBertMlm::read_packed`] bit-exactly: codes, scales, and
    /// bias are stored verbatim, so a reader serves the same int8 math.
    pub fn write_packed(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&QPACK_VERSION.to_le_bytes());
        out.extend_from_slice(&(self.layers.len() as u32).to_le_bytes());
        for layer in &self.layers {
            layer.wq.write_packed(&mut out);
            layer.wk.write_packed(&mut out);
            layer.wv.write_packed(&mut out);
            layer.wo.write_packed(&mut out);
            layer.ff1.write_packed(&mut out);
            layer.ff2.write_packed(&mut out);
        }
        self.head.write_packed(&mut out);
        out
    }

    /// Reconstructs quantized weights from `len` packed bytes at `offset`
    /// of `buf`, with every code block a zero-copy view into `buf` — the
    /// mmap serving path materializes a model's int8 weights without
    /// copying them off the mapped pages. Scales/bias are copied (small,
    /// alignment-sensitive). Fails loudly on any malformed framing.
    pub fn read_packed(
        buf: Arc<dyn ByteSource>,
        offset: usize,
        len: usize,
    ) -> Result<Self, String> {
        let mut cur = PackCursor::new(&buf, offset, len)?;
        let version = cur.read_u32()?;
        if version != QPACK_VERSION {
            return Err(format!(
                "packed quantized weights are version {version}, expected {QPACK_VERSION}"
            ));
        }
        let n_layers = cur.read_u32()? as usize;
        if n_layers > 1024 {
            return Err(format!("implausible quantized layer count {n_layers}"));
        }
        let mut layers = Vec::with_capacity(n_layers);
        for _ in 0..n_layers {
            layers.push(QuantizedLayer {
                wq: QuantizedLinear::read_packed(&mut cur)?,
                wk: QuantizedLinear::read_packed(&mut cur)?,
                wv: QuantizedLinear::read_packed(&mut cur)?,
                wo: QuantizedLinear::read_packed(&mut cur)?,
                ff1: QuantizedLinear::read_packed(&mut cur)?,
                ff2: QuantizedLinear::read_packed(&mut cur)?,
            });
        }
        let head = QuantizedLinear::read_packed(&mut cur)?;
        cur.finish()?;
        Ok(Self { layers, head })
    }

    /// Whether these quantized weights structurally fit `model` (layer
    /// count and every projection's dimensions). Guards installing a
    /// store record's artifact onto the wrong model.
    pub fn matches(&self, model: &BertMlmModel) -> bool {
        if self.layers.len() != model.layers.len() {
            return false;
        }
        let fits = |q: &QuantizedLinear, l: &Linear| {
            q.in_dim == l.weight.w.rows() && q.out_dim == l.weight.w.cols()
        };
        self.layers.iter().zip(&model.layers).all(|(q, l)| {
            fits(&q.wq, &l.attn.wq)
                && fits(&q.wk, &l.attn.wk)
                && fits(&q.wv, &l.attn.wv)
                && fits(&q.wo, &l.attn.wo)
                && fits(&q.ff1, &l.ff1)
                && fits(&q.ff2, &l.ff2)
        }) && fits(&self.head, &model.out)
    }

    /// Whether any projection serves its codes as a zero-copy view.
    pub fn codes_are_borrowed(&self) -> bool {
        self.head.codes_are_borrowed()
            || self.layers.iter().any(|l| {
                l.wq.codes_are_borrowed()
                    || l.wk.codes_are_borrowed()
                    || l.wv.codes_are_borrowed()
                    || l.wo.codes_are_borrowed()
                    || l.ff1.codes_are_borrowed()
                    || l.ff2.codes_are_borrowed()
            })
    }
}

/// Version tag of the packed quantized-weight record layout.
pub const QPACK_VERSION: u32 = 1;

/// Bounds-checked reader over one packed record inside a shared byte
/// source. Offsets are absolute within the source, so code views built
/// from the cursor address the source directly.
struct PackCursor<'a> {
    buf: &'a Arc<dyn ByteSource>,
    start: usize,
    pos: usize,
    end: usize,
}

impl<'a> PackCursor<'a> {
    fn new(buf: &'a Arc<dyn ByteSource>, offset: usize, len: usize) -> Result<Self, String> {
        let end = offset
            .checked_add(len)
            .filter(|&e| e <= buf.bytes().len())
            .ok_or_else(|| {
                format!(
                    "packed record [{offset}, +{len}) exceeds source of {} bytes",
                    buf.bytes().len()
                )
            })?;
        Ok(Self {
            buf,
            start: offset,
            pos: offset,
            end,
        })
    }

    fn take(&mut self, n: usize) -> Result<&[u8], String> {
        let next = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.end)
            .ok_or_else(|| "packed record truncated".to_string())?;
        let slice = &self.buf.bytes()[self.pos..next];
        self.pos = next;
        Ok(slice)
    }

    fn read_u32(&mut self) -> Result<u32, String> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn read_f32s(&mut self, n: usize) -> Result<Vec<f32>, String> {
        let b = self.take(n.checked_mul(4).ok_or("packed record overflow")?)?;
        Ok(b.chunks_exact(4)
            .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect())
    }

    /// Consumes `n` code bytes, returning their absolute (offset, len).
    fn take_codes(&mut self, n: usize) -> Result<(usize, usize), String> {
        let offset = self.pos;
        self.take(n)?;
        Ok((offset, n))
    }

    fn align4(&mut self) -> Result<(), String> {
        let pad = (4 - (self.pos - self.start) % 4) % 4;
        self.take(pad)?;
        Ok(())
    }

    fn finish(&self) -> Result<(), String> {
        if self.pos != self.end {
            return Err(format!(
                "packed record has {} trailing bytes",
                self.end - self.pos
            ));
        }
        Ok(())
    }
}

impl BertMlmModel {
    /// Quantized single prediction; the int8 counterpart of
    /// [`BertMlmModel::predict_with`]. The returned slice borrows the
    /// scratch.
    pub fn predict_quant_with<'s>(
        &self,
        quant: &QuantizedBertMlm,
        scratch: &'s mut InferScratch,
        ids: &[u32],
        pos: usize,
    ) -> &'s [f32] {
        assert!(pos < ids.len(), "position {pos} out of range");
        self.predict_batch_quant_with(quant, scratch, &[(ids, pos)])
            .row(0)
    }

    /// Quantized batched prediction: the int8 counterpart of
    /// [`BertMlmModel::predict_batch_with`]. The forward is structurally
    /// identical — same embedding gather, per-block attention, residuals,
    /// LayerNorm, GELU, and masked-row head — but every weight matmul runs
    /// through the corresponding [`QuantizedLinear`]. Outputs approximate
    /// the f32 path; closeness is enforced upstream by the accuracy gate.
    pub fn predict_batch_quant_with<'s>(
        &self,
        quant: &QuantizedBertMlm,
        scratch: &'s mut InferScratch,
        reqs: &[(&[u32], usize)],
    ) -> &'s Matrix {
        assert_eq!(
            quant.layers.len(),
            self.layers.len(),
            "quantized weights do not match this model"
        );
        let hidden = self.config.hidden;
        let vocab = self.config.vocab_size;
        scratch.ids.clear();
        scratch.seqs.clear();
        scratch.mask_rows.clear();
        for (ids, pos) in reqs {
            assert!(
                ids.len() <= self.config.max_seq_len,
                "sequence length {} exceeds max {}",
                ids.len(),
                self.config.max_seq_len
            );
            assert!(!ids.is_empty(), "empty sequence");
            assert!(*pos < ids.len(), "position {pos} out of range");
            let start = scratch.ids.len();
            scratch.ids.extend_from_slice(ids);
            scratch.seqs.push((start, ids.len()));
            scratch.mask_rows.push(start + pos);
        }
        let rows = scratch.ids.len();
        if rows == 0 {
            scratch.probs.reset_zeroed(0, vocab);
            return &scratch.probs;
        }

        // Embeddings + LN: identical to the f32 path (not quantized).
        scratch.x_next.reset_zeroed(rows, hidden);
        let tok = &self.tok_emb.table.w;
        let pos_table = &self.pos_emb.table.w;
        for &(start, len) in &scratch.seqs {
            for i in 0..len {
                let id = scratch.ids[start + i] as usize;
                debug_assert!(id < tok.rows(), "token id {id} out of vocab {}", tok.rows());
                let row = scratch.x_next.row_mut(start + i);
                row.copy_from_slice(tok.row(id));
                simd::add_assign(row, pos_table.row(i));
            }
        }
        self.emb_ln.forward_into(&scratch.x_next, &mut scratch.x);

        for (layer, qlayer) in self.layers.iter().zip(&quant.layers) {
            // Attention with quantized projections; score/softmax/AV math
            // stays f32.
            qlayer.wq.forward_into(&scratch.x, &mut scratch.xq, &mut scratch.q);
            qlayer.wk.forward_into(&scratch.x, &mut scratch.xq, &mut scratch.k);
            qlayer.wv.forward_into(&scratch.x, &mut scratch.xq, &mut scratch.v);
            let heads = layer.attn.heads();
            let hd = layer.attn.head_dim();
            let scale = 1.0 / (hd as f32).sqrt();
            scratch.concat.reset_zeroed(rows, hidden);
            for &(start, len) in &scratch.seqs {
                for head in 0..heads {
                    let cols = head * hd..(head + 1) * hd;
                    scratch.qh.reset_zeroed(len, hd);
                    scratch.kh.reset_zeroed(len, hd);
                    scratch.vh.reset_zeroed(len, hd);
                    for r in 0..len {
                        scratch
                            .qh
                            .row_mut(r)
                            .copy_from_slice(&scratch.q.row(start + r)[cols.clone()]);
                        scratch
                            .kh
                            .row_mut(r)
                            .copy_from_slice(&scratch.k.row(start + r)[cols.clone()]);
                        scratch
                            .vh
                            .row_mut(r)
                            .copy_from_slice(&scratch.v.row(start + r)[cols.clone()]);
                    }
                    scratch.qh.matmul_nt_into(&scratch.kh, &mut scratch.scores);
                    scratch.scores.scale(scale);
                    softmax_rows(&mut scratch.scores);
                    scratch.scores.matmul_into(&scratch.vh, &mut scratch.head_out);
                    for r in 0..len {
                        scratch.concat.row_mut(start + r)[cols.clone()]
                            .copy_from_slice(scratch.head_out.row(r));
                    }
                }
            }
            qlayer
                .wo
                .forward_into(&scratch.concat, &mut scratch.xq, &mut scratch.attn_y);
            add_into(&scratch.x, &scratch.attn_y, &mut scratch.res);
            layer.ln1.forward_into(&scratch.res, &mut scratch.h);
            qlayer
                .ff1
                .forward_into(&scratch.h, &mut scratch.xq, &mut scratch.ff_pre);
            gelu_forward_into(&scratch.ff_pre, &mut scratch.ff_act);
            qlayer
                .ff2
                .forward_into(&scratch.ff_act, &mut scratch.xq, &mut scratch.ff_out);
            add_into(&scratch.h, &scratch.ff_out, &mut scratch.res);
            layer.ln2.forward_into(&scratch.res, &mut scratch.x_next);
            std::mem::swap(&mut scratch.x, &mut scratch.x_next);
        }

        // Quantized masked-row head (bias is inside the quantized layer).
        scratch.probs.reset_zeroed(reqs.len(), vocab);
        for (j, &row) in scratch.mask_rows.iter().enumerate() {
            let out_row = scratch.probs.row_mut(j);
            quant
                .head
                .forward_row_into(scratch.x.row(row), &mut scratch.xq, out_row);
            softmax_slice(out_row);
        }
        &scratch.probs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bert::BertConfig;
    use rand::Rng;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn model(vocab: usize, seed: u64) -> BertMlmModel {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        BertMlmModel::new(BertConfig::tiny(vocab), &mut rng)
    }

    #[test]
    fn quantize_round_trip_is_within_half_step() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let row: Vec<f32> = (0..97).map(|_| rng.gen_range(-3.0f32..3.0)).collect();
        let mut xq = Vec::new();
        let scale = quantize_row(&row, &mut xq);
        assert!(scale > 0.0);
        for (&v, &q) in row.iter().zip(&xq) {
            let back = q as f32 * scale;
            // round() puts every value within half a quantization step.
            assert!(
                (v - back).abs() <= scale * 0.5 + 1e-6,
                "value {v} decoded to {back} (scale {scale})"
            );
        }
    }

    #[test]
    fn quantize_clamps_symmetric_never_minus_128() {
        // A huge outlier forces the rest of the row toward zero codes and
        // the extremes to exactly ±127 (never -128).
        let row = [1.0e3f32, -1.0e3, 0.5, -0.5, 0.0];
        let mut xq = Vec::new();
        let scale = quantize_row(&row, &mut xq);
        assert_eq!(xq[0], 127);
        assert_eq!(xq[1], -127);
        assert!(xq.iter().all(|&q| q >= -127));
        assert!((scale - 1.0e3 / 127.0).abs() < 1e-3);
    }

    #[test]
    fn zero_and_nonfinite_rows_decode_to_bias() {
        let mut xq = Vec::new();
        assert_eq!(quantize_row(&[0.0; 9], &mut xq), 0.0);
        assert!(xq.iter().all(|&q| q == 0));
        assert_eq!(quantize_row(&[f32::NAN, 1.0], &mut xq), 0.0);
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let lin = Linear::new(6, 4, &mut rng);
        let q = QuantizedLinear::from_linear(&lin);
        let x = Matrix::zeros(1, 6);
        let mut out = Matrix::zeros(0, 0);
        q.forward_into(&x, &mut xq, &mut out);
        assert_eq!(out.row(0), lin.bias.w.row(0));
    }

    #[test]
    fn dot_i8_saturation_edges_are_exact() {
        // ±127 · ±127 over a length crossing both the AVX2 (16) and NEON
        // (8) strides: the widened i32 sum must be exact.
        for n in [1usize, 7, 8, 15, 16, 17, 31, 33] {
            let a: Vec<i8> = (0..n).map(|i| if i % 2 == 0 { 127 } else { -127 }).collect();
            let b: Vec<i8> = (0..n).map(|i| if i % 3 == 0 { -127 } else { 127 }).collect();
            let expect: i32 = a.iter().zip(&b).map(|(&x, &y)| x as i32 * y as i32).sum();
            assert_eq!(simd::dot_i8(&a, &b), expect, "n = {n}");
        }
    }

    #[test]
    fn quantized_linear_approximates_f32_linear() {
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        let lin = Linear::new(48, 32, &mut rng);
        let x = Matrix::from_fn(5, 48, |_, _| rng.gen_range(-2.0f32..2.0));
        let exact = lin.forward(&x);
        let q = QuantizedLinear::from_linear(&lin);
        assert_eq!(q.weight_bytes(), 48 * 32);
        let mut xq = Vec::new();
        let mut approx = Matrix::zeros(0, 0);
        q.forward_into(&x, &mut xq, &mut approx);
        for (e, a) in exact.data().iter().zip(approx.data()) {
            // Two symmetric 8-bit quantizations over a 48-wide dot: the
            // error stays well under 2% of the activation magnitude here.
            assert!((e - a).abs() < 0.05, "exact {e} vs quantized {a}");
        }
    }

    #[test]
    fn quant_batch_matches_quant_single_calls() {
        let m = model(19, 51);
        let q = QuantizedBertMlm::from_model(&m);
        let reqs_owned: Vec<(Vec<u32>, usize)> =
            vec![(vec![1, 2, 3], 1), (vec![4, 5, 6, 7], 0), (vec![8], 0)];
        let reqs: Vec<(&[u32], usize)> = reqs_owned
            .iter()
            .map(|(ids, pos)| (ids.as_slice(), *pos))
            .collect();
        let mut scratch = InferScratch::new();
        let batch = m.predict_batch_quant_with(&q, &mut scratch, &reqs).clone();
        let mut single = InferScratch::new();
        for (i, (ids, pos)) in reqs_owned.iter().enumerate() {
            let one = m.predict_quant_with(&q, &mut single, ids, *pos);
            assert_eq!(batch.row(i), one, "request {i} diverged");
        }
    }

    #[test]
    fn packed_round_trip_is_bit_identical() {
        let m = model(21, 77);
        let q = QuantizedBertMlm::from_model(&m);
        let packed: Arc<dyn ByteSource> = Arc::new(q.write_packed());
        let len = packed.bytes().len();
        let view = QuantizedBertMlm::read_packed(Arc::clone(&packed), 0, len).unwrap();
        assert!(!q.codes_are_borrowed());
        assert!(view.codes_are_borrowed());
        assert!(view.matches(&m));
        assert_eq!(view.layer_count(), q.layer_count());
        assert_eq!(view.weight_bytes(), q.weight_bytes());
        let mut scratch = InferScratch::new();
        let ids = vec![1u32, 4, 9, 2, 15, 3];
        for pos in 0..ids.len() {
            let owned = m.predict_quant_with(&q, &mut scratch, &ids, pos).to_vec();
            let mapped = m.predict_quant_with(&view, &mut scratch, &ids, pos).to_vec();
            // Integer weight math is exact, so a zero-copy view must give
            // the same bits as the owned artifact — not just close values.
            assert_eq!(
                owned.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                mapped.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "position {pos} diverged between owned and mapped codes"
            );
        }
    }

    #[test]
    fn packed_round_trip_survives_offset_into_larger_buffer() {
        let m = model(17, 78);
        let q = QuantizedBertMlm::from_model(&m);
        let record = q.write_packed();
        // Embed the record mid-buffer at a non-trivial offset, as the store
        // file does, and check absolute-offset framing holds up.
        let mut file = vec![0xAAu8; 37];
        file.extend_from_slice(&record);
        file.extend_from_slice(&[0x55u8; 11]);
        let buf: Arc<dyn ByteSource> = Arc::new(file);
        let view = QuantizedBertMlm::read_packed(Arc::clone(&buf), 37, record.len()).unwrap();
        assert!(view.matches(&m));
        let mut scratch = InferScratch::new();
        let ids = vec![2u32, 7, 1];
        let owned = m.predict_quant_with(&q, &mut scratch, &ids, 1).to_vec();
        let mapped = m.predict_quant_with(&view, &mut scratch, &ids, 1).to_vec();
        assert_eq!(owned, mapped);
    }

    #[test]
    fn packed_rejects_malformed_records() {
        let m = model(13, 79);
        let q = QuantizedBertMlm::from_model(&m);
        let record = q.write_packed();

        // Truncation anywhere must fail, never panic or misread.
        for cut in [0usize, 3, 8, record.len() / 2, record.len() - 1] {
            let buf: Arc<dyn ByteSource> = Arc::new(record[..cut].to_vec());
            assert!(
                QuantizedBertMlm::read_packed(Arc::clone(&buf), 0, cut).is_err(),
                "truncation to {cut} bytes was accepted"
            );
        }

        // Version skew fails with a version message.
        let mut skewed = record.clone();
        skewed[0] = 0xFF;
        let len = skewed.len();
        let buf: Arc<dyn ByteSource> = Arc::new(skewed);
        let err = QuantizedBertMlm::read_packed(buf, 0, len).unwrap_err();
        assert!(err.contains("version"), "unexpected error: {err}");

        // A record range beyond the source is rejected up front.
        let buf: Arc<dyn ByteSource> = Arc::new(record.clone());
        assert!(QuantizedBertMlm::read_packed(buf, 8, record.len()).is_err());

        // Trailing garbage inside the declared range is rejected.
        let mut padded = record.clone();
        padded.extend_from_slice(&[0u8; 16]);
        let len = padded.len();
        let buf: Arc<dyn ByteSource> = Arc::new(padded);
        let err = QuantizedBertMlm::read_packed(buf, 0, len).unwrap_err();
        assert!(err.contains("trailing"), "unexpected error: {err}");
    }

    #[test]
    fn quant_probs_are_close_to_f32_probs() {
        let m = model(23, 52);
        let q = QuantizedBertMlm::from_model(&m);
        assert!(q.weight_bytes() > 0);
        let mut scratch = InferScratch::new();
        let ids = vec![1u32, 5, 9, 13, 2];
        let exact = m.predict_with(&mut scratch, &ids, 2).to_vec();
        let approx = m.predict_quant_with(&q, &mut scratch, &ids, 2).to_vec();
        let l1: f32 = exact
            .iter()
            .zip(&approx)
            .map(|(e, a)| (e - a).abs())
            .sum();
        assert!(l1 < 0.2, "quantized distribution drifted: L1 = {l1}");
        // An untrained tiny model is near-uniform, so argmax agreement is
        // not guaranteed here; distribution closeness is the contract.
    }
}

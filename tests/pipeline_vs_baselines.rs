//! The paper's comparative claims, at test scale: KAMEL beats TrImpute and
//! linear interpolation on medium gaps, and approaches the map-matching
//! reference that sees the true network.

use kamel::KamelConfig;
use kamel_baselines::{LinearImputer, MapMatcher, TrImputeConfig};
use kamel_eval::harness::{evaluate_technique, train_kamel, train_trimpute};
use kamel_eval::EvalContext;
use kamel_roadsim::{Dataset, DatasetScale};

fn config() -> KamelConfig {
    KamelConfig::builder()
        .pyramid_height(3)
        .pyramid_maintained(3)
        .model_threshold_k(150)
        .build()
}

#[test]
fn kamel_beats_the_no_map_competitors_on_medium_gaps() {
    let dataset = Dataset::porto_like(DatasetScale::Small);
    let ctx = EvalContext {
        sparse_m: 1_500.0,
        delta_m: 50.0,
        ..EvalContext::default()
    };
    let (kamel, _) = train_kamel(&dataset, config());
    let (trimpute, _) = train_trimpute(&dataset, TrImputeConfig::default());
    let k = evaluate_technique(&kamel, &dataset, &ctx, 15);
    let t = evaluate_technique(&trimpute, &dataset, &ctx, 15);
    let l = evaluate_technique(&LinearImputer::default(), &dataset, &ctx, 15);
    assert!(
        k.recall > t.recall,
        "KAMEL recall {} <= TrImpute {}",
        k.recall,
        t.recall
    );
    assert!(
        k.recall > l.recall,
        "KAMEL recall {} <= Linear {}",
        k.recall,
        l.recall
    );
    assert!(
        k.precision > l.precision,
        "KAMEL precision {} <= Linear {}",
        k.precision,
        l.precision
    );
    // Failure rates: linear is 100% by definition; KAMEL clearly below.
    assert_eq!(l.failure_rate, Some(1.0));
    assert!(k.failure_rate.unwrap() < 0.5, "KAMEL failures {:?}", k.failure_rate);
}

#[test]
fn kamel_approaches_the_map_matching_reference() {
    let dataset = Dataset::porto_like(DatasetScale::Small);
    let ctx = EvalContext {
        sparse_m: 1_000.0,
        delta_m: 50.0,
        ..EvalContext::default()
    };
    let (kamel, _) = train_kamel(&dataset, config());
    let mm = MapMatcher::new(dataset.network.clone(), dataset.projection());
    let k = evaluate_technique(&kamel, &dataset, &ctx, 12);
    let m = evaluate_technique(&mm, &dataset, &ctx, 12);
    // Map matching knows the network; KAMEL must stay within striking
    // distance (the paper reports "almost identical" on Porto).
    assert!(m.recall > 0.5, "map matching itself broken: {}", m.recall);
    assert!(
        k.recall > 0.6 * m.recall,
        "KAMEL recall {} too far below map matching {}",
        k.recall,
        m.recall
    );
}

#[test]
fn trimpute_collapses_on_thin_history_but_kamel_does_not() {
    // §8.1's central observation (Fig. 9e): TrImpute needs dense prior
    // data — its failure rate explodes first. Train both on half of the
    // corpus with wide gaps: both lose recall to linear fallbacks, but
    // KAMEL keeps imputing a meaningful share of segments while TrImpute's
    // guided walk dies almost everywhere.
    let mut dataset = Dataset::porto_like(DatasetScale::Small);
    dataset.train.truncate(dataset.train.len() / 2);
    let ctx = EvalContext {
        sparse_m: 1_500.0,
        delta_m: 50.0,
        ..EvalContext::default()
    };
    let (kamel, _) = train_kamel(&dataset, config());
    let (trimpute, _) = train_trimpute(&dataset, TrImputeConfig::default());
    let k = evaluate_technique(&kamel, &dataset, &ctx, 15);
    let t = evaluate_technique(&trimpute, &dataset, &ctx, 15);
    let kf = k.failure_rate.expect("gaps present");
    let tf = t.failure_rate.expect("gaps present");
    assert!(
        kf + 0.1 < tf,
        "thin history: KAMEL failure {kf} not clearly below TrImpute {tf}"
    );
    assert!(tf > 0.85, "TrImpute unexpectedly robust on thin history: {tf}");
}

#[test]
fn every_technique_is_deterministic() {
    let dataset = Dataset::porto_like(DatasetScale::Small);
    let ctx = EvalContext::default();
    let (kamel, _) = train_kamel(&dataset, config());
    let a = evaluate_technique(&kamel, &dataset, &ctx, 6);
    let b = evaluate_technique(&kamel, &dataset, &ctx, 6);
    assert_eq!(a.recall, b.recall);
    assert_eq!(a.precision, b.precision);
    assert_eq!(a.failure_rate, b.failure_rate);
}

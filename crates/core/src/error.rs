//! KAMEL error type.

use std::fmt;

/// Errors surfaced by the KAMEL public API.
#[derive(Debug, Clone, PartialEq)]
pub enum KamelError {
    /// The system was asked to impute before any model was trained.
    NotTrained,
    /// The input trajectory has too few points to define a gap.
    TrajectoryTooShort {
        /// Number of points received.
        got: usize,
    },
    /// A configuration value is invalid.
    InvalidConfig(String),
    /// Model (de)serialization failed.
    Persistence(String),
    /// Int8 quantization was requested but a model's top-1 agreement with
    /// its f32 twin fell below the configured bound; the f32 path keeps
    /// serving.
    QuantizationRejected {
        /// The worst per-model agreement observed.
        agreement: f64,
        /// The configured minimum ([`crate::KamelConfig::quantize_min_agreement`]).
        min: f64,
    },
}

impl fmt::Display for KamelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KamelError::NotTrained => {
                write!(f, "no trained models: feed training trajectories first")
            }
            KamelError::TrajectoryTooShort { got } => {
                write!(f, "trajectory has {got} points; imputation needs at least 2")
            }
            KamelError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            KamelError::Persistence(msg) => write!(f, "persistence error: {msg}"),
            KamelError::QuantizationRejected { agreement, min } => write!(
                f,
                "int8 quantization rejected: top-1 agreement {agreement:.4} \
                 is below the configured minimum {min:.4}"
            ),
        }
    }
}

impl std::error::Error for KamelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        assert!(KamelError::NotTrained.to_string().contains("train"));
        assert!(KamelError::TrajectoryTooShort { got: 1 }
            .to_string()
            .contains('1'));
        assert!(KamelError::InvalidConfig("beam_size = 0".into())
            .to_string()
            .contains("beam_size"));
    }
}
